#include "genitor/genitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace tsce::genitor {
namespace {

TEST(BiasedRank, ZeroDrawSelectsTopRank) {
  EXPECT_EQ(biased_rank(250, 1.6, 0.0), 0u);
}

TEST(BiasedRank, AlwaysInRange) {
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(biased_rank(250, 1.6, rng.uniform()), 250u);
  }
  // The limit u -> 1 maps to the bottom rank.
  EXPECT_EQ(biased_rank(10, 1.6, 0.999999), 9u);
}

TEST(BiasedRank, TopIsBiasTimesMoreLikelyThanMedian) {
  // Whitley's definition: with bias b, rank 0 is selected b times more often
  // than the median rank.  Estimate empirically.
  util::Rng rng(2);
  constexpr std::size_t kN = 100;
  constexpr int kDraws = 400000;
  std::vector<int> hits(kN, 0);
  for (int i = 0; i < kDraws; ++i) hits[biased_rank(kN, 1.5, rng.uniform())]++;
  const double top = hits[0];
  const double median = (hits[49] + hits[50]) / 2.0;
  EXPECT_NEAR(top / median, 1.5, 0.12);
}

TEST(BiasedRank, HigherBiasConcentratesOnTop) {
  util::Rng rng(3);
  constexpr std::size_t kN = 100;
  int top_low_bias = 0, top_high_bias = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    if (biased_rank(kN, 1.1, u) < 10) ++top_low_bias;
    if (biased_rank(kN, 2.0, u) < 10) ++top_high_bias;
  }
  EXPECT_GT(top_high_bias, top_low_bias);
}

/// Toy permutation problem: fitness = number of fixed points (c[i] == i).
/// Optimum is the identity permutation with fitness n.
struct FixedPointProblem {
  using Chromosome = std::vector<int>;
  using Fitness = int;

  std::size_t n;

  [[nodiscard]] Fitness evaluate(const Chromosome& c) const {
    int score = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] == static_cast<int>(i)) ++score;
    }
    return score;
  }

  [[nodiscard]] std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                                            const Chromosome& b,
                                                            util::Rng& rng) const {
    // Reorder a's random-length prefix by the relative order in b (and vice
    // versa) — same operator family as the PSG heuristic.
    const auto cut =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
    auto reorder = [&](const Chromosome& base, const Chromosome& pattern) {
      std::vector<std::size_t> pos(n);
      for (std::size_t p = 0; p < n; ++p) pos[static_cast<std::size_t>(pattern[p])] = p;
      Chromosome child = base;
      std::sort(child.begin(), child.begin() + static_cast<std::ptrdiff_t>(cut),
                [&](int x, int y) {
                  return pos[static_cast<std::size_t>(x)] < pos[static_cast<std::size_t>(y)];
                });
      return child;
    };
    return {reorder(a, b), reorder(b, a)};
  }

  [[nodiscard]] Chromosome mutate(const Chromosome& c, util::Rng& rng) const {
    Chromosome child = c;
    const std::size_t i = rng.bounded(n);
    std::size_t j = rng.bounded(n);
    while (j == i) j = rng.bounded(n);
    std::swap(child[i], child[j]);
    return child;
  }

  [[nodiscard]] Chromosome random_chromosome(util::Rng& rng) const {
    Chromosome c(n);
    std::iota(c.begin(), c.end(), 0);
    rng.shuffle(c);
    return c;
  }
};

static_assert(Problem<FixedPointProblem>);

TEST(Genitor, ImprovesOverRandomStart) {
  const FixedPointProblem problem{20};
  Config config;
  config.population_size = 40;
  config.max_iterations = 1500;
  config.stagnation_limit = 1500;
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(7);

  // Baseline: best of 40 random chromosomes.
  util::Rng baseline_rng(7);
  int best_random = 0;
  for (int i = 0; i < 40; ++i) {
    best_random =
        std::max(best_random, problem.evaluate(problem.random_chromosome(baseline_rng)));
  }

  const auto result = ga.run(rng);
  EXPECT_GT(result.best_fitness, best_random);
  EXPECT_GE(result.best_fitness, 15);  // near-optimal on this easy landscape
  EXPECT_EQ(problem.evaluate(result.best), result.best_fitness);
}

TEST(Genitor, SeedsEnterPopulation) {
  const FixedPointProblem problem{12};
  Config config;
  config.population_size = 10;
  config.max_iterations = 0;  // no search: result == best initial member
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(8);
  std::vector<int> identity(12);
  std::iota(identity.begin(), identity.end(), 0);
  const auto result = ga.run(rng, {identity});
  EXPECT_EQ(result.best_fitness, 12);
  EXPECT_EQ(result.best, identity);
}

TEST(Genitor, ElitePreservedWithSeededOptimum) {
  // With the optimum seeded, no offspring can displace it (elitism).
  const FixedPointProblem problem{10};
  Config config;
  config.population_size = 8;
  config.max_iterations = 300;
  config.stagnation_limit = 50;
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(9);
  std::vector<int> identity(10);
  std::iota(identity.begin(), identity.end(), 0);
  const auto result = ga.run(rng, {identity});
  EXPECT_EQ(result.best_fitness, 10);
}

TEST(Genitor, StagnationStopsSearch) {
  const FixedPointProblem problem{10};
  Config config;
  config.population_size = 8;
  config.max_iterations = 100000;
  config.stagnation_limit = 20;
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(10);
  std::vector<int> identity(10);
  std::iota(identity.begin(), identity.end(), 0);
  const auto result = ga.run(rng, {identity});
  // Elite can never improve past the seeded optimum: stagnation (or full
  // convergence on this tiny population) must trigger long before the budget.
  EXPECT_TRUE(result.stop_reason == StopReason::kStagnation ||
              result.stop_reason == StopReason::kConverged);
  EXPECT_LT(result.iterations, 100000u);
}

TEST(Genitor, IterationBudgetRespected) {
  const FixedPointProblem problem{30};
  Config config;
  config.population_size = 10;
  config.max_iterations = 25;
  config.stagnation_limit = 1000;
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(11);
  const auto result = ga.run(rng);
  EXPECT_LE(result.iterations, 25u);
  EXPECT_EQ(result.stop_reason, StopReason::kIterationBudget);
}

TEST(Genitor, EvaluationCountIsConsistent) {
  const FixedPointProblem problem{10};
  Config config;
  config.population_size = 10;
  config.max_iterations = 5;
  config.stagnation_limit = 1000;
  Genitor<FixedPointProblem> ga(problem, config);
  util::Rng rng(12);
  const auto result = ga.run(rng);
  // 10 initial + 3 per iteration (2 crossover offspring + 1 mutation).
  EXPECT_EQ(result.evaluations, 10u + 3u * result.iterations);
}

}  // namespace
}  // namespace tsce::genitor
