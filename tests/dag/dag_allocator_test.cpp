#include "dag/allocator.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "util/rng.hpp"

namespace tsce::dag {
namespace {

DagSystemModel random_system(std::uint64_t seed, std::size_t machines = 4,
                             std::size_t strings = 8) {
  util::Rng rng(seed);
  DagGeneratorConfig config;
  config.num_machines = machines;
  config.num_strings = strings;
  return generate_dag_system(config, rng);
}

TEST(DagMapper, AssignsEveryApplication) {
  const DagSystemModel m = random_system(1);
  const DagUtilization util(m);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    const auto assignment = dag_map_string(m, util, static_cast<StringId>(k));
    ASSERT_EQ(assignment.size(), m.strings[k].size());
    for (const auto j : assignment) {
      EXPECT_GE(j, 0);
      EXPECT_LT(j, 4);
    }
  }
}

TEST(DagMapper, Deterministic) {
  const DagSystemModel m = random_system(2);
  const DagUtilization util(m);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    EXPECT_EQ(dag_map_string(m, util, static_cast<StringId>(k)),
              dag_map_string(m, util, static_cast<StringId>(k)));
  }
}

TEST(DagMapper, SlowNetworkEncouragesColocation) {
  DagSystemModel m;
  m.network = model::Network(2);
  m.network.set_bandwidth_mbps(0, 1, 0.05);
  m.network.set_bandwidth_mbps(1, 0, 0.05);
  DagString s;
  s.apps.resize(3);
  for (auto& a : s.apps) {
    a.nominal_time_s = {2.0, 2.0};
    a.nominal_util = {0.3, 0.3};
  }
  s.edges = {{0, 1, 1000.0}, {0, 2, 1000.0}};
  s.period_s = 20.0;
  s.max_latency_s = 1000.0;
  m.strings.push_back(s);
  const DagUtilization util(m);
  const auto assignment = dag_map_string(m, util, 0);
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_EQ(assignment[0], assignment[2]);
}

TEST(DagAllocator, MostWorthFirstIsFeasible) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    const DagSystemModel m = random_system(seed);
    const auto result = allocate_most_worth_first(m);
    EXPECT_TRUE(check_feasibility(m, result.allocation).feasible()) << seed;
    EXPECT_EQ(result.fitness.total_worth,
              evaluate(m, result.allocation).total_worth);
    EXPECT_GT(result.strings_deployed, 0u);
  }
}

TEST(DagAllocator, LightLoadDeploysEverything) {
  util::Rng rng(6);
  DagGeneratorConfig config;
  config.num_machines = 8;
  config.num_strings = 4;
  const DagSystemModel m = generate_dag_system(config, rng);
  const auto result = allocate_most_worth_first(m);
  EXPECT_EQ(result.strings_deployed, m.num_strings());
  EXPECT_EQ(result.fitness.total_worth, m.total_worth_available());
}

TEST(DagAllocator, OverloadStopsSequentialProcess) {
  // Single machine; identical 0.6-utilization single-app strings: only one
  // fits, and the stop-at-first-failure rule leaves the third untouched.
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  for (int k = 0; k < 3; ++k) {
    DagString s;
    s.apps.resize(1);
    s.apps[0].nominal_time_s = {6.0};
    s.apps[0].nominal_util = {1.0};
    s.period_s = 10.0;
    s.max_latency_s = 1000.0;
    m.strings.push_back(s);
  }
  const auto result = allocate_most_worth_first(m);
  EXPECT_EQ(result.strings_deployed, 1u);
  EXPECT_TRUE(result.allocation.deployed(0));
  EXPECT_FALSE(result.allocation.deployed(1));
  EXPECT_FALSE(result.allocation.deployed(2));
}

TEST(DagAllocator, DecodeOrderMatters) {
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  const double utils[3] = {0.4, 0.7, 0.05};
  for (int k = 0; k < 3; ++k) {
    DagString s;
    s.apps.resize(1);
    s.apps[0].nominal_time_s = {utils[k] * 10.0};
    s.apps[0].nominal_util = {1.0};
    s.period_s = 10.0;
    s.max_latency_s = 1000.0;
    m.strings.push_back(s);
  }
  const auto bad = decode_dag_order(m, {0, 1, 2});   // 0.4 then 0.7 fails
  const auto good = decode_dag_order(m, {2, 0, 1});  // 0.05 + 0.4 fit
  EXPECT_EQ(bad.strings_deployed, 1u);
  EXPECT_EQ(good.strings_deployed, 2u);
}

}  // namespace
}  // namespace tsce::dag
