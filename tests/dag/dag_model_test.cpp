#include "dag/model.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::dag {
namespace {

DagString diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
  DagString s;
  s.apps.resize(4);
  for (auto& a : s.apps) {
    a.nominal_time_s = {1.0};
    a.nominal_util = {0.5};
  }
  s.edges = {{0, 1, 10.0}, {0, 2, 20.0}, {1, 3, 30.0}, {2, 3, 40.0}};
  s.period_s = 10.0;
  s.max_latency_s = 50.0;
  return s;
}

TEST(DagString, TopologicalOrderOfDiamond) {
  const DagString s = diamond();
  const auto order = s.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t p = 0; p < 4; ++p) pos[static_cast<std::size_t>(order[p])] = p;
  for (const DagEdge& e : s.edges) {
    EXPECT_LT(pos[static_cast<std::size_t>(e.from)],
              pos[static_cast<std::size_t>(e.to)]);
  }
}

TEST(DagString, CycleYieldsEmptyOrder) {
  DagString s = diamond();
  s.edges.push_back({3, 0, 5.0});
  EXPECT_TRUE(s.topological_order().empty());
}

TEST(DagString, EdgeAdjacency) {
  const DagString s = diamond();
  const auto in = s.edges_in();
  const auto out = s.edges_out();
  EXPECT_TRUE(in[0].empty());
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(in[3].size(), 2u);
  EXPECT_TRUE(out[3].empty());
}

TEST(DagSystemModel, ValidateAcceptsDiamond) {
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  m.strings.push_back(diamond());
  EXPECT_TRUE(m.validate().empty());
}

TEST(DagSystemModel, ValidateRejectsCycle) {
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  m.strings.push_back(diamond());
  m.strings[0].edges.push_back({3, 0, 5.0});
  EXPECT_FALSE(m.validate().empty());
}

TEST(DagSystemModel, ValidateRejectsSelfLoopAndBadEndpoint) {
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  m.strings.push_back(diamond());
  m.strings[0].edges.push_back({1, 1, 5.0});
  EXPECT_FALSE(m.validate().empty());
  m.strings[0].edges.back() = {0, 99, 5.0};
  EXPECT_FALSE(m.validate().empty());
}

TEST(DagConversion, ChainRoundTrip) {
  const model::SystemModel linear = testing::two_machine_system();
  for (const auto& s : linear.strings) {
    const DagString chain = chain_from_app_string(s);
    EXPECT_EQ(chain.edges.size(), s.size() - 1);
    const model::AppString back = to_app_string(chain);
    EXPECT_EQ(back.period_s, s.period_s);
    ASSERT_EQ(back.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_DOUBLE_EQ(back.apps[i].output_kbytes, s.apps[i].output_kbytes);
    }
  }
}

TEST(DagConversion, NonPathRejected) {
  EXPECT_THROW((void)to_app_string(diamond()), std::invalid_argument);
}

TEST(DagConversion, LiftPreservesCounts) {
  const model::SystemModel linear = testing::two_machine_system();
  const DagSystemModel lifted = lift(linear);
  EXPECT_EQ(lifted.num_machines(), linear.num_machines());
  EXPECT_EQ(lifted.num_strings(), linear.num_strings());
  EXPECT_EQ(lifted.total_worth_available(), linear.total_worth_available());
  EXPECT_TRUE(lifted.validate().empty());
}

TEST(DagAllocation, BasicOperations) {
  DagSystemModel m;
  m.network = model::Network(2, 5.0);
  m.strings.push_back(diamond());
  m.strings[0].apps[0].nominal_time_s = {1.0, 1.0};
  // fix sizes for 2 machines
  for (auto& a : m.strings[0].apps) {
    a.nominal_time_s.assign(2, 1.0);
    a.nominal_util.assign(2, 0.5);
  }
  DagAllocation alloc(m);
  EXPECT_EQ(alloc.num_deployed(), 0u);
  alloc.assign(0, 0, 1);
  EXPECT_EQ(alloc.machine_of(0, 0), 1);
  alloc.set_deployed(0, true);
  EXPECT_EQ(alloc.num_deployed(), 1u);
  alloc.clear_string(0);
  EXPECT_EQ(alloc.machine_of(0, 0), model::kUnassigned);
  EXPECT_FALSE(alloc.deployed(0));
}

}  // namespace
}  // namespace tsce::dag
