#include "dag/analysis.hpp"

#include <gtest/gtest.h>

#include "analysis/estimates.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/tightness.hpp"
#include "dag/generator.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::dag {
namespace {

/// Chains must analyze identically in the linear and DAG modules: this is the
/// strongest correctness anchor for the DAG generalization.
class ChainEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainEquivalence, UtilizationTightnessEstimatesAndVerdictMatch) {
  util::Rng rng(GetParam());
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = 4;
  config.num_strings = 8;
  const model::SystemModel linear = workload::generate(config, rng);
  const DagSystemModel dag = lift(linear);

  // Same random full assignment on both representations.
  model::Allocation lin_alloc(linear);
  DagAllocation dag_alloc(dag);
  util::Rng assign_rng(GetParam() + 99);
  for (std::size_t k = 0; k < linear.num_strings(); ++k) {
    for (std::size_t i = 0; i < linear.strings[k].size(); ++i) {
      const auto j = static_cast<MachineId>(assign_rng.bounded(4));
      lin_alloc.assign(static_cast<StringId>(k), static_cast<AppIndex>(i), j);
      dag_alloc.assign(static_cast<StringId>(k), static_cast<AppIndex>(i), j);
    }
    lin_alloc.set_deployed(static_cast<StringId>(k), true);
    dag_alloc.set_deployed(static_cast<StringId>(k), true);
  }

  // Utilizations.
  const auto lin_util = analysis::UtilizationState::from_allocation(linear, lin_alloc);
  const auto dag_util = DagUtilization::from_allocation(dag, dag_alloc);
  for (MachineId j = 0; j < 4; ++j) {
    EXPECT_NEAR(dag_util.machine_util(j), lin_util.machine_util(j), 1e-12);
    for (MachineId j2 = 0; j2 < 4; ++j2) {
      EXPECT_NEAR(dag_util.route_util(j, j2), lin_util.route_util(j, j2), 1e-12);
    }
  }
  EXPECT_NEAR(dag_util.slackness(), lin_util.slackness(), 1e-12);

  // Tightness (chain critical path == chain sum).
  for (std::size_t k = 0; k < linear.num_strings(); ++k) {
    EXPECT_NEAR(relative_tightness(dag, dag_alloc, static_cast<StringId>(k)),
                analysis::relative_tightness(linear, lin_alloc,
                                             static_cast<StringId>(k)),
                1e-12);
  }

  // Estimates and latencies.
  const auto lin_est = analysis::estimate_all(linear, lin_alloc);
  const auto dag_est = estimate_all(dag, dag_alloc);
  for (std::size_t k = 0; k < linear.num_strings(); ++k) {
    ASSERT_EQ(dag_est.comp[k].size(), lin_est.comp[k].size());
    for (std::size_t i = 0; i < lin_est.comp[k].size(); ++i) {
      EXPECT_NEAR(dag_est.comp[k][i], lin_est.comp[k][i], 1e-12);
    }
    ASSERT_EQ(dag_est.tran[k].size(), lin_est.tran[k].size());
    for (std::size_t e = 0; e < lin_est.tran[k].size(); ++e) {
      EXPECT_NEAR(dag_est.tran[k][e], lin_est.tran[k][e], 1e-12);
    }
    EXPECT_NEAR(dag_est.latency(dag, static_cast<StringId>(k)),
                lin_est.latency(static_cast<StringId>(k)), 1e-10);
  }

  // Final verdicts.
  EXPECT_EQ(check_feasibility(dag, dag_alloc).feasible(),
            analysis::check_feasibility(linear, lin_alloc).feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DagAnalysis, DiamondLatencyIsCriticalPathNotSum) {
  // Diamond on one machine: comp 1 each, transfers free (same machine).
  // Chain-sum latency would be 4; the critical path is 3 (0 -> {1,2} -> 3).
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  DagString s;
  s.apps.resize(4);
  for (auto& a : s.apps) {
    a.nominal_time_s = {1.0};
    a.nominal_util = {0.25};
  }
  s.edges = {{0, 1, 10.0}, {0, 2, 20.0}, {1, 3, 30.0}, {2, 3, 40.0}};
  s.period_s = 10.0;
  s.max_latency_s = 50.0;
  m.strings.push_back(s);

  DagAllocation alloc(m);
  for (int i = 0; i < 4; ++i) alloc.assign(0, i, 0);
  alloc.set_deployed(0, true);
  const auto est = estimate_all(m, alloc);
  EXPECT_DOUBLE_EQ(est.latency(m, 0), 3.0);
  EXPECT_DOUBLE_EQ(relative_tightness(m, alloc, 0), 3.0 / 50.0);
}

TEST(DagAnalysis, ParallelBranchTransfersLoadRoutesIndependently) {
  // Diamond split across two machines: branch transfers use different routes.
  DagSystemModel m;
  m.network = model::Network(2, 8.0);
  DagString s;
  s.apps.resize(4);
  for (auto& a : s.apps) {
    a.nominal_time_s = {1.0, 1.0};
    a.nominal_util = {0.25, 0.25};
  }
  s.edges = {{0, 1, 100.0}, {0, 2, 100.0}, {1, 3, 100.0}, {2, 3, 100.0}};
  s.period_s = 10.0;
  s.max_latency_s = 100.0;
  m.strings.push_back(s);

  DagAllocation alloc(m);
  alloc.assign(0, 0, 0);
  alloc.assign(0, 1, 1);  // branch 1 crosses 0->1 then 1->0
  alloc.assign(0, 2, 0);
  alloc.assign(0, 3, 0);
  alloc.set_deployed(0, true);
  const auto util = DagUtilization::from_allocation(m, alloc);
  // Route 0->1 carries edge (0,1): 0.8 Mb / 10 s / 8 = 0.01.
  EXPECT_NEAR(util.route_util(0, 1), 0.01, 1e-12);
  // Route 1->0 carries edge (1,3): same.
  EXPECT_NEAR(util.route_util(1, 0), 0.01, 1e-12);
}

TEST(DagAnalysis, StageTwoViolationDetected) {
  // One slow machine; a 2-app fork whose period is too small for the work.
  DagSystemModel m;
  m.network = model::Network(1, 5.0);
  DagString tight;
  tight.apps.resize(1);
  tight.apps[0].nominal_time_s = {8.0};
  tight.apps[0].nominal_util = {0.9};
  tight.period_s = 20.0;
  tight.max_latency_s = 10.0;  // T = 0.8: high priority
  tight.worth = model::Worth::kHigh;
  m.strings.push_back(tight);
  DagString loose;
  loose.apps.resize(1);
  loose.apps[0].nominal_time_s = {2.0};
  loose.apps[0].nominal_util = {0.2};
  loose.period_s = 4.0;
  loose.max_latency_s = 1000.0;
  m.strings.push_back(loose);

  DagAllocation alloc(m);
  alloc.assign(0, 0, 0);
  alloc.assign(1, 0, 0);
  alloc.set_deployed(0, true);
  alloc.set_deployed(1, true);
  // loose: t_comp = 2 + (4/20)*7.2 = 3.44 <= 4 (ok); tighten the period:
  m.strings[1].period_s = 3.0;  // now 2 + (3/20)*7.2 = 3.08 > 3
  const auto report = check_feasibility(m, alloc);
  EXPECT_TRUE(report.stage_one_ok);
  EXPECT_FALSE(report.stage_two_ok);
}

TEST(DagAnalysis, GeneratedSystemsAreValid) {
  util::Rng rng(7);
  DagGeneratorConfig config;
  config.num_strings = 12;
  const DagSystemModel m = generate_dag_system(config, rng);
  EXPECT_TRUE(m.validate().empty());
  EXPECT_EQ(m.num_strings(), 12u);
  for (const auto& s : m.strings) {
    EXPECT_GE(s.edges.size(), s.size() - 1);  // spanning tree at minimum
    EXPECT_FALSE(s.topological_order().empty());
    EXPECT_GT(s.period_s, 0.0);
    EXPECT_GT(s.max_latency_s, 0.0);
  }
}

}  // namespace
}  // namespace tsce::dag
