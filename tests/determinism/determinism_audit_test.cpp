/// \file determinism_audit_test.cpp
/// Determinism auditor: the permutation searches must produce byte-identical
/// results at 1, 2, and 8 worker threads on every workload scenario.
///
/// This is the test the TSan tier runs — a data race that perturbs a fitness
/// value or an ordering shows up here as a trace mismatch even when it does
/// not crash.  Every comparison is on serialized strings: fitness doubles are
/// rendered as their exact bit patterns (std::bit_cast), so "close enough"
/// floating-point drift cannot hide schedule dependence.
///
/// Models are deliberately small (3 machines / 12 strings, reduced GA and
/// enumeration budgets): under ThreadSanitizer each decode is ~10x slower,
/// and the audit sweeps 3 scenarios x 3 thread counts x 6 search strategies
/// (GENITOR trace, PSG, hill climb, tempering, exact branch split,
/// class-based).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/metrics.hpp"
#include "core/class_based.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "core/exact.hpp"
#include "core/local_search.hpp"
#include "core/psg.hpp"
#include "genitor/genitor.hpp"
#include "workload/generator.hpp"

namespace tsce {
namespace {

using core::AllocatorResult;
using model::SystemModel;
using workload::Scenario;

constexpr Scenario kScenarios[] = {Scenario::kHighlyLoaded, Scenario::kQosLimited,
                                   Scenario::kLightlyLoaded};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Bit-exact rendering: worth plus the slackness double's raw bit pattern.
std::string fitness_key(const analysis::Fitness& f) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%d:%016llx", f.total_worth,
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(f.slackness)));
  return buf;
}

/// Full-result rendering: fitness, the winning order, and the evaluation
/// count (the latter catches budget-accounting schedule dependence).
std::string result_key(const AllocatorResult& result) {
  std::string key = fitness_key(result.fitness);
  key += " evals=" + std::to_string(result.evaluations) + " order=";
  for (const model::StringId id : result.order) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

SystemModel audit_model(Scenario scenario) {
  util::Rng rng(41u + static_cast<std::uint64_t>(scenario));
  auto config = workload::GeneratorConfig::for_scenario(scenario);
  config.num_machines = 3;
  config.num_strings = 12;
  return generate(config, rng);
}

/// GENITOR elite-fitness trace with batch evaluation at \p threads workers.
/// The observer fires at iteration 0 and on every elite improvement, so the
/// trace captures the whole convergence path, not just the final answer.
std::string ga_trace(const SystemModel& model, std::size_t threads) {
  const core::PermutationProblem problem(model, threads);
  genitor::Config config;
  config.population_size = 32;
  config.max_iterations = 200;
  config.stagnation_limit = 60;
  genitor::Genitor<core::PermutationProblem> ga(problem, config);
  util::Rng rng(99);
  std::string trace;
  const auto result =
      ga.run(rng, {}, [&](std::size_t iteration, const analysis::Fitness& elite) {
        trace += std::to_string(iteration) + '=' + fitness_key(elite) + '\n';
      });
  trace += "best=" + fitness_key(result.best_fitness) +
           " evals=" + std::to_string(result.evaluations);
  return trace;
}

std::string psg_result(const SystemModel& model, std::size_t threads) {
  core::PsgOptions options;
  options.ga.population_size = 24;
  options.ga.max_iterations = 120;
  options.ga.stagnation_limit = 40;
  options.trials = 2;
  options.eval_threads = threads;
  util::Rng rng(7);
  return result_key(core::SeededPsg(options).allocate(model, rng));
}

std::string hill_climb_result(const SystemModel& model, std::size_t threads) {
  core::HillClimbOptions options;
  options.restarts = 4;
  options.max_evaluations = 400;
  options.threads = threads;
  util::Rng rng(17);
  return result_key(core::HillClimb(options).allocate(model, rng));
}

std::string annealing_result(const SystemModel& model, std::size_t threads) {
  core::AnnealingOptions options;
  options.iterations = 300;
  options.replicas = 4;
  options.exchange_interval = 16;
  options.threads = threads;
  util::Rng rng(23);
  return result_key(core::SimulatedAnnealing(options).allocate(model, rng));
}

std::string exact_result(const SystemModel& model, std::size_t threads) {
  core::ExactSearchOptions options;
  options.max_strings = 12;     // audit models carry 12 strings
  options.max_evaluations = 2500;  // budget-truncated: keeps TSan runs fast
  options.threads = threads;
  util::Rng rng(29);
  return result_key(core::ExactPermutationSearch(options).allocate(model, rng));
}

std::string class_based_result(const SystemModel& model, std::size_t threads) {
  core::ClassBasedOptions options;
  options.ga.population_size = 16;
  options.ga.max_iterations = 60;
  options.ga.stagnation_limit = 30;
  options.eval_threads = threads;
  util::Rng rng(31);
  return result_key(core::ClassBasedAllocator(options).allocate(model, rng));
}

TEST(DeterminismAudit, GenitorEliteTraceIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = ga_trace(model, kThreadCounts[0]);
    EXPECT_FALSE(baseline.empty());
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, ga_trace(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, PsgResultIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = psg_result(model, kThreadCounts[0]);
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, psg_result(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, HillClimbResultIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = hill_climb_result(model, kThreadCounts[0]);
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, hill_climb_result(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, SerialAnnealingReplaysByteIdentically) {
  // The legacy serial chain (threads == 0): a rerun from the same seed must
  // replay the identical trajectory even while the other tests' thread pools
  // have come and gone in this process.
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    EXPECT_EQ(annealing_result(model, 0), annealing_result(model, 0))
        << "scenario " << static_cast<int>(scenario);
  }
}

TEST(DeterminismAudit, TemperingResultIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = annealing_result(model, kThreadCounts[0]);
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, annealing_result(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, ExactBranchSplitIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = exact_result(model, kThreadCounts[0]);
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, exact_result(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, ClassBasedResultIdenticalAcrossThreadCounts) {
  for (const Scenario scenario : kScenarios) {
    const SystemModel model = audit_model(scenario);
    const std::string baseline = class_based_result(model, kThreadCounts[0]);
    for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
      EXPECT_EQ(baseline, class_based_result(model, kThreadCounts[i]))
          << "scenario " << static_cast<int>(scenario) << " at "
          << kThreadCounts[i] << " threads";
    }
  }
}

TEST(DeterminismAudit, ResultsIdenticalWithObservabilityEnabled) {
  // The always-on observability layer must be a pure observer: with the
  // flight recorder armed (small rings, live watermarks) and the metrics
  // exporter sampling on a tight cadence in the background, search results
  // stay byte-identical across thread counts — latency histograms and rings
  // record wall-clock values but nothing ever branches on them.
  obs::FlightRecorderConfig fr;
  fr.ring_capacity = 256;
  fr.decode_latency_watermark_ns = 1;  // every decode "slow": worst case
  obs::flight_recorder_configure(fr);

  obs::MetricsExporterConfig exporter_config;
  exporter_config.path = testing::TempDir() + "determinism_series.jsonl";
  exporter_config.period_ms = 5;
  obs::MetricsExporter exporter(exporter_config);
  ASSERT_TRUE(exporter.start());

  const SystemModel model = audit_model(Scenario::kHighlyLoaded);
  const std::string baseline = psg_result(model, kThreadCounts[0]);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(baseline, psg_result(model, kThreadCounts[i]))
        << "observability perturbed the search at " << kThreadCounts[i]
        << " threads";
  }

  exporter.stop();
  EXPECT_GE(exporter.samples(), 1u);
  std::remove(exporter_config.path.c_str());
  obs::flight_recorder_reset();
  obs::flight_recorder_configure(obs::FlightRecorderConfig{});
}

}  // namespace
}  // namespace tsce
