#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace tsce::workload {
namespace {

using model::SystemModel;

TEST(GeneratorConfig, ScenarioDefaultsMatchPaper) {
  const auto s1 = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded);
  EXPECT_EQ(s1.num_strings, 150u);
  EXPECT_DOUBLE_EQ(s1.mu_latency_min, 4.0);
  EXPECT_DOUBLE_EQ(s1.mu_latency_max, 6.0);
  EXPECT_DOUBLE_EQ(s1.mu_period_min, 3.0);
  EXPECT_DOUBLE_EQ(s1.mu_period_max, 4.5);

  const auto s2 = GeneratorConfig::for_scenario(Scenario::kQosLimited);
  EXPECT_EQ(s2.num_strings, 150u);
  EXPECT_DOUBLE_EQ(s2.mu_latency_min, 1.25);
  EXPECT_DOUBLE_EQ(s2.mu_latency_max, 2.75);
  EXPECT_DOUBLE_EQ(s2.mu_period_min, 1.5);
  EXPECT_DOUBLE_EQ(s2.mu_period_max, 2.5);

  const auto s3 = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded);
  EXPECT_EQ(s3.num_strings, 25u);
  EXPECT_DOUBLE_EQ(s3.mu_latency_min, 4.0);
  EXPECT_DOUBLE_EQ(s3.mu_period_min, 3.0);
}

TEST(GeneratorConfig, StringScaleRescalesCount) {
  const auto half = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded, 0.5);
  EXPECT_EQ(half.num_strings, 75u);
  const auto tiny = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded, 0.001);
  EXPECT_EQ(tiny.num_strings, 1u);  // never zero
}

TEST(Generator, ProducesValidModel) {
  util::Rng rng(1);
  const auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded);
  const SystemModel m = generate(config, rng);
  EXPECT_EQ(m.num_machines(), 12u);
  EXPECT_EQ(m.num_strings(), 25u);
  EXPECT_TRUE(m.validate().empty());
}

TEST(Generator, ParameterRangesRespected) {
  util::Rng rng(2);
  auto config = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded, 0.2);
  const SystemModel m = generate(config, rng);
  for (const auto& s : m.strings) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 10u);
    const int w = s.worth_factor();
    EXPECT_TRUE(w == 1 || w == 10 || w == 100);
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t j = 0; j < m.num_machines(); ++j) {
        EXPECT_GE(s.apps[i].nominal_time_s[j], 1.0);
        EXPECT_LE(s.apps[i].nominal_time_s[j], 10.0);
        EXPECT_GE(s.apps[i].nominal_util[j], 0.1);
        EXPECT_LE(s.apps[i].nominal_util[j], 1.0);
      }
      if (i + 1 < s.size()) {
        EXPECT_GE(s.apps[i].output_kbytes, 10.0);
        EXPECT_LE(s.apps[i].output_kbytes, 100.0);
      } else {
        EXPECT_DOUBLE_EQ(s.apps[i].output_kbytes, 0.0);
      }
    }
  }
  for (model::MachineId j1 = 0; j1 < 12; ++j1) {
    for (model::MachineId j2 = 0; j2 < 12; ++j2) {
      const double w = m.network.bandwidth_mbps(j1, j2);
      if (j1 == j2) {
        EXPECT_EQ(w, model::kInfiniteBandwidth);
      } else {
        EXPECT_GE(w, 1.0);
        EXPECT_LE(w, 10.0);
      }
    }
  }
}

TEST(Generator, LatencyBoundFollowsFormula) {
  util::Rng rng(3);
  auto config = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded, 0.1);
  const SystemModel m = generate(config, rng);
  for (const auto& s : m.strings) {
    // Lmax = mu * nominal average end-to-end time, mu in [4,6].
    const double nominal = latency_bound(m, s, 1.0);
    ASSERT_GT(nominal, 0.0);
    const double mu = s.max_latency_s / nominal;
    EXPECT_GE(mu, 4.0 - 1e-9);
    EXPECT_LE(mu, 6.0 + 1e-9);
  }
}

TEST(Generator, PeriodBoundFollowsFormula) {
  util::Rng rng(4);
  auto config = GeneratorConfig::for_scenario(Scenario::kQosLimited, 0.1);
  const SystemModel m = generate(config, rng);
  for (const auto& s : m.strings) {
    const double longest = period_bound(m, s, 1.0);
    ASSERT_GT(longest, 0.0);
    const double mu = s.period_s / longest;
    EXPECT_GE(mu, 1.5 - 1e-9);
    EXPECT_LE(mu, 2.5 + 1e-9);
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded);
  util::Rng rng1(42);
  util::Rng rng2(42);
  const SystemModel a = generate(config, rng1);
  const SystemModel b = generate(config, rng2);
  ASSERT_EQ(a.num_strings(), b.num_strings());
  for (std::size_t k = 0; k < a.num_strings(); ++k) {
    EXPECT_DOUBLE_EQ(a.strings[k].period_s, b.strings[k].period_s);
    EXPECT_DOUBLE_EQ(a.strings[k].max_latency_s, b.strings[k].max_latency_s);
    EXPECT_EQ(a.strings[k].size(), b.strings[k].size());
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded);
  util::Rng rng1(1);
  util::Rng rng2(2);
  const SystemModel a = generate(config, rng1);
  const SystemModel b = generate(config, rng2);
  bool any_difference = false;
  for (std::size_t k = 0; k < std::min(a.num_strings(), b.num_strings()); ++k) {
    if (a.strings[k].period_s != b.strings[k].period_s) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, PeriodNeverBelowLongestStage) {
  // mu >= 1.5 in every scenario: throughput is satisfiable on an *average*
  // machine even before sharing.
  util::Rng rng(5);
  for (const auto scenario :
       {Scenario::kHighlyLoaded, Scenario::kQosLimited, Scenario::kLightlyLoaded}) {
    auto config = GeneratorConfig::for_scenario(scenario, 0.2);
    const SystemModel m = generate(config, rng);
    for (const auto& s : m.strings) {
      EXPECT_GE(s.period_s, period_bound(m, s, 1.0));
    }
  }
}

TEST(Generator, MachinePoolsReplicateWithinPool) {
  util::Rng rng(11);
  auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded, 0.2);
  config.num_machines = 6;
  config.machines_per_pool = 3;  // pools {0,1,2} and {3,4,5}
  const SystemModel m = generate(config, rng);
  for (const auto& s : m.strings) {
    for (const auto& a : s.apps) {
      EXPECT_DOUBLE_EQ(a.nominal_time_s[0], a.nominal_time_s[1]);
      EXPECT_DOUBLE_EQ(a.nominal_time_s[1], a.nominal_time_s[2]);
      EXPECT_DOUBLE_EQ(a.nominal_time_s[3], a.nominal_time_s[4]);
      EXPECT_DOUBLE_EQ(a.nominal_util[0], a.nominal_util[2]);
      EXPECT_DOUBLE_EQ(a.nominal_util[3], a.nominal_util[5]);
    }
  }
}

TEST(Generator, PoolBoundariesStayHeterogeneous) {
  util::Rng rng(12);
  auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded, 0.2);
  config.num_machines = 4;
  config.machines_per_pool = 2;
  const SystemModel m = generate(config, rng);
  bool any_difference = false;
  for (const auto& s : m.strings) {
    for (const auto& a : s.apps) {
      if (a.nominal_time_s[0] != a.nominal_time_s[2]) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "distinct pools must draw independent values";
}

TEST(Generator, PoolOfOneIsFullyHeterogeneous) {
  util::Rng rng(13);
  auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded, 0.2);
  config.num_machines = 3;
  config.machines_per_pool = 1;
  const SystemModel m = generate(config, rng);
  bool any_difference = false;
  for (const auto& s : m.strings) {
    for (const auto& a : s.apps) {
      if (a.nominal_time_s[0] != a.nominal_time_s[1]) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, ConsistentHeterogeneityPreservesMachineOrdering) {
  util::Rng rng(14);
  auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded, 0.3);
  config.num_machines = 5;
  config.heterogeneity = Heterogeneity::kConsistent;
  const SystemModel m = generate(config, rng);
  // If machine A beats machine B for one application it beats it for all:
  // the per-machine time ratio is constant across applications.
  const auto& first = m.strings[0].apps[0].nominal_time_s;
  for (const auto& s : m.strings) {
    for (const auto& a : s.apps) {
      for (std::size_t j = 1; j < 5; ++j) {
        EXPECT_NEAR(a.nominal_time_s[j] / a.nominal_time_s[0],
                    first[j] / first[0], 1e-9);
      }
    }
  }
  EXPECT_TRUE(m.validate().empty());
}

TEST(Generator, ConsistentModeRespectsSpeedFactorRange) {
  util::Rng rng(15);
  auto config = GeneratorConfig::for_scenario(Scenario::kLightlyLoaded, 0.2);
  config.num_machines = 4;
  config.heterogeneity = Heterogeneity::kConsistent;
  config.speed_factor_min = 1.0;
  config.speed_factor_max = 1.0;  // all machines identical
  const SystemModel m = generate(config, rng);
  for (const auto& s : m.strings) {
    for (const auto& a : s.apps) {
      for (std::size_t j = 1; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(a.nominal_time_s[j], a.nominal_time_s[0]);
      }
    }
  }
}

TEST(Generator, WorthDistributionCoversAllLevels) {
  util::Rng rng(6);
  auto config = GeneratorConfig::for_scenario(Scenario::kHighlyLoaded);
  const SystemModel m = generate(config, rng);
  int low = 0, mid = 0, high = 0;
  for (const auto& s : m.strings) {
    switch (s.worth_factor()) {
      case 1: ++low; break;
      case 10: ++mid; break;
      case 100: ++high; break;
      default: FAIL();
    }
  }
  EXPECT_GT(low, 0);
  EXPECT_GT(mid, 0);
  EXPECT_GT(high, 0);
}

}  // namespace
}  // namespace tsce::workload
