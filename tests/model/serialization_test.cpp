#include "model/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/ordered.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::model {
namespace {

void expect_models_equal(const SystemModel& a, const SystemModel& b) {
  ASSERT_EQ(a.num_machines(), b.num_machines());
  ASSERT_EQ(a.num_strings(), b.num_strings());
  EXPECT_EQ(a.machine_names, b.machine_names);
  const auto m = static_cast<MachineId>(a.num_machines());
  for (MachineId j1 = 0; j1 < m; ++j1) {
    for (MachineId j2 = 0; j2 < m; ++j2) {
      EXPECT_EQ(a.network.bandwidth_mbps(j1, j2), b.network.bandwidth_mbps(j1, j2));
    }
  }
  for (std::size_t k = 0; k < a.num_strings(); ++k) {
    const auto& sa = a.strings[k];
    const auto& sb = b.strings[k];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_DOUBLE_EQ(sa.period_s, sb.period_s);
    EXPECT_DOUBLE_EQ(sa.max_latency_s, sb.max_latency_s);
    EXPECT_EQ(sa.worth, sb.worth);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.apps[i].name, sb.apps[i].name);
      EXPECT_EQ(sa.apps[i].nominal_time_s, sb.apps[i].nominal_time_s);
      EXPECT_EQ(sa.apps[i].nominal_util, sb.apps[i].nominal_util);
      EXPECT_DOUBLE_EQ(sa.apps[i].output_kbytes, sb.apps[i].output_kbytes);
    }
  }
}

TEST(Serialization, ModelRoundTripInMemory) {
  const SystemModel original = testing::two_machine_system();
  const SystemModel loaded = system_model_from_json(to_json(original));
  expect_models_equal(original, loaded);
}

TEST(Serialization, GeneratedModelRoundTrip) {
  util::Rng rng(5);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kQosLimited);
  config.num_machines = 4;
  config.num_strings = 10;
  const SystemModel original = workload::generate(config, rng);
  // Through text, not just the Json value: exercises number round-tripping.
  const auto json_text = to_json(original).dump(2);
  const SystemModel loaded = system_model_from_json(util::Json::parse(json_text));
  expect_models_equal(original, loaded);
}

TEST(Serialization, InfiniteBandwidthBecomesNull) {
  const SystemModel m = testing::two_machine_system();
  const auto json = to_json(m);
  EXPECT_TRUE(json.at("bandwidth_mbps").as_array()[0].as_array()[0].is_null());
  EXPECT_DOUBLE_EQ(
      json.at("bandwidth_mbps").as_array()[0].as_array()[1].as_number(), 8.0);
}

TEST(Serialization, MachineNamesSurvive) {
  SystemModel m = testing::two_machine_system();
  m.machine_names = {"alpha", "bravo"};
  const SystemModel loaded = system_model_from_json(to_json(m));
  ASSERT_EQ(loaded.machine_names.size(), 2u);
  EXPECT_EQ(loaded.machine_names[0], "alpha");
}

TEST(Serialization, RejectsWrongFormat) {
  EXPECT_THROW((void)system_model_from_json(util::Json::parse("{}")),
               std::runtime_error);
  EXPECT_THROW((void)system_model_from_json(
                   util::Json::parse(R"({"format": "something-else"})")),
               std::runtime_error);
}

TEST(Serialization, RejectsInvalidLoadedModel) {
  auto json = to_json(testing::two_machine_system());
  // Corrupt a utilization beyond (0, 1].
  auto& strings = json.as_object();
  for (auto& [key, value] : strings) {
    if (key != "strings") continue;
    ASSERT_TRUE(value.as_array()[0].contains("apps"));  // ensure shape
    for (auto& [skey, svalue] : value.as_array()[0].as_object()) {
      if (skey != "apps") continue;
      for (auto& [akey, avalue] : svalue.as_array()[0].as_object()) {
        if (akey == "util") avalue.as_array()[0] = util::Json(5.0);
      }
    }
  }
  EXPECT_THROW((void)system_model_from_json(json), std::runtime_error);
}

TEST(Serialization, AllocationRoundTrip) {
  const SystemModel m = testing::two_machine_system();
  util::Rng rng(1);
  const auto result = core::MostWorthFirst{}.allocate(m, rng);
  const Allocation loaded = allocation_from_json(to_json(result.allocation), m);
  EXPECT_EQ(loaded, result.allocation);
}

TEST(Serialization, PartialAllocationRoundTrip) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 1);  // string 0 half-mapped, not deployed
  const Allocation loaded = allocation_from_json(to_json(a), m);
  EXPECT_EQ(loaded, a);
  EXPECT_EQ(loaded.machine_of(0, 0), 1);
  EXPECT_EQ(loaded.machine_of(0, 1), kUnassigned);
}

TEST(Serialization, AllocationShapeMismatchThrows) {
  const SystemModel m = testing::two_machine_system();
  const SystemModel other = testing::minimal_system();
  Allocation a(m);
  EXPECT_THROW((void)allocation_from_json(to_json(a), other), std::runtime_error);
}

TEST(Serialization, DeployedButUnmappedThrows) {
  const SystemModel m = testing::two_machine_system();
  auto json = to_json(Allocation(m));
  for (auto& [key, value] : json.as_object()) {
    if (key == "deployed") value.as_array()[0] = util::Json(true);
  }
  EXPECT_THROW((void)allocation_from_json(json, m), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  const std::string model_path = ::testing::TempDir() + "/tsce_model.json";
  const std::string alloc_path = ::testing::TempDir() + "/tsce_alloc.json";
  const SystemModel m = testing::two_machine_system();
  util::Rng rng(2);
  const auto result = core::MostWorthFirst{}.allocate(m, rng);

  save_system_model(model_path, m);
  save_allocation(alloc_path, result.allocation);
  const SystemModel loaded_model = load_system_model(model_path);
  expect_models_equal(m, loaded_model);
  const Allocation loaded_alloc = load_allocation(alloc_path, loaded_model);
  EXPECT_EQ(loaded_alloc, result.allocation);
  std::remove(model_path.c_str());
  std::remove(alloc_path.c_str());
}

}  // namespace
}  // namespace tsce::model
