#include "model/network.hpp"

#include <gtest/gtest.h>

namespace tsce::model {
namespace {

TEST(Network, DefaultConstructionIsEmpty) {
  Network n;
  EXPECT_EQ(n.num_machines(), 0u);
  EXPECT_DOUBLE_EQ(n.avg_inverse_bandwidth(), 0.0);
}

TEST(Network, UniformBandwidthWithInfiniteDiagonal) {
  Network n(3, 5.0);
  for (MachineId j1 = 0; j1 < 3; ++j1) {
    for (MachineId j2 = 0; j2 < 3; ++j2) {
      if (j1 == j2) {
        EXPECT_EQ(n.bandwidth_mbps(j1, j2), kInfiniteBandwidth);
      } else {
        EXPECT_DOUBLE_EQ(n.bandwidth_mbps(j1, j2), 5.0);
      }
    }
  }
}

TEST(Network, SetBandwidthIsDirectional) {
  Network n(2, 1.0);
  n.set_bandwidth_mbps(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(n.bandwidth_mbps(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(n.bandwidth_mbps(1, 0), 1.0);
}

TEST(Network, TransferTime) {
  Network n(2, 8.0);
  // 100 KB = 0.8 Mb over 8 Mb/s = 0.1 s.
  EXPECT_DOUBLE_EQ(n.transfer_s(100.0, 0, 1), 0.1);
  // Intra-machine transfers are free.
  EXPECT_DOUBLE_EQ(n.transfer_s(100.0, 1, 1), 0.0);
}

TEST(Network, AvgInverseBandwidthExcludesDiagonal) {
  Network n(2, 4.0);
  // Pairs: (0,1) and (1,0) at 4 Mb/s, diagonal infinite -> contributes 0.
  // (1/4 + 1/4) / 4 = 1/8.
  EXPECT_DOUBLE_EQ(n.avg_inverse_bandwidth(), 0.125);
}

TEST(Network, AvgInverseBandwidthHeterogeneous) {
  Network n(2);
  n.set_bandwidth_mbps(0, 1, 2.0);
  n.set_bandwidth_mbps(1, 0, 8.0);
  // (1/2 + 1/8) / 4 = 0.15625.
  EXPECT_DOUBLE_EQ(n.avg_inverse_bandwidth(), 0.15625);
}

TEST(Network, AvgTransferUsesAvgInverseBandwidth) {
  Network n(2, 4.0);
  // 100 KB = 0.8 Mb; 0.8 * 0.125 = 0.1 s.
  EXPECT_DOUBLE_EQ(n.avg_transfer_s(100.0), 0.1);
}

}  // namespace
}  // namespace tsce::model
