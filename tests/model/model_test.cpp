#include "model/system_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testing/builders.hpp"

namespace tsce::model {
namespace {

TEST(Application, AveragesAcrossMachines) {
  Application a;
  a.nominal_time_s = {2.0, 4.0, 6.0};
  a.nominal_util = {0.2, 0.4, 0.6};
  EXPECT_DOUBLE_EQ(a.avg_time_s(), 4.0);
  EXPECT_DOUBLE_EQ(a.avg_util(), 0.4);
  EXPECT_DOUBLE_EQ(a.cpu_work(1), 1.6);
}

TEST(Application, EmptyAveragesAreZero) {
  Application a;
  EXPECT_DOUBLE_EQ(a.avg_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(a.avg_util(), 0.0);
}

TEST(Worth, FactorValues) {
  EXPECT_EQ(worth_value(Worth::kLow), 1);
  EXPECT_EQ(worth_value(Worth::kMedium), 10);
  EXPECT_EQ(worth_value(Worth::kHigh), 100);
}

TEST(SystemModel, BuilderProducesValidModel) {
  const SystemModel m = testing::two_machine_system();
  EXPECT_EQ(m.num_machines(), 2u);
  EXPECT_EQ(m.num_strings(), 2u);
  EXPECT_EQ(m.num_apps(), 4u);
  EXPECT_EQ(m.total_worth_available(), 110);
  EXPECT_TRUE(m.validate().empty());
}

TEST(SystemModel, BuilderHomogeneousAppReplicatesPerMachine) {
  const SystemModel m = testing::two_machine_system();
  const auto& app = m.strings[0].apps[0];
  ASSERT_EQ(app.nominal_time_s.size(), 2u);
  EXPECT_DOUBLE_EQ(app.nominal_time_s[0], app.nominal_time_s[1]);
  EXPECT_DOUBLE_EQ(app.nominal_util[0], app.nominal_util[1]);
}

TEST(SystemModel, ValidateCatchesBadPeriod) {
  SystemModel m = testing::two_machine_system();
  m.strings[0].period_s = 0.0;
  const auto problems = m.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("period"), std::string::npos);
}

TEST(SystemModel, ValidateCatchesBadUtilization) {
  SystemModel m = testing::two_machine_system();
  m.strings[1].apps[0].nominal_util[0] = 1.5;
  EXPECT_FALSE(m.validate().empty());
  m.strings[1].apps[0].nominal_util[0] = 0.0;
  EXPECT_FALSE(m.validate().empty());
}

TEST(SystemModel, ValidateCatchesSizeMismatch) {
  SystemModel m = testing::two_machine_system();
  m.strings[0].apps[0].nominal_time_s.pop_back();
  EXPECT_FALSE(m.validate().empty());
}

TEST(SystemModel, ValidateCatchesBadWorth) {
  SystemModel m = testing::two_machine_system();
  m.strings[0].worth = static_cast<Worth>(7);
  EXPECT_FALSE(m.validate().empty());
}

TEST(SystemModel, ValidateCatchesEmptyString) {
  SystemModel m = testing::two_machine_system();
  m.strings[0].apps.clear();
  EXPECT_FALSE(m.validate().empty());
}

TEST(SystemModel, ValidateCatchesNegativeOutput) {
  SystemModel m = testing::two_machine_system();
  m.strings[0].apps[0].output_kbytes = -1.0;
  EXPECT_FALSE(m.validate().empty());
}

TEST(SystemModelBuilder, BuildThrowsOnInvalid) {
  SystemModelBuilder builder(2);
  builder.begin_string(/*period=*/-1.0, /*latency=*/10.0);
  builder.add_app(1.0, 0.5);
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(SystemModelBuilder, AddAppBeforeStringThrows) {
  SystemModelBuilder builder(2);
  EXPECT_THROW(builder.add_app(1.0, 0.5), std::logic_error);
}

TEST(SystemModelBuilder, MachineNames) {
  SystemModel m = SystemModelBuilder(2)
                      .machine_name(0, "sonar-proc")
                      .machine_name(1, "tracker")
                      .begin_string(5.0, 10.0)
                      .add_app(1.0, 0.5)
                      .build();
  ASSERT_EQ(m.machine_names.size(), 2u);
  EXPECT_EQ(m.machine_names[0], "sonar-proc");
  EXPECT_EQ(m.machine_names[1], "tracker");
}

TEST(Types, UnitConversions) {
  EXPECT_DOUBLE_EQ(kbytes_to_megabits(100.0), 0.8);
  EXPECT_DOUBLE_EQ(transfer_seconds(100.0, 8.0), 0.1);
  EXPECT_DOUBLE_EQ(transfer_seconds(100.0, kInfiniteBandwidth), 0.0);
}

}  // namespace
}  // namespace tsce::model
