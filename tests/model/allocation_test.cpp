#include "model/allocation.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::model {
namespace {

TEST(Allocation, StartsEmpty) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  EXPECT_EQ(a.num_strings(), 2u);
  EXPECT_EQ(a.num_deployed(), 0u);
  EXPECT_EQ(a.machine_of(0, 0), kUnassigned);
  EXPECT_FALSE(a.fully_mapped(0));
  EXPECT_FALSE(a.deployed(0));
}

TEST(Allocation, AssignAndDeploy) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 1);
  a.assign(0, 1, 0);
  EXPECT_TRUE(a.fully_mapped(0));
  EXPECT_FALSE(a.deployed(0));
  a.set_deployed(0, true);
  EXPECT_TRUE(a.deployed(0));
  EXPECT_EQ(a.num_deployed(), 1u);
  EXPECT_EQ(a.machine_of(0, 0), 1);
  EXPECT_EQ(a.machine_of(0, 1), 0);
}

TEST(Allocation, PartiallyMappedIsNotFullyMapped) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 1);
  EXPECT_FALSE(a.fully_mapped(0));
}

TEST(Allocation, ClearStringResetsEverything) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(1, 0, 0);
  a.assign(1, 1, 1);
  a.set_deployed(1, true);
  a.clear_string(1);
  EXPECT_FALSE(a.deployed(1));
  EXPECT_EQ(a.machine_of(1, 0), kUnassigned);
  EXPECT_EQ(a.machine_of(1, 1), kUnassigned);
}

TEST(Allocation, DeployedStringsLists) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.set_deployed(1, true);
  const auto deployed = a.deployed_strings();
  ASSERT_EQ(deployed.size(), 1u);
  EXPECT_EQ(deployed[0], 1);
}

TEST(Allocation, EqualityComparesMappingAndFlags) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  Allocation b(m);
  EXPECT_EQ(a, b);
  a.assign(0, 0, 1);
  EXPECT_NE(a, b);
  b.assign(0, 0, 1);
  EXPECT_EQ(a, b);
  a.set_deployed(0, true);
  EXPECT_NE(a, b);
}

TEST(Allocation, ToStringMentionsMachinesAndStatus) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  const std::string repr = a.to_string(m);
  EXPECT_NE(repr.find("m0"), std::string::npos);
  EXPECT_NE(repr.find("m1"), std::string::npos);
  EXPECT_NE(repr.find("deployed"), std::string::npos);
  EXPECT_NE(repr.find("not deployed"), std::string::npos);
}

}  // namespace
}  // namespace tsce::model
