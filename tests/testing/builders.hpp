/// \file builders.hpp
/// Shared fixtures for unit tests: small hand-checkable TSCE instances.

#pragma once

#include "model/system_model.hpp"

namespace tsce::testing {

/// Two homogeneous machines joined by 8 Mb/s routes; two 2-app strings.
/// Chosen so every utilization is easy to compute by hand:
///   string 0: P=10, Lmax=30, apps (t=2,u=0.5,O=100KB), (t=4,u=1.0)
///   string 1: P=20, Lmax=50, apps (t=5,u=0.8,O=50KB), (t=2,u=0.25)
inline model::SystemModel two_machine_system() {
  return model::SystemModelBuilder(2)
      .uniform_bandwidth(8.0)
      .begin_string(10.0, 30.0, model::Worth::kHigh, "s0")
      .add_app(2.0, 0.5, 100.0, "a0")
      .add_app(4.0, 1.0, 0.0, "a1")
      .begin_string(20.0, 50.0, model::Worth::kMedium, "s1")
      .add_app(5.0, 0.8, 50.0, "b0")
      .add_app(2.0, 0.25, 0.0, "b1")
      .build();
}

/// Single machine, one single-app string: the smallest valid system.
inline model::SystemModel minimal_system() {
  return model::SystemModelBuilder(1)
      .begin_string(10.0, 10.0, model::Worth::kLow, "only")
      .add_app(3.0, 0.6, 0.0, "app")
      .build();
}

/// The Figure 2 setup: two single-app strings sharing one machine, with
/// configurable periods and utilizations.  String 0 is made relatively
/// tighter (higher priority) via a smaller latency bound.
inline model::SystemModel figure2_system(double p1, double p2, double u1,
                                         double t1 = 2.0, double t2 = 2.0,
                                         double u2 = 1.0) {
  return model::SystemModelBuilder(1)
      .begin_string(p1, /*Lmax=*/t1 * 1.5, model::Worth::kHigh, "tight")
      .add_app(t1, u1, 0.0, "a11")
      .begin_string(p2, /*Lmax=*/t2 * 50.0, model::Worth::kLow, "loose")
      .add_app(t2, u2, 0.0, "a12")
      .build();
}

}  // namespace tsce::testing
