/// \file flight_recorder_test.cpp
/// Flight recorder behaviour suite: ring wrap-around semantics, JSONL dump
/// validity, anomaly-triggered automatic dumps (slow decode and reject
/// bursts, including the one-shot latch), the SIGUSR1 trigger + poll path,
/// and the end-of-life ordering contract — per-thread rings fold into the
/// retired sink when their thread exits, so a dump after heavy thread churn
/// still contains every event (zero lost).

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/json.hpp"

namespace tsce::obs {
namespace {

/// Parses every line of a dump as JSON; asserts the header shape and returns
/// the event records.
std::vector<util::Json> read_dump(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing dump " << path;
  std::vector<util::Json> events;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::Json record = util::Json::parse(line);  // throws on bad JSONL
    const std::string& type = record.at("t").as_string();
    if (type == "header") {
      saw_header = true;
      EXPECT_EQ(record.at("recorder").as_string(), "flight");
      EXPECT_TRUE(record.contains("run_info"));
    } else {
      EXPECT_EQ(type, "event");
      events.push_back(record);
    }
  }
  EXPECT_TRUE(saw_header) << path;
  return events;
}

std::size_t count_named(const std::vector<util::Json>& events,
                        std::string_view name) {
  std::size_t n = 0;
  for (const util::Json& e : events) {
    if (e.at("name").as_string() == name) ++n;
  }
  return n;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { flight_recorder_reset(); }
  void TearDown() override {
    flight_recorder_reset();
    flight_recorder_configure(FlightRecorderConfig{});
  }
};

TEST_F(FlightRecorderTest, RingKeepsTheLastCapacityEvents) {
  FlightRecorderConfig config;
  config.ring_capacity = 64;
  flight_recorder_configure(config);
  // A fresh thread gets a fresh ring sized by the current configuration.
  std::thread writer([] {
    for (std::uint64_t i = 0; i < 200; ++i) {
      flight_recorder_record(FrKind::kMark, i, 7, 0);
    }
  });
  writer.join();

  const std::string path = temp_path("fr_wrap.jsonl");
  ASSERT_TRUE(flight_recorder_dump(path));
  const auto events = read_dump(path);

  // The thread wrote 200 marks; its ring retained the newest 64 (136..199).
  std::vector<std::uint64_t> marks;
  for (const util::Json& e : events) {
    if (e.at("name").as_string() == "fr.mark" &&
        e.at("f").at("a1").as_number() == 7.0) {
      marks.push_back(static_cast<std::uint64_t>(e.at("f").at("a0").as_number()));
    }
  }
  ASSERT_EQ(marks.size(), 64u);
  for (std::size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i], 136u + i);  // ts-sorted, single writer => in order
  }
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, SlowDecodeAnomalyTriggersOneDumpWithContext) {
  const std::string path = temp_path("fr_anomaly.jsonl");
  FlightRecorderConfig config;
  config.decode_latency_watermark_ns = 1'000;
  config.auto_dump_path = path;
  flight_recorder_configure(config);

  for (std::uint64_t i = 0; i < 10; ++i) {
    flight_recorder_note_decode(100 + i, 3, 5);  // healthy decodes
  }
  flight_recorder_note_decode(50'000, 0, 5);  // the anomaly
  EXPECT_EQ(flight_recorder_dump_count(), 1u);
  // The latch is one-shot: a second slow decode records an anomaly event but
  // does not dump again.
  flight_recorder_note_decode(60'000, 0, 5);
  EXPECT_EQ(flight_recorder_dump_count(), 1u);

  const auto events = read_dump(path);
  // The dump captured the window: the healthy decodes surrounding the
  // anomaly, the slow decode itself, and the anomaly record.
  EXPECT_GE(count_named(events, "fr.decode"), 11u);
  ASSERT_EQ(count_named(events, "fr.anomaly"), 1u);
  for (const util::Json& e : events) {
    if (e.at("name").as_string() != "fr.anomaly") continue;
    EXPECT_EQ(e.at("f").at("code").as_number(),
              static_cast<double>(FrAnomaly::kSlowDecode));
    EXPECT_EQ(e.at("f").at("value").as_number(), 50'000.0);
    EXPECT_EQ(e.at("f").at("watermark").as_number(), 1'000.0);
  }
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, RejectBurstAnomalyFiresAtTheWatermark) {
  const std::string path = temp_path("fr_burst.jsonl");
  FlightRecorderConfig config;
  config.reject_burst_watermark = 3;
  config.auto_dump_path = path;
  flight_recorder_configure(config);

  std::thread worker([] {
    flight_recorder_note_reject(1, 1);
    flight_recorder_note_reject(2, 1);
    flight_recorder_note_commit_ok();  // streak resets: no anomaly yet
    flight_recorder_note_reject(3, 2);
    flight_recorder_note_reject(4, 2);
    flight_recorder_note_reject(5, 2);  // third consecutive: anomaly
  });
  worker.join();
  EXPECT_EQ(flight_recorder_dump_count(), 1u);

  const auto events = read_dump(path);
  EXPECT_EQ(count_named(events, "fr.commit.reject"), 5u);
  ASSERT_EQ(count_named(events, "fr.anomaly"), 1u);
  for (const util::Json& e : events) {
    if (e.at("name").as_string() != "fr.anomaly") continue;
    EXPECT_EQ(e.at("f").at("code").as_number(),
              static_cast<double>(FrAnomaly::kRejectBurst));
    EXPECT_EQ(e.at("f").at("watermark").as_number(), 3.0);
  }
  std::remove(path.c_str());
}

#ifdef SIGUSR1
TEST_F(FlightRecorderTest, SignalTriggerDumpsAtTheNextPoll) {
  const std::string path = temp_path("fr_signal.jsonl");
  FlightRecorderConfig config;
  config.auto_dump_path = path;
  flight_recorder_configure(config);
  flight_recorder_install_signal_trigger();

  flight_recorder_record(FrKind::kMark, 42, 0, 0);
  flight_recorder_poll();  // nothing pending: no dump
  EXPECT_EQ(flight_recorder_dump_count(), 0u);

  std::raise(SIGUSR1);
  flight_recorder_poll();
  EXPECT_EQ(flight_recorder_dump_count(), 1u);
  const auto events = read_dump(path);
  EXPECT_GE(count_named(events, "fr.mark"), 1u);
  std::remove(path.c_str());
}
#endif

TEST_F(FlightRecorderTest, RetiredThreadsLoseNoEvents) {
  FlightRecorderConfig config;
  config.ring_capacity = 256;  // retired sink keeps 4x = 1024 events
  flight_recorder_configure(config);
  const std::uint64_t before = flight_recorder_events_recorded();

  // Heavy thread churn: 8 waves of short-lived workers, each recording well
  // under its ring capacity, then exiting (folding its ring into the retired
  // sink).  Total events (8 * 2 * 50 = 800) fit the retired bound, so the
  // end-of-life fold must preserve every one.
  constexpr std::uint64_t kWaves = 8;
  constexpr std::uint64_t kThreadsPerWave = 2;
  constexpr std::uint64_t kEventsPerThread = 50;
  for (std::uint64_t wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    for (std::uint64_t t = 0; t < kThreadsPerWave; ++t) {
      workers.emplace_back([wave, t] {
        for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
          flight_recorder_record(FrKind::kMark, i, 13, wave * 10 + t);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  constexpr std::uint64_t kTotal = kWaves * kThreadsPerWave * kEventsPerThread;
  EXPECT_EQ(flight_recorder_events_recorded() - before, kTotal);

  const std::string path = temp_path("fr_churn.jsonl");
  ASSERT_TRUE(flight_recorder_dump(path));
  const auto events = read_dump(path);
  std::size_t churn_marks = 0;
  for (const util::Json& e : events) {
    if (e.at("name").as_string() == "fr.mark" &&
        e.at("f").at("a1").as_number() == 13.0) {
      ++churn_marks;
    }
  }
  EXPECT_EQ(churn_marks, kTotal) << "events lost across thread retirement";
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, KindNamesAreRegistered) {
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kDecode), "fr.decode");
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kCommitReject),
            "fr.commit.reject");
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kUncommit), "fr.uncommit");
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kRemap), "fr.remap");
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kAnomaly), "fr.anomaly");
  EXPECT_EQ(flight_recorder_kind_name(FrKind::kMark), "fr.mark");
}

}  // namespace
}  // namespace tsce::obs
