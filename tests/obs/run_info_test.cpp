#include "obs/run_info.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace tsce::obs {
namespace {

TEST(RunInfo, CurrentFillsBuildIdentity) {
  const RunInfo info = RunInfo::current();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.tracing_compiled, kTracingCompiledIn);
  // Run identity stays at defaults until the caller fills it.
  EXPECT_EQ(info.seed, 0u);
  EXPECT_EQ(info.threads, 1u);
  EXPECT_TRUE(info.params.empty());
}

TEST(RunInfo, ToJsonCarriesAllFields) {
  RunInfo info = RunInfo::current();
  info.seed = 2005;
  info.threads = 4;
  info.set_param("scenario", "highly_loaded");
  info.set_param("machines", std::int64_t{6});

  const util::Json j = info.to_json();
  EXPECT_EQ(j.at("git_sha").as_string(), info.git_sha);
  EXPECT_EQ(j.at("build_type").as_string(), info.build_type);
  EXPECT_EQ(j.at("compiler").as_string(), info.compiler);
  EXPECT_TRUE(j.contains("sanitize"));
  EXPECT_EQ(j.at("tracing_compiled").as_bool(), kTracingCompiledIn);
  EXPECT_EQ(j.at("seed").as_number(), 2005.0);
  EXPECT_EQ(j.at("threads").as_number(), 4.0);
  EXPECT_EQ(j.at("params").at("scenario").as_string(), "highly_loaded");
  EXPECT_EQ(j.at("params").at("machines").as_string(), "6");
}

TEST(RunInfo, ParamsSerializeInInsertionOrder) {
  RunInfo info;
  info.set_param("zeta", "1");
  info.set_param("alpha", "2");
  info.set_param("mid", std::int64_t{3});
  const util::Json j = info.to_json();
  const auto& params = j.at("params").as_object();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "zeta");
  EXPECT_EQ(params[1].first, "alpha");
  EXPECT_EQ(params[2].first, "mid");
  EXPECT_EQ(params[2].second.as_string(), "3");
}

TEST(RunInfo, ToJsonRoundTripsThroughText) {
  RunInfo info = RunInfo::current();
  info.seed = 7;
  info.set_param("strings", std::int64_t{32});
  const util::Json parsed = util::Json::parse(info.to_json().dump());
  EXPECT_EQ(parsed.at("seed").as_number(), 7.0);
  EXPECT_EQ(parsed.at("git_sha").as_string(), info.git_sha);
  EXPECT_EQ(parsed.at("params").at("strings").as_string(), "32");
}

}  // namespace
}  // namespace tsce::obs
