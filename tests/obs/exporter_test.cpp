/// \file exporter_test.cpp
/// MetricsExporter suite: JSONL series shape (header + monotonically
/// sequenced samples carrying registry snapshots), synchronous export_once,
/// the final sample taken by stop(), and the OpenMetrics exposition format
/// (counter _total lines, histogram summary lines, trailing # EOF).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace tsce::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MetricsExporter, JsonlSeriesHasHeaderAndSequencedSamples) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& decodes = registry.counter("test.exporter.decodes");
  auto& latency = registry.histogram("test.exporter.latency");

  const std::string path = testing::TempDir() + "exporter_series.jsonl";
  MetricsExporterConfig config;
  config.path = path;
  config.period_ms = 60'000;  // ticks driven manually via export_once
  MetricsExporter exporter(config);
  ASSERT_TRUE(exporter.start());

  decodes.add(5);
  latency.record(1'000);
  EXPECT_TRUE(exporter.export_once());
  decodes.add(7);
  latency.record(3'000);
  EXPECT_TRUE(exporter.export_once());
  exporter.stop();  // takes one final sample
  EXPECT_EQ(exporter.samples(), 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<util::Json> records;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(util::Json::parse(line));
  }
  ASSERT_EQ(records.size(), 4u);  // header + 3 samples

  EXPECT_EQ(records[0].at("t").as_string(), "header");
  EXPECT_EQ(records[0].at("exporter").as_string(), "metrics");
  EXPECT_EQ(records[0].at("period_ms").as_number(), 60'000.0);
  EXPECT_TRUE(records[0].contains("run_info"));

  double prev_t = -1.0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const util::Json& sample = records[i];
    EXPECT_EQ(sample.at("t").as_string(), "sample");
    EXPECT_EQ(sample.at("seq").as_number(), static_cast<double>(i - 1));
    EXPECT_GE(sample.at("t_s").as_number(), prev_t);
    prev_t = sample.at("t_s").as_number();
  }
  // The counter trajectory is visible across samples.
  const auto counter_at = [&](std::size_t i) {
    return records[i]
        .at("metrics")
        .at("counters")
        .at("test.exporter.decodes")
        .as_number();
  };
  EXPECT_EQ(counter_at(1), 5.0);
  EXPECT_EQ(counter_at(2), 12.0);
  EXPECT_EQ(counter_at(3), 12.0);
  // Histogram samples carry the HDR snapshot fields.
  const util::Json& hist =
      records[2].at("metrics").at("histograms").at("test.exporter.latency");
  EXPECT_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_TRUE(hist.contains("p999"));
  std::remove(path.c_str());
  registry.reset();
}

TEST(MetricsExporter, ExportOnceRequiresStart) {
  MetricsExporterConfig config;
  config.path = testing::TempDir() + "exporter_never_started.jsonl";
  MetricsExporter exporter(config);
  EXPECT_FALSE(exporter.export_once());
}

TEST(MetricsExporter, StartFailsOnUnwritablePath) {
  MetricsExporterConfig config;
  config.path = "/nonexistent-dir/exporter.jsonl";
  MetricsExporter exporter(config);
  EXPECT_FALSE(exporter.start());
}

TEST(MetricsExporter, OpenMetricsExpositionIsRewrittenPerTick) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  registry.counter("test.exporter.om.calls").add(3);
  registry.histogram("test.exporter.om.ns").record(500);

  const std::string path = testing::TempDir() + "exporter.om";
  MetricsExporterConfig config;
  config.path = path;
  config.format = MetricsExporterConfig::Format::kOpenMetrics;
  config.period_ms = 60'000;
  MetricsExporter exporter(config);
  ASSERT_TRUE(exporter.start());
  EXPECT_TRUE(exporter.export_once());
  exporter.stop();

  const std::string text = read_file(path);
  EXPECT_NE(text.find("tsce_test_exporter_om_calls_total 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsce_test_exporter_om_ns_count 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
  // The exposition is terminated by the OpenMetrics EOF marker and is a
  // whole-file rewrite (exactly one marker).
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  EXPECT_EQ(text.find("# EOF"), text.rfind("# EOF"));
  std::remove(path.c_str());
  registry.reset();
}

}  // namespace
}  // namespace tsce::obs
