/// \file histogram_test.cpp
/// HdrHistogram correctness suite: layout geometry, exact-range behaviour,
/// the quantile relative-error bound checked against a sorted-reference
/// oracle on random and adversarial distributions, saturation, and the
/// determinism contract — shard merges are byte-identical regardless of how
/// many threads recorded the same sample multiset, and snapshot merging is
/// associative.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace tsce::obs {
namespace {

std::vector<std::uint64_t> uniform_samples(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000'000);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = dist(rng);
  return out;
}

std::vector<std::uint64_t> bimodal_samples(std::size_t n, std::uint64_t seed) {
  // Fast path around 1 us, slow path around 1 ms: the shape where a pow2
  // histogram's tail resolution collapses.
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> fast(1'000.0, 50.0);
  std::normal_distribution<double> slow(1'000'000.0, 10'000.0);
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = (i % 10 == 0) ? slow(rng) : fast(rng);
    out[i] = static_cast<std::uint64_t>(std::max(1.0, v));
  }
  return out;
}

std::vector<std::uint64_t> heavy_tail_samples(std::size_t n,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(10.0, 2.0);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = static_cast<std::uint64_t>(dist(rng)) + 1;
  return out;
}

/// The rank HdrSnapshot::quantile resolves: max(1, floor(q * count)).
std::uint64_t quantile_rank(double q, std::size_t count) {
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  return rank == 0 ? 1 : rank;
}

TEST(HdrLayout, GeometryFollowsSignificantDigits) {
  EXPECT_EQ(HdrLayout::make(1, 47).sub_bucket_bits, 4);   // 16 sub-buckets
  EXPECT_EQ(HdrLayout::make(2, 47).sub_bucket_bits, 7);   // 128
  EXPECT_EQ(HdrLayout::make(3, 47).sub_bucket_bits, 10);  // 1024

  const HdrLayout l = HdrLayout::make(2, 47);
  EXPECT_EQ(l.half_count(), 64u);
  EXPECT_EQ(l.counts_len, (47u - 7u) * 64u + 128u);  // 2688 cells
  EXPECT_DOUBLE_EQ(l.max_relative_error(), 1.0 / 64.0);
}

TEST(HdrLayout, ExactRangeRoundTrips) {
  const HdrLayout l = HdrLayout::make(2, 47);
  for (std::uint64_t v = 0; v < 128; ++v) {
    const std::size_t idx = l.index_of(v);
    EXPECT_EQ(idx, static_cast<std::size_t>(v));
    EXPECT_EQ(l.value_at(idx), v);
  }
}

TEST(HdrLayout, UpperEdgeNeverUndershootsAndBoundsRelativeError) {
  const HdrLayout l = HdrLayout::make(2, 47);
  for (const std::uint64_t v : uniform_samples(20'000, 3)) {
    const std::uint64_t le = l.value_at(l.index_of(v));
    ASSERT_GE(le, v);
    ASSERT_LE(static_cast<double>(le - v),
              static_cast<double>(v) * l.max_relative_error())
        << "value " << v << " upper edge " << le;
  }
}

TEST(HdrHistogram, CountSumMinMaxExact) {
  HdrHistogram h;
  for (const std::uint64_t v : {7u, 3u, 900u, 3u}) h.record(v);
  const HdrSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 913u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 900u);
}

TEST(HdrHistogram, RecordNMatchesRepeatedRecord) {
  HdrHistogram a;
  HdrHistogram b;
  for (int i = 0; i < 37; ++i) a.record(12'345);
  b.record_n(12'345, 37);
  EXPECT_EQ(a.snapshot().to_json().dump(), b.snapshot().to_json().dump());
}

TEST(HdrHistogram, SaturatingValueClampsIntoTopCell) {
  HdrHistogram h(2, 20);  // saturates at 2^20
  const HdrLayout& l = h.layout();
  EXPECT_EQ(l.index_of(std::uint64_t{1} << 30), l.counts_len - 1);
  h.record(std::uint64_t{1} << 30);
  h.record(5);
  const HdrSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, std::uint64_t{1} << 30);
  EXPECT_EQ(s.counts[l.counts_len - 1], 1u);
  // The top-cell estimate is clamped to the exact recorded max, not the
  // cell's (saturated) upper edge.
  EXPECT_EQ(s.quantile(1.0), std::uint64_t{1} << 30);
}

TEST(HdrHistogram, QuantileRelativeErrorBoundVsSortedOracle) {
  struct Case {
    const char* name;
    std::vector<std::uint64_t> samples;
  };
  const Case cases[] = {
      {"uniform", uniform_samples(10'000, 11)},
      {"bimodal", bimodal_samples(10'000, 12)},
      {"heavy-tail", heavy_tail_samples(10'000, 13)},
  };
  for (const Case& c : cases) {
    HdrHistogram h;
    for (const std::uint64_t v : c.samples) h.record(v);
    std::vector<std::uint64_t> sorted = c.samples;
    std::sort(sorted.begin(), sorted.end());
    const HdrSnapshot s = h.snapshot();
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
      const std::uint64_t oracle =
          sorted[quantile_rank(q, sorted.size()) - 1];
      const std::uint64_t est = s.quantile(q);
      EXPECT_GE(est, oracle) << c.name << " q=" << q;
      EXPECT_LE(static_cast<double>(est),
                static_cast<double>(oracle) *
                    (1.0 + s.layout.max_relative_error()))
          << c.name << " q=" << q << " oracle=" << oracle << " est=" << est;
    }
    EXPECT_EQ(s.quantile(1.0), sorted.back()) << c.name;
  }
}

/// Records \p samples partitioned round-robin across \p threads shards (each
/// shard written by its own std::thread) and returns the merged snapshot's
/// JSON rendering.
std::string sharded_merge_json(const std::vector<std::uint64_t>& samples,
                               std::size_t threads) {
  std::vector<std::unique_ptr<HdrHistogram>> shards;
  for (std::size_t t = 0; t < threads; ++t) {
    shards.push_back(std::make_unique<HdrHistogram>());
  }
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < samples.size(); i += threads) {
        shards[t]->record(samples[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  HdrSnapshot merged;
  for (const auto& shard : shards) shard->merge_into(merged);
  return merged.to_json().dump();
}

TEST(HdrHistogram, ShardMergeByteIdenticalAcrossThreadCounts) {
  const std::vector<std::uint64_t> samples = heavy_tail_samples(9'000, 21);
  const std::string baseline = sharded_merge_json(samples, 1);
  EXPECT_EQ(baseline, sharded_merge_json(samples, 2));
  EXPECT_EQ(baseline, sharded_merge_json(samples, 8));
}

TEST(HdrSnapshot, MergeIsAssociative) {
  const std::vector<std::uint64_t> samples = bimodal_samples(3'000, 31);
  HdrHistogram a;
  HdrHistogram b;
  HdrHistogram c;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
  }
  // (a + b) + c
  HdrSnapshot left = a.snapshot();
  b.merge_into(left);
  c.merge_into(left);
  // a + (b + c)
  HdrSnapshot bc = b.snapshot();
  c.merge_into(bc);
  HdrSnapshot right = a.snapshot();
  right.merge(bc);
  EXPECT_EQ(left.to_json().dump(), right.to_json().dump());
}

TEST(HdrSnapshot, EmptySnapshotIsWellFormed) {
  const HdrSnapshot s;
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.quantile(0.99), 0u);
  const util::Json j = s.to_json();
  EXPECT_EQ(j.at("count").as_number(), 0.0);
  EXPECT_EQ(j.at("min").as_number(), 0.0);
  EXPECT_EQ(j.at("mean").as_number(), 0.0);
  EXPECT_TRUE(j.at("buckets").as_array().empty());
}

}  // namespace
}  // namespace tsce::obs
