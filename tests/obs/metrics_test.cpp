#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace tsce::obs {
namespace {

std::int64_t counter_value(const util::Json& snapshot, const std::string& name) {
  return static_cast<std::int64_t>(snapshot.at("counters").at(name).as_number());
}

TEST(Metrics, CounterAccumulates) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& c = registry.counter("test.metrics.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.metrics.counter"), 42);
}

TEST(Metrics, SameNameReturnsSameHandle) {
  auto& registry = MetricsRegistry::instance();
  EXPECT_EQ(&registry.counter("test.metrics.counter"),
            &registry.counter("test.metrics.counter"));
  EXPECT_EQ(&registry.gauge("test.metrics.gauge"),
            &registry.gauge("test.metrics.gauge"));
  EXPECT_EQ(&registry.histogram("test.metrics.hist"),
            &registry.histogram("test.metrics.hist"));
}

TEST(Metrics, CounterFoldsAcrossExitedThreads) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& c = registry.counter("test.metrics.counter");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();  // shards fold into the retired totals
  EXPECT_EQ(counter_value(registry.snapshot(), "test.metrics.counter"),
            kThreads * kPerThread);
}

TEST(Metrics, GaugeTracksMaximum) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& g = registry.gauge("test.metrics.gauge");
  g.observe(5);
  g.observe(17);
  g.observe(3);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 17.0);
}

TEST(Metrics, GaugeFoldsMaxAcrossThreads) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& g = registry.gauge("test.metrics.gauge");
  g.observe(9);
  std::thread other([&g] { g.observe(23); });
  other.join();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 23.0);
}

TEST(Metrics, HistogramCountSumMaxAndBuckets) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& h = registry.histogram("test.metrics.hist");
  h.record(0);     // exact range: own cell, le 0
  h.record(1);     // le 1
  h.record(2);     // le 2 (HDR keeps small values exact; pow2 merged 2 and 3)
  h.record(3);     // le 3
  h.record(1000);  // bit_width 10 -> octave cell [1000, 1007], le 1007
  const auto snapshot = registry.snapshot();
  const auto& hist = snapshot.at("histograms").at("test.metrics.hist");
  EXPECT_EQ(hist.at("count").as_number(), 5.0);
  EXPECT_EQ(hist.at("sum").as_number(), 1006.0);
  EXPECT_EQ(hist.at("min").as_number(), 0.0);
  EXPECT_EQ(hist.at("max").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_number(), 1006.0 / 5.0);
  // Quantiles resolve the rank max(1, floor(q*count)) with exact max at q=1.
  EXPECT_EQ(hist.at("p50").as_number(), 1.0);   // rank 2 -> sample 1
  EXPECT_EQ(hist.at("p90").as_number(), 3.0);   // rank 4 -> sample 3
  EXPECT_EQ(hist.at("p999").as_number(), 3.0);  // rank 4 at count 5
  EXPECT_EQ(hist.at("sig_digits").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("rel_err").as_number(), 1.0 / 64.0);

  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 5u);  // empty buckets are omitted
  const double expected_le[] = {0.0, 1.0, 2.0, 3.0, 1007.0};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(buckets[i].at("le").as_number(), expected_le[i]) << i;
    EXPECT_EQ(buckets[i].at("n").as_number(), 1.0) << i;
  }
}

TEST(Metrics, HistogramFoldsAcrossExitedThreads) {
  // End-of-life ordering: each worker records into its own HDR shard; when
  // the thread exits, the shard folds into the registry's retired snapshot,
  // so a later snapshot() loses nothing — and the fold is byte-identical to
  // recording everything on one thread (merge is associative/commutative).
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& h = registry.histogram("test.metrics.hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();  // shards fold into retired_hists
  const auto folded =
      registry.snapshot().at("histograms").at("test.metrics.hist").dump();

  registry.reset();
  auto& serial = registry.histogram("test.metrics.hist");
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    serial.record(static_cast<std::uint64_t>(v));
  }
  const auto reference =
      registry.snapshot().at("histograms").at("test.metrics.hist").dump();
  EXPECT_EQ(folded, reference);
}

TEST(Metrics, ResetZeroesEverything) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.metrics.counter").add(7);
  registry.gauge("test.metrics.gauge").observe(7);
  registry.histogram("test.metrics.hist").record(7);
  registry.reset();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(counter_value(snapshot, "test.metrics.counter"), 0);
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 0.0);
  EXPECT_EQ(
      snapshot.at("histograms").at("test.metrics.hist").at("count").as_number(),
      0.0);
}

TEST(Metrics, SnapshotFoldsThreadPoolStats) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  {
    util::ThreadPool pool(2);
    pool.parallel_for(8, [](std::size_t) {});
  }
  const auto snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.contains("thread_pool"));
  EXPECT_EQ(snapshot.at("thread_pool").at("tasks").as_number(), 8.0);
  EXPECT_GE(snapshot.at("thread_pool").at("queue_depth.max").as_number(), 1.0);
}

// Registers gauges until the fixed capacity trips.  Runs last in this suite:
// it permanently consumes the process's remaining gauge slots (handles are
// process-lifetime), which no later test in this binary needs.
TEST(Metrics, ZCapacityExhaustionThrows) {
  auto& registry = MetricsRegistry::instance();
  bool threw = false;
  for (std::size_t i = 0; i <= MetricsRegistry::kMaxGauges; ++i) {
    try {
      (void)registry.gauge("test.metrics.cap." + std::to_string(i));
    } catch (const std::length_error&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace tsce::obs
