#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace tsce::obs {
namespace {

std::int64_t counter_value(const util::Json& snapshot, const std::string& name) {
  return static_cast<std::int64_t>(snapshot.at("counters").at(name).as_number());
}

TEST(Metrics, CounterAccumulates) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& c = registry.counter("test.metrics.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.metrics.counter"), 42);
}

TEST(Metrics, SameNameReturnsSameHandle) {
  auto& registry = MetricsRegistry::instance();
  EXPECT_EQ(&registry.counter("test.metrics.counter"),
            &registry.counter("test.metrics.counter"));
  EXPECT_EQ(&registry.gauge("test.metrics.gauge"),
            &registry.gauge("test.metrics.gauge"));
  EXPECT_EQ(&registry.histogram("test.metrics.hist"),
            &registry.histogram("test.metrics.hist"));
}

TEST(Metrics, CounterFoldsAcrossExitedThreads) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& c = registry.counter("test.metrics.counter");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();  // shards fold into the retired totals
  EXPECT_EQ(counter_value(registry.snapshot(), "test.metrics.counter"),
            kThreads * kPerThread);
}

TEST(Metrics, GaugeTracksMaximum) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& g = registry.gauge("test.metrics.gauge");
  g.observe(5);
  g.observe(17);
  g.observe(3);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 17.0);
}

TEST(Metrics, GaugeFoldsMaxAcrossThreads) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& g = registry.gauge("test.metrics.gauge");
  g.observe(9);
  std::thread other([&g] { g.observe(23); });
  other.join();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 23.0);
}

TEST(Metrics, HistogramCountSumMaxAndBuckets) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  auto& h = registry.histogram("test.metrics.hist");
  h.record(0);     // bit_width 0 -> bucket le 0
  h.record(1);     // bit_width 1 -> bucket le 1
  h.record(2);     // bit_width 2 -> bucket le 3
  h.record(3);     // bit_width 2 -> bucket le 3
  h.record(1000);  // bit_width 10 -> bucket le 1023
  const auto snapshot = registry.snapshot();
  const auto& hist = snapshot.at("histograms").at("test.metrics.hist");
  EXPECT_EQ(hist.at("count").as_number(), 5.0);
  EXPECT_EQ(hist.at("sum").as_number(), 1006.0);
  EXPECT_EQ(hist.at("max").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_number(), 1006.0 / 5.0);

  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);  // empty buckets are omitted
  EXPECT_EQ(buckets[0].at("le").as_number(), 0.0);
  EXPECT_EQ(buckets[0].at("n").as_number(), 1.0);
  EXPECT_EQ(buckets[1].at("le").as_number(), 1.0);
  EXPECT_EQ(buckets[1].at("n").as_number(), 1.0);
  EXPECT_EQ(buckets[2].at("le").as_number(), 3.0);
  EXPECT_EQ(buckets[2].at("n").as_number(), 2.0);
  EXPECT_EQ(buckets[3].at("le").as_number(), 1023.0);
  EXPECT_EQ(buckets[3].at("n").as_number(), 1.0);
}

TEST(Metrics, ResetZeroesEverything) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.metrics.counter").add(7);
  registry.gauge("test.metrics.gauge").observe(7);
  registry.histogram("test.metrics.hist").record(7);
  registry.reset();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(counter_value(snapshot, "test.metrics.counter"), 0);
  EXPECT_EQ(snapshot.at("gauges").at("test.metrics.gauge.max").as_number(), 0.0);
  EXPECT_EQ(
      snapshot.at("histograms").at("test.metrics.hist").at("count").as_number(),
      0.0);
}

TEST(Metrics, SnapshotFoldsThreadPoolStats) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  {
    util::ThreadPool pool(2);
    pool.parallel_for(8, [](std::size_t) {});
  }
  const auto snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.contains("thread_pool"));
  EXPECT_EQ(snapshot.at("thread_pool").at("tasks").as_number(), 8.0);
  EXPECT_GE(snapshot.at("thread_pool").at("queue_depth.max").as_number(), 1.0);
}

// Registers gauges until the fixed capacity trips.  Runs last in this suite:
// it permanently consumes the process's remaining gauge slots (handles are
// process-lifetime), which no later test in this binary needs.
TEST(Metrics, ZCapacityExhaustionThrows) {
  auto& registry = MetricsRegistry::instance();
  bool threw = false;
  for (std::size_t i = 0; i <= MetricsRegistry::kMaxGauges; ++i) {
    try {
      (void)registry.gauge("test.metrics.cap." + std::to_string(i));
    } catch (const std::length_error&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace tsce::obs
