#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_info.hpp"
#include "util/json.hpp"

namespace tsce::obs {
namespace {

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

std::vector<util::Json> read_records(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<util::Json> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(util::Json::parse(line));
  }
  return records;
}

const util::Json* find_record(const std::vector<util::Json>& records,
                              const std::string& type, const std::string& name) {
  for (const auto& r : records) {
    if (r.at("t").as_string() == type && r.contains("name") &&
        r.at("name").as_string() == name) {
      return &r;
    }
  }
  return nullptr;
}

TEST(Trace, InactiveByDefault) {
  EXPECT_FALSE(tracing_active());
  // Inert without an open trace: must not crash or write anywhere.
  trace_event("test.trace.event", {{"k", 1}});
  Span span("test.trace.span", {{"k", 2}});
  span.add("extra", 3.0);
}

TEST(Trace, RoundTripHeaderSpanEvent) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_roundtrip.jsonl");
  std::remove(path.c_str());

  RunInfo info = RunInfo::current();
  info.seed = 42;
  info.set_param("scenario", "unit_test");
  ASSERT_TRUE(trace_open(path, info));
  EXPECT_TRUE(tracing_active());

  trace_event("test.trace.event",
              {{"iteration", 3}, {"worth", 1.5}, {"phase", "PSG"}});
  {
    Span span("test.trace.span", {{"phase", "PSG"}, {"trial", std::uint64_t{7}}});
    span.add("evaluations", 128.0);
    span.add("note", "done");
  }
  trace_close();
  EXPECT_FALSE(tracing_active());

  const auto records = read_records(path);
  ASSERT_GE(records.size(), 3u);
  const util::Json& header = records.front();
  EXPECT_EQ(header.at("t").as_string(), "header");
  EXPECT_EQ(header.at("version").as_number(), 1.0);
  EXPECT_EQ(header.at("run_info").at("seed").as_number(), 42.0);
  EXPECT_EQ(header.at("run_info").at("params").at("scenario").as_string(),
            "unit_test");

  const util::Json* event = find_record(records, "event", "test.trace.event");
  ASSERT_NE(event, nullptr);
  EXPECT_GE(event->at("ts").as_number(), 0.0);
  EXPECT_EQ(event->at("f").at("iteration").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(event->at("f").at("worth").as_number(), 1.5);
  EXPECT_EQ(event->at("f").at("phase").as_string(), "PSG");

  const util::Json* span = find_record(records, "span", "test.trace.span");
  ASSERT_NE(span, nullptr);
  EXPECT_GE(span->at("dur").as_number(), 0.0);
  EXPECT_EQ(span->at("f").at("phase").as_string(), "PSG");
  EXPECT_EQ(span->at("f").at("trial").as_number(), 7.0);
  EXPECT_EQ(span->at("f").at("evaluations").as_number(), 128.0);
  EXPECT_EQ(span->at("f").at("note").as_string(), "done");
}

TEST(Trace, NestedSpansBothRecorded) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_nested.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(trace_open(path, RunInfo::current()));
  {
    Span outer("test.trace.outer");
    {
      Span inner("test.trace.inner");
    }
  }
  trace_close();
  const auto records = read_records(path);
  EXPECT_NE(find_record(records, "span", "test.trace.outer"), nullptr);
  EXPECT_NE(find_record(records, "span", "test.trace.inner"), nullptr);
}

TEST(Trace, WorkerThreadRecordsSurviveClose) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_worker.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(trace_open(path, RunInfo::current()));
  std::thread worker([] {
    Span span("test.trace.worker", {{"phase", "worker"}});
  });
  worker.join();  // harness contract: workers joined before trace_close
  trace_close();
  const auto records = read_records(path);
  const util::Json* span = find_record(records, "span", "test.trace.worker");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("f").at("phase").as_string(), "worker");
}

TEST(Trace, StringFieldsAreEscaped) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_escape.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(trace_open(path, RunInfo::current()));
  const std::string tricky = "a\"b\\c\nd\te";
  trace_event("test.trace.escape", {{"s", std::string_view(tricky)}});
  trace_close();
  const auto records = read_records(path);
  const util::Json* event = find_record(records, "event", "test.trace.escape");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->at("f").at("s").as_string(), tricky);
}

TEST(Trace, SecondOpenFailsWhileActive) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_double.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(trace_open(path, RunInfo::current()));
  EXPECT_FALSE(trace_open(temp_path("tsce_trace_double2.jsonl"), RunInfo::current()));
  EXPECT_TRUE(tracing_active());  // the first trace is unaffected
  trace_close();
}

TEST(Trace, ReopenAfterCloseStartsFreshTrace) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string first = temp_path("tsce_trace_reopen1.jsonl");
  const std::string second = temp_path("tsce_trace_reopen2.jsonl");
  std::remove(first.c_str());
  std::remove(second.c_str());

  ASSERT_TRUE(trace_open(first, RunInfo::current()));
  trace_event("test.trace.first", {});
  trace_close();

  ASSERT_TRUE(trace_open(second, RunInfo::current()));
  trace_event("test.trace.second", {});
  trace_close();

  const auto records = read_records(second);
  EXPECT_EQ(records.front().at("t").as_string(), "header");
  EXPECT_NE(find_record(records, "event", "test.trace.second"), nullptr);
  EXPECT_EQ(find_record(records, "event", "test.trace.first"), nullptr);
}

TEST(Trace, RecordsAfterCloseAreDropped) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const std::string path = temp_path("tsce_trace_after_close.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(trace_open(path, RunInfo::current()));
  trace_close();
  trace_event("test.trace.late", {{"k", 1}});
  {
    Span span("test.trace.late_span");
  }
  const auto records = read_records(path);
  EXPECT_EQ(find_record(records, "event", "test.trace.late"), nullptr);
  EXPECT_EQ(find_record(records, "span", "test.trace.late_span"), nullptr);
}

TEST(Trace, OpenFailsOnUnwritablePath) {
  // Holds in both builds: compiled-out stub and I/O failure both return false.
  EXPECT_FALSE(trace_open("/nonexistent-dir/trace.jsonl", RunInfo::current()));
  EXPECT_FALSE(tracing_active());
}

}  // namespace
}  // namespace tsce::obs
