#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "model/system_model.hpp"
#include "testing/builders.hpp"

namespace tsce::sim {
namespace {

using model::Allocation;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Simulator, SingleStringSingleMachineTimings) {
  const SystemModel m = testing::minimal_system();  // t=3, u=0.6, P=10
  Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  const SimResult r = simulate(m, a, {.horizon_s = 100.0});
  // Alone on the machine at its nominal utilization: comp time = t = 3.
  EXPECT_NEAR(r.apps[0][0].comp_s.mean(), 3.0, 1e-9);
  EXPECT_NEAR(r.strings[0].latency_s.mean(), 3.0, 1e-9);
  EXPECT_EQ(r.strings[0].latency_violations, 0u);
  // Releases at 0,10,...,100 = 11 data sets, all complete by 103 except the
  // one at t=100 (completes at 103 > horizon).
  EXPECT_EQ(r.strings[0].datasets_completed, 10u);
}

TEST(Simulator, PipelineAcrossMachinesIncludesTransfer) {
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(8.0)
                            .begin_string(10.0, 100.0, Worth::kLow)
                            .add_app(1.0, 1.0, 100.0)  // 0.8 Mb / 8 Mb/s = 0.1 s
                            .add_app(1.0, 1.0, 0.0)
                            .build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  const SimResult r = simulate(m, a, {.horizon_s = 50.0});
  EXPECT_NEAR(r.apps[0][0].comp_s.mean(), 1.0, 1e-9);
  EXPECT_NEAR(r.apps[0][0].tran_s.mean(), 0.1, 1e-9);
  EXPECT_NEAR(r.apps[0][1].comp_s.mean(), 1.0, 1e-9);
  EXPECT_NEAR(r.strings[0].latency_s.mean(), 2.1, 1e-9);
}

TEST(Simulator, SameMachineTransferIsFree) {
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kLow)
                            .add_app(1.0, 0.5, 500.0)
                            .add_app(1.0, 0.5, 0.0)
                            .build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  a.set_deployed(0, true);
  const SimResult r = simulate(m, a, {.horizon_s = 50.0});
  EXPECT_NEAR(r.apps[0][0].tran_s.mean(), 0.0, 1e-12);
  EXPECT_NEAR(r.strings[0].latency_s.mean(), 2.0, 1e-9);
}

TEST(Simulator, RouteContentionDelaysLowerPriority) {
  // Two 2-app strings pushing large outputs over the same 1 Mb/s route.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);
  b.begin_string(10.0, 12.0, Worth::kHigh, "tight");  // T = high
  b.add_app(1.0, 1.0, 250.0);                         // 2 Mb -> 2 s transfer
  b.add_app(1.0, 1.0, 0.0);
  b.begin_string(10.0, 1000.0, Worth::kLow, "loose");  // T = low
  b.add_app(1.0, 1.0, 125.0);                          // 1 Mb -> 1 s transfer
  b.add_app(1.0, 1.0, 0.0);
  const SystemModel m = b.build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.assign(1, 0, 0);
  a.assign(1, 1, 1);
  for (int k = 0; k < 2; ++k) a.set_deployed(k, true);
  const SimResult r = simulate(m, a, {.horizon_s = 100.0});
  // Tight string's transfer gets the route first: exactly 2 s.
  EXPECT_NEAR(r.apps[0][0].tran_s.mean(), 2.0, 1e-9);
  // Loose string's transfer waits behind it.
  EXPECT_GT(r.apps[1][0].tran_s.mean(), 1.0 + 0.5);
}

TEST(Simulator, CpuContentionMatchesPriorities) {
  // Both apps want the full CPU; the tight one wins, the loose one queues.
  const SystemModel m = testing::figure2_system(10.0, 10.0, 1.0, 3.0, 2.0);
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(1, 0, 0);
  for (int k = 0; k < 2; ++k) a.set_deployed(k, true);
  const SimResult r = simulate(m, a, {.horizon_s = 100.0});
  EXPECT_NEAR(r.apps[0][0].comp_s.mean(), 3.0, 1e-9);
  EXPECT_NEAR(r.apps[1][0].comp_s.mean(), 5.0, 1e-9);  // 2 + 3 waiting
}

TEST(Simulator, UndeployedStringsIgnored) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  a.set_deployed(0, true);
  // String 1 untouched.
  const SimResult r = simulate(m, a, {.horizon_s = 50.0});
  EXPECT_TRUE(r.apps[1].empty());
  EXPECT_EQ(r.strings[1].datasets_completed, 0u);
  EXPECT_GT(r.strings[0].datasets_completed, 0u);
}

TEST(Simulator, DefaultHorizonIsTwentyPeriods) {
  const SystemModel m = testing::minimal_system();  // P = 10
  Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  const SimResult r = simulate(m, a);
  EXPECT_DOUBLE_EQ(r.simulated_s, 200.0);
}

TEST(Simulator, MaxEventsSafetyValve) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  a.set_deployed(0, true);
  SimOptions options;
  options.horizon_s = 1e6;
  options.max_events = 10;
  const SimResult r = simulate(m, a, options);
  EXPECT_LE(r.events, 10u);
}

TEST(Simulator, DeterministicRepeats) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, i);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const SimResult r1 = simulate(m, a, {.horizon_s = 100.0});
  const SimResult r2 = simulate(m, a, {.horizon_s = 100.0});
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_DOUBLE_EQ(r1.strings[0].latency_s.mean(), r2.strings[0].latency_s.mean());
  EXPECT_DOUBLE_EQ(r1.strings[1].latency_s.mean(), r2.strings[1].latency_s.mean());
}

TEST(Simulator, TotalViolationsAggregates) {
  const SystemModel m = testing::figure2_system(3.0, 3.0, 1.0);
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(1, 0, 0);
  for (int k = 0; k < 2; ++k) a.set_deployed(k, true);
  const SimResult r = simulate(m, a, {.horizon_s = 30.0});
  EXPECT_GT(r.total_violations(), 0u);
}

TEST(ScaleInputWorkload, ScalesTimesAndOutputsOnly) {
  const SystemModel m = testing::two_machine_system();
  const SystemModel scaled = scale_input_workload(m, 1.5);
  EXPECT_DOUBLE_EQ(scaled.strings[0].apps[0].nominal_time_s[0], 3.0);
  EXPECT_DOUBLE_EQ(scaled.strings[0].apps[0].output_kbytes, 150.0);
  EXPECT_DOUBLE_EQ(scaled.strings[0].apps[0].nominal_util[0], 0.5);  // unchanged
  EXPECT_DOUBLE_EQ(scaled.strings[0].period_s, 10.0);                // unchanged
  EXPECT_DOUBLE_EQ(scaled.strings[0].max_latency_s, 30.0);           // unchanged
}

TEST(ScaleInputWorkload, FactorOneIsIdentity) {
  const SystemModel m = testing::two_machine_system();
  const SystemModel scaled = scale_input_workload(m, 1.0);
  EXPECT_DOUBLE_EQ(scaled.strings[1].apps[0].nominal_time_s[0],
                   m.strings[1].apps[0].nominal_time_s[0]);
}

TEST(Simulator, OverloadedSystemDetectsViolationsUnderScaling) {
  // A feasible allocation stays clean at factor 1 and violates at factor 3.
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, 1);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const SimResult clean = simulate(m, a, {.horizon_s = 200.0});
  EXPECT_EQ(clean.total_violations(), 0u);
  const SystemModel stressed = scale_input_workload(m, 3.0);
  const SimResult dirty = simulate(stressed, a, {.horizon_s = 200.0});
  EXPECT_GT(dirty.total_violations(), 0u);
}

}  // namespace
}  // namespace tsce::sim
