#include <gtest/gtest.h>

#include "analysis/utilization.hpp"
#include "sim/simulator.hpp"
#include "testing/builders.hpp"

namespace tsce::sim {
namespace {

using model::Allocation;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Metering, MeasuredMachineUtilMatchesEquation2) {
  // Feasible steady-state workload: the CPU share consumed per unit time must
  // converge to U_machine = sum t*u/P (eq. 2).
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const auto util = analysis::UtilizationState::from_allocation(m, a);
  // Long horizon that is a common multiple of both periods (10 and 20).
  const SimResult r = simulate(m, a, {.horizon_s = 400.0});
  ASSERT_EQ(r.measured_machine_util.size(), 2u);
  EXPECT_NEAR(r.measured_machine_util[0], util.machine_util(0), 0.02);
  EXPECT_NEAR(r.measured_machine_util[1], 0.0, 1e-12);
}

TEST(Metering, MeasuredRouteUtilMatchesEquation3) {
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(8.0)
                            .begin_string(10.0, 100.0, Worth::kLow)
                            .add_app(1.0, 1.0, 400.0)  // 3.2 Mb -> 0.4 s per period
                            .add_app(1.0, 1.0, 0.0)
                            .build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  const auto util = analysis::UtilizationState::from_allocation(m, a);
  const SimResult r = simulate(m, a, {.horizon_s = 400.0});
  // U_route(0,1) = 3.2 Mb / 10 s / 8 Mb/s = 0.04.
  EXPECT_NEAR(util.route_util(0, 1), 0.04, 1e-12);
  EXPECT_NEAR(r.measured_route_util[0 * 2 + 1], util.route_util(0, 1), 0.005);
  EXPECT_NEAR(r.measured_route_util[1 * 2 + 0], 0.0, 1e-12);
}

TEST(Metering, WarmupDiscardsTransient) {
  // Case 2 of Figure 2: the low-priority app alternates comp times 4,2,4,2...
  // The average over full hyperperiods is 3 with or without warm-up, but the
  // warm-up must reduce the sample count.
  const SystemModel m = testing::figure2_system(8.0, 4.0, 1.0);
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(1, 0, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const SimResult no_warmup = simulate(m, a, {.horizon_s = 32.0});
  const SimResult with_warmup = simulate(m, a, {.horizon_s = 32.0, .warmup_s = 16.0});
  EXPECT_LT(with_warmup.apps[1][0].comp_s.count(),
            no_warmup.apps[1][0].comp_s.count());
  EXPECT_NEAR(with_warmup.apps[1][0].comp_s.mean(), 3.0, 1e-9);
  EXPECT_GT(with_warmup.apps[1][0].comp_s.count(), 0u);
}

TEST(Metering, WarmupLargerThanHorizonRecordsNothing) {
  const SystemModel m = testing::minimal_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  const SimResult r = simulate(m, a, {.horizon_s = 50.0, .warmup_s = 500.0});
  EXPECT_EQ(r.strings[0].datasets_completed, 0u);
  EXPECT_DOUBLE_EQ(r.measured_machine_util[0], 0.0);
}

TEST(Metering, SimulatorHonorsPriorityRule) {
  // Same conflicting-rules setup as the analysis test: under rate-monotonic
  // the short-period string preempts, flipping which app waits.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(4.0, 100.0, Worth::kLow, "fast-loose")
                            .add_app(2.0, 1.0, 0.0)
                            .begin_string(8.0, 4.0, Worth::kHigh, "slow-tight")
                            .add_app(2.0, 1.0, 0.0)
                            .build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(1, 0, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);

  SimOptions tight;
  tight.horizon_s = 64.0;
  const SimResult by_tightness = simulate(m, a, tight);
  EXPECT_NEAR(by_tightness.apps[1][0].comp_s.mean(), 2.0, 1e-9);
  EXPECT_NEAR(by_tightness.apps[0][0].comp_s.mean(), 3.0, 1e-9);

  SimOptions rm = tight;
  rm.priority_rule = analysis::PriorityRule::kRateMonotonic;
  const SimResult by_rate = simulate(m, a, rm);
  EXPECT_NEAR(by_rate.apps[0][0].comp_s.mean(), 2.0, 1e-9);
  // Note: eq. (5) estimates 2 + (P1/P0)*2 = 6 here, but with aligned releases
  // only one of the two interferer jobs per period actually lands inside the
  // response window: the estimate is conservative when the interferer has
  // the shorter period.  The simulator measures the true 4.0 s.
  EXPECT_NEAR(by_rate.apps[1][0].comp_s.mean(), 4.0, 1e-9);
  EXPECT_GT(by_rate.apps[1][0].comp_s.mean(),
            by_tightness.apps[1][0].comp_s.mean());
}

}  // namespace
}  // namespace tsce::sim
