#include <gtest/gtest.h>

#include "analysis/estimates.hpp"
#include "sim/simulator.hpp"
#include "testing/builders.hpp"

namespace tsce::sim {
namespace {

using model::Allocation;
using model::SystemModel;

/// Figure 2 of the paper: applications a_1^1 (higher priority) and a_1^2
/// share one CPU.  The discrete-event simulator must reproduce the paper's
/// worst-case-overlap averages exactly, which also equal the eq. (5)
/// estimates for these configurations.

Allocation deploy_both(const SystemModel& m) {
  Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  a.assign(1, 0, 0);
  a.set_deployed(1, true);
  return a;
}

struct Fig2Case {
  const char* name;
  double p1, p2, u1;
  double expected_comp2;  // average computation time of a_1^2
};

class Figure2 : public ::testing::TestWithParam<Fig2Case> {};

TEST_P(Figure2, SimulationMatchesAnalyticEstimate) {
  const auto& param = GetParam();
  const SystemModel m = testing::figure2_system(param.p1, param.p2, param.u1);
  const Allocation a = deploy_both(m);

  SimOptions options;
  options.horizon_s = 16.0;  // two hyperperiods of (8, 4)
  const SimResult result = simulate(m, a, options);

  // Higher-priority app is never disturbed.
  EXPECT_NEAR(result.apps[0][0].comp_s.mean(), 2.0, 1e-9) << param.name;
  // Lower-priority app matches the paper's average.
  EXPECT_NEAR(result.apps[1][0].comp_s.mean(), param.expected_comp2, 1e-9)
      << param.name;

  // And eq. (5) agrees with the simulation.
  const auto est = analysis::estimate_all(m, a);
  EXPECT_NEAR(est.comp[1][0], param.expected_comp2, 1e-9) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, Figure2,
    ::testing::Values(
        // Case 1: equal periods, full utilization: a_1^2 waits a full t1.
        Fig2Case{"case1_equal_periods", 4.0, 4.0, 1.0, 4.0},
        // Case 2: P1 = 2*P2: only every other data set is delayed.
        Fig2Case{"case2_double_period", 8.0, 4.0, 1.0, 3.0},
        // Case 3: u1 = 0.5: the leftover CPU lets a_1^2 run concurrently.
        Fig2Case{"case3_partial_utilization", 8.0, 4.0, 0.5, 2.5}),
    [](const ::testing::TestParamInfo<Fig2Case>& info) {
      return info.param.name;
    });

TEST(Figure2, HigherPriorityNeverViolates) {
  for (const double u1 : {0.25, 0.5, 0.75, 1.0}) {
    const SystemModel m = testing::figure2_system(8.0, 4.0, u1);
    const SimResult result = simulate(m, deploy_both(m), {.horizon_s = 32.0});
    EXPECT_EQ(result.apps[0][0].comp_violations, 0u);
  }
}

TEST(Figure2, ThroughputViolationDetectedWhenPeriodTooTight) {
  // P2 = 3 < worst-case comp time 4 of the low-priority app.
  const SystemModel m = testing::figure2_system(3.0, 3.0, 1.0);
  const SimResult result = simulate(m, deploy_both(m), {.horizon_s = 30.0});
  EXPECT_GT(result.apps[1][0].comp_violations, 0u);
}

}  // namespace
}  // namespace tsce::sim
