/// \file analyze_lexer_test.cpp
/// Edge-case unit tests for the tsce_analyze lexer (tools/analyze/lexer.hpp),
/// linked directly against the lexer translation unit rather than driving the
/// binary: these cases are about exact token boundaries, which the golden
/// fixtures cannot pin down from the outside.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace {

using tsce::analyze::lex;
using tsce::analyze::Token;
using tsce::analyze::TokenKind;
using tsce::analyze::TokenStream;

/// Indices of all tokens of \p kind, for positional assertions.
std::vector<std::size_t> indices_of(const std::vector<Token>& toks,
                                    TokenKind kind) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == kind) out.push_back(i);
  }
  return out;
}

TEST(AnalyzeLexer, PreprocLineContinuationFoldsIntoOneDirective) {
  // A backslash-continued #define is one kPreproc token spanning both
  // physical lines; the next token starts on the line after the continuation
  // with its line number intact (suppression scanning depends on this).
  const std::string src =
      "#define TWICE(a) \\\n"
      "  ((a) + (a))\n"
      "int x = 2;\n";
  const std::vector<Token> toks = lex(src);

  const std::vector<std::size_t> preproc =
      indices_of(toks, TokenKind::kPreproc);
  ASSERT_EQ(preproc.size(), 1u);
  const Token& directive = toks[preproc[0]];
  EXPECT_EQ(directive.line, 1u);
  EXPECT_NE(directive.text.find("TWICE"), std::string::npos);
  EXPECT_NE(directive.text.find("((a) + (a))"), std::string::npos);

  ASSERT_GT(toks.size(), preproc[0] + 1);
  const Token& after = toks[preproc[0] + 1];
  EXPECT_TRUE(after.ident("int")) << after.text;
  EXPECT_EQ(after.line, 3u);
}

TEST(AnalyzeLexer, NestedTemplateCloseLexesAsShiftAndStillMatches) {
  // `std::vector<std::pair<int, long>>` ends in a single `>>` punct token
  // (longest match); match_forward from the outer `<` must treat it as two
  // closers and land exactly on it.
  const std::string src = "std::vector<std::pair<int, long>> v;";
  const TokenStream ts(lex(src));
  const auto& toks = ts.tokens();

  std::size_t outer_open = ts.size();
  std::size_t shift_close = ts.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (outer_open == ts.size() && toks[i].punct("<")) outer_open = i;
    if (toks[i].punct(">>")) shift_close = i;
  }
  ASSERT_LT(outer_open, ts.size());
  ASSERT_LT(shift_close, ts.size());
  EXPECT_EQ(ts.match_forward(outer_open), shift_close);
}

TEST(AnalyzeLexer, AdjacentStringLiteralsStaySeparateTokens) {
  // Concatenated literals are a lexical pair, not one token: name-registry
  // matching sees each piece with its own delimiters.
  const std::string src = "const char* s = \"abc\" \"def\";";
  const std::vector<Token> toks = lex(src);
  const std::vector<std::size_t> strings = indices_of(toks, TokenKind::kString);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(toks[strings[0]].text, "\"abc\"");
  EXPECT_EQ(toks[strings[1]].text, "\"def\"");
  EXPECT_EQ(strings[1], strings[0] + 1);
}

TEST(AnalyzeLexer, PrevCodeAtTokenZeroReturnsSize) {
  // prev_code is a strict predecessor: at index 0 there is none, and the
  // sentinel is size() so `ts.at(ts.prev_code(i))` degrades to kEof instead
  // of wrapping around.
  const TokenStream ts(lex("int x;"));
  EXPECT_EQ(ts.prev_code(0), ts.size());
  EXPECT_EQ(ts.at(ts.prev_code(0)).kind, TokenKind::kEof);
}

TEST(AnalyzeLexer, PrevCodeSkipsLeadingCommentsToSentinel) {
  // When everything before a token is comments/preprocessor, prev_code must
  // report "nothing", not the nearest comment.
  const TokenStream ts(lex("// leading comment\n#include <x>\nint y;"));
  const auto& toks = ts.tokens();
  std::size_t int_idx = ts.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].ident("int")) int_idx = i;
  }
  ASSERT_LT(int_idx, ts.size());
  EXPECT_EQ(ts.prev_code(int_idx), ts.size());
}

}  // namespace
