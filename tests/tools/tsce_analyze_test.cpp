/// \file tsce_analyze_test.cpp
/// Golden-fixture regression tests for the tsce_analyze static analyzer: runs
/// the real binary (path injected as TSCE_ANALYZE_BIN) against the per-rule
/// fixture triples under fixtures/analyze/<rule>/ — one violating, one
/// suppressed, one clean file each — plus a SARIF 2.1.0 output smoke test
/// parsed with util::Json.
///
/// Fixtures are analyzed via `--file <path> --as <repo-relative-path>` so the
/// directory-scoped rules (src-only, hot-path-only, headers-only) fire as they
/// would in the repo walk, without the fixtures living inside src/.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace {

struct RunResult {
  std::string output;  // stdout and stderr interleaved
  int exit_code = -1;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(TSCE_ANALYZE_BIN) + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return result;
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// One rule's fixture directory and the repo-relative path its files are
/// analyzed as (picked so the rule's directory scope applies).
struct RuleFixture {
  const char* rule;
  const char* as_rel;  // without extension
  const char* ext;
};

constexpr RuleFixture kRules[] = {
    {"deterministic-rng", "src/core/fixture", ".cpp"},
    {"invalid-id-sentinel", "src/model/fixture", ".cpp"},
    {"no-iostream-hot", "src/analysis/fixture", ".cpp"},
    {"metric-name-registry", "src/obs/fixture", ".cpp"},
    {"pragma-once", "src/model/fixture", ".hpp"},
    {"nondeterministic-iteration", "src/workload/fixture", ".cpp"},
    {"float-fitness-equality", "src/core/fixture", ".cpp"},
    {"lock-across-callback", "src/core/fixture", ".cpp"},
    {"rng-shared-capture", "src/core/fixture", ".cpp"},
    {"no-alloc-hot", "src/core/fixture", ".cpp"},
    {"transitive-hot-alloc", "src/core/fixture", ".cpp"},
    {"lock-order-cycle", "src/core/fixture", ".cpp"},
    {"rng-stream-escape", "src/core/fixture", ".cpp"},
    {"hot-path-virtual", "src/core/fixture", ".cpp"},
    {"guarded-by-inconsistency", "src/core/fixture", ".cpp"},
    {"unguarded-shared-write", "src/core/fixture", ".cpp"},
    {"atomic-plain-mix", "src/core/fixture", ".cpp"},
    {"lock-scope-leak", "src/core/fixture", ".cpp"},
    {"unused-suppression", "src/core/fixture", ".cpp"},
};

std::string fixture_args(const RuleFixture& rf, const char* kind) {
  return std::string("--file ") + TSCE_ANALYZE_FIXTURE_DIR + "/" + rf.rule +
         "/" + kind + rf.ext + " --as " + rf.as_rel + rf.ext;
}

TEST(TsceAnalyze, ViolationFixturesFireTheirRule) {
  for (const RuleFixture& rf : kRules) {
    const RunResult r = run(fixture_args(rf, "violation"));
    EXPECT_EQ(r.exit_code, 1) << rf.rule << ": " << r.output;
    EXPECT_NE(r.output.find(std::string("[") + rf.rule + "]"),
              std::string::npos)
        << rf.rule << ": " << r.output;
  }
}

TEST(TsceAnalyze, SuppressedFixturesAreClean) {
  for (const RuleFixture& rf : kRules) {
    const RunResult r = run(fixture_args(rf, "suppressed"));
    EXPECT_EQ(r.exit_code, 0) << rf.rule << ": " << r.output;
    EXPECT_NE(r.output.find("0 findings"), std::string::npos)
        << rf.rule << ": " << r.output;
  }
}

TEST(TsceAnalyze, CleanFixturesAreClean) {
  for (const RuleFixture& rf : kRules) {
    const RunResult r = run(fixture_args(rf, "clean"));
    EXPECT_EQ(r.exit_code, 0) << rf.rule << ": " << r.output;
  }
}

TEST(TsceAnalyze, BenchLiteralCheckedAgainstRegisteredNames) {
  // With --names, a bench/ literal that matches a registered name passes and
  // an unregistered one is a finding naming the rogue literal.
  const std::string fixture = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                              "/metric-name-registry/bench_names.cpp";
  const std::string names = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                            "/metric-name-registry/names_registry.hpp";
  const RunResult r = run("--file " + fixture + " --as bench/fixture.cpp" +
                          " --names " + names);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unregistered metric/trace name "
                          "\"decode.rogue_series\""),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("\"decode.calls\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
}

TEST(TsceAnalyze, BenchLiteralWithoutRegistryKeepsStrictBan) {
  // No --names: the strict literal ban applies even under bench/, so both
  // literals in the fixture are findings.
  const std::string fixture = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                              "/metric-name-registry/bench_names.cpp";
  const RunResult r = run("--file " + fixture + " --as bench/fixture.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("2 findings"), std::string::npos) << r.output;
}

TEST(TsceAnalyze, SrcLiteralIsAFindingEvenWhenRegistered) {
  // Registration never licenses a literal under src/ — producers must go
  // through the names.hpp constant.
  const std::string fixture = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                              "/metric-name-registry/violation.cpp";
  const std::string names = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                            "/metric-name-registry/names_registry.hpp";
  const RunResult r = run("--file " + fixture + " --as src/obs/fixture.cpp" +
                          " --names " + names);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[metric-name-registry]"), std::string::npos)
      << r.output;
}

TEST(TsceAnalyze, SuppressionCommentAboveCoversTheNextCodeLine) {
  // An allow() on a comment-only line covers the next code line, so long
  // findings can carry their justification above them; the finding must be
  // absorbed and the suppression must not read as stale.
  const std::string path = testing::TempDir() + "tsce_analyze_above.cpp";
  {
    std::ofstream out(path);
    out << "#include <cstdlib>\n"
           "// tsce-lint: allow(deterministic-rng)\n"
           "int noisy() { return std::rand(); }\n";
  }
  const RunResult r = run("--file " + path + " --as src/core/fixture.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("unused-suppression"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(TsceAnalyze, SarifOutputIsValidAndCarriesTheFinding) {
  const std::string sarif_path = testing::TempDir() + "tsce_analyze_smoke.sarif";
  const RunResult r =
      run(fixture_args(kRules[0], "violation") + " --sarif " + sarif_path);
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::ifstream in(sarif_path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing " << sarif_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const tsce::util::Json doc = tsce::util::Json::parse(buf.str());

  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  EXPECT_NE(doc.at("$schema").as_string().find("sarif-schema-2.1.0"),
            std::string::npos);
  const auto& runs = doc.at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  const auto& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "tsce_analyze");
  EXPECT_EQ(driver.at("rules").as_array().size(), 19u);

  const auto& results = runs[0].at("results").as_array();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("ruleId").as_string(), "deterministic-rng");
  EXPECT_EQ(results[0].at("level").as_string(), "error");
  // Every result carries a stable fingerprint for baseline diffing.
  const std::string fp = results[0]
                             .at("partialFingerprints")
                             .at("tsceFingerprint/v1")
                             .as_string();
  EXPECT_EQ(fp.size(), 16u) << fp;
  const auto& loc = results[0].at("locations").as_array().at(0);
  const auto& physical = loc.at("physicalLocation");
  EXPECT_EQ(physical.at("artifactLocation").at("uri").as_string(),
            "src/core/fixture.cpp");
  EXPECT_EQ(physical.at("artifactLocation").at("uriBaseId").as_string(),
            "SRCROOT");
  EXPECT_GT(physical.at("region").at("startLine").as_number(), 0.0);
  std::remove(sarif_path.c_str());
}

TEST(TsceAnalyze, SarifOutputOnCleanInputHasEmptyResults) {
  const std::string sarif_path = testing::TempDir() + "tsce_analyze_clean.sarif";
  const RunResult r =
      run(fixture_args(kRules[0], "clean") + " --sarif " + sarif_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(sarif_path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  const tsce::util::Json doc = tsce::util::Json::parse(buf.str());
  EXPECT_TRUE(doc.at("runs").as_array().at(0).at("results").as_array().empty());
  std::remove(sarif_path.c_str());
}

TEST(TsceAnalyze, CallgraphDotIsWritten) {
  const std::string dot_path = testing::TempDir() + "tsce_analyze_graph.dot";
  const RunResult r = run(
      std::string("--file ") + TSCE_ANALYZE_FIXTURE_DIR +
      "/hot-path-virtual/violation.cpp --as src/core/fixture.cpp" +
      " --callgraph-dot " + dot_path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::ifstream in(dot_path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing " << dot_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("digraph tsce_callgraph"), std::string::npos);
  EXPECT_NE(buf.str().find("decide"), std::string::npos) << buf.str();
  std::remove(dot_path.c_str());
}

TEST(TsceAnalyze, BaselineMatchesOnFingerprintNotLineNumber) {
  // A committed baseline absorbs known findings even after the file shifts
  // (fingerprints hash rule + file + trimmed line text, not line numbers);
  // a genuinely new finding still fails the gate.
  const std::string dir = testing::TempDir();
  const std::string v1 = dir + "tsce_baseline_v1.cpp";
  const std::string v2 = dir + "tsce_baseline_v2.cpp";
  const std::string v3 = dir + "tsce_baseline_v3.cpp";
  const std::string baseline = dir + "tsce_baseline.sarif";
  {
    std::ofstream out(v1);
    out << "#include <cstdlib>\n"
           "int noisy() { return std::rand(); }\n";
  }
  {
    // Same finding, shifted two lines down.
    std::ofstream out(v2);
    out << "#include <cstdlib>\n"
           "\n"
           "// a comment pushing the finding down\n"
           "int noisy() { return std::rand(); }\n";
  }
  {
    // Old finding plus a new one on a line the baseline has never seen.
    std::ofstream out(v3);
    out << "#include <cstdlib>\n"
           "int noisy() { return std::rand(); }\n"
           "int louder() { return std::rand() * 2; }\n";
  }

  const std::string as = " --as src/core/fixture.cpp";
  const RunResult seed = run("--file " + v1 + as + " --sarif " + baseline);
  EXPECT_EQ(seed.exit_code, 1) << seed.output;

  const RunResult shifted =
      run("--file " + v2 + as + " --baseline " + baseline);
  EXPECT_EQ(shifted.exit_code, 0) << shifted.output;
  EXPECT_NE(shifted.output.find("(0 new, 1 in baseline)"), std::string::npos)
      << shifted.output;

  const RunResult grown = run("--file " + v3 + as + " --baseline " + baseline);
  EXPECT_EQ(grown.exit_code, 1) << grown.output;
  EXPECT_NE(grown.output.find("NEW src/core/fixture.cpp:3"), std::string::npos)
      << grown.output;
  EXPECT_NE(grown.output.find("(1 new, 1 in baseline)"), std::string::npos)
      << grown.output;

  for (const std::string& p : {v1, v2, v3, baseline}) std::remove(p.c_str());
}

TEST(TsceAnalyze, MalformedBaselineIsAnError) {
  const std::string path = testing::TempDir() + "tsce_baseline_broken.sarif";
  {
    std::ofstream out(path);
    out << "this is not json";
  }
  const RunResult r = run(
      std::string("--file ") + TSCE_ANALYZE_FIXTURE_DIR +
      "/deterministic-rng/clean.cpp --as src/core/fixture.cpp --baseline " +
      path);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("malformed baseline"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(TsceAnalyze, SingleFileModeAutoLoadsNamesRegistryFromRoot) {
  // Regression: --file mode must pick up <root>/src/obs/names.hpp exactly
  // like the repo walk does, so bench fixtures validate against the same
  // registry without an explicit --names.
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "tsce_names_root";
  fs::create_directories(root / "src" / "obs");
  {
    std::ofstream out(root / "src" / "obs" / "names.hpp");
    out << "#pragma once\n"
           "inline constexpr const char* kDecodeCalls = \"decode.calls\";\n";
  }
  const std::string fixture = std::string(TSCE_ANALYZE_FIXTURE_DIR) +
                              "/metric-name-registry/bench_names.cpp";
  const RunResult r = run("--file " + fixture + " --as bench/fixture.cpp" +
                          " --root " + root.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"decode.rogue_series\""), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("\"decode.calls\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
  fs::remove_all(root);
}

TEST(TsceAnalyze, ChangedOnlyReportsOnlyChangedFiles) {
  if (std::system("git --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "git not available";
  }
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "tsce_changed_repo";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  {
    std::ofstream out(root / "src" / "core" / "committed.cpp");
    out << "#include <cstdlib>\n"
           "int noisy() { return std::rand(); }\n";
  }
  const std::string setup =
      "cd '" + root.string() +
      "' && git init -q && git add -A && "
      "git -c user.email=t@t -c user.name=t commit -q -m seed";
  ASSERT_EQ(std::system(("sh -c \"" + setup + "\" > /dev/null 2>&1").c_str()),
            0);

  // The committed file violates deterministic-rng, but it is unchanged vs.
  // HEAD, so --changed-only filters the finding out.
  const RunResult quiet =
      run("--root " + root.string() + " --changed-only");
  EXPECT_EQ(quiet.exit_code, 0) << quiet.output;
  EXPECT_NE(quiet.output.find("0 findings"), std::string::npos) << quiet.output;

  // An untracked file with the same violation is "changed" and reported.
  {
    std::ofstream out(root / "src" / "core" / "fresh.cpp");
    out << "#include <cstdlib>\n"
           "int fresh_noise() { return std::rand(); }\n";
  }
  const RunResult loud = run("--root " + root.string() + " --changed-only");
  EXPECT_EQ(loud.exit_code, 1) << loud.output;
  EXPECT_NE(loud.output.find("src/core/fresh.cpp"), std::string::npos)
      << loud.output;
  EXPECT_EQ(loud.output.find("committed.cpp:"), std::string::npos)
      << loud.output;
  fs::remove_all(root);
}

TEST(TsceAnalyze, ChangedOnlyBadRefIsAHardError) {
  // Regression: a failed `git diff` (unknown ref) used to degrade into an
  // empty change set — a clean exit that would let a bad CI ref pass the
  // gate.  It must be a usage error instead.
  if (std::system("git --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "git not available";
  }
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "tsce_badref_repo";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  {
    std::ofstream out(root / "src" / "core" / "quiet.cpp");
    out << "int quiet() { return 0; }\n";
  }
  const std::string setup =
      "cd '" + root.string() +
      "' && git init -q && git add -A && "
      "git -c user.email=t@t -c user.name=t commit -q -m seed";
  ASSERT_EQ(std::system(("sh -c \"" + setup + "\" > /dev/null 2>&1").c_str()),
            0);

  const RunResult r = run("--root " + root.string() +
                          " --changed-only no-such-ref-xyz");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("refusing to treat the failure"), std::string::npos)
      << r.output;
  fs::remove_all(root);
}

TEST(TsceAnalyze, ChangedOnlyHandlesPathsWithSpaces) {
  // Regression: newline-splitting of unquoted git output mangled paths with
  // spaces; the -z framing must round-trip them so their findings report.
  if (std::system("git --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "git not available";
  }
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "tsce spaced repo";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core dir");
  {
    std::ofstream out(root / "src" / "core dir" / "with space.cpp");
    out << "int quiet() { return 0; }\n";
  }
  const std::string setup =
      "cd '" + root.string() +
      "' && git init -q && git add -A && "
      "git -c user.email=t@t -c user.name=t commit -q -m seed";
  ASSERT_EQ(std::system(("sh -c \"" + setup + "\" > /dev/null 2>&1").c_str()),
            0);
  {
    // Tracked file changed after the commit: only `git diff` reports it.
    std::ofstream out(root / "src" / "core dir" / "with space.cpp");
    out << "#include <cstdlib>\n"
           "int noisy() { return std::rand(); }\n";
  }
  const RunResult r =
      run("--root '" + root.string() + "' --changed-only");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/core dir/with space.cpp:2"), std::string::npos)
      << r.output;
  fs::remove_all(root);
}

TEST(TsceAnalyze, StatsPrintsPerRuleCountsAndWallTime) {
  const RunResult r = run(fixture_args(kRules[0], "violation") + " --stats");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Table header, the firing rule with its count, a quiet rule at zero, and
  // the shared-phase rows.
  EXPECT_NE(r.output.find("rule"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("millis"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("deterministic-rng"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("guarded-by-inconsistency"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(lex+parse)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(callgraph)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(accesses)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("total"), std::string::npos) << r.output;
}

TEST(TsceAnalyze, StatsCsvEmitsOneRowPerRule) {
  const RunResult r =
      run(fixture_args(kRules[0], "violation") + " --stats --csv");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("rule,findings,millis"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("deterministic-rng,1,"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("lock-scope-leak,0,"), std::string::npos)
      << r.output;
}

TEST(TsceAnalyze, CsvWithoutStatsIsAUsageError) {
  const RunResult r = run(fixture_args(kRules[0], "clean") + " --csv");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--csv requires --stats"), std::string::npos)
      << r.output;
}

TEST(TsceAnalyze, GuardedByReportListsInferredLocksWithConfidence) {
  const std::string report_path =
      testing::TempDir() + "tsce_guarded_by_report.json";
  const RunResult r =
      run(std::string("--file ") + TSCE_ANALYZE_FIXTURE_DIR +
          "/guarded-by-inconsistency/violation.cpp --as src/core/fixture.cpp" +
          " --guarded-by-report " + report_path);
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::ifstream in(report_path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing " << report_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const tsce::util::Json doc = tsce::util::Json::parse(buf.str());
  EXPECT_EQ(doc.at("report").as_string(), "guarded-by-inference");
  const auto& fields = doc.at("fields").as_array();
  bool saw_total = false;
  for (const auto& field : fields) {
    if (field.at("field").as_string() != "Tally::total_") continue;
    saw_total = true;
    EXPECT_EQ(field.at("lock").as_string(), "Tally::mu_");
    EXPECT_EQ(field.at("sites").as_number(), 5.0);
    EXPECT_EQ(field.at("guarded_sites").as_number(), 4.0);
    EXPECT_NEAR(field.at("confidence").as_number(), 0.8, 1e-9);
  }
  EXPECT_TRUE(saw_total) << buf.str();
  std::remove(report_path.c_str());
}

TEST(TsceAnalyze, MissingFileFails) {
  const RunResult r = run("--file /nonexistent/code.cpp");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST(TsceAnalyze, UnknownArgumentIsAUsageError) {
  const RunResult r = run("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown argument"), std::string::npos) << r.output;
}

}  // namespace
