/// \file analyze_scopes_test.cpp
/// Unit tests for the lexer/scope-parser corner cases the concurrency tier
/// leans on, compiled directly against the analyzer translation units: the
/// golden fixtures drive the binary end-to-end, but these cases are about
/// exact token and extent recovery — user-defined literals, operator<=>,
/// member access through `this->`, and nested lambdas capturing a lock handle
/// by reference.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/accesses.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/lexer.hpp"
#include "analyze/scopes.hpp"

namespace {

using tsce::analyze::AccessIndex;
using tsce::analyze::AccessKind;
using tsce::analyze::build_access_index;
using tsce::analyze::build_call_graph;
using tsce::analyze::CallGraph;
using tsce::analyze::FieldAccess;
using tsce::analyze::FileStructure;
using tsce::analyze::FileUnit;
using tsce::analyze::lex;
using tsce::analyze::parse_structure;
using tsce::analyze::Token;
using tsce::analyze::TokenKind;
using tsce::analyze::TokenStream;

/// Lex + parse one source into a single graph-eligible unit.
std::vector<FileUnit> one_unit(const std::string& src) {
  TokenStream ts{lex(src)};
  FileStructure structure = parse_structure(ts);
  std::vector<FileUnit> units;
  units.push_back({"src/core/unit.cpp", std::move(ts), std::move(structure),
                   /*in_graph=*/true});
  return units;
}

const Token* find_ident(const std::vector<Token>& toks,
                        const std::string& text) {
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdentifier && t.text == text) return &t;
  }
  return nullptr;
}

TEST(AnalyzeScopes, NumericUserDefinedLiteralIsOneToken) {
  // `10ms` is a single pp-number: the suffix must not split into an
  // identifier the scope parser would mistake for a declared name.
  const std::vector<Token> toks = lex("auto t = 10ms; auto w = 2.5s;");
  bool saw_10ms = false;
  bool saw_2_5s = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kNumber && t.text == "10ms") saw_10ms = true;
    if (t.kind == TokenKind::kNumber && t.text == "2.5s") saw_2_5s = true;
  }
  EXPECT_TRUE(saw_10ms);
  EXPECT_TRUE(saw_2_5s);
  EXPECT_EQ(find_ident(toks, "ms"), nullptr);
  EXPECT_EQ(find_ident(toks, "s"), nullptr);
}

TEST(AnalyzeScopes, UdlDeclarationStillRecordsTheName) {
  // The decl walker must see `timeout` as a declared name even though its
  // initializer is a UDL (the backward type walk lands on `auto`).
  TokenStream ts{lex("void f() { auto timeout = 10ms; (void)timeout; }")};
  const FileStructure fs = parse_structure(ts);
  bool found = false;
  for (const auto& d : fs.decls) {
    if (d.name == "timeout") {
      found = true;
      EXPECT_EQ(d.type_last, "auto");
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzeScopes, SpaceshipOperatorLexesAsOnePunct) {
  const std::vector<Token> toks = lex("bool b = (a <=> c) < 0;");
  bool saw_spaceship = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kPunct && t.text == "<=>") saw_spaceship = true;
    // Greedy mis-lexing would leave a stray `<=` directly before a `>`.
    EXPECT_NE(t.text, "=>");
  }
  EXPECT_TRUE(saw_spaceship);
}

TEST(AnalyzeScopes, DefaultedSpaceshipDoesNotBreakMethodIndexing) {
  // `operator<=>` inside a class must not derail the definition indexer:
  // the method after it still becomes a call-graph node of the class.
  const std::vector<FileUnit> units = one_unit(
      "#include <compare>\n"
      "class Version {\n"
      " public:\n"
      "  auto operator<=>(const Version&) const = default;\n"
      "  int major() const { return major_; }\n"
      " private:\n"
      "  int major_ = 0;\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  EXPECT_NE(graph.find("Version::major"), CallGraph::npos);
}

TEST(AnalyzeScopes, ThisArrowCallResolvesToTheCallersClass) {
  // `this->helper()` must produce a call edge to the caller's own class
  // method, exactly like a bare `helper()` call would.
  const std::vector<FileUnit> units = one_unit(
      "class Engine {\n"
      " public:\n"
      "  void run() { this->helper(); }\n"
      " private:\n"
      "  void helper() {}\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  const std::size_t run = graph.find("Engine::run");
  const std::size_t helper = graph.find("Engine::helper");
  ASSERT_NE(run, CallGraph::npos);
  ASSERT_NE(helper, CallGraph::npos);
  bool edge = false;
  for (const auto& e : graph.nodes()[run].edges) {
    if (e.callee == helper) edge = true;
  }
  EXPECT_TRUE(edge);
}

TEST(AnalyzeScopes, ThisArrowFieldAccessIsIndexed) {
  // `this->count_ = v` attributes to (Engine, count_) as a write, same as
  // the bare-member spelling.
  const std::vector<FileUnit> units = one_unit(
      "class Engine {\n"
      " public:\n"
      "  void set(int v) { this->count_ = v; }\n"
      "  int get() const { return count_; }\n"
      " private:\n"
      "  int count_ = 0;\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  const AccessIndex index = build_access_index(units, graph);
  bool saw_write = false;
  bool saw_read = false;
  for (const FieldAccess& a : index.accesses) {
    if (a.cls != "Engine" || a.field != "count_") continue;
    if (a.kind == AccessKind::kWrite) saw_write = true;
    if (a.kind == AccessKind::kRead) saw_read = true;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
}

TEST(AnalyzeScopes, NestedLambdaCapturingLockHandleKeepsTheLockset) {
  // A nested lambda capturing the lock handle by reference runs inside the
  // guarded extent (it is invoked in place, not pooled): field accesses in
  // its body must still carry the lock in their lockset.
  const std::vector<FileUnit> units = one_unit(
      "#include <mutex>\n"
      "class Engine {\n"
      " public:\n"
      "  void tick() {\n"
      "    std::lock_guard<std::mutex> hold(mu_);\n"
      "    auto outer = [&hold, this] {\n"
      "      auto inner = [&] { count_ += 1; };\n"
      "      inner();\n"
      "    };\n"
      "    outer();\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  const AccessIndex index = build_access_index(units, graph);
  bool saw = false;
  for (const FieldAccess& a : index.accesses) {
    if (a.cls != "Engine" || a.field != "count_" ||
        a.kind != AccessKind::kWrite) {
      continue;
    }
    saw = true;
    EXPECT_FALSE(a.in_pool_lambda);
    EXPECT_EQ(index.lockset_of(a).count("Engine::mu_"), 1u)
        << "lockset lost across the nested lambdas";
  }
  EXPECT_TRUE(saw);
}

TEST(AnalyzeScopes, PoolLambdaSeversTheSubmittersLockset) {
  // The inverse case: inside a pool-submitted lambda the submitting frame's
  // guard is NOT held when the body runs, so the lockset must be empty.
  const std::vector<FileUnit> units = one_unit(
      "#include <mutex>\n"
      "struct Pool { template <typename F> void submit(F&& f) { f(); } };\n"
      "class Engine {\n"
      " public:\n"
      "  void tick(Pool& pool) {\n"
      "    std::lock_guard<std::mutex> hold(mu_);\n"
      "    pool.submit([this] { count_ += 1; });\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ = 0;\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  const AccessIndex index = build_access_index(units, graph);
  bool saw = false;
  for (const FieldAccess& a : index.accesses) {
    if (a.cls != "Engine" || a.field != "count_" ||
        a.kind != AccessKind::kWrite) {
      continue;
    }
    saw = true;
    EXPECT_TRUE(a.in_pool_lambda);
    EXPECT_TRUE(index.lockset_of(a).empty())
        << "submitter's guard leaked into the pool lambda's lockset";
  }
  EXPECT_TRUE(saw);
}

TEST(AnalyzeScopes, ThreadLocalMemberIsRecognized) {
  // `static thread_local` members are the sharding idiom the
  // unguarded-shared-write rule exempts; the decl walk must keep the
  // modifier so the field table sees it.
  const std::vector<FileUnit> units = one_unit(
      "class Shards {\n"
      " public:\n"
      "  void bump() { slot_ += 1; }\n"
      " private:\n"
      "  static thread_local int slot_;\n"
      "};\n");
  const CallGraph graph = build_call_graph(units);
  const AccessIndex index = build_access_index(units, graph);
  const auto cls = index.fields.find("Shards");
  ASSERT_NE(cls, index.fields.end());
  const auto field = cls->second.find("slot_");
  ASSERT_NE(field, cls->second.end());
  EXPECT_TRUE(field->second.is_thread_local);
}

}  // namespace
