/// \file trace_report_test.cpp
/// End-to-end regression tests for the trace_report CLI: runs the real binary
/// (path injected as TSCE_TRACE_REPORT_BIN) against the golden JSONL fixture
/// and asserts on its combined output and exit code.  The fixture contains
/// spans for two phases, improvement events (including a same-worth/better-
/// slackness tie-break), two malformed lines, and one foreign event type.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct RunResult {
  std::string output;  // stdout and stderr interleaved
  int exit_code = -1;
};

RunResult run(const std::string& args) {
  const std::string cmd =
      std::string(TSCE_TRACE_REPORT_BIN) + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return result;
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture() {
  return std::string(TSCE_TOOLS_FIXTURE_DIR) + "/golden_trace.jsonl";
}

TEST(TraceReport, RendersPerPhaseTablesFromGoldenTrace) {
  const RunResult r = run(fixture());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Header provenance line from the run_info record.
  EXPECT_NE(r.output.find("run: git abc123def456, Release build, seed 42, 2 threads"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("scenario=highly_loaded"), std::string::npos);
  // Span groups keyed "name [phase]", in first-seen order.
  EXPECT_NE(r.output.find("Per-phase span time:"), std::string::npos);
  const std::size_t trial_at = r.output.find("search.trial [PSG]");
  const std::size_t restart_at = r.output.find("search.restart [HillClimb]");
  EXPECT_NE(trial_at, std::string::npos);
  EXPECT_NE(restart_at, std::string::npos);
  EXPECT_LT(trial_at, restart_at);
  // Convergence folds search.improve events per phase; the third PSG event
  // has equal worth but higher slackness, so it must win the tie-break.
  EXPECT_NE(r.output.find("Fitness convergence"), std::string::npos);
  EXPECT_NE(r.output.find("150"), std::string::npos);
  EXPECT_NE(r.output.find("0.5000"), std::string::npos);
  // Exactly the two broken lines are counted; the foreign event type is not.
  EXPECT_NE(r.output.find("skipped 2 malformed lines"), std::string::npos);
}

TEST(TraceReport, CsvModeEmitsMachineReadableRows) {
  const RunResult r = run(fixture() + " --csv");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("phase,spans,total s,mean ms,max ms"), std::string::npos)
      << r.output;
  // 0.120 + 0.080 over two spans: total 0.200 s, mean 100 ms, max 120 ms.
  EXPECT_NE(r.output.find("search.trial [PSG],2,0.200,100.000,120.000"),
            std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("phase,improvements,first worth,best worth,best slack,"
                    "t(first) s,t(best) s"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("PSG,3,120,150,0.5000,0.015,0.130"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("HillClimb,1,90,90,0.1250,0.050,0.050"),
            std::string::npos)
      << r.output;
  // CSV mode must not emit the human table headings.
  EXPECT_EQ(r.output.find("Per-phase span time:"), std::string::npos);
}

TEST(TraceReport, FullModeListsEveryImprovementEvent) {
  const RunResult r = run(fixture() + " --full");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Improvement events:"), std::string::npos) << r.output;
  // Four improvement rows, in file order: iteration 40 appears only there.
  EXPECT_NE(r.output.find("40"), std::string::npos);
}

TEST(TraceReport, AllMalformedInputFailsWithDiagnostic) {
  const std::string path = testing::TempDir() + "tsce_trace_garbage.jsonl";
  {
    std::ofstream out(path);
    out << "not json at all\n{\"t\":\"header\"}\n\n";
  }
  const RunResult r = run(path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no span or improvement records"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

TEST(TraceReport, MissingFileFails) {
  const RunResult r = run("/nonexistent/trace.jsonl");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST(TraceReport, RejectsWrongArgumentCount) {
  const RunResult no_args = run("");
  EXPECT_EQ(no_args.exit_code, 1);
  EXPECT_NE(no_args.output.find("expected exactly one trace file"),
            std::string::npos)
      << no_args.output;
}

TEST(TraceReport, ConvergenceModeEmitsCurveRows) {
  const RunResult r = run("--convergence " + fixture());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("git_sha,scenario,phase,t_s,worth,slackness"),
            std::string::npos)
      << r.output;
  // One row per improvement event, keyed by the header's commit + scenario.
  EXPECT_NE(
      r.output.find("abc123def456,highly_loaded,PSG,0.015000,120,0.250000"),
      std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("abc123def456,highly_loaded,PSG,0.130000,150,0.500000"),
      std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("abc123def456,highly_loaded,HillClimb,0.050000,90,0.125000"),
      std::string::npos)
      << r.output;
  // Span records and foreign events contribute no rows; the human table
  // headings never appear.
  EXPECT_EQ(r.output.find("Per-phase span time:"), std::string::npos);
  EXPECT_NE(r.output.find("skipped 2 malformed lines"), std::string::npos);
}

TEST(TraceReport, ConvergenceModeFoldsMultipleScenarioFiles) {
  const std::string scenario2 =
      std::string(TSCE_TOOLS_FIXTURE_DIR) + "/golden_trace_scenario2.jsonl";
  const RunResult r = run("--convergence " + fixture() + " " + scenario2);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("highly_loaded,PSG"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(
                "abc123def456,qos_limited,Annealing,0.070000,110,0.750000"),
            std::string::npos)
      << r.output;
}

TEST(TraceReport, ConvergenceModeRequiresAtLeastOneFile) {
  const RunResult r = run("--convergence");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("at least one trace file"), std::string::npos)
      << r.output;
}

// --- convergence-diff ------------------------------------------------------

std::string write_csv(const std::string& name, const std::string& rows) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << "git_sha,scenario,phase,t_s,worth,slackness\n" << rows;
  return path;
}

TEST(TraceReport, ConvergenceDiffIdenticalCurvesIsClean) {
  const std::string rows =
      "abc,highly_loaded,PSG,0.010000,100,0.100000\n"
      "abc,highly_loaded,PSG,0.050000,140,0.200000\n";
  const std::string old_csv = write_csv("diff_same_old.csv", rows);
  const std::string new_csv = write_csv("diff_same_new.csv", rows);
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no convergence regressions"), std::string::npos)
      << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffFlagsWorthAtTimeRegression) {
  // The candidate reaches the same final worth but later: at t=0.05 the
  // baseline had 140 while the candidate still sits at 100.
  const std::string old_csv = write_csv(
      "diff_reg_old.csv",
      "abc,highly_loaded,PSG,0.010000,100,0.100000\n"
      "abc,highly_loaded,PSG,0.050000,140,0.200000\n");
  const std::string new_csv = write_csv(
      "diff_reg_new.csv",
      "def,highly_loaded,PSG,0.010000,100,0.100000\n"
      "def,highly_loaded,PSG,0.090000,140,0.200000\n");
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("scenario,phase,t_s,old_worth,new_worth,delta"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("highly_loaded,PSG,0.050000,140,100,40.000000"),
            std::string::npos)
      << r.output;
  // At t=0.09 both have 140 — no row for that time point.
  EXPECT_EQ(r.output.find("0.090000"), std::string::npos) << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffToleranceAbsorbsSmallDips) {
  const std::string old_csv = write_csv(
      "diff_tol_old.csv", "abc,qos_limited,Annealing,0.020000,110,0.500000\n");
  const std::string new_csv = write_csv(
      "diff_tol_new.csv", "def,qos_limited,Annealing,0.020000,105,0.500000\n");
  const RunResult strict =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(strict.exit_code, 1) << strict.output;
  EXPECT_NE(strict.output.find("qos_limited,Annealing,0.020000,110,105,5.000000"),
            std::string::npos)
      << strict.output;
  const RunResult tolerant = run("--convergence-diff " + old_csv + " " +
                                 new_csv + " --tolerance 5");
  EXPECT_EQ(tolerant.exit_code, 0) << tolerant.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffIgnoresStartTimeJitter) {
  // The candidate's first improvement lands later on the wall clock (run-to-
  // run launch jitter); before it, its step function reads 0.  The diff must
  // compare from the later of the two starts instead of flagging the
  // baseline's head start as a full-worth regression.
  const std::string old_csv = write_csv(
      "diff_jitter_old.csv",
      "abc,highly_loaded,PSG,0.010000,100,0.100000\n"
      "abc,highly_loaded,PSG,0.050000,140,0.200000\n");
  const std::string new_csv = write_csv(
      "diff_jitter_new.csv",
      "def,highly_loaded,PSG,0.030000,100,0.100000\n"
      "def,highly_loaded,PSG,0.050000,140,0.200000\n");
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no convergence regressions"), std::string::npos)
      << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffMissingCurveIsARegression) {
  const std::string old_csv = write_csv(
      "diff_miss_old.csv",
      "abc,highly_loaded,PSG,0.010000,100,0.100000\n"
      "abc,qos_limited,PSG,0.020000,90,0.300000\n");
  const std::string new_csv = write_csv(
      "diff_miss_new.csv", "def,highly_loaded,PSG,0.010000,100,0.100000\n");
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("qos_limited,PSG,0.020000,90,0,90.000000"),
            std::string::npos)
      << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffNewExtraCurveIsFine) {
  const std::string old_csv = write_csv(
      "diff_extra_old.csv", "abc,highly_loaded,PSG,0.010000,100,0.100000\n");
  const std::string new_csv = write_csv(
      "diff_extra_new.csv",
      "def,highly_loaded,PSG,0.010000,100,0.100000\n"
      "def,lightly_loaded,PSG,0.010000,80,0.900000\n");
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, ConvergenceDiffRequiresExactlyTwoFiles) {
  const RunResult r = run("--convergence-diff one.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("exactly two"), std::string::npos) << r.output;
}

TEST(TraceReport, ConvergenceDiffMalformedCsvFails) {
  const std::string old_csv =
      write_csv("diff_bad_old.csv", "not,enough,columns\n");
  const std::string new_csv = write_csv("diff_bad_new.csv", "");
  const RunResult r =
      run("--convergence-diff " + old_csv + " " + new_csv);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("malformed row"), std::string::npos) << r.output;
  std::remove(old_csv.c_str());
  std::remove(new_csv.c_str());
}

TEST(TraceReport, MetricsSeriesModeFoldsThroughputAndTails) {
  const std::string series =
      std::string(TSCE_TOOLS_FIXTURE_DIR) + "/golden_metrics_series.jsonl";
  const RunResult r = run("--metrics-series " + series);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // RunInfo provenance from the exporter header.
  EXPECT_NE(r.output.find("git abc123def456"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("3 samples over 2.000 s"), std::string::npos)
      << r.output;
  // decode.calls went 1000 -> 5000 over 2 s: delta 4000, 2000/s.
  EXPECT_NE(r.output.find("Counter throughput"), std::string::npos);
  EXPECT_NE(r.output.find("decode.calls"), std::string::npos);
  EXPECT_NE(r.output.find("4000"), std::string::npos);
  EXPECT_NE(r.output.find("2000.0"), std::string::npos);
  // Tail table reports the last sample's HDR quantiles.
  EXPECT_NE(r.output.find("Histogram tails"), std::string::npos);
  EXPECT_NE(r.output.find("decode.latency_ns"), std::string::npos);
  EXPECT_NE(r.output.find("93000"), std::string::npos);  // p999
}

TEST(TraceReport, MetricsSeriesCsvModeEmitsMachineReadableRows) {
  const std::string series =
      std::string(TSCE_TOOLS_FIXTURE_DIR) + "/golden_metrics_series.jsonl";
  const RunResult r = run("--metrics-series --csv " + series);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("counter,first,last,delta,rate/s"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("decode.calls,1000,5000,4000,2000.0"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("histogram,count,mean,p50,p90,p99,p999,max"),
            std::string::npos)
      << r.output;
}

TEST(TraceReport, MetricsSeriesWithNoSamplesFails) {
  const std::string path = testing::TempDir() + "tsce_series_empty.jsonl";
  {
    std::ofstream out(path);
    out << "{\"t\":\"header\",\"version\":1,\"exporter\":\"metrics\"}\n";
  }
  const RunResult r = run("--metrics-series " + path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no samples"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(TraceReport, FlightRecorderDumpRendersEventsTable) {
  // A flight-recorder dump is trace-compatible JSONL: the default mode folds
  // its events into the generic Events table with provenance.
  const std::string dump =
      std::string(TSCE_TOOLS_FIXTURE_DIR) + "/golden_fr_dump.jsonl";
  const RunResult r = run(dump);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("git abc123def456"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Events:"), std::string::npos) << r.output;
  const std::size_t decode_at = r.output.find("fr.decode");
  const std::size_t reject_at = r.output.find("fr.commit.reject");
  const std::size_t anomaly_at = r.output.find("fr.anomaly");
  EXPECT_NE(decode_at, std::string::npos) << r.output;
  EXPECT_NE(reject_at, std::string::npos) << r.output;
  EXPECT_NE(anomaly_at, std::string::npos) << r.output;
  EXPECT_LT(decode_at, reject_at);  // first-seen order preserved
}

}  // namespace
