// Fixture: hot function appends only into a buffer reserved elsewhere in the
// file (the scratch-in-ctor pattern); allocations in cold functions are fine.
#include <memory>
#include <vector>

#include "util/hot.hpp"

struct Evaluator {
  std::vector<int> scratch;
  Evaluator() { scratch.reserve(64); }

  TSCE_HOT int evaluate_candidate(const std::vector<int>& xs) {
    scratch.clear();
    for (int x : xs) scratch.push_back(x);
    return static_cast<int>(scratch.size());
  }
};

// Cold setup path: allocation here must not fire the hot-path rule.
std::unique_ptr<Evaluator> make_evaluator() {
  auto e = std::make_unique<Evaluator>();
  e->scratch.push_back(1);
  return e;
}
