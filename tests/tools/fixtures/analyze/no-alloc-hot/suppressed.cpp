// Fixture: suppressed allocations (e.g. a cold first-call warmup inside an
// otherwise hot function, justified at each site).
#include <memory>
#include <vector>

#include "util/hot.hpp"

TSCE_HOT int evaluate_candidate(const std::vector<int>& xs) {
  std::vector<int> copied;
  // tsce-lint: allow(no-alloc-hot)
  for (int x : xs) copied.push_back(x);
  auto scratch = std::make_unique<std::vector<int>>(copied);  // tsce-lint: allow(no-alloc-hot)
  int* raw = new int[4];  // tsce-lint: allow(no-alloc-hot)
  const int total = static_cast<int>(scratch->size()) + raw[0];
  delete[] raw;
  return total;
}
