// Fixture: per-candidate heap allocation inside TSCE_HOT functions (the
// steady-state decode path must be allocation-free — DESIGN.md §12).
#include <memory>
#include <vector>

#include "util/hot.hpp"

TSCE_HOT int evaluate_candidate(const std::vector<int>& xs) {
  std::vector<int> copied;
  for (int x : xs) copied.push_back(x);  // no reserve anywhere in this file
  auto scratch = std::make_unique<std::vector<int>>(copied);
  int* raw = new int[4];
  const int total = static_cast<int>(scratch->size()) + raw[0];
  delete[] raw;
  return total;
}
