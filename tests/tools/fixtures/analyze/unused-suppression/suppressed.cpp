// Fixture: a deliberately-ahead-of-its-time suppression kept through a
// refactor, itself suppressed.
#include <cstdint>

// tsce-lint: allow(deterministic-rng)  tsce-lint: allow(unused-suppression)
std::uint64_t draw_seeded();
