// Fixture: a suppression that earns its keep — it absorbs a real
// deterministic-rng finding, so neither rule fires.
#include <cstdlib>

int noisy_choice(int n) { return std::rand() % n; }  // tsce-lint: allow(deterministic-rng)
