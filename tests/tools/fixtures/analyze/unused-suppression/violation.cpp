// Fixture: a suppression whose finding was fixed long ago (stale), plus one
// naming a rule that does not exist (typo).
#include <cstdint>

std::uint64_t draw_seeded();  // tsce-lint: allow(deterministic-rng)

int identity(int x) { return x; }  // tsce-lint: allow(determinstic-rng)
