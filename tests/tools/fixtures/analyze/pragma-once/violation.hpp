// Fixture: classic include guard and no #pragma once — two findings (the
// guard line and the whole-file miss).
#ifndef TSCE_FIXTURE_VIOLATION_HPP
#define TSCE_FIXTURE_VIOLATION_HPP

int answer();

#endif
