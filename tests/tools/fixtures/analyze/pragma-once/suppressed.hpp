// Fixture: a header that must keep a classic guard for an external consumer
// carries #pragma once for us plus a suppressed #ifndef.
#pragma once
#ifndef TSCE_FIXTURE_SUPPRESSED_HPP  // tsce-lint: allow(pragma-once)
#define TSCE_FIXTURE_SUPPRESSED_HPP

int answer();

#endif
