// Fixture: #pragma once, no classic guard.
#pragma once

int answer();
