// Fixture: std::rand is banned outside tests/ — randomness flows through
// util::Rng so runs replay byte-identically from a seed.
#include <cstdlib>

int noisy_choice(int n) { return std::rand() % n; }
