// Fixture: the same violation carrying a justification suppression.
#include <cstdlib>

// Seeding an opaque third-party API; replay covered by the golden test.
int noisy_choice(int n) { return std::rand() % n; }  // tsce-lint: allow(deterministic-rng)
