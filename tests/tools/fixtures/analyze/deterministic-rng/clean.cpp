// Fixture: seeded util::Rng is the sanctioned randomness source.  The word
// "random_device" inside this comment and the string below must not fire —
// the analyzer lexes comments and literals into their own tokens.
#include <cstdint>

namespace tsce::util {
class Rng;
}

std::uint64_t draw(tsce::util::Rng& rng);

const char* kDocs = "std::random_device is banned; see deterministic-rng";
