// Fixture: suppressed value comparison (e.g. a tolerance-free UI dedupe
// where bit identity is genuinely not wanted).
struct Fitness {
  int total_worth = 0;
  double slackness = 0.0;
};

bool same_result(const Fitness& a, const Fitness& b) {
  return a.slackness == b.slackness;  // tsce-lint: allow(float-fitness-equality)
}
