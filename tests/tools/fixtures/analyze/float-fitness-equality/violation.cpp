// Fixture: raw ==/!= on a slackness double.  Fitness comparisons must be
// bit-exact (the determinism auditor serializes std::bit_cast patterns);
// value equality admits -0.0 == +0.0 and hides replay divergence.
struct Fitness {
  int total_worth = 0;
  double slackness = 0.0;
};

bool same_result(const Fitness& a, const Fitness& b) {
  return a.total_worth == b.total_worth && a.slackness == b.slackness;
}
