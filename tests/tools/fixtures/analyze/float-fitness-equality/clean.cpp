// Fixture: the sanctioned bit_cast pattern, plus comparisons the rule must
// not confuse with fitness doubles (ints, orderings, unrelated doubles).
#include <bit>
#include <cstdint>

struct Fitness {
  int total_worth = 0;
  double slackness = 0.0;
};

bool same_result(const Fitness& a, const Fitness& b) {
  return a.total_worth == b.total_worth &&
         std::bit_cast<std::uint64_t>(a.slackness) ==
             std::bit_cast<std::uint64_t>(b.slackness);
}

bool ordered(const Fitness& a, const Fitness& b) {
  return a.slackness < b.slackness;  // ordering is fine; only ==/!= are flagged
}

bool converged(double epsilon, double delta) { return delta == epsilon; }
