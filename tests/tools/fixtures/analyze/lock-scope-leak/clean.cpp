// Fixture: the guard lives and dies inside the function that took it — the
// critical section is exactly the lexical scope the analyzer credits.
#include <mutex>

class Registry {
 public:
  void prepare() {
    std::lock_guard<std::mutex> hold(mu_);
    prepared_ = true;
  }
  bool prepared() {
    std::lock_guard<std::mutex> hold(mu_);
    return prepared_;
  }

 private:
  std::mutex mu_;
  bool prepared_ = false;
};
