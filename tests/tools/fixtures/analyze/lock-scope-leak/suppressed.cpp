// Fixture: the same escaping guard as violation.cpp, justified — acquire()
// is a deliberate scoped-lock factory (the caller-owns-the-critical-section
// idiom) and its callers are audited by hand.
#include <mutex>

class Registry {
 public:
  std::unique_lock<std::mutex> acquire() {
    std::unique_lock<std::mutex> hold(mu_);
    prepared_ = true;
    // Deliberate scoped-lock factory; callers own the critical section.
    // tsce-lint: allow(lock-scope-leak)
    return hold;
  }

 private:
  std::mutex mu_;
  bool prepared_ = false;
};
