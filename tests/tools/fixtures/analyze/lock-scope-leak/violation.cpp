// Fixture: acquire() hands its unique_lock to the caller — the analyzer
// credits the lock to this scope, so every lockset derived from it would be
// wrong the moment the guard escapes.
#include <mutex>

class Registry {
 public:
  std::unique_lock<std::mutex> acquire() {
    std::unique_lock<std::mutex> hold(mu_);
    prepared_ = true;
    return hold;  // guard escapes its credited scope
  }

 private:
  std::mutex mu_;
  bool prepared_ = false;
};
