// Fixture: range-for over an unordered_map appending to a returned vector —
// the emitted order depends on the hash table's bucket layout, which varies
// across libstdc++ versions and seeds, so downstream byte-identical replay
// breaks.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<int> deployed_worths(
    const std::unordered_map<std::string, int>& worth_by_name) {
  std::vector<int> out;
  for (const auto& [name, worth] : worth_by_name) {
    out.push_back(worth);
  }
  return out;
}
