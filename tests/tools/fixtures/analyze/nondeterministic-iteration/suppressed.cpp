// Fixture: suppression on its own comment line above the loop (the
// justification-comment form).
#include <string>
#include <unordered_map>
#include <vector>

std::vector<int> deployed_worths(
    const std::unordered_map<std::string, int>& worth_by_name) {
  std::vector<int> out;
  // Caller sorts before use; order does not escape.  tsce-lint: allow(nondeterministic-iteration)
  for (const auto& [name, worth] : worth_by_name) {
    out.push_back(worth);
  }
  return out;
}
