// Fixture: the deterministic idiom — snapshot the keys, sort, iterate the
// sorted copy.  The collection loop appends in hash order, but the analyzer
// sees the std::sort that canonicalizes `names` afterwards and stays quiet.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<int> deployed_worths(
    const std::unordered_map<std::string, int>& worth_by_name) {
  std::vector<std::string> names;
  names.reserve(worth_by_name.size());
  for (const auto& [name, worth] : worth_by_name) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  std::vector<int> out;
  for (const std::string& name : names) {
    out.push_back(worth_by_name.at(name));
  }
  return out;
}
