// Fixture: suppressed capture (single-worker pool, so the shared draw order
// is the submission order).
#include <cstddef>
#include <cstdint>
#include <vector>

namespace util {
struct Rng {
  std::uint64_t operator()();
  static Rng stream(std::uint64_t seed, std::uint64_t index);
};
}  // namespace util

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t count, F&& fn);
};

void shuffle_all(ThreadPool& pool, util::Rng& rng, std::vector<int>& xs) {
  pool.parallel_for(xs.size(), [&rng, &xs](std::size_t i) {  // tsce-lint: allow(rng-shared-capture)
    xs[i] = static_cast<int>(rng());
  });
}
