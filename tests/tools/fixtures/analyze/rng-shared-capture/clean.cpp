// Fixture: the BatchEvaluator seeding contract — each work item derives its
// own stream from (seed, index), so any index-to-worker schedule replays
// byte-identically.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace util {
struct Rng {
  std::uint64_t operator()();
  static Rng stream(std::uint64_t seed, std::uint64_t index);
};
}  // namespace util

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t count, F&& fn);
};

void shuffle_all(ThreadPool& pool, std::uint64_t seed, std::vector<int>& xs) {
  pool.parallel_for(xs.size(), [seed, &xs](std::size_t i) {
    util::Rng item_rng = util::Rng::stream(seed, i);
    xs[i] = static_cast<int>(item_rng());
  });
}
