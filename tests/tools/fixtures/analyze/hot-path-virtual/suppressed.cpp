// Fixture: the same dispatch, suppressed at the call site (e.g. measured and
// shown not to matter for this workload).
#include "util/hot.hpp"

struct Policy {
  virtual ~Policy() = default;
  virtual double score(int x) const = 0;
};

namespace {
double eval(const Policy& p, int x) {
  // Dispatch happens once per batch, not per candidate; measured negligible.
  // tsce-lint: allow(hot-path-virtual)
  return p.score(x);
}
}  // namespace

TSCE_HOT double decide(const Policy& p, int x) { return eval(p, x); }
