// Fixture: devirtualised variant — the hot path is typed against a concrete
// policy, so every call resolves statically and inlines.
#include "util/hot.hpp"

struct FixedPolicy {
  double weight = 2.0;
  double score(int x) const { return weight * static_cast<double>(x); }
};

namespace {
double eval(const FixedPolicy& p, int x) { return p.score(x); }
}  // namespace

TSCE_HOT double decide(const FixedPolicy& p, int x) { return eval(p, x); }
