// Fixture: vtable dispatch reached from a TSCE_HOT frame through a helper.
// The dispatch site is legal C++ everywhere else; on the hot path it defeats
// inlining and costs an indirect branch per candidate.
#include "util/hot.hpp"

struct Policy {
  virtual ~Policy() = default;
  virtual double score(int x) const = 0;
};

namespace {
double eval(const Policy& p, int x) { return p.score(x); }
}  // namespace

TSCE_HOT double decide(const Policy& p, int x) { return eval(p, x); }
