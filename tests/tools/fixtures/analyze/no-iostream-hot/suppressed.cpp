// Fixture: suppressed include (e.g. a debug-only TU).
#include <iostream>  // tsce-lint: allow(no-iostream-hot)

void report(int worth) { std::cout << worth << '\n'; }
