// Fixture: <cstdio> is the sanctioned output path in hot modules; the
// "<iostream>" spelling in this comment and the string must not fire.
#include <cstdio>

const char* kWhy = "#include <iostream> is banned here";

void report(int worth) { std::printf("%d\n", worth); }
