// Fixture: <iostream> in a hot-path module (static init cost + accidental
// sync stdio in the decode path).
#include <iostream>

void report(int worth) { std::cout << worth << '\n'; }
