// Fixture: the same cross-partition lock-free write as violation.cpp, with a
// recorded justification — the harness joins the pool before done() runs, so
// the phases never overlap and the suppression absorbs the finding.
#include <mutex>

struct Pool {
  template <typename F>
  void submit(F&& f) {
    f();
  }
};

class JobStats {
 public:
  void record(Pool& pool) {
    // The pool is joined before any reader runs; phases never overlap.
    // tsce-lint: allow(unguarded-shared-write)
    pool.submit([this] { done_ = done_ + 1; });
  }
  int done() {
    std::lock_guard<std::mutex> hold(mu_);
    return done_;
  }

 private:
  std::mutex mu_;
  int done_ = 0;
};
