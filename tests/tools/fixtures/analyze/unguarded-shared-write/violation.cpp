// Fixture: done_ is written lock-free inside a pool-submitted lambda while
// the main thread reads it under mu_ — a cross-partition plain write with an
// empty lockset on a class that clearly knows about locking (it owns mu_).
#include <mutex>

struct Pool {
  template <typename F>
  void submit(F&& f) {
    f();
  }
};

class JobStats {
 public:
  void record(Pool& pool) {
    pool.submit([this] { done_ = done_ + 1; });  // races with done()
  }
  int done() {
    std::lock_guard<std::mutex> hold(mu_);
    return done_;
  }

 private:
  std::mutex mu_;
  int done_ = 0;
};
