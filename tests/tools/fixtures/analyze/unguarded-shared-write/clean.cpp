// Fixture: the pool-side increment goes through std::atomic — atomic fields
// are exempt (the remediation the rule message recommends).
#include <atomic>

struct Pool {
  template <typename F>
  void submit(F&& f) {
    f();
  }
};

class JobStats {
 public:
  void record(Pool& pool) {
    pool.submit([this] { done_.fetch_add(1); });
  }
  int done() { return done_.load(); }

 private:
  std::atomic<int> done_{0};
};
