// Fixture: a lock_guard scope that encloses a ThreadPool::submit — the pool
// worker can dead-lock back on the same mutex, and the queue serializes
// behind the lock.
#include <mutex>

struct ThreadPool {
  template <typename F>
  void submit(F&& fn);
};

void flush(ThreadPool& pool, std::mutex& mu, int& shared) {
  std::lock_guard<std::mutex> lock(mu);
  shared += 1;
  pool.submit([] { return 1; });
}
