// Fixture: suppressed occurrence (the pool is private to the holder, so the
// re-entrancy the rule guards against cannot happen).
#include <mutex>

struct ThreadPool {
  template <typename F>
  void submit(F&& fn);
};

void flush(ThreadPool& pool, std::mutex& mu, int& shared) {
  std::lock_guard<std::mutex> lock(mu);  // tsce-lint: allow(lock-across-callback)
  shared += 1;
  pool.submit([] { return 1; });
}
