// Fixture: the fix — close the lock scope before handing work to the pool.
// A lambda merely *defined* under the lock (deferred work) is fine too.
#include <mutex>

struct ThreadPool {
  template <typename F>
  void submit(F&& fn);
};

void flush(ThreadPool& pool, std::mutex& mu, int& shared) {
  {
    std::lock_guard<std::mutex> lock(mu);
    shared += 1;
  }
  pool.submit([] { return 1; });
}
