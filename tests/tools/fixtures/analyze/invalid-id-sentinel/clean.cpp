// Fixture: the sentinel constant keeps -1 out of call sites; arithmetic
// minus-one (`size - 1`) must not fire either.
using MachineId = int;

namespace model {
inline constexpr MachineId kInvalidId = -1;  // definition site is exempt
}

bool unassigned(MachineId j) { return j == model::kInvalidId; }

int last_index(int size) { return size - 1; }
