// Fixture: suppressed occurrence (e.g. a wire-format boundary that really
// does speak -1).
using MachineId = int;

bool unassigned(MachineId j) { return j == -1; }  // tsce-lint: allow(invalid-id-sentinel)
