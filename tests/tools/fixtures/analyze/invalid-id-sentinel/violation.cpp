// Fixture: bare -1 compared against an id type; model::kInvalidId exists so
// the sentinel has one spelling everywhere.
using MachineId = int;

bool unassigned(MachineId j) { return j == -1; }
