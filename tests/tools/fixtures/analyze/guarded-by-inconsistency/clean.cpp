// Fixture: every access to total_ takes mu_ — a consistent guarded-by
// contract, so the inference has nothing to report.
#include <mutex>

class Tally {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ += v;
  }
  void reset() {
    std::lock_guard<std::mutex> hold(mu_);
    total_ = 0;
  }
  void scale(int f) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ *= f;
  }
  int snapshot() {
    std::lock_guard<std::mutex> hold(mu_);
    return total_;
  }
  int peek() {
    std::lock_guard<std::mutex> hold(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  int total_ = 0;
};
