// Fixture: total_ is guarded by mu_ at four of its five access sites — the
// lock-free peek() is the inconsistency.  The rule infers the guard from the
// majority (>= 80%) and reports the site that skipped it.
#include <mutex>

class Tally {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ += v;
  }
  void reset() {
    std::lock_guard<std::mutex> hold(mu_);
    total_ = 0;
  }
  void scale(int f) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ *= f;
  }
  int snapshot() {
    std::lock_guard<std::mutex> hold(mu_);
    return total_;
  }
  int peek() const { return total_; }  // lock-free: the 1-of-5 outlier

 private:
  std::mutex mu_;
  int total_ = 0;
};
