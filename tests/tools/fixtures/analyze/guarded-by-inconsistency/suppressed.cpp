// Fixture: same 4-of-5 guarded split as violation.cpp, with the outlier
// justified — peek() is documented as an approximate progress probe where a
// torn read is acceptable, so the suppression absorbs the finding.
#include <mutex>

class Tally {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ += v;
  }
  void reset() {
    std::lock_guard<std::mutex> hold(mu_);
    total_ = 0;
  }
  void scale(int f) {
    std::lock_guard<std::mutex> hold(mu_);
    total_ *= f;
  }
  int snapshot() {
    std::lock_guard<std::mutex> hold(mu_);
    return total_;
  }
  // Approximate progress probe; a stale or torn value only skews a log line.
  // tsce-lint: allow(guarded-by-inconsistency)
  int peek() const { return total_; }

 private:
  std::mutex mu_;
  int total_ = 0;
};
