// Fixture: ticks_ is driven through the atomic API (fetch_add, load) except
// for one plain assignment — a seq_cst store in disguise whose ordering
// intent is invisible at the call site.
#include <atomic>

class Progress {
 public:
  void bump() { ticks_.fetch_add(1); }
  void reset() { ticks_ = 0; }  // plain store amid atomic calls
  int ticks() { return ticks_.load(); }

 private:
  std::atomic<int> ticks_{0};
};
