// Fixture: every access to ticks_ spells its atomic operation — the memory
// ordering is explicit at each site, so there is nothing to report.
#include <atomic>

class Progress {
 public:
  void bump() { ticks_.fetch_add(1); }
  void reset() { ticks_.store(0); }
  int ticks() { return ticks_.load(); }

 private:
  std::atomic<int> ticks_{0};
};
