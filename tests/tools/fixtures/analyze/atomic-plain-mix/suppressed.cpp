// Fixture: same atomic/plain mix as violation.cpp with the plain store
// justified — reset() runs single-threaded between benchmark repetitions, and
// the implicit seq_cst store is the intended semantics.
#include <atomic>

class Progress {
 public:
  void bump() { ticks_.fetch_add(1); }
  // Runs between repetitions, single-threaded; implicit seq_cst is intended.
  // tsce-lint: allow(atomic-plain-mix)
  void reset() { ticks_ = 0; }
  int ticks() { return ticks_.load(); }

 private:
  std::atomic<int> ticks_{0};
};
