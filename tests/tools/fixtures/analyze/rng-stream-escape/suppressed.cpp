// Fixture: the same escape, suppressed at the flagged definition (consume's
// signature line) with a justification.
#include <cstddef>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
// Single-threaded pool in this configuration; order is deterministic.
// tsce-lint: allow(rng-stream-escape)
double consume(tsce::util::Rng& rng) { return rng.uniform(); }
}  // namespace

struct Engine {
  tsce::util::Rng rng_;
  double sum_ = 0.0;

  void step(std::size_t i) {
    sum_ += consume(rng_) + static_cast<double>(i);
  }

  void run(tsce::util::ThreadPool& pool) {
    pool.parallel_for(8, [this](std::size_t i) { step(i); });
  }
};
