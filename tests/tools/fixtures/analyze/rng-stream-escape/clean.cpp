// Fixture: the submission site derives a per-item stream (util::Rng::stream)
// and hands the derived engine down, so downstream Rng& parameters are fed
// schedule-independent randomness.
#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
double consume(tsce::util::Rng& rng) { return rng.uniform(); }
}  // namespace

struct Engine {
  std::uint64_t seed_ = 42;
  double sum_ = 0.0;

  void run(tsce::util::ThreadPool& pool) {
    pool.parallel_for(8, [this](std::size_t i) {
      tsce::util::Rng rng = tsce::util::Rng::stream(seed_, i);
      sum_ += consume(rng);
    });
  }
};
