// Fixture: a shared Rng reaches thread-pool work through a call chain.  The
// per-file rng-shared-capture rule sees only the lambda's captures ([this]
// here, so nothing); the taint escapes through step() into consume(Rng&).
#include <cstddef>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
double consume(tsce::util::Rng& rng) { return rng.uniform(); }
}  // namespace

struct Engine {
  tsce::util::Rng rng_;
  double sum_ = 0.0;

  void step(std::size_t i) {
    sum_ += consume(rng_) + static_cast<double>(i);
  }

  void run(tsce::util::ThreadPool& pool) {
    pool.parallel_for(8, [this](std::size_t i) { step(i); });
  }
};
