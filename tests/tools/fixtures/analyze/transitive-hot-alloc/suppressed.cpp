// Fixture: the same transitively-hot allocations, each carrying a justified
// suppression (e.g. a documented cold first-touch path).
#include <vector>

#include "util/hot.hpp"

namespace {
void widen(std::vector<int>& out, int x) {
  // tsce-lint: allow(transitive-hot-alloc)
  out.push_back(x);
  int* raw = new int[2];  // tsce-lint: allow(transitive-hot-alloc)
  raw[0] = x;
  // tsce-lint: allow(transitive-hot-alloc)
  out.push_back(raw[0] + raw[1]);
  delete[] raw;
}
}  // namespace

TSCE_HOT int evaluate_candidate(std::vector<int>& scratch, int x) {
  widen(scratch, x);
  return static_cast<int>(scratch.size());
}
