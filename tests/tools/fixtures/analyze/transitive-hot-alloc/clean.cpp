// Fixture: the helper appends only into a buffer reserved in this file (the
// scratch-in-ctor pattern), and allocation in a function NOT reachable from
// any hot frame stays legal.
#include <vector>

#include "util/hot.hpp"

struct Evaluator {
  std::vector<int> scratch;
  Evaluator() { scratch.reserve(64); }

  // Helper without a TSCE_HOT annotation, reached from the hot frame below.
  void widen(int x) { scratch.push_back(x); }

  TSCE_HOT int evaluate_candidate(int x) {
    widen(x);
    return static_cast<int>(scratch.size());
  }
};

// Cold setup path, unreachable from any TSCE_HOT frame.
std::vector<int>* make_buffer() { return new std::vector<int>(); }
