// Fixture: allocations in a helper that is NOT annotated TSCE_HOT but is
// reachable from a hot frame through the call graph — invisible to the
// per-file no-alloc-hot rule, caught by transitive-hot-alloc.
#include <vector>

#include "util/hot.hpp"

namespace {
void widen(std::vector<int>& out, int x) {
  out.push_back(x);  // no reserve anywhere in this file
  int* raw = new int[2];
  raw[0] = x;
  out.push_back(raw[0] + raw[1]);
  delete[] raw;
}
}  // namespace

TSCE_HOT int evaluate_candidate(std::vector<int>& scratch, int x) {
  widen(scratch, x);
  return static_cast<int>(scratch.size());
}
