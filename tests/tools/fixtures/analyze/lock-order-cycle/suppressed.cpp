// Fixture: the same ABBA cycle, suppressed at the witness edge (the first
// acquisition site of the cycle in file order) with a justification.
#include <mutex>

struct Ledger {
  std::mutex a_;
  std::mutex b_;
  int balance = 0;

  void credit_leaf() {
    std::lock_guard<std::mutex> hold(b_);
    ++balance;
  }
  void debit_leaf() {
    std::lock_guard<std::mutex> hold(a_);
    --balance;
  }
  void forward() {
    std::lock_guard<std::mutex> hold(a_);
    // Callers are serialized by construction (single writer thread).
    // tsce-lint: allow(lock-order-cycle)
    credit_leaf();
  }
  void backward() {
    std::lock_guard<std::mutex> hold(b_);
    debit_leaf();
  }
};
