// Fixture: two mutexes acquired in opposite orders along two call chains —
// the classic ABBA deadlock.  Neither function is wrong in isolation; only
// composing lock sets along call edges exposes the cycle.
#include <mutex>

struct Ledger {
  std::mutex a_;
  std::mutex b_;
  int balance = 0;

  void credit_leaf() {
    std::lock_guard<std::mutex> hold(b_);
    ++balance;
  }
  void debit_leaf() {
    std::lock_guard<std::mutex> hold(a_);
    --balance;
  }
  void forward() {
    std::lock_guard<std::mutex> hold(a_);
    credit_leaf();  // acquires b_ while holding a_
  }
  void backward() {
    std::lock_guard<std::mutex> hold(b_);
    debit_leaf();  // acquires a_ while holding b_
  }
};
