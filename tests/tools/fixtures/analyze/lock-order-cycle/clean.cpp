// Fixture: both call chains acquire the two mutexes in the same global order
// (a_ before b_), so the composed lock-order graph is acyclic.
#include <mutex>

struct Ledger {
  std::mutex a_;
  std::mutex b_;
  int balance = 0;

  void credit_leaf() {
    std::lock_guard<std::mutex> hold(b_);
    ++balance;
  }
  void forward() {
    std::lock_guard<std::mutex> hold(a_);
    credit_leaf();  // a_ -> b_
  }
  void audit() {
    std::lock_guard<std::mutex> first(a_);
    std::lock_guard<std::mutex> second(b_);  // a_ -> b_ again: same order
    balance *= 2;
  }
};
