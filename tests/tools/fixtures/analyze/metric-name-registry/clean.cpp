// Fixture: names referenced from the registry constant, never spelled
// inline.
struct Counter {
  void add(long long n);
};
struct Registry {
  Counter& counter(const char* name);
};

namespace names {
inline constexpr const char* kDecodeCalls = "decode.calls";
}

void record(Registry& registry) {
  registry.counter(names::kDecodeCalls).add(1);
}
