// Fixture: a miniature src/obs/names.hpp — its string literals are the
// registered metric/trace names for the bench_names.cpp fixture.
#pragma once

namespace names {
inline constexpr const char* kDecodeCalls = "decode.calls";
inline constexpr const char* kDecodeLatencyNs = "decode.latency_ns";
}  // namespace names
