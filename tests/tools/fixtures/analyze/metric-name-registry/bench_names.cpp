// Fixture: literal metric names under bench/ checked against the registered
// name set (--names).  "decode.calls" is registered and passes;
// "decode.rogue_series" is not and is a finding.
struct Counter {
  void add(long long n);
};
struct Registry {
  Counter& counter(const char* name);
};

void record(Registry& registry) {
  registry.counter("decode.calls").add(1);
  registry.counter("decode.rogue_series").add(1);
}
