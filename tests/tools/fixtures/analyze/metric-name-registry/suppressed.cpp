// Fixture: suppressed literal (e.g. a one-off migration shim).
struct Counter {
  void add(long long n);
};
struct Registry {
  Counter& counter(const char* name);
};

void record(Registry& registry) {
  registry.counter("decode.calls").add(1);  // tsce-lint: allow(metric-name-registry)
}
