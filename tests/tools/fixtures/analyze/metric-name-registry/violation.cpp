// Fixture: metric name as a string literal at the call site — names must
// come from the src/obs/names.hpp registry so trace_report and dashboards
// share one namespace.
struct Counter {
  void add(long long n);
};
struct Registry {
  Counter& counter(const char* name);
};

void record(Registry& registry) { registry.counter("decode.calls").add(1); }
