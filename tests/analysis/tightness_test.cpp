#include "analysis/tightness.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;

TEST(Tightness, ExactSameMachine) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  // (2 + 0 + 4) / 30.
  EXPECT_DOUBLE_EQ(relative_tightness(m, a, 0), 0.2);
}

TEST(Tightness, ExactAcrossMachinesIncludesTransfer) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  // (2 + 0.8/8 + 4) / 30 = 6.1 / 30.
  EXPECT_DOUBLE_EQ(relative_tightness(m, a, 0), 6.1 / 30.0);
}

TEST(Tightness, ApproxUsesAverages) {
  const SystemModel m = testing::two_machine_system();
  // avg inverse bandwidth = (1/8 + 1/8) / 4 = 1/16.
  // s0: (2 + 0.8/16 + 4) / 30; s1: (5 + 0.4/16 + 2) / 50.
  EXPECT_DOUBLE_EQ(approx_tightness(m, 0), 6.05 / 30.0);
  EXPECT_DOUBLE_EQ(approx_tightness(m, 1), 7.025 / 50.0);
}

TEST(Tightness, ApproxRanksTighterStringHigher) {
  const SystemModel m = testing::two_machine_system();
  EXPECT_GT(approx_tightness(m, 0), approx_tightness(m, 1));
}

TEST(Tightness, SingleAppString) {
  const SystemModel m = testing::minimal_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  EXPECT_DOUBLE_EQ(relative_tightness(m, a, 0), 0.3);  // 3 / 10
  EXPECT_DOUBLE_EQ(approx_tightness(m, 0), 0.3);
}

TEST(Tightness, HigherPriorityStrictOrder) {
  EXPECT_TRUE(higher_priority(0.5, 1, 0.4, 0));
  EXPECT_FALSE(higher_priority(0.4, 0, 0.5, 1));
  // Exact tie: lower string id wins.
  EXPECT_TRUE(higher_priority(0.5, 0, 0.5, 1));
  EXPECT_FALSE(higher_priority(0.5, 1, 0.5, 0));
}

TEST(Tightness, PriorityIsAsymmetric) {
  // For any pair exactly one direction holds.
  for (const auto& [tz, z, tk, k] :
       {std::tuple{0.3, 0, 0.3, 1}, std::tuple{0.1, 2, 0.9, 3}}) {
    EXPECT_NE(higher_priority(tz, z, tk, k), higher_priority(tk, k, tz, z));
  }
}

}  // namespace
}  // namespace tsce::analysis
