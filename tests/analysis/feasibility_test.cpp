#include "analysis/feasibility.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

Allocation all_on_machine(const SystemModel& m, model::MachineId j) {
  Allocation a(m);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    for (std::size_t i = 0; i < m.strings[k].size(); ++i) {
      a.assign(static_cast<model::StringId>(k), static_cast<model::AppIndex>(i), j);
    }
    a.set_deployed(static_cast<model::StringId>(k), true);
  }
  return a;
}

TEST(Feasibility, TwoMachineSystemOnOneMachineIsFeasible) {
  const SystemModel m = testing::two_machine_system();
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  EXPECT_TRUE(report.stage_one_ok);
  EXPECT_TRUE(report.stage_two_ok);
  EXPECT_TRUE(report.feasible());
  EXPECT_TRUE(report.violations.empty());
}

TEST(Feasibility, StageOneDetectsMachineOverload) {
  // Three strings, each needing 0.4 CPU on the single machine: 1.2 > 1.
  SystemModelBuilder b(1);
  for (int k = 0; k < 3; ++k) {
    b.begin_string(10.0, 1000.0, Worth::kLow);
    b.add_app(4.0, 1.0, 0.0);
  }
  const SystemModel m = b.build();
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  EXPECT_FALSE(report.stage_one_ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kMachineOverload);
  EXPECT_NEAR(report.violations.front().value, 1.2, 1e-12);
}

TEST(Feasibility, StageOneDetectsRouteOverload) {
  // One string pushing 2 Mb per 1 s period over a 1 Mb/s route.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);
  b.begin_string(1.0, 1000.0, Worth::kLow);
  b.add_app(0.5, 0.5, 250.0);  // 250 KB = 2 Mb
  b.add_app(0.5, 0.5, 0.0);
  const SystemModel m = b.build();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  const auto report = check_feasibility(m, a);
  EXPECT_FALSE(report.stage_one_ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kRouteOverload);
  EXPECT_NEAR(report.violations.front().value, 2.0, 1e-12);
}

TEST(Feasibility, ModerateSharingStaysFeasible) {
  // Low utilizations and relaxed QoS: both stages pass despite CPU sharing.
  model::SystemModel m =
      model::SystemModelBuilder(1)
          .begin_string(20.0, 15.0, Worth::kHigh, "tight")
          .add_app(10.0, 0.9, 0.0)
          .begin_string(5.0, 1000.0, Worth::kLow, "loose")
          .add_app(2.0, 0.2, 0.0)
          .build();
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  // Stage 1: 10*0.9/20 + 2*0.2/5 = 0.53 <= 1.
  // Stage 2: t_comp[loose] = 2 + (5/20)*9 = 4.25 <= P = 5, latency fine.
  EXPECT_TRUE(report.feasible());
}

TEST(Feasibility, StageTwoLatencyViolation) {
  // Loose string meets throughput (t_comp <= P) but misses its latency bound.
  model::SystemModel m =
      model::SystemModelBuilder(1)
          .begin_string(20.0, 15.0, Worth::kHigh, "tight")
          .add_app(10.0, 0.9, 0.0)
          .begin_string(5.0, 4.0, Worth::kLow, "loose")
          .add_app(2.0, 0.2, 0.0)
          .build();
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  EXPECT_TRUE(report.stage_one_ok);
  EXPECT_FALSE(report.stage_two_ok);
  // t_comp[loose] = 2 + (5/20)*10*0.9 = 4.25 <= P=5 but > Lmax=4.
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kLatency);
  EXPECT_NEAR(report.violations.front().value, 4.25, 1e-12);
  EXPECT_NEAR(report.violations.front().bound, 4.0, 1e-12);
}

TEST(Feasibility, StageTwoCompThroughputViolation) {
  model::SystemModel m =
      model::SystemModelBuilder(1)
          .begin_string(20.0, 15.0, Worth::kHigh, "tight")
          .add_app(10.0, 0.9, 0.0)
          .begin_string(3.0, 1000.0, Worth::kLow, "loose")
          .add_app(2.0, 0.2, 0.0)
          .build();
  // t_comp[loose] = 2 + (3/20)*9 = 3.35 > P = 3.
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  EXPECT_TRUE(report.stage_one_ok);
  EXPECT_FALSE(report.stage_two_ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kCompThroughput);
  EXPECT_NEAR(report.violations.front().value, 3.35, 1e-12);
}

TEST(Feasibility, EmptyAllocationIsFeasible) {
  const SystemModel m = testing::two_machine_system();
  const Allocation a(m);
  EXPECT_TRUE(check_feasibility(m, a).feasible());
}

TEST(Feasibility, BoundaryUtilizationExactlyOnePasses) {
  // Two apps using exactly the full CPU: U = 1.0 must pass (<= with eps).
  SystemModelBuilder b(1);
  b.begin_string(4.0, 1000.0, Worth::kLow);
  b.add_app(2.0, 1.0, 0.0);
  b.begin_string(4.0, 2000.0, Worth::kLow);
  b.add_app(2.0, 1.0, 0.0);
  const SystemModel m = b.build();
  const auto report = check_feasibility(m, all_on_machine(m, 0));
  EXPECT_TRUE(report.stage_one_ok);
  // Lower-priority string: t_comp = 2 + 2 = 4 = P exactly: still feasible.
  EXPECT_TRUE(report.stage_two_ok) << "boundary t_comp == P must pass";
}

TEST(Feasibility, ViolationToStringIsInformative) {
  Violation v{ViolationKind::kLatency, 3, -1, -1, -1, 12.5, 10.0};
  const std::string repr = v.to_string();
  EXPECT_NE(repr.find("string 3"), std::string::npos);
  EXPECT_NE(repr.find("12.5"), std::string::npos);
}

TEST(Feasibility, WithinToleratesRounding) {
  EXPECT_TRUE(within(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(within(1.0 + 1e-6, 1.0));
  EXPECT_TRUE(within(0.0, 0.0));
}

}  // namespace
}  // namespace tsce::analysis
