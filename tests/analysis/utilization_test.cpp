#include "analysis/utilization.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;

// two_machine_system() hand-computed utilization contributions:
//   a0: 2*0.5/10  = 0.1      a1: 4*1.0/10  = 0.4
//   b0: 5*0.8/20  = 0.2      b1: 2*0.25/20 = 0.025
//   a0 transfer (100 KB / P=10 over 8 Mb/s): 0.8/10/8   = 0.01
//   b0 transfer (50 KB / P=20 over 8 Mb/s):  0.4/20/8   = 0.0025

TEST(Utilization, MachineDeltaMatchesHandComputation) {
  const SystemModel m = testing::two_machine_system();
  UtilizationState util(m);
  EXPECT_DOUBLE_EQ(util.machine_delta(0, 0, 0), 0.1);
  EXPECT_DOUBLE_EQ(util.machine_delta(0, 1, 0), 0.4);
  EXPECT_DOUBLE_EQ(util.machine_delta(1, 0, 1), 0.2);
  EXPECT_DOUBLE_EQ(util.machine_delta(1, 1, 1), 0.025);
}

TEST(Utilization, RouteDeltaMatchesHandComputation) {
  const SystemModel m = testing::two_machine_system();
  UtilizationState util(m);
  EXPECT_DOUBLE_EQ(util.route_delta(0, 0, 0, 1), 0.01);
  EXPECT_DOUBLE_EQ(util.route_delta(1, 0, 1, 0), 0.0025);
  EXPECT_DOUBLE_EQ(util.route_delta(0, 0, 1, 1), 0.0);  // intra-machine
}

TEST(Utilization, AddStringAccumulates) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  UtilizationState util(m);
  util.add_string(a, 0);
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.1);
  EXPECT_DOUBLE_EQ(util.machine_util(1), 0.4);
  EXPECT_DOUBLE_EQ(util.route_util(0, 1), 0.01);
  EXPECT_DOUBLE_EQ(util.route_util(1, 0), 0.0);
  EXPECT_EQ(util.apps_on(0).size(), 1u);
  EXPECT_EQ(util.apps_on(1).size(), 1u);
  EXPECT_EQ(util.transfers_on(0, 1).size(), 1u);
}

TEST(Utilization, SameMachineTransferNotOnRoute) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  a.set_deployed(0, true);
  UtilizationState util(m);
  util.add_string(a, 0);
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.5);
  EXPECT_DOUBLE_EQ(util.route_util(0, 1), 0.0);
  EXPECT_TRUE(util.transfers_on(0, 1).empty());
}

TEST(Utilization, RemoveStringIsExactInverse) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  a.assign(1, 0, 1);
  a.assign(1, 1, 0);
  a.set_deployed(1, true);
  UtilizationState util(m);
  util.add_string(a, 0);
  util.add_string(a, 1);
  util.remove_string(a, 1);
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.1);
  EXPECT_DOUBLE_EQ(util.machine_util(1), 0.4);
  EXPECT_DOUBLE_EQ(util.route_util(1, 0), 0.0);
  EXPECT_TRUE(util.apps_on(0).size() == 1 && util.apps_on(1).size() == 1);
}

TEST(Utilization, FromAllocationSkipsUndeployed) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  a.set_deployed(0, true);
  // String 1 assigned but NOT deployed: must not count.
  a.assign(1, 0, 1);
  a.assign(1, 1, 1);
  const auto util = UtilizationState::from_allocation(m, a);
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.5);
  EXPECT_DOUBLE_EQ(util.machine_util(1), 0.0);
}

TEST(Utilization, WhatIfQueriesDoNotMutate) {
  const SystemModel m = testing::two_machine_system();
  UtilizationState util(m);
  EXPECT_DOUBLE_EQ(util.machine_util_if(0, 0, 1), 0.4);
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.0);
  EXPECT_DOUBLE_EQ(util.route_util_if(0, 1, 0, 0), 0.01);
  EXPECT_DOUBLE_EQ(util.route_util(0, 1), 0.0);
}

TEST(Utilization, SlacknessIsMinResidualCapacity) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const auto util = UtilizationState::from_allocation(m, a);
  // Machine 0 carries everything: 0.1+0.4+0.2+0.025 = 0.725.
  EXPECT_DOUBLE_EQ(util.machine_util(0), 0.725);
  EXPECT_NEAR(util.slackness(), 0.275, 1e-12);
  EXPECT_DOUBLE_EQ(util.max_machine_util(), 0.725);
  EXPECT_DOUBLE_EQ(util.max_route_util(), 0.0);
}

TEST(Utilization, EmptySystemHasFullSlack) {
  const SystemModel m = testing::two_machine_system();
  UtilizationState util(m);
  EXPECT_DOUBLE_EQ(util.slackness(), 1.0);
}

}  // namespace
}  // namespace tsce::analysis
