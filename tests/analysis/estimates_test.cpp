#include "analysis/estimates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;

/// Deploys both strings of figure2_system on the single machine.
Allocation deploy_figure2(const SystemModel& m) {
  Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  a.assign(1, 0, 0);
  a.set_deployed(1, true);
  return a;
}

// Figure 2 of the paper: two single-app strings share one CPU; string 0 is
// relatively tighter, so its estimated time is its nominal time, while
// string 1 waits (P[2]/P[1]) * u1 * t1 on average.

TEST(Estimates, Figure2Case1EqualPeriodsFullUtilization) {
  const SystemModel m = testing::figure2_system(4.0, 4.0, 1.0);
  const Allocation a = deploy_figure2(m);
  const TimeEstimates est = estimate_all(m, a);
  EXPECT_DOUBLE_EQ(est.comp[0][0], 2.0);            // unaffected by sharing
  EXPECT_DOUBLE_EQ(est.comp[1][0], 2.0 + 2.0);      // waits a full t1
}

TEST(Estimates, Figure2Case2DoublePeriod) {
  const SystemModel m = testing::figure2_system(8.0, 4.0, 1.0);
  const Allocation a = deploy_figure2(m);
  const TimeEstimates est = estimate_all(m, a);
  // Only every other data set is delayed: waiting scales by P[2]/P[1] = 0.5.
  EXPECT_DOUBLE_EQ(est.comp[1][0], 2.0 + 0.5 * 2.0);
}

TEST(Estimates, Figure2Case3PartialUtilization) {
  const SystemModel m = testing::figure2_system(8.0, 4.0, 0.5);
  const Allocation a = deploy_figure2(m);
  const TimeEstimates est = estimate_all(m, a);
  // Waiting additionally scales by u1 = 0.5.
  EXPECT_DOUBLE_EQ(est.comp[1][0], 2.0 + 0.5 * 0.5 * 2.0);
}

TEST(Estimates, TwoMachineSystemSharedMachine) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const TimeEstimates est = estimate_all(m, a);
  // T[0] = 0.2 > T[1] = 0.14: string 0 unaffected.
  EXPECT_DOUBLE_EQ(est.comp[0][0], 2.0);
  EXPECT_DOUBLE_EQ(est.comp[0][1], 4.0);
  // String 1 waits (P1/P0) * (work of a0 + work of a1) = 2 * (1 + 4) = 10.
  EXPECT_DOUBLE_EQ(est.comp[1][0], 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(est.comp[1][1], 2.0 + 10.0);
  // Same machine: zero transfer estimates.
  EXPECT_DOUBLE_EQ(est.tran[0][0], 0.0);
  EXPECT_DOUBLE_EQ(est.tran[1][0], 0.0);
  // End-to-end latency sums.
  EXPECT_DOUBLE_EQ(est.latency(0), 6.0);
  EXPECT_DOUBLE_EQ(est.latency(1), 27.0);
}

TEST(Estimates, SeparateMachinesDoNotInteract) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  for (int i = 0; i < 2; ++i) a.assign(1, i, 1);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const TimeEstimates est = estimate_all(m, a);
  EXPECT_DOUBLE_EQ(est.comp[1][0], 5.0);
  EXPECT_DOUBLE_EQ(est.comp[1][1], 2.0);
}

TEST(Estimates, SharedRouteTransferWaiting) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  // Both strings transfer over route 0 -> 1.
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.assign(1, 0, 0);
  a.assign(1, 1, 1);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  const TimeEstimates est = estimate_all(m, a);
  // T[0] (6.1/30) > T[1] (7.05/50): string 0's transfer is undisturbed.
  EXPECT_DOUBLE_EQ(est.tran[0][0], 0.8 / 8.0);
  // String 1 transfer: 0.4/8 + (P1/P0) * 0.8/8 = 0.05 + 2 * 0.1 = 0.25.
  EXPECT_DOUBLE_EQ(est.tran[1][0], 0.05 + 2.0 * 0.1);
}

TEST(Estimates, UndeployedStringsHaveNoEstimates) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);
  a.set_deployed(0, true);
  const TimeEstimates est = estimate_all(m, a);
  EXPECT_TRUE(est.comp[1].empty());
  EXPECT_TRUE(est.tran[1].empty());
  EXPECT_TRUE(std::isnan(est.tightness[1]));
}

TEST(Estimates, SameStringAppsDoNotDelayEachOther) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 0);  // both apps of string 0 on machine 0
  a.set_deployed(0, true);
  const TimeEstimates est = estimate_all(m, a);
  EXPECT_DOUBLE_EQ(est.comp[0][0], 2.0);
  EXPECT_DOUBLE_EQ(est.comp[0][1], 4.0);
}

}  // namespace
}  // namespace tsce::analysis
