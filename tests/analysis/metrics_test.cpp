#include "analysis/metrics.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;

TEST(Metrics, TotalWorthCountsOnlyDeployed) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  EXPECT_EQ(total_worth(m, a), 0);
  a.set_deployed(0, true);  // worth 100
  EXPECT_EQ(total_worth(m, a), 100);
  a.set_deployed(1, true);  // worth 10
  EXPECT_EQ(total_worth(m, a), 110);
  a.set_deployed(0, false);
  EXPECT_EQ(total_worth(m, a), 10);
}

TEST(Metrics, SlacknessOfEmptyAllocationIsOne) {
  const SystemModel m = testing::two_machine_system();
  EXPECT_DOUBLE_EQ(system_slackness(m, Allocation(m)), 1.0);
}

TEST(Metrics, SlacknessReflectsBottleneckResource) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  a.set_deployed(0, true);
  // Machine 0 at 0.5 utilization.
  EXPECT_NEAR(system_slackness(m, a), 0.5, 1e-12);
}

TEST(Metrics, EvaluateCombinesBoth) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  for (int i = 0; i < 2; ++i) a.assign(0, i, 0);
  a.set_deployed(0, true);
  const Fitness f = evaluate(m, a);
  EXPECT_EQ(f.total_worth, 100);
  EXPECT_NEAR(f.slackness, 0.5, 1e-12);
}

TEST(Fitness, LexicographicOrdering) {
  const Fitness low_worth{10, 0.9};
  const Fitness high_worth{100, 0.1};
  EXPECT_LT(low_worth, high_worth);
  EXPECT_GT(high_worth, low_worth);

  const Fitness tie_low_slack{100, 0.1};
  const Fitness tie_high_slack{100, 0.2};
  EXPECT_LT(tie_low_slack, tie_high_slack);
  EXPECT_EQ(high_worth, tie_low_slack);
}

TEST(Fitness, DefaultIsZero) {
  const Fitness f{};
  EXPECT_EQ(f.total_worth, 0);
  EXPECT_DOUBLE_EQ(f.slackness, 0.0);
}

}  // namespace
}  // namespace tsce::analysis
