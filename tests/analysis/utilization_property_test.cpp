/// Property test for the arena-backed UtilizationState (DESIGN.md §12):
/// random interleaved add_string / remove_strings / snapshot / restore
/// sequences must stay bit-identical to a from-scratch from_allocation
/// rebuild that replays the surviving deployment order.  Every utilization is
/// maintained as a left fold over its resident slab, so the live state, the
/// replayed rebuild, and a restored snapshot can never drift apart — not even
/// in the last ulp.  The id-ordered from_allocation overload agrees up to
/// float re-association only (different fold order), which is also pinned
/// down here so the contract stays documented by a failing test if it drifts.

#include "analysis/utilization.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Everything needed to resume (and cross-check) a saved state: the arena
/// snapshot plus the shadow allocation / deployment order that produced it,
/// and the raw utilization values observed at capture time.
struct SavedState {
  util::ArenaSnapshot snap;
  Allocation alloc;
  std::vector<StringId> deploy_order;
  std::vector<double> machine_util;
  std::vector<double> route_util;
  double slackness = 0.0;
};

class Driver {
 public:
  Driver(const SystemModel& m, std::uint64_t seed)
      : m_(m), alloc_(m), util_(m), rng_(seed) {}

  void run(int ops) {
    for (int op = 0; op < ops; ++op) {
      const auto r = rng_.bounded(10);
      if (r < 5) {
        add_random_string();
      } else if (r < 7) {
        remove_random_subset();
      } else if (r < 9 || saved_.empty()) {
        save_snapshot();
      } else {
        restore_random_snapshot();
      }
      verify();
    }
  }

 private:
  void add_random_string() {
    std::vector<StringId> undeployed;
    for (std::size_t k = 0; k < m_.num_strings(); ++k) {
      if (!alloc_.deployed(static_cast<StringId>(k))) {
        undeployed.push_back(static_cast<StringId>(k));
      }
    }
    if (undeployed.empty()) return;
    const StringId k = undeployed[rng_.bounded(undeployed.size())];
    const auto& s = m_.strings[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < s.size(); ++i) {
      alloc_.assign(k, static_cast<AppIndex>(i),
                    static_cast<MachineId>(rng_.bounded(m_.num_machines())));
    }
    alloc_.set_deployed(k, true);
    util_.add_string(alloc_, k);
    deploy_order_.push_back(k);
  }

  void remove_random_subset() {
    std::vector<StringId> subset;
    for (auto it = deploy_order_.begin(); it != deploy_order_.end();) {
      if (rng_.bounded(3) == 0) {
        subset.push_back(*it);
        it = deploy_order_.erase(it);
      } else {
        ++it;
      }
    }
    if (subset.empty()) return;
    // remove_strings reads the assignments, so the shadow allocation is
    // cleared only after the call.
    util_.remove_strings(alloc_, subset);
    for (const StringId k : subset) {
      alloc_.set_deployed(k, false);
      alloc_.clear_string(k);
    }
  }

  void save_snapshot() {
    if (saved_.size() >= 8) return;  // bound memory, keep restores meaningful
    SavedState s{.snap = {},
                 .alloc = alloc_,
                 .deploy_order = deploy_order_,
                 .machine_util = {},
                 .route_util = {},
                 .slackness = util_.slackness()};
    util_.snapshot_into(s.snap);
    capture_utils(s.machine_util, s.route_util);
    saved_.push_back(std::move(s));
  }

  void restore_random_snapshot() {
    const SavedState& s = saved_[rng_.bounded(saved_.size())];
    util_.restore_from(s.snap);
    alloc_ = s.alloc;
    deploy_order_ = s.deploy_order;
    // The restored state must reproduce the captured observables exactly —
    // the snapshot protocol is a byte image, not a recomputation.
    std::vector<double> machine_util;
    std::vector<double> route_util;
    capture_utils(machine_util, route_util);
    for (std::size_t j = 0; j < machine_util.size(); ++j) {
      ASSERT_TRUE(bit_equal(machine_util[j], s.machine_util[j])) << "machine " << j;
    }
    for (std::size_t r = 0; r < route_util.size(); ++r) {
      ASSERT_TRUE(bit_equal(route_util[r], s.route_util[r])) << "route " << r;
    }
    ASSERT_TRUE(bit_equal(util_.slackness(), s.slackness));
  }

  void capture_utils(std::vector<double>& machine_util,
                     std::vector<double>& route_util) const {
    const auto machines = static_cast<MachineId>(m_.num_machines());
    for (MachineId j = 0; j < machines; ++j) {
      machine_util.push_back(util_.machine_util(j));
    }
    for (MachineId j1 = 0; j1 < machines; ++j1) {
      for (MachineId j2 = 0; j2 < machines; ++j2) {
        route_util.push_back(util_.route_util(j1, j2));
      }
    }
  }

  void verify() const {
    // Bit-identical against the from-scratch rebuild replaying the surviving
    // deployment order (the fold-order invariant the decode engine relies on).
    const UtilizationState replay =
        UtilizationState::from_allocation(m_, alloc_, deploy_order_);
    // Id-ordered rebuild: same resident sets, possibly different fold order —
    // equal up to re-association.
    const UtilizationState id_order = UtilizationState::from_allocation(m_, alloc_);
    const auto machines = static_cast<MachineId>(m_.num_machines());
    for (MachineId j = 0; j < machines; ++j) {
      ASSERT_TRUE(bit_equal(util_.machine_util(j), replay.machine_util(j)))
          << "machine " << j;
      ASSERT_NEAR(util_.machine_util(j), id_order.machine_util(j), 1e-9);
      const auto live = util_.apps_on(j);
      const auto rebuilt = replay.apps_on(j);
      ASSERT_EQ(live.size(), rebuilt.size()) << "machine " << j;
      for (std::size_t i = 0; i < live.size(); ++i) {
        ASSERT_TRUE(live[i] == rebuilt[i]) << "machine " << j << " slot " << i;
      }
      for (MachineId j2 = 0; j2 < machines; ++j2) {
        ASSERT_TRUE(bit_equal(util_.route_util(j, j2), replay.route_util(j, j2)))
            << "route " << j << "->" << j2;
        ASSERT_NEAR(util_.route_util(j, j2), id_order.route_util(j, j2), 1e-9);
        const auto live_t = util_.transfers_on(j, j2);
        const auto rebuilt_t = replay.transfers_on(j, j2);
        ASSERT_EQ(live_t.size(), rebuilt_t.size());
        for (std::size_t i = 0; i < live_t.size(); ++i) {
          ASSERT_TRUE(live_t[i] == rebuilt_t[i]);
        }
      }
    }
    ASSERT_TRUE(bit_equal(util_.slackness(), replay.slackness()));
    ASSERT_TRUE(bit_equal(util_.max_machine_util(), replay.max_machine_util()));
    ASSERT_TRUE(bit_equal(util_.max_route_util(), replay.max_route_util()));
  }

  const SystemModel& m_;
  Allocation alloc_;
  UtilizationState util_;
  util::Rng rng_;
  std::vector<StringId> deploy_order_;
  std::vector<SavedState> saved_;
};

class UtilizationProperty : public ::testing::TestWithParam<workload::Scenario> {};

TEST_P(UtilizationProperty, InterleavedOpsMatchFromAllocationRebuild) {
  // Scale string counts down so the per-op full rebuild stays cheap; the
  // machine count and workload shape are the paper's.
  const auto cfg = workload::GeneratorConfig::for_scenario(GetParam(), 0.4);
  util::Rng model_rng(42);
  const SystemModel m = workload::generate(cfg, model_rng);
  for (std::uint64_t seed : {7u, 1234u}) {
    Driver driver(m, seed);
    driver.run(120);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, UtilizationProperty,
                         ::testing::Values(workload::Scenario::kHighlyLoaded,
                                           workload::Scenario::kQosLimited,
                                           workload::Scenario::kLightlyLoaded),
                         [](const auto& info) {
                           switch (info.param) {
                             case workload::Scenario::kHighlyLoaded: return "HighlyLoaded";
                             case workload::Scenario::kQosLimited: return "QosLimited";
                             case workload::Scenario::kLightlyLoaded: return "LightlyLoaded";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tsce::analysis
