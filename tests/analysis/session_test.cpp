#include "analysis/session.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "model/system_model.hpp"
#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::MachineId;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Session, CommitFeasibleString) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  EXPECT_TRUE(session.try_commit(0, {0, 1}));
  EXPECT_TRUE(session.allocation().deployed(0));
  EXPECT_DOUBLE_EQ(session.util().machine_util(0), 0.1);
  EXPECT_DOUBLE_EQ(session.util().machine_util(1), 0.4);
  EXPECT_EQ(session.fitness().total_worth, 100);
}

TEST(Session, EstimatesMatchBatchComputation) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 0}));
  ASSERT_TRUE(session.try_commit(1, {0, 0}));
  const TimeEstimates batch = estimate_all(m, session.allocation());
  for (std::size_t k = 0; k < 2; ++k) {
    const auto& inc = session.comp_estimates(static_cast<model::StringId>(k));
    ASSERT_EQ(inc.size(), batch.comp[k].size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      EXPECT_DOUBLE_EQ(inc[i], batch.comp[k][i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(Session, RejectsStageOneOverload) {
  SystemModelBuilder b(1);
  for (int k = 0; k < 3; ++k) {
    b.begin_string(10.0, 1000.0, Worth::kLow);
    b.add_app(4.0, 1.0, 0.0);  // 0.4 utilization each
  }
  const SystemModel m = b.build();
  AllocationSession session(m);
  EXPECT_TRUE(session.try_commit(0, {0}));
  EXPECT_TRUE(session.try_commit(1, {0}));
  EXPECT_FALSE(session.try_commit(2, {0}));  // 1.2 > 1
  EXPECT_FALSE(session.allocation().deployed(2));
  EXPECT_DOUBLE_EQ(session.util().machine_util(0), 0.8);
}

TEST(Session, RejectsWhenNewStringBreaksExistingOne) {
  // The loose string is feasible alone; the tighter one, added later, steals
  // priority and pushes the loose string over its latency bound.
  const SystemModel m =
      SystemModelBuilder(1)
          .begin_string(20.0, 15.0, Worth::kHigh, "tight")
          .add_app(10.0, 0.9, 0.0)
          .begin_string(5.0, 4.0, Worth::kLow, "loose")
          .add_app(2.0, 0.2, 0.0)
          .build();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(1, {0}));  // loose alone: latency 2 <= 4
  EXPECT_FALSE(session.try_commit(0, {0}));  // would make loose 4.25 > 4
  EXPECT_TRUE(session.allocation().deployed(1));
  EXPECT_FALSE(session.allocation().deployed(0));
}

TEST(Session, RollbackRestoresEstimates) {
  const SystemModel m =
      SystemModelBuilder(1)
          .begin_string(20.0, 15.0, Worth::kHigh, "tight")
          .add_app(10.0, 0.9, 0.0)
          .begin_string(5.0, 4.0, Worth::kLow, "loose")
          .add_app(2.0, 0.2, 0.0)
          .build();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(1, {0}));
  const double before = session.comp_estimates(1)[0];
  ASSERT_FALSE(session.try_commit(0, {0}));
  EXPECT_DOUBLE_EQ(session.comp_estimates(1)[0], before);
  // Utilization restored too.
  EXPECT_DOUBLE_EQ(session.util().machine_util(0), 2.0 * 0.2 / 5.0);
}

TEST(Session, FitnessTracksWorthAndSlackness) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  EXPECT_EQ(session.fitness().total_worth, 0);
  EXPECT_DOUBLE_EQ(session.fitness().slackness, 1.0);
  ASSERT_TRUE(session.try_commit(0, {0, 0}));
  EXPECT_EQ(session.fitness().total_worth, 100);
  EXPECT_NEAR(session.fitness().slackness, 0.5, 1e-12);
  ASSERT_TRUE(session.try_commit(1, {1, 1}));
  EXPECT_EQ(session.fitness().total_worth, 110);
  EXPECT_NEAR(session.fitness().slackness, 0.5, 1e-12);
}

TEST(Session, ResetClearsEverything) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  session.reset();
  EXPECT_EQ(session.fitness().total_worth, 0);
  EXPECT_DOUBLE_EQ(session.util().machine_util(0), 0.0);
  EXPECT_FALSE(session.allocation().deployed(0));
  // Can commit again after reset.
  EXPECT_TRUE(session.try_commit(0, {0, 1}));
}

TEST(Session, UncommitRestoresPreviousState) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 0}));
  const double slack_before = session.fitness().slackness;
  const double comp_before = session.comp_estimates(0)[0];
  ASSERT_TRUE(session.try_commit(1, {0, 0}));
  session.uncommit(1);
  EXPECT_FALSE(session.allocation().deployed(1));
  EXPECT_TRUE(session.allocation().deployed(0));
  EXPECT_NEAR(session.fitness().slackness, slack_before, 1e-12);
  EXPECT_DOUBLE_EQ(session.comp_estimates(0)[0], comp_before);
  EXPECT_EQ(session.fitness().total_worth, 100);
}

TEST(Session, UncommitRestoresLowerPriorityEstimates) {
  // Removing the tighter string must give the looser one its waiting back.
  const SystemModel m = testing::figure2_system(4.0, 4.0, 1.0);
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(1, {0}));  // loose alone: comp = 2
  EXPECT_DOUBLE_EQ(session.comp_estimates(1)[0], 2.0);
  ASSERT_TRUE(session.try_commit(0, {0}));  // now loose waits: comp = 4
  EXPECT_DOUBLE_EQ(session.comp_estimates(1)[0], 4.0);
  session.uncommit(0);
  EXPECT_DOUBLE_EQ(session.comp_estimates(1)[0], 2.0);
}

TEST(Session, UncommitThenRecommitIsIdempotent) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  const auto fitness = session.fitness();
  session.uncommit(1);
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  EXPECT_EQ(session.fitness().total_worth, fitness.total_worth);
  EXPECT_NEAR(session.fitness().slackness, fitness.slackness, 1e-12);
}

/// Two machines, four low-utilization strings with cross-machine transfers:
/// every commit order and machine split below is feasible, so the rollback
/// tests can focus on state restoration.
SystemModel four_string_system() {
  return SystemModelBuilder(2)
      .uniform_bandwidth(8.0)
      .begin_string(10.0, 100.0, Worth::kHigh, "s0")
      .add_app(1.0, 0.5, 20.0, "a0")
      .add_app(0.5, 1.0, 0.0, "a1")
      .begin_string(20.0, 200.0, Worth::kMedium, "s1")
      .add_app(2.0, 0.4, 10.0, "b0")
      .add_app(1.0, 0.5, 0.0, "b1")
      .begin_string(25.0, 250.0, Worth::kLow, "s2")
      .add_app(1.5, 0.6, 15.0, "c0")
      .add_app(0.5, 0.8, 0.0, "c1")
      .begin_string(40.0, 400.0, Worth::kMedium, "s3")
      .add_app(3.0, 0.3, 5.0, "d0")
      .add_app(1.0, 0.4, 0.0, "d1")
      .build();
}

/// Exact (bitwise, via operator==) state comparison: utilization of every
/// machine and route, fitness, and the cached eq. (5)-(6) estimates of every
/// deployed string.  This is the rollback invariant the prefix-reuse decode
/// depends on, so plain EXPECT_EQ on doubles is intentional.
void expect_states_identical(const AllocationSession& a,
                             const AllocationSession& b,
                             const SystemModel& m) {
  const auto machines = static_cast<MachineId>(m.num_machines());
  for (MachineId j = 0; j < machines; ++j) {
    EXPECT_EQ(a.util().machine_util(j), b.util().machine_util(j)) << "machine " << j;
    for (MachineId j2 = 0; j2 < machines; ++j2) {
      EXPECT_EQ(a.util().route_util(j, j2), b.util().route_util(j, j2))
          << "route " << j << "->" << j2;
    }
  }
  EXPECT_EQ(a.fitness().total_worth, b.fitness().total_worth);
  EXPECT_EQ(a.fitness().slackness, b.fitness().slackness);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    const auto id = static_cast<model::StringId>(k);
    ASSERT_EQ(a.allocation().deployed(id), b.allocation().deployed(id)) << "k=" << k;
    if (!a.allocation().deployed(id)) continue;
    const auto& ca = a.comp_estimates(id);
    const auto& cb = b.comp_estimates(id);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i], cb[i]) << "comp k=" << k << " i=" << i;
    }
    const auto& ta = a.tran_estimates(id);
    const auto& tb = b.tran_estimates(id);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i], tb[i]) << "tran k=" << k << " i=" << i;
    }
  }
}

TEST(Session, NonLifoUncommitMatchesFromScratch) {
  const SystemModel m = four_string_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  ASSERT_TRUE(session.try_commit(2, {0, 0}));
  ASSERT_TRUE(session.try_commit(3, {1, 1}));
  session.uncommit(1);  // middle of the commit history, not the top

  AllocationSession fresh(m);
  ASSERT_TRUE(fresh.try_commit(0, {0, 1}));
  ASSERT_TRUE(fresh.try_commit(2, {0, 0}));
  ASSERT_TRUE(fresh.try_commit(3, {1, 1}));
  expect_states_identical(session, fresh, m);
  EXPECT_TRUE(check_feasibility(m, session.allocation()).feasible());
}

TEST(Session, CommitUncommitRecommitRoundTripBitIdentical) {
  const SystemModel m = four_string_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  ASSERT_TRUE(session.try_commit(2, {0, 0}));
  session.uncommit(2);
  session.uncommit(1);
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  ASSERT_TRUE(session.try_commit(2, {0, 0}));

  AllocationSession fresh(m);
  ASSERT_TRUE(fresh.try_commit(0, {0, 1}));
  ASSERT_TRUE(fresh.try_commit(1, {1, 0}));
  ASSERT_TRUE(fresh.try_commit(2, {0, 0}));
  expect_states_identical(session, fresh, m);
}

TEST(Session, NonLifoRecommitMatchesReorderedHistory) {
  // Removing the oldest string and re-adding it moves its entries to the end
  // of the resident lists, so the state must equal a history that committed
  // it last (resource sums are pure functions of the resident-list order).
  const SystemModel m = four_string_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  ASSERT_TRUE(session.try_commit(2, {0, 0}));
  session.uncommit(0);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));

  AllocationSession fresh(m);
  ASSERT_TRUE(fresh.try_commit(1, {1, 0}));
  ASSERT_TRUE(fresh.try_commit(2, {0, 0}));
  ASSERT_TRUE(fresh.try_commit(0, {0, 1}));
  expect_states_identical(session, fresh, m);
}

TEST(Session, UncommitAllMatchesSequentialUncommits) {
  const SystemModel m = four_string_system();
  AllocationSession batched(m);
  AllocationSession sequential(m);
  for (AllocationSession* s : {&batched, &sequential}) {
    ASSERT_TRUE(s->try_commit(0, {0, 1}));
    ASSERT_TRUE(s->try_commit(1, {1, 0}));
    ASSERT_TRUE(s->try_commit(2, {0, 0}));
    ASSERT_TRUE(s->try_commit(3, {1, 1}));
  }
  const std::vector<model::StringId> suffix{2, 3};
  batched.uncommit_all(suffix);
  sequential.uncommit(3);
  sequential.uncommit(2);
  expect_states_identical(batched, sequential, m);

  AllocationSession fresh(m);
  ASSERT_TRUE(fresh.try_commit(0, {0, 1}));
  ASSERT_TRUE(fresh.try_commit(1, {1, 0}));
  expect_states_identical(batched, fresh, m);
}

TEST(Session, SessionResultMatchesBatchFeasibility) {
  const SystemModel m = testing::two_machine_system();
  AllocationSession session(m);
  ASSERT_TRUE(session.try_commit(0, {0, 1}));
  ASSERT_TRUE(session.try_commit(1, {1, 0}));
  const auto report = check_feasibility(m, session.allocation());
  EXPECT_TRUE(report.feasible());
}

}  // namespace
}  // namespace tsce::analysis
