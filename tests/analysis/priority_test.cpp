#include "analysis/priority.hpp"

#include <gtest/gtest.h>

#include "analysis/estimates.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/session.hpp"
#include "analysis/tightness.hpp"
#include "testing/builders.hpp"

namespace tsce::analysis {
namespace {

using model::Allocation;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

Allocation both_on_machine0(const SystemModel& m) {
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(1, 0, 0);
  a.set_deployed(0, true);
  a.set_deployed(1, true);
  return a;
}

TEST(PriorityRule, DefaultEqualsRelativeTightness) {
  const SystemModel m = testing::two_machine_system();
  Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  EXPECT_DOUBLE_EQ(
      priority_value(m, a, 0, PriorityRule::kRelativeTightness),
      relative_tightness(m, a, 0));
}

TEST(PriorityRule, RateMonotonicIsInversePeriod) {
  const SystemModel m = testing::two_machine_system();
  const Allocation a(m);
  EXPECT_DOUBLE_EQ(priority_value(m, a, 0, PriorityRule::kRateMonotonic), 0.1);
  EXPECT_DOUBLE_EQ(priority_value(m, a, 1, PriorityRule::kRateMonotonic), 0.05);
}

TEST(PriorityRule, WorthRuleUsesWorthFactor) {
  const SystemModel m = testing::two_machine_system();
  const Allocation a(m);
  EXPECT_DOUBLE_EQ(priority_value(m, a, 0, PriorityRule::kWorth), 100.0);
  EXPECT_DOUBLE_EQ(priority_value(m, a, 1, PriorityRule::kWorth), 10.0);
}

TEST(PriorityRule, ToStringNames) {
  EXPECT_STREQ(to_string(PriorityRule::kRelativeTightness), "relative-tightness");
  EXPECT_STREQ(to_string(PriorityRule::kRateMonotonic), "rate-monotonic");
  EXPECT_STREQ(to_string(PriorityRule::kWorth), "worth");
}

/// Two single-app strings where the rules disagree: string 0 has the shorter
/// period (rate-monotonic winner) but the longer relative latency budget;
/// string 1 is tighter (tightness winner) and has higher worth.
SystemModel conflicting_rules_system() {
  return SystemModelBuilder(1)
      .begin_string(/*P=*/4.0, /*Lmax=*/100.0, Worth::kLow, "fast-loose")
      .add_app(2.0, 1.0, 0.0)
      .begin_string(/*P=*/8.0, /*Lmax=*/4.0, Worth::kHigh, "slow-tight")
      .add_app(2.0, 1.0, 0.0)
      .build();
}

TEST(PriorityRule, EstimatesFollowTheChosenRule) {
  const SystemModel m = conflicting_rules_system();
  const Allocation a = both_on_machine0(m);

  // Tightness rule: string 1 (T = 0.5) preempts string 0 (T = 0.02):
  // t_comp[0] = 2 + (P0/P1)*2 = 3; t_comp[1] = 2.
  const auto tight = estimate_all(m, a, PriorityRule::kRelativeTightness);
  EXPECT_DOUBLE_EQ(tight.comp[1][0], 2.0);
  EXPECT_DOUBLE_EQ(tight.comp[0][0], 2.0 + 0.5 * 2.0);

  // Rate-monotonic: string 0 (1/4) preempts string 1 (1/8):
  // t_comp[1] = 2 + (P1/P0)*2 = 6; t_comp[0] = 2.
  const auto rm = estimate_all(m, a, PriorityRule::kRateMonotonic);
  EXPECT_DOUBLE_EQ(rm.comp[0][0], 2.0);
  EXPECT_DOUBLE_EQ(rm.comp[1][0], 2.0 + 2.0 * 2.0);

  // Worth: string 1 (100) preempts string 0 (1): same as tightness here.
  const auto worth = estimate_all(m, a, PriorityRule::kWorth);
  EXPECT_DOUBLE_EQ(worth.comp[1][0], 2.0);
  EXPECT_DOUBLE_EQ(worth.comp[0][0], 3.0);
}

TEST(PriorityRule, FeasibilityVerdictCanFlipWithTheRule) {
  // Under tightness, string 1 meets Lmax = 4 (t_comp = 2).  Under
  // rate-monotonic, string 1 waits behind string 0: t_comp = 6 > Lmax = 4.
  const SystemModel m = conflicting_rules_system();
  const Allocation a = both_on_machine0(m);
  EXPECT_TRUE(check_feasibility(m, a, PriorityRule::kRelativeTightness).feasible());
  EXPECT_FALSE(check_feasibility(m, a, PriorityRule::kRateMonotonic).feasible());
}

TEST(PriorityRule, SessionHonorsTheRule) {
  const SystemModel m = conflicting_rules_system();
  AllocationSession tight_session(m, PriorityRule::kRelativeTightness);
  EXPECT_TRUE(tight_session.try_commit(0, {0}));
  EXPECT_TRUE(tight_session.try_commit(1, {0}));

  AllocationSession rm_session(m, PriorityRule::kRateMonotonic);
  EXPECT_TRUE(rm_session.try_commit(0, {0}));
  EXPECT_FALSE(rm_session.try_commit(1, {0}))
      << "rate-monotonic preemption by string 0 must break string 1's latency";
}

}  // namespace
}  // namespace tsce::analysis
