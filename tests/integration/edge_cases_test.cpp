/// Failure injection and boundary conditions across modules: what happens at
/// the edges the happy-path suites never touch.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "core/dynamic.hpp"
#include "core/ordered.hpp"
#include "lp/upper_bound.hpp"
#include "model/serialization.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace tsce {
namespace {

using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(EdgeCases, SingleMachineSingleStringSystem) {
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 20.0, Worth::kLow)
                            .add_app(2.0, 0.5, 0.0)
                            .build();
  util::Rng rng(1);
  const auto mwf = core::MostWorthFirst{}.allocate(m, rng);
  EXPECT_EQ(mwf.fitness.total_worth, 1);
  const auto ub = lp::upper_bound_worth(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 1.0, 1e-8);
  const auto sim = sim::simulate(m, mwf.allocation, {.horizon_s = 50.0});
  EXPECT_EQ(sim.total_violations(), 0u);
}

TEST(EdgeCases, StringLongerThanMachineCount) {
  // 10-app string on 2 machines: the IMR must reuse machines heavily.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(8.0);
  b.begin_string(100.0, 10000.0, Worth::kMedium);
  for (int i = 0; i < 10; ++i) b.add_app(1.0, 0.3, i < 9 ? 20.0 : 0.0);
  const SystemModel m = b.build();
  util::Rng rng(2);
  const auto result = core::MostWorthFirst{}.allocate(m, rng);
  EXPECT_EQ(result.fitness.total_worth, 10);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(EdgeCases, UtilizationExactlyAtFullCapacity) {
  // Strings that sum to exactly 1.0 utilization: boundary must be feasible
  // and slackness must be exactly 0.
  SystemModelBuilder b(1);
  for (int k = 0; k < 4; ++k) {
    b.begin_string(10.0, 100000.0, Worth::kLow);
    b.add_app(2.5, 1.0, 0.0);  // 0.25 each
  }
  const SystemModel m = b.build();
  const auto decoded = core::decode_order(m, core::identity_order(m));
  EXPECT_EQ(decoded.strings_deployed, 4u);
  EXPECT_NEAR(decoded.fitness.slackness, 0.0, 1e-9);
}

TEST(EdgeCases, PeriodEqualToNominalTimeIsBoundaryFeasibleAlone) {
  // t == P with u = 1: the throughput constraint binds exactly.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(5.0, 5.0, Worth::kLow)
                            .add_app(5.0, 1.0, 0.0)
                            .build();
  const auto decoded = core::decode_order(m, core::identity_order(m));
  EXPECT_EQ(decoded.strings_deployed, 1u);
}

TEST(EdgeCases, SimulatorSurvivesPermanentBacklog) {
  // Infeasible deployment forced by hand: work arrives faster than the CPU
  // drains it.  The simulator must terminate (horizon/max_events), report
  // violations, and never crash.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(1.0, 2.0, Worth::kLow)
                            .add_app(3.0, 1.0, 0.0)  // 3x oversubscribed
                            .build();
  model::Allocation a(m);
  a.assign(0, 0, 0);
  a.set_deployed(0, true);
  const auto result = sim::simulate(m, a, {.horizon_s = 50.0});
  EXPECT_GT(result.apps[0][0].comp_violations, 0u);
  EXPECT_LT(result.events, 1000000u);
}

TEST(EdgeCases, ReallocateWithNothingDeployedIsANoop) {
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(5.0)
                            .begin_string(10.0, 50.0, Worth::kLow)
                            .add_app(1.0, 0.5, 0.0)
                            .build();
  const model::Allocation empty(m);
  const auto repaired = core::reallocate(m, empty);
  EXPECT_EQ(repaired.fitness.total_worth, 0);
  EXPECT_TRUE(repaired.remapped.empty());
  EXPECT_TRUE(repaired.dropped.empty());
  EXPECT_EQ(repaired.migrations, 0u);
}

TEST(EdgeCases, TruncatedJsonFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/truncated_model.json";
  {
    std::ofstream out(path);
    out << R"({"format": "tsce-model-v1", "machines": 2, "bandwidth)";
  }
  EXPECT_THROW((void)model::load_system_model(path), std::exception);
  std::remove(path.c_str());
}

TEST(EdgeCases, AllocationFileAgainstWrongModelIsRejected) {
  const SystemModel m1 = SystemModelBuilder(2)
                             .uniform_bandwidth(5.0)
                             .begin_string(10.0, 50.0, Worth::kLow)
                             .add_app(1.0, 0.5, 0.0)
                             .build();
  const SystemModel m2 = SystemModelBuilder(2)
                             .uniform_bandwidth(5.0)
                             .begin_string(10.0, 50.0, Worth::kLow)
                             .add_app(1.0, 0.5, 10.0)
                             .add_app(1.0, 0.5, 0.0)
                             .build();
  const std::string path = ::testing::TempDir() + "/mismatched_alloc.json";
  model::save_allocation(path, model::Allocation(m1));
  EXPECT_THROW((void)model::load_allocation(path, m2), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EdgeCases, GeneratorWithSingleMachine) {
  util::Rng rng(3);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 1;
  config.num_strings = 5;
  const SystemModel m = workload::generate(config, rng);
  EXPECT_TRUE(m.validate().empty());
  // All transfers are intra-machine: avg inverse bandwidth is 0 and the
  // latency/period formulas must still be positive.
  EXPECT_DOUBLE_EQ(m.network.avg_inverse_bandwidth(), 0.0);
  for (const auto& s : m.strings) {
    EXPECT_GT(s.period_s, 0.0);
    EXPECT_GT(s.max_latency_s, 0.0);
  }
  util::Rng search_rng(4);
  const auto result = core::MostWorthFirst{}.allocate(m, search_rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(EdgeCases, ZeroOutputTransfersAreFree) {
  // An inter-machine hop with a 0-KB output: no route load, no transfer time.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);
  b.begin_string(10.0, 50.0, Worth::kLow);
  b.add_app(1.0, 0.5, 0.0);  // zero-size output
  b.add_app(1.0, 0.5, 0.0);
  const SystemModel m = b.build();
  model::Allocation a(m);
  a.assign(0, 0, 0);
  a.assign(0, 1, 1);
  a.set_deployed(0, true);
  EXPECT_TRUE(analysis::check_feasibility(m, a).feasible());
  const auto est = analysis::estimate_all(m, a);
  EXPECT_DOUBLE_EQ(est.tran[0][0], 0.0);
  const auto sim = sim::simulate(m, a, {.horizon_s = 50.0});
  EXPECT_NEAR(sim.strings[0].latency_s.mean(), 2.0, 1e-9);
}

TEST(EdgeCases, HugePeriodTinyLatencyBudget) {
  // Lmax < nominal time: infeasible for every mapping; decode deploys none.
  const SystemModel m = SystemModelBuilder(3)
                            .uniform_bandwidth(5.0)
                            .begin_string(1000.0, 0.5, Worth::kHigh)
                            .add_app(2.0, 0.5, 0.0)
                            .build();
  const auto decoded = core::decode_order(m, core::identity_order(m));
  EXPECT_EQ(decoded.strings_deployed, 0u);
  EXPECT_EQ(decoded.first_failed, 0);
}

TEST(EdgeCases, UpperBoundOnEmptyStringSet) {
  SystemModel m;
  m.network = model::Network(2, 5.0);
  const auto ub = lp::upper_bound_worth(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(ub.value, 0.0);
  const auto ub3 = lp::upper_bound_slackness(m);
  ASSERT_EQ(ub3.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(ub3.value, 1.0, 1e-9);  // nothing deployed: full slack
}

}  // namespace
}  // namespace tsce
