#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/feasibility.hpp"
#include "core/baselines.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace tsce {
namespace {

using model::SystemModel;

core::PsgOptions quick_psg() {
  core::PsgOptions options;
  options.ga.population_size = 25;
  options.ga.max_iterations = 100;
  options.ga.stagnation_limit = 50;
  options.trials = 2;
  return options;
}

SystemModel scenario_instance(workload::Scenario scenario, std::uint64_t seed,
                              std::size_t machines, std::size_t strings) {
  util::Rng rng(seed);
  auto config = workload::GeneratorConfig::for_scenario(scenario);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

TEST(Pipeline, EveryHeuristicProducesFeasibleAllocations) {
  const SystemModel m =
      scenario_instance(workload::Scenario::kHighlyLoaded, 21, 4, 14);
  std::vector<core::AllocatorPtr> allocators;
  allocators.push_back(std::make_unique<core::MostWorthFirst>());
  allocators.push_back(std::make_unique<core::TightestFirst>());
  allocators.push_back(std::make_unique<core::RandomOrder>());
  allocators.push_back(std::make_unique<core::Psg>(quick_psg()));
  allocators.push_back(std::make_unique<core::SeededPsg>(quick_psg()));
  for (const auto& allocator : allocators) {
    util::Rng rng(99);
    const auto result = allocator->allocate(m, rng);
    const auto report = analysis::check_feasibility(m, result.allocation);
    EXPECT_TRUE(report.feasible()) << allocator->name();
    EXPECT_EQ(result.fitness.total_worth,
              analysis::total_worth(m, result.allocation))
        << allocator->name();
  }
}

TEST(Pipeline, PaperOrderingHoldsOnContendedInstance) {
  // Figure 3/4 shape: Seeded PSG >= max(MWF, TF), and the LP upper bound
  // dominates everything.
  const SystemModel m =
      scenario_instance(workload::Scenario::kHighlyLoaded, 22, 3, 10);
  util::Rng rng(1);
  const auto mwf = core::MostWorthFirst{}.allocate(m, rng);
  const auto tf = core::TightestFirst{}.allocate(m, rng);
  util::Rng rng_psg(2);
  const auto seeded = core::SeededPsg(quick_psg()).allocate(m, rng_psg);
  const auto ub = lp::upper_bound_worth(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);

  EXPECT_GE(seeded.fitness.total_worth,
            std::max(mwf.fitness.total_worth, tf.fitness.total_worth));
  EXPECT_GE(ub.value + 1e-6, seeded.fitness.total_worth);
  EXPECT_GE(ub.value + 1e-6, mwf.fitness.total_worth);
  EXPECT_GE(ub.value + 1e-6, tf.fitness.total_worth);
}

TEST(Pipeline, LightlyLoadedSystemDeploysEverything) {
  // Scenario 3: complete mapping must be achievable and only slackness
  // differentiates the heuristics.
  const SystemModel m =
      scenario_instance(workload::Scenario::kLightlyLoaded, 23, 12, 10);
  util::Rng rng(3);
  const auto mwf = core::MostWorthFirst{}.allocate(m, rng);
  EXPECT_EQ(mwf.fitness.total_worth, m.total_worth_available());
  EXPECT_GE(mwf.fitness.slackness, 0.0);
  EXPECT_LE(mwf.fitness.slackness, 1.0);

  const auto ub = lp::upper_bound_slackness(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);
  EXPECT_GE(ub.value + 1e-6, mwf.fitness.slackness)
      << "fractional slackness bound must dominate the integral allocation";
}

TEST(Pipeline, SimulationConfirmsLightlyLoadedAllocation) {
  const SystemModel m =
      scenario_instance(workload::Scenario::kLightlyLoaded, 24, 12, 8);
  util::Rng rng(4);
  const auto result = core::MostWorthFirst{}.allocate(m, rng);
  ASSERT_EQ(result.fitness.total_worth, m.total_worth_available());

  const auto sim = sim::simulate(m, result.allocation, {.horizon_s = 0.0});
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    ASSERT_TRUE(result.allocation.deployed(static_cast<model::StringId>(k)));
    EXPECT_GT(sim.strings[k].datasets_completed, 0u) << "string " << k;
    // Mean end-to-end latency stays within the (generous, mu in [4,6]) bound.
    EXPECT_LE(sim.strings[k].latency_s.mean(),
              m.strings[k].max_latency_s * (1.0 + 1e-9))
        << "string " << k;
  }
}

TEST(Pipeline, SeededPsgUsesSeedsWorthOnEasyInstance) {
  // On an instance where everything fits, every heuristic reaches the same
  // (full) worth; the evolutionary search must not regress below it.
  const SystemModel m =
      scenario_instance(workload::Scenario::kLightlyLoaded, 25, 8, 6);
  util::Rng rng(5);
  const auto mwf = core::MostWorthFirst{}.allocate(m, rng);
  util::Rng rng_psg(6);
  const auto seeded = core::SeededPsg(quick_psg()).allocate(m, rng_psg);
  EXPECT_GE(seeded.fitness.total_worth, mwf.fitness.total_worth);
  // Lexicographic: at equal worth, slackness must be at least the seed's.
  if (seeded.fitness.total_worth == mwf.fitness.total_worth) {
    EXPECT_GE(seeded.fitness.slackness, mwf.fitness.slackness - 1e-12);
  }
}

}  // namespace
}  // namespace tsce
