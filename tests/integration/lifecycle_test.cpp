/// End-to-end lifecycle: generate -> persist -> reload -> allocate -> bound ->
/// simulate -> surge -> repair.  One test walks the whole public API the way
/// a deployment tool would.

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/feasibility.hpp"
#include "core/dynamic.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "model/serialization.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace tsce {
namespace {

TEST(Lifecycle, GeneratePersistAllocateBoundSimulateRepair) {
  // 1. Generate a lightly loaded instance.
  util::Rng rng(2005);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 6;
  config.num_strings = 8;
  const model::SystemModel generated = workload::generate(config, rng);

  // 2. Persist and reload; everything downstream uses the reloaded copy.
  const std::string path = ::testing::TempDir() + "/lifecycle_model.json";
  model::save_system_model(path, generated);
  const model::SystemModel m = model::load_system_model(path);
  std::remove(path.c_str());
  ASSERT_TRUE(m.validate().empty());

  // 3. Plan with the paper's best heuristic.
  core::PsgOptions options;
  options.ga.population_size = 30;
  options.ga.max_iterations = 150;
  options.ga.stagnation_limit = 80;
  options.trials = 2;
  util::Rng search_rng(7);
  const auto plan = core::SeededPsg(options).allocate(m, search_rng);
  ASSERT_TRUE(analysis::check_feasibility(m, plan.allocation).feasible());
  ASSERT_EQ(plan.allocation.num_deployed(), m.num_strings())
      << "lightly loaded: complete mapping expected";

  // 4. The slackness bound dominates the achieved slackness.
  const auto ub = lp::upper_bound_slackness(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);
  EXPECT_GE(ub.value + 1e-6, plan.fitness.slackness);

  // 5. Simulate nominal operation: no QoS violations.
  const auto nominal = sim::simulate(m, plan.allocation, {.horizon_s = 0.0});
  EXPECT_EQ(nominal.total_violations(), 0u);

  // 6. Surge the workload past the slack and repair.
  const auto surged = sim::scale_input_workload(m, 3.0);
  const auto repaired = core::reallocate(surged, plan.allocation);
  EXPECT_TRUE(analysis::check_feasibility(surged, repaired.allocation).feasible());

  // 7. The repaired allocation simulates cleanly on the surged system too
  //    (it passed the analytic gate; on these lightly loaded instances the
  //    simulated mean latencies respect the bounds).
  const auto after = sim::simulate(surged, repaired.allocation, {.horizon_s = 0.0});
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    if (!repaired.allocation.deployed(static_cast<model::StringId>(k))) continue;
    if (after.strings[k].latency_s.count() == 0) continue;
    EXPECT_LE(after.strings[k].latency_s.mean(),
              m.strings[k].max_latency_s * (1.0 + 1e-9))
        << "string " << k;
  }
}

}  // namespace
}  // namespace tsce
