#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/feasibility.hpp"
#include "analysis/session.hpp"
#include "core/decode.hpp"
#include "core/imr.hpp"
#include "workload/generator.hpp"

namespace tsce {
namespace {

using model::StringId;
using model::SystemModel;

SystemModel random_instance(std::uint64_t seed, workload::Scenario scenario,
                            std::size_t machines, std::size_t strings) {
  util::Rng rng(seed);
  auto config = workload::GeneratorConfig::for_scenario(scenario);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

class RandomInstanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceProperty, DecodedAllocationsAreAlwaysFeasible) {
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kHighlyLoaded, 4, 12);
  util::Rng rng(GetParam() * 7 + 1);
  for (int round = 0; round < 3; ++round) {
    auto order = core::identity_order(m);
    rng.shuffle(order);
    const auto result = core::decode_order(m, order);
    EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  }
}

TEST_P(RandomInstanceProperty, SlacknessWithinUnitInterval) {
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kQosLimited, 4, 12);
  util::Rng rng(GetParam() * 13 + 5);
  auto order = core::identity_order(m);
  rng.shuffle(order);
  const auto result = core::decode_order(m, order);
  EXPECT_GE(result.fitness.slackness, 0.0 - 1e-9);
  EXPECT_LE(result.fitness.slackness, 1.0 + 1e-12);
}

TEST_P(RandomInstanceProperty, PrefixDecodeIsPrefixOfFullDecode) {
  // The sequential decode is deterministic, so decoding a prefix of an order
  // deploys exactly the first min(p, F) strings the full decode deploys.
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kHighlyLoaded, 3, 10);
  util::Rng rng(GetParam() * 3 + 2);
  auto order = core::identity_order(m);
  rng.shuffle(order);
  const auto full = core::decode_order(m, order);
  const std::size_t prefix_len = order.size() / 2;
  const auto prefix = core::decode_order(
      m, std::span<const StringId>(order.data(), prefix_len));
  EXPECT_EQ(prefix.strings_deployed,
            std::min(prefix_len, full.strings_deployed));
  for (std::size_t p = 0; p < prefix.strings_deployed; ++p) {
    EXPECT_TRUE(prefix.allocation.deployed(order[p]));
    EXPECT_TRUE(full.allocation.deployed(order[p]));
    // And on identical machines.
    for (std::size_t i = 0; i < m.strings[static_cast<std::size_t>(order[p])].size();
         ++i) {
      EXPECT_EQ(prefix.allocation.machine_of(order[p], static_cast<model::AppIndex>(i)),
                full.allocation.machine_of(order[p], static_cast<model::AppIndex>(i)));
    }
  }
}

TEST_P(RandomInstanceProperty, MoreStringsNeverIncreaseSlackness) {
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kLightlyLoaded, 5, 10);
  util::Rng rng(GetParam() * 11 + 3);
  auto order = core::identity_order(m);
  rng.shuffle(order);
  analysis::AllocationSession session(m);
  double previous_slack = 1.0;
  for (const StringId k : order) {
    const auto assignment = core::imr_map_string(m, session.util(), k);
    if (!session.try_commit(k, assignment)) break;
    const double slack = session.fitness().slackness;
    EXPECT_LE(slack, previous_slack + 1e-12);
    previous_slack = slack;
  }
}

TEST_P(RandomInstanceProperty, SessionMatchesBatchUtilization) {
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kHighlyLoaded, 4, 10);
  util::Rng rng(GetParam() * 17 + 9);
  auto order = core::identity_order(m);
  rng.shuffle(order);
  analysis::AllocationSession session(m);
  for (const StringId k : order) {
    const auto assignment = core::imr_map_string(m, session.util(), k);
    if (!session.try_commit(k, assignment)) break;
  }
  const auto batch =
      analysis::UtilizationState::from_allocation(m, session.allocation());
  const auto machines = static_cast<model::MachineId>(m.num_machines());
  for (model::MachineId j = 0; j < machines; ++j) {
    EXPECT_NEAR(session.util().machine_util(j), batch.machine_util(j), 1e-9);
    for (model::MachineId j2 = 0; j2 < machines; ++j2) {
      EXPECT_NEAR(session.util().route_util(j, j2), batch.route_util(j, j2), 1e-9);
    }
  }
}

TEST_P(RandomInstanceProperty, RejectedCommitLeavesSessionIntact) {
  const SystemModel m =
      random_instance(GetParam(), workload::Scenario::kQosLimited, 3, 20);
  util::Rng rng(GetParam() * 19 + 4);
  auto order = core::identity_order(m);
  rng.shuffle(order);

  analysis::AllocationSession session(m);
  StringId failed = -1;
  for (const StringId k : order) {
    const auto assignment = core::imr_map_string(m, session.util(), k);
    if (!session.try_commit(k, assignment)) {
      failed = k;
      break;
    }
  }
  if (failed == -1) {
    GTEST_SKIP() << "instance not contended enough to produce a rejection";
  }
  // Replay the same prefix in a fresh session: state must match exactly.
  analysis::AllocationSession replay(m);
  for (const StringId k : order) {
    if (k == failed) break;
    const auto assignment = core::imr_map_string(m, replay.util(), k);
    ASSERT_TRUE(replay.try_commit(k, assignment));
  }
  EXPECT_EQ(replay.allocation(), session.allocation());
  EXPECT_EQ(replay.fitness().total_worth, session.fitness().total_worth);
  EXPECT_NEAR(replay.fitness().slackness, session.fitness().slackness, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tsce
