#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace tsce::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit in 1000 draws
}

TEST(Rng, BoundedZeroAndOne) {
  Rng rng(8);
  EXPECT_EQ(rng.bounded(0), 0u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(9);
  std::array<int, 10> histogram{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) histogram[rng.bounded(10)]++;
  for (int count : histogram) {
    EXPECT_NEAR(count, kN / 10, kN / 100);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(10);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ShuffleProducesPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // 50! permutations; identity is essentially impossible
}

TEST(Rng, ShuffleHandlesEmptyAndSingle) {
  Rng rng(12);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Rng, SpawnStreamsAreIndependent) {
  Rng parent(13);
  Rng child1 = parent.spawn();
  Rng child2 = parent.spawn();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChoicePicksExistingElement) {
  Rng rng(14);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int c = rng.choice(std::span<const int>(items));
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace tsce::util
