#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

namespace tsce::util {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Flags, ParsesEqualsForm) {
  std::int64_t runs = 10;
  Flags flags("test");
  flags.add("runs", &runs, "number of runs");
  Argv argv({"prog", "--runs=25"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(runs, 25);
}

TEST(Flags, ParsesSpaceForm) {
  double scale = 1.0;
  Flags flags("test");
  flags.add("scale", &scale, "scale factor");
  Argv argv({"prog", "--scale", "0.25"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_DOUBLE_EQ(scale, 0.25);
}

TEST(Flags, BoolWithoutValueSetsTrue) {
  bool full = false;
  Flags flags("test");
  flags.add("full", &full, "paper-scale parameters");
  Argv argv({"prog", "--full"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(full);
}

TEST(Flags, NoPrefixNegatesBool) {
  bool csv = true;
  Flags flags("test");
  flags.add("csv", &csv, "emit CSV");
  Argv argv({"prog", "--no-csv"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_FALSE(csv);
}

TEST(Flags, BoolExplicitValues) {
  bool a = false, b = true;
  Flags flags("test");
  flags.add("a", &a, "");
  flags.add("b", &b, "");
  Argv argv({"prog", "--a=true", "--b=false"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(Flags, StringFlag) {
  std::string out = "table";
  Flags flags("test");
  flags.add("format", &out, "output format");
  Argv argv({"prog", "--format=csv"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out, "csv");
}

TEST(Flags, TelemetrySinkFlagsParse) {
  // The harness telemetry flags (--trace / --metrics / --json) are plain
  // string sinks; empty string means "off" and must survive a parse that
  // does not mention them.
  std::string trace_path, metrics_path, json_path;
  Flags flags("test");
  flags.add("trace", &trace_path, "write span/event JSONL trace to this path");
  flags.add("metrics", &metrics_path, "write a metrics snapshot JSON to this path");
  flags.add("json", &json_path, "write the result series JSON to this path");
  Argv argv({"prog", "--trace=/tmp/run.jsonl", "--metrics", "/tmp/metrics.json"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(trace_path, "/tmp/run.jsonl");
  EXPECT_EQ(metrics_path, "/tmp/metrics.json");
  EXPECT_TRUE(json_path.empty());
}

TEST(Flags, TraceFlagMissingValueFails) {
  std::string trace_path;
  Flags flags("test");
  flags.add("trace", &trace_path, "");
  Argv argv({"prog", "--trace"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, UnknownFlagFails) {
  Flags flags("test");
  Argv argv({"prog", "--bogus=1"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, BadIntValueFails) {
  std::int64_t runs = 0;
  Flags flags("test");
  flags.add("runs", &runs, "");
  Argv argv({"prog", "--runs=abc"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, MissingValueFails) {
  std::int64_t runs = 0;
  Flags flags("test");
  flags.add("runs", &runs, "");
  Argv argv({"prog", "--runs"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags("test");
  Argv argv({"prog", "--help"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, PositionalArgumentsCollected) {
  std::int64_t n = 0;
  Flags flags("test");
  flags.add("n", &n, "");
  Argv argv({"prog", "input.txt", "--n=3", "output.txt"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(n, 3);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(Flags, DefaultsSurviveWhenNotMentioned) {
  std::int64_t runs = 10;
  double scale = 0.5;
  Flags flags("test");
  flags.add("runs", &runs, "");
  flags.add("scale", &scale, "");
  Argv argv({"prog", "--runs=3"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(runs, 3);
  EXPECT_DOUBLE_EQ(scale, 0.5);
}

}  // namespace
}  // namespace tsce::util
