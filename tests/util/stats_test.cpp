#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tsce::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance 4 => sample variance 4 * 8/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  const std::vector<double> xs{1.5, -2.0, 3.25, 8.0, 0.0, -1.0, 4.5};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  // Same alternating data at two sample sizes.
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  EXPECT_GT(small.ci95_half_width(), 0.0);
}

TEST(StudentT, MatchesTableValues) {
  EXPECT_NEAR(student_t_quantile_95(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_quantile_95(5), 2.571, 1e-3);
  EXPECT_NEAR(student_t_quantile_95(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_quantile_95(30), 2.042, 1e-3);
  // df = 99 (100 simulation runs, the paper's setting) is close to normal.
  EXPECT_NEAR(student_t_quantile_95(99), 1.984, 0.01);
  EXPECT_NEAR(student_t_quantile_95(100000), 1.960, 1e-3);
}

TEST(StudentT, MonotoneNonIncreasing) {
  double prev = student_t_quantile_95(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = student_t_quantile_95(df);
    EXPECT_LE(t, prev + 1e-9) << "df=" << df;
    prev = t;
  }
}

TEST(FormatMeanCi, ContainsBothNumbers) {
  RunningStats s;
  s.add(10.0);
  s.add(20.0);
  const std::string repr = format_mean_ci(s, 1);
  EXPECT_NE(repr.find("15.0"), std::string::npos);
  EXPECT_NE(repr.find("\xC2\xB1"), std::string::npos);  // the ± sign
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

}  // namespace
}  // namespace tsce::util
