#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace tsce::util {
namespace {

/// Captures what Table prints into a string via a temporary file.
std::string render(const Table& table, bool csv = false) {
  std::FILE* f = std::tmpfile();
  if (csv) {
    table.print_csv(f);
  } else {
    table.print(f);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  const std::size_t read = std::fread(out.data(), 1, out.size(), f);
  out.resize(read);
  std::fclose(f);
  return out;
}

TEST(Table, RendersHeadersAndCells) {
  Table t({"heuristic", "total worth"});
  t.add_row({"PSG", "2900"});
  t.add_row({"MWF", "2500"});
  const std::string out = render(t);
  EXPECT_NE(out.find("heuristic"), std::string::npos);
  EXPECT_NE(out.find("PSG"), std::string::npos);
  EXPECT_NE(out.find("2900"), std::string::npos);
  EXPECT_NE(out.find("MWF"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(render(t, /*csv=*/true), "a,b\n1,2\n");
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, ColumnsAlignedToWidestCell) {
  Table t({"x", "name"});
  t.add_row({"1", "very-long-name"});
  const std::string out = render(t);
  // Each rendered line between rules has the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::string line = out.substr(pos, eol - pos);
    if (!line.empty()) {
      if (line_len == 0) line_len = line.size();
      // The ± is multi-byte; plain ASCII here so byte length is fine.
      EXPECT_EQ(line.size(), line_len) << line;
    }
    pos = eol + 1;
  }
}

TEST(Table, UtfWidthCountsOnce) {
  Table t({"value"});
  t.add_row({"10.0 \xC2\xB1 0.5"});
  t.add_row({"123456789"});
  const std::string out = render(t);
  EXPECT_NE(out.find("\xC2\xB1"), std::string::npos);
}

}  // namespace
}  // namespace tsce::util
