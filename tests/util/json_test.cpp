#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

namespace tsce::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const Json v = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.at("a").is_array());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
}

TEST(Json, ParsesEmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_TRUE(Json::parse("  [ ]  ").as_array().empty());
}

TEST(Json, StringEscapes) {
  const Json v = Json::parse(R"("line\nbreak \"quoted\" tab\t back\\slash")");
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" tab\t back\\slash");
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xE2\x82\xAC");  // €
  // Surrogate pair for U+1F600.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, RawUtf8PassesThrough) {
  EXPECT_EQ(Json::parse("\"\xC3\xA9\"").as_string(), "\xC3\xA9");
}

TEST(Json, InvalidUnicodeEscapesRejected) {
  EXPECT_THROW((void)Json::parse(R"("\u12")"), JsonParseError);
  EXPECT_THROW((void)Json::parse(R"("\uZZZZ")"), JsonParseError);
  EXPECT_THROW((void)Json::parse(R"("\ud800")"), JsonParseError);  // lone surrogate
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), JsonParseError);
  EXPECT_THROW((void)Json::parse("{"), JsonParseError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW((void)Json::parse("tru"), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonParseError);
  EXPECT_THROW((void)Json::parse("nan"), JsonParseError);
}

TEST(Json, ParseErrorCarriesOffset) {
  try {
    (void)Json::parse("[1, @]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(Json, TypeMismatchThrows) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("x"), std::runtime_error);
}

TEST(Json, MissingKeyThrows) {
  const Json v = Json::parse("{\"a\": 1}");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_THROW((void)v.at("b"), std::out_of_range);
}

TEST(Json, DumpCompactRoundTrip) {
  const std::string text = R"({"a":[1,2.5,"x"],"b":null,"c":true})";
  const Json v = Json::parse(text);
  EXPECT_EQ(Json::parse(v.dump()), v);
  EXPECT_EQ(v.dump(), text);
}

TEST(Json, DumpPrettyIsReparseable) {
  const Json v = Json::parse(R"({"nested": {"list": [1, [2, 3]], "s": "v"}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), v);
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double x : {0.1, 1e-300, 12345.678901234567, -0.0, 3.0}) {
    const Json v(x);
    EXPECT_DOUBLE_EQ(Json::parse(v.dump()).as_number(), x) << v.dump();
  }
}

TEST(Json, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
}

TEST(Json, InfinityDumpsAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, BuilderApi) {
  Json obj = Json::object();
  obj.set("name", Json("tsce"));
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json(2));
  obj.set("values", std::move(arr));
  EXPECT_EQ(obj.dump(), R"({"name":"tsce","values":[1,2]})");
}

TEST(Json, ObjectKeyOrderPreserved) {
  const Json v = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& fields = v.as_object();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].first, "z");
  EXPECT_EQ(fields[1].first, "a");
  EXPECT_EQ(fields[2].first, "m");
}

TEST(Json, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tsce_json_test.json";
  Json original = Json::parse(R"({"x": [1, 2, {"y": null}]})");
  write_json_file(path, original);
  EXPECT_EQ(read_json_file(path), original);
  std::remove(path.c_str());
}

TEST(Json, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_json_file("/nonexistent/path/file.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace tsce::util
