#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tsce::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 16);
}

}  // namespace
}  // namespace tsce::util
