#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tsce::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.for_each_index(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ForEachIndexHandlesFewerItemsThanWorkers) {
  ThreadPool pool(4);
  std::vector<int> hits(2, 0);
  pool.for_each_index(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ThreadPool, ForEachIndexZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.for_each_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ForEachIndexRepeatedBarrierSteps) {
  // The tempering engine calls it once per sweep: every call must fully
  // drain before the next begins, with only O(workers) queued tasks.
  ThreadPool pool(2);
  std::vector<int> hits(16, 0);
  for (int sweep = 0; sweep < 50; ++sweep) {
    pool.for_each_index(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  }
  for (int h : hits) EXPECT_EQ(h, 50);
}

TEST(ThreadPool, ForEachIndexPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_index(8,
                                   [](std::size_t i) {
                                     if (i == 3) throw std::logic_error("bad");
                                   }),
               std::logic_error);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, DestructorRunsQueuedUnawaitedTasks) {
  std::atomic<int> counter{0};
  // The gate must outlive the pool: workers may still be draining when the
  // block ends, and destruction runs in reverse declaration order.
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  {
    ThreadPool pool(1);
    // Park the single worker so the remaining submissions pile up in the
    // queue, then destroy the pool without touching any future: the worker
    // must drain the backlog before joining (futures would otherwise report
    // broken_promise).
    (void)pool.submit([gate_open] { gate_open.wait(); });
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
    gate.set_value();
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, StatsCountSubmissionsAndPeakDepth) {
  ThreadPool::Stats& stats = ThreadPool::global_stats();
  stats.reset();
  {
    ThreadPool pool(2);
    pool.parallel_for(24, [](std::size_t) {});
  }
  EXPECT_EQ(stats.tasks.load(), 24u);
  EXPECT_GE(stats.max_queue_depth.load(), 1u);
  // Timing was off, so no latency samples were collected.
  EXPECT_EQ(stats.timed_tasks.load(), 0u);
  EXPECT_EQ(stats.run_ns_total.load(), 0u);
}

TEST(ThreadPool, TimingCollectsWaitAndRunLatency) {
  ThreadPool::Stats& stats = ThreadPool::global_stats();
  stats.reset();
  ThreadPool::set_timing(true);
  {
    ThreadPool pool(2);
    pool.parallel_for(8, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  ThreadPool::set_timing(false);
  EXPECT_EQ(stats.timed_tasks.load(), 8u);
  // 8 tasks x >= 1 ms each.
  EXPECT_GE(stats.run_ns_total.load(), 8u * 1'000'000u);
  EXPECT_GE(stats.wait_ns_max.load(), stats.wait_ns_total.load() / 8);
  stats.reset();
}

TEST(ThreadPool, TimingOffCollectsNoLatency) {
  ThreadPool::Stats& stats = ThreadPool::global_stats();
  stats.reset();
  ASSERT_FALSE(ThreadPool::timing_enabled());
  {
    ThreadPool pool(2);
    pool.parallel_for(4, [](std::size_t) {});
  }
  EXPECT_EQ(stats.tasks.load(), 4u);
  EXPECT_EQ(stats.timed_tasks.load(), 0u);
  stats.reset();
}

}  // namespace
}  // namespace tsce::util
