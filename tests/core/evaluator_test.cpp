#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/decode.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;

SystemModel make_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = 4;
  config.num_strings = 18;
  return workload::generate(config, rng);
}

std::vector<std::vector<StringId>> make_orders(const SystemModel& m,
                                               std::size_t count,
                                               std::uint64_t seed) {
  std::vector<std::vector<StringId>> orders(count, identity_order(m));
  util::Rng rng(seed);
  for (auto& order : orders) rng.shuffle(order);
  return orders;
}

void expect_outcomes_equal(const std::vector<DecodeOutcome>& a,
                           const std::vector<DecodeOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fitness.total_worth, b[i].fitness.total_worth) << "i=" << i;
    EXPECT_EQ(a[i].fitness.slackness, b[i].fitness.slackness) << "i=" << i;
    EXPECT_EQ(a[i].strings_deployed, b[i].strings_deployed) << "i=" << i;
    EXPECT_EQ(a[i].first_failed, b[i].first_failed) << "i=" << i;
    EXPECT_EQ(a[i].prefix_reused, b[i].prefix_reused) << "i=" << i;
  }
}

TEST(BatchEvaluator, SerialMatchesFreshDecodes) {
  const SystemModel m = make_instance(3);
  const auto orders = make_orders(m, 10, 7);
  BatchEvaluator evaluator(m, 1);
  EXPECT_EQ(evaluator.num_workers(), 1u);
  const auto outcomes = evaluator.evaluate(orders);
  ASSERT_EQ(outcomes.size(), orders.size());
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const DecodeResult fresh = decode_order(m, orders[i]);
    EXPECT_EQ(outcomes[i].fitness.total_worth, fresh.fitness.total_worth);
    EXPECT_EQ(outcomes[i].fitness.slackness, fresh.fitness.slackness);
    EXPECT_EQ(outcomes[i].strings_deployed, fresh.strings_deployed);
    EXPECT_EQ(outcomes[i].first_failed, fresh.first_failed);
    EXPECT_EQ(outcomes[i].prefix_reused, 0u);  // schedule-independent contract
  }
}

TEST(BatchEvaluator, ByteIdenticalAcrossThreadCounts) {
  const SystemModel m = make_instance(4);
  const auto orders = make_orders(m, 24, 13);
  BatchEvaluator serial(m, 1);
  const auto baseline = serial.evaluate(orders);
  for (const std::size_t threads : {2u, 4u}) {
    BatchEvaluator parallel(m, threads);
    EXPECT_EQ(parallel.num_workers(), threads);
    expect_outcomes_equal(parallel.evaluate(orders), baseline);
    // Warm contexts (arbitrary interleaving history) must not change results.
    expect_outcomes_equal(parallel.evaluate(orders), baseline);
  }
}

TEST(BatchEvaluator, FitnessConvenienceMatchesEvaluate) {
  const SystemModel m = make_instance(5);
  const auto orders = make_orders(m, 12, 17);
  BatchEvaluator evaluator(m, 2);
  const auto outcomes = evaluator.evaluate(orders);
  const auto fitness = evaluator.evaluate_fitness(orders);
  ASSERT_EQ(fitness.size(), outcomes.size());
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    EXPECT_EQ(fitness[i].total_worth, outcomes[i].fitness.total_worth);
    EXPECT_EQ(fitness[i].slackness, outcomes[i].fitness.slackness);
  }
}

TEST(BatchEvaluator, ForEachWithIndexedStreamsIsDeterministic) {
  const SystemModel m = make_instance(6);
  constexpr std::size_t kItems = 16;
  constexpr std::uint64_t kSeed = 99;
  auto run = [&](std::size_t threads) {
    std::vector<std::uint64_t> values(kItems);
    BatchEvaluator evaluator(m, threads);
    evaluator.for_each(kItems, [&](std::size_t i, DecodeContext&) {
      util::Rng item_rng = util::Rng::stream(kSeed, i);
      values[i] = item_rng();
    });
    return values;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(3), serial);
}

TEST(BatchEvaluator, ZeroThreadsUsesHardwareConcurrency) {
  const SystemModel m = make_instance(8);
  BatchEvaluator evaluator(m, 0);
  EXPECT_GE(evaluator.num_workers(), 1u);
  const auto orders = make_orders(m, 4, 21);
  BatchEvaluator serial(m, 1);
  expect_outcomes_equal(evaluator.evaluate(orders), serial.evaluate(orders));
}

}  // namespace
}  // namespace tsce::core
