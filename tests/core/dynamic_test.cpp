#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "core/ordered.hpp"
#include "sim/simulator.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::Allocation;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Reallocate, NoChangeMeansNoMigrations) {
  const SystemModel m = testing::two_machine_system();
  util::Rng rng(1);
  const auto initial = MostWorthFirst{}.allocate(m, rng);
  const auto repaired = reallocate(m, initial.allocation);
  EXPECT_EQ(repaired.migrations, 0u);
  EXPECT_TRUE(repaired.remapped.empty());
  EXPECT_TRUE(repaired.dropped.empty());
  EXPECT_EQ(repaired.fitness.total_worth, initial.fitness.total_worth);
  EXPECT_EQ(repaired.allocation, initial.allocation);
}

TEST(Reallocate, RepairsOverloadByMigration) {
  // Two strings initially crammed onto machine 0; growing the workload makes
  // that machine overflow, but machine 1 has room: reallocation must migrate
  // rather than drop.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(10.0);
  for (int k = 0; k < 2; ++k) {
    b.begin_string(10.0, 10000.0, Worth::kMedium);
    b.add_app(4.0, 1.0, 0.0);  // 0.4 each
  }
  const SystemModel m = b.build();
  Allocation initial(m);
  initial.assign(0, 0, 0);
  initial.assign(1, 0, 0);
  initial.set_deployed(0, true);
  initial.set_deployed(1, true);
  ASSERT_TRUE(analysis::check_feasibility(m, initial).feasible());

  const SystemModel grown = sim::scale_input_workload(m, 1.6);  // 0.64 each
  ASSERT_FALSE(analysis::check_feasibility(grown, initial).feasible());

  const auto repaired = reallocate(grown, initial);
  EXPECT_TRUE(analysis::check_feasibility(grown, repaired.allocation).feasible());
  EXPECT_TRUE(repaired.dropped.empty());
  EXPECT_EQ(repaired.fitness.total_worth, 20);
  EXPECT_EQ(repaired.migrations, 1u);  // exactly one app moves to machine 1
}

TEST(Reallocate, DropsLowestWorthWhenCapacityIsGone) {
  // One machine; after growth only one of the two strings fits.  The
  // high-worth string must be the survivor.
  SystemModelBuilder b(1);
  b.begin_string(10.0, 10000.0, Worth::kLow, "low");
  b.add_app(4.0, 1.0, 0.0);
  b.begin_string(10.0, 10000.0, Worth::kHigh, "high");
  b.add_app(4.0, 1.0, 0.0);
  const SystemModel m = b.build();
  Allocation initial(m);
  initial.assign(0, 0, 0);
  initial.assign(1, 0, 0);
  initial.set_deployed(0, true);
  initial.set_deployed(1, true);

  const SystemModel grown = sim::scale_input_workload(m, 1.8);  // 0.72 each
  const auto repaired = reallocate(grown, initial);
  EXPECT_TRUE(repaired.allocation.deployed(1));
  EXPECT_FALSE(repaired.allocation.deployed(0));
  ASSERT_EQ(repaired.dropped.size(), 1u);
  EXPECT_EQ(repaired.dropped[0], 0);
  EXPECT_EQ(repaired.fitness.total_worth, 100);
}

TEST(Reallocate, KeepsFeasibleMappingsUntouched) {
  // String 0 remains comfortable; only string 1 outgrows its machine.  The
  // repair must leave string 0's mapping byte-identical.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(10.0);
  b.begin_string(10.0, 10000.0, Worth::kHigh, "stable");
  b.add_app(1.0, 1.0, 0.0);  // 0.1 -> 0.16 after growth
  b.begin_string(10.0, 10000.0, Worth::kLow, "grower");
  b.add_app(5.5, 1.0, 0.0);  // 0.55 -> 0.88 after growth
  const SystemModel m = b.build();
  Allocation initial(m);
  initial.assign(0, 0, 0);
  initial.assign(1, 0, 0);  // both on machine 0: 0.65 total, feasible
  initial.set_deployed(0, true);
  initial.set_deployed(1, true);
  ASSERT_TRUE(analysis::check_feasibility(m, initial).feasible());

  const SystemModel grown = sim::scale_input_workload(m, 1.6);
  const auto repaired = reallocate(grown, initial);
  EXPECT_TRUE(analysis::check_feasibility(grown, repaired.allocation).feasible());
  EXPECT_EQ(repaired.allocation.machine_of(0, 0), 0) << "stable string must not move";
  EXPECT_EQ(repaired.allocation.machine_of(1, 0), 1) << "grower migrates";
  EXPECT_EQ(repaired.migrations, 1u);
}

class ReallocateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReallocateProperty, RepairedAllocationIsAlwaysFeasible) {
  util::Rng rng(GetParam());
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 5;
  config.num_strings = 8;
  const SystemModel m = workload::generate(config, rng);
  util::Rng search_rng(GetParam() + 10);
  const auto initial = MostWorthFirst{}.allocate(m, search_rng);

  for (const double factor : {1.3, 1.8, 2.5}) {
    const SystemModel grown = sim::scale_input_workload(m, factor);
    const auto repaired = reallocate(grown, initial.allocation);
    EXPECT_TRUE(analysis::check_feasibility(grown, repaired.allocation).feasible())
        << "factor " << factor;
    // Disturbance accounting is consistent.
    EXPECT_EQ(repaired.fitness.total_worth,
              analysis::total_worth(grown, repaired.allocation));
    for (const auto k : repaired.dropped) {
      EXPECT_FALSE(repaired.allocation.deployed(k));
    }
    for (const auto k : repaired.remapped) {
      EXPECT_TRUE(repaired.allocation.deployed(k));
    }
  }
}

TEST_P(ReallocateProperty, NeverDropsWhatItCouldKeep) {
  // Worth retained by repair >= worth of simply dropping every violating
  // string (the naive alternative).
  util::Rng rng(GetParam() * 3 + 1);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 4;
  config.num_strings = 8;
  const SystemModel m = workload::generate(config, rng);
  util::Rng search_rng(GetParam() + 20);
  const auto initial = MostWorthFirst{}.allocate(m, search_rng);
  const SystemModel grown = sim::scale_input_workload(m, 2.0);

  const auto repaired = reallocate(grown, initial.allocation);

  // Naive: keep the old mapping, undeploy strings until feasible (greedy by
  // ascending worth).
  Allocation naive = initial.allocation;
  auto order = identity_order(m);
  std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
    return m.strings[static_cast<std::size_t>(a)].worth_factor() <
           m.strings[static_cast<std::size_t>(b)].worth_factor();
  });
  std::size_t next_drop = 0;
  while (!analysis::check_feasibility(grown, naive).feasible() &&
         next_drop < order.size()) {
    naive.clear_string(order[next_drop++]);
  }
  EXPECT_GE(repaired.fitness.total_worth, analysis::total_worth(grown, naive));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReallocateProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace tsce::core
