#include "core/exact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;

SystemModel tiny(std::uint64_t seed, std::size_t machines = 2,
                 std::size_t strings = 6) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  config.max_apps_per_string = 5;
  return generate(config, rng);
}

TEST(ExactSearch, RejectsLargeInstances) {
  const SystemModel m = tiny(1, 2, 6);
  ExactSearchOptions options;
  options.max_strings = 5;
  util::Rng rng(1);
  EXPECT_THROW((void)ExactPermutationSearch(options).allocate(m, rng),
               std::invalid_argument);
}

TEST(ExactSearch, MatchesBruteForceEnumeration) {
  // Independent cross-check: decode every permutation explicitly.
  const SystemModel m = tiny(2, 2, 5);
  util::Rng rng(1);
  const auto exact = ExactPermutationSearch{}.allocate(m, rng);

  std::vector<StringId> order = identity_order(m);
  analysis::Fitness brute{};
  bool first = true;
  std::sort(order.begin(), order.end());
  do {
    const auto fitness = decode_order(m, order).fitness;
    if (first || brute < fitness) {
      brute = fitness;
      first = false;
    }
  } while (std::next_permutation(order.begin(), order.end()));

  EXPECT_EQ(exact.fitness.total_worth, brute.total_worth);
  EXPECT_NEAR(exact.fitness.slackness, brute.slackness, 1e-12);
}

class ExactSandwich : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactSandwich, HeuristicLeqExactLeqUpperBound) {
  const SystemModel m = tiny(GetParam(), 2, 6);
  util::Rng rng(GetParam() + 50);
  const auto exact = ExactPermutationSearch{}.allocate(m, rng);

  // Every single-pass heuristic explores one ordering: <= exact.
  util::Rng r1(1);
  const auto mwf = MostWorthFirst{}.allocate(m, r1);
  EXPECT_LE(mwf.fitness.total_worth, exact.fitness.total_worth);
  util::Rng r2(2);
  const auto tf = TightestFirst{}.allocate(m, r2);
  EXPECT_LE(tf.fitness.total_worth, exact.fitness.total_worth);

  // PSG searches the same space: <= exact as well.
  PsgOptions psg_options;
  psg_options.ga.population_size = 20;
  psg_options.ga.max_iterations = 80;
  psg_options.ga.stagnation_limit = 40;
  psg_options.trials = 1;
  util::Rng r3(3);
  const auto psg = Psg(psg_options).allocate(m, r3);
  EXPECT_LE(psg.fitness.total_worth, exact.fitness.total_worth);

  // And the fractional LP bound dominates the exact permutation optimum.
  const auto ub = lp::upper_bound_worth(m);
  ASSERT_EQ(ub.status, lp::SolveStatus::kOptimal);
  EXPECT_GE(ub.value + 1e-6, exact.fitness.total_worth);

  // The exact result itself is feasible and replayable.
  EXPECT_TRUE(analysis::check_feasibility(m, exact.allocation).feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSandwich, ::testing::Range<std::uint64_t>(1, 9));

TEST(ExactSearch, EvaluationCapReturnsBestSoFar) {
  const SystemModel m = tiny(3, 2, 7);
  ExactSearchOptions options;
  options.max_evaluations = 30;
  util::Rng rng(1);
  const auto result = ExactPermutationSearch(options).allocate(m, rng);
  EXPECT_LE(result.evaluations, 31u);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(ExactSearch, BranchSplitFindsSerialOptimum) {
  // Without a binding budget, per-branch bounds prune only strictly-worse
  // subtrees, so the parallel engine's optimum fitness equals the serial
  // engine's (the representative order may differ).
  for (std::uint64_t seed : {2u, 6u, 11u}) {
    const SystemModel m = tiny(seed, 2, 6);
    util::Rng r1(1);
    const auto serial = ExactPermutationSearch{}.allocate(m, r1);
    ExactSearchOptions options;
    options.threads = 2;
    util::Rng r2(1);
    const auto split = ExactPermutationSearch(options).allocate(m, r2);
    EXPECT_EQ(split.fitness.total_worth, serial.fitness.total_worth) << seed;
    EXPECT_NEAR(split.fitness.slackness, serial.fitness.slackness, 1e-12) << seed;
    EXPECT_TRUE(analysis::check_feasibility(m, split.allocation).feasible());
  }
}

TEST(ExactSearch, BranchSplitDeterministicAcrossThreadCounts) {
  const SystemModel m = tiny(7, 2, 7);
  auto run = [&](std::size_t threads) {
    ExactSearchOptions options;
    options.threads = threads;
    options.max_evaluations = 400;  // binding budget: slices must still agree
    util::Rng rng(1);
    return ExactPermutationSearch(options).allocate(m, rng);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_EQ(one.fitness.total_worth, two.fitness.total_worth);
  EXPECT_EQ(one.fitness.slackness, two.fitness.slackness);
  EXPECT_EQ(one.order, two.order);
  EXPECT_EQ(one.evaluations, two.evaluations);
  EXPECT_EQ(two.order, eight.order);
  EXPECT_EQ(two.evaluations, eight.evaluations);
}

TEST(ExactSearch, BranchSplitRespectsSlicedBudget) {
  // Each of the Q top-level branches gets max_evaluations / Q decodes, so the
  // total can never exceed the budget by more than the per-branch in-flight
  // evaluation.
  const SystemModel m = tiny(8, 2, 7);
  ExactSearchOptions options;
  options.threads = 2;
  options.max_evaluations = 70;
  util::Rng rng(1);
  const auto result = ExactPermutationSearch(options).allocate(m, rng);
  EXPECT_LE(result.evaluations, 70u + m.num_strings());
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(ExactSearch, SingleStringTrivial) {
  const SystemModel m = tiny(4, 2, 1);
  util::Rng rng(1);
  const auto result = ExactPermutationSearch{}.allocate(m, rng);
  EXPECT_EQ(result.fitness.total_worth,
            decode_order(m, identity_order(m)).fitness.total_worth);
}

}  // namespace
}  // namespace tsce::core
