/// Heap-counting gate for the steady-state decode path (DESIGN.md §12): once
/// a DecodeContext has been warmed on a candidate stream, re-decoding the
/// identical stream must perform zero heap allocations — every buffer
/// (arena, snapshot stack, scratch vectors, journals) is sized by the first
/// pass and reused byte-for-byte afterwards.  Complements the static
/// no-alloc-hot analyze rule with a dynamic check.
///
/// This test owns its binary: it replaces global operator new/delete with
/// counting shims, which must not leak into the other test executables.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/decode.hpp"
#include "model/system_model.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;

/// Replays the swap-neighborhood candidate stream BM_DecodePrefixReuse uses:
/// each candidate is one transposition away from the incumbent and is
/// rejected afterwards.  Identical seeds make the warm and measured passes
/// touch the same depths, so every buffer is already sized.
void run_candidate_stream(DecodeContext& ctx, std::vector<StringId>& order,
                          int candidates) {
  const std::size_t q = order.size();
  util::Rng rng(17);
  for (int c = 0; c < candidates; ++c) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(order[i], order[j]);
    (void)decode_order_into(ctx, order);
    std::swap(order[i], order[j]);
  }
}

TEST(NoAllocDecode, SteadyStateCandidateStreamIsAllocationFree) {
  const auto cfg = workload::GeneratorConfig::for_scenario(
      workload::Scenario::kHighlyLoaded, 0.4);
  util::Rng model_rng(99);
  const SystemModel m = workload::generate(cfg, model_rng);
  auto order = identity_order(m);
  util::Rng shuffle_rng(5);
  shuffle_rng.shuffle(order);

  DecodeContext ctx(m);
  run_candidate_stream(ctx, order, 200);  // warm: size every buffer

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  run_candidate_stream(ctx, order, 200);  // identical stream, warm buffers
  const std::size_t during =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations on the steady-state decode path";
}

}  // namespace
}  // namespace tsce::core
