#include "core/decode.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "model/system_model.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Decode, AllStringsFitInRelaxedSystem) {
  const SystemModel m = testing::two_machine_system();
  const auto order = identity_order(m);
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 2u);
  EXPECT_EQ(r.first_failed, -1);
  EXPECT_EQ(r.fitness.total_worth, 110);
  EXPECT_TRUE(analysis::check_feasibility(m, r.allocation).feasible());
}

TEST(Decode, PrefixOrderDeploysSubset) {
  const SystemModel m = testing::two_machine_system();
  const std::vector<StringId> order{1};
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 1u);
  EXPECT_TRUE(r.allocation.deployed(1));
  EXPECT_FALSE(r.allocation.deployed(0));
  EXPECT_EQ(r.fitness.total_worth, 10);
}

/// One machine; string utilizations 0.4, 0.7, 0.05: the second commit
/// overloads the machine and terminates the decode even though the third
/// string alone would still fit.
SystemModel stop_not_skip_system() {
  SystemModelBuilder b(1);
  b.begin_string(10.0, 1000.0, Worth::kLow, "A");
  b.add_app(4.0, 1.0, 0.0);  // 0.4
  b.begin_string(10.0, 1000.0, Worth::kLow, "B");
  b.add_app(7.0, 1.0, 0.0);  // 0.7
  b.begin_string(10.0, 1000.0, Worth::kLow, "C");
  b.add_app(0.5, 1.0, 0.0);  // 0.05
  return b.build();
}

TEST(Decode, StopsAtFirstFailureNotSkips) {
  const SystemModel m = stop_not_skip_system();
  const auto order = identity_order(m);
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 1u);
  EXPECT_EQ(r.first_failed, 1);
  EXPECT_TRUE(r.allocation.deployed(0));
  EXPECT_FALSE(r.allocation.deployed(1));
  EXPECT_FALSE(r.allocation.deployed(2));  // never attempted
}

TEST(Decode, OrderChangesOutcome) {
  const SystemModel m = stop_not_skip_system();
  // Order C, A, B: C (0.05) + A (0.4) fit; B (0.7) fails.
  const std::vector<StringId> order{2, 0, 1};
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 2u);
  EXPECT_EQ(r.first_failed, 1);
  EXPECT_TRUE(r.allocation.deployed(0));
  EXPECT_TRUE(r.allocation.deployed(2));
}

TEST(Decode, EmptyOrderDeploysNothing) {
  const SystemModel m = testing::two_machine_system();
  const DecodeResult r = decode_order(m, {});
  EXPECT_EQ(r.strings_deployed, 0u);
  EXPECT_EQ(r.fitness.total_worth, 0);
  EXPECT_DOUBLE_EQ(r.fitness.slackness, 1.0);
}

TEST(Decode, IdentityOrderHelper) {
  const SystemModel m = testing::two_machine_system();
  const auto order = identity_order(m);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(Decode, DeployedSetAlwaysPassesFeasibility) {
  const SystemModel m = stop_not_skip_system();
  for (const std::vector<StringId>& order :
       {std::vector<StringId>{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {2, 0, 1}}) {
    const DecodeResult r = decode_order(m, order);
    EXPECT_TRUE(analysis::check_feasibility(m, r.allocation).feasible());
  }
}

TEST(DecodeContext, PushPopRewindPrimitives) {
  const SystemModel m = testing::two_machine_system();
  DecodeContext ctx(m);
  EXPECT_EQ(ctx.depth(), 0u);
  EXPECT_TRUE(ctx.try_push(0));
  EXPECT_TRUE(ctx.try_push(1));
  EXPECT_EQ(ctx.depth(), 2u);
  EXPECT_EQ(ctx.fitness().total_worth, 110);
  ctx.pop();
  EXPECT_EQ(ctx.depth(), 1u);
  EXPECT_EQ(ctx.fitness().total_worth, 100);
  EXPECT_TRUE(ctx.try_push(1));
  ctx.rewind_to(0);
  EXPECT_EQ(ctx.depth(), 0u);
  EXPECT_EQ(ctx.fitness().total_worth, 0);
  EXPECT_DOUBLE_EQ(ctx.fitness().slackness, 1.0);
  // The context is reusable after a full rewind.
  EXPECT_TRUE(ctx.try_push(0));
  EXPECT_EQ(ctx.fitness().total_worth, 100);
}

/// Compares an incremental decode against a from-scratch decode of the same
/// order.  Equality is exact (operator==, no tolerance): the prefix-reuse
/// engine promises bit-identical results.
void expect_matches_from_scratch(DecodeContext& ctx, const SystemModel& m,
                                 const std::vector<StringId>& order) {
  const DecodeOutcome inc = decode_order_into(ctx, order);
  const DecodeResult fresh = decode_order(m, order);
  EXPECT_EQ(inc.fitness.total_worth, fresh.fitness.total_worth);
  EXPECT_EQ(inc.fitness.slackness, fresh.fitness.slackness);
  EXPECT_EQ(inc.strings_deployed, fresh.strings_deployed);
  EXPECT_EQ(inc.first_failed, fresh.first_failed);
  EXPECT_LE(inc.prefix_reused, order.size());
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    const auto id = static_cast<StringId>(k);
    ASSERT_EQ(ctx.allocation().deployed(id), fresh.allocation.deployed(id))
        << "k=" << k;
    if (!fresh.allocation.deployed(id)) continue;
    for (std::size_t i = 0; i < m.strings[k].size(); ++i) {
      EXPECT_EQ(ctx.allocation().machine_of(id, static_cast<model::AppIndex>(i)),
                fresh.allocation.machine_of(id, static_cast<model::AppIndex>(i)))
          << "k=" << k << " i=" << i;
    }
  }
}

/// Differential fuzz (fixed seeds): a long stream of swap-neighbor and
/// fully-reshuffled orders through one context must match from-scratch
/// decodes exactly, on both an overloaded and a lightly loaded instance.
TEST(DecodeContext, PrefixReuseMatchesFromScratchFuzz) {
  for (const auto scenario :
       {workload::Scenario::kHighlyLoaded, workload::Scenario::kLightlyLoaded}) {
    for (const std::uint64_t seed : {11ULL, 29ULL}) {
      util::Rng rng(seed);
      auto config = workload::GeneratorConfig::for_scenario(scenario);
      config.num_machines = 4;
      config.num_strings = 20;
      const SystemModel m = workload::generate(config, rng);
      DecodeContext ctx(m);
      std::vector<StringId> order = identity_order(m);
      rng.shuffle(order);
      for (int iter = 0; iter < 60; ++iter) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " iter=" + std::to_string(iter));
        if (iter % 15 == 14) {
          rng.shuffle(order);  // occasional full reshuffle: tiny prefix
        } else {
          const std::size_t i = rng.bounded(order.size());
          std::size_t j = rng.bounded(order.size());
          while (j == i) j = rng.bounded(order.size());
          std::swap(order[i], order[j]);
        }
        expect_matches_from_scratch(ctx, m, order);
      }
      // Shrinking and growing the order length exercises rewinds past the
      // end of the new order.
      std::vector<StringId> prefix(order.begin(), order.begin() + 5);
      expect_matches_from_scratch(ctx, m, prefix);
      expect_matches_from_scratch(ctx, m, order);
    }
  }
}

}  // namespace
}  // namespace tsce::core
