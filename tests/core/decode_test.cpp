#include "core/decode.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "model/system_model.hpp"
#include "testing/builders.hpp"

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Decode, AllStringsFitInRelaxedSystem) {
  const SystemModel m = testing::two_machine_system();
  const auto order = identity_order(m);
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 2u);
  EXPECT_EQ(r.first_failed, -1);
  EXPECT_EQ(r.fitness.total_worth, 110);
  EXPECT_TRUE(analysis::check_feasibility(m, r.allocation).feasible());
}

TEST(Decode, PrefixOrderDeploysSubset) {
  const SystemModel m = testing::two_machine_system();
  const std::vector<StringId> order{1};
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 1u);
  EXPECT_TRUE(r.allocation.deployed(1));
  EXPECT_FALSE(r.allocation.deployed(0));
  EXPECT_EQ(r.fitness.total_worth, 10);
}

/// One machine; string utilizations 0.4, 0.7, 0.05: the second commit
/// overloads the machine and terminates the decode even though the third
/// string alone would still fit.
SystemModel stop_not_skip_system() {
  SystemModelBuilder b(1);
  b.begin_string(10.0, 1000.0, Worth::kLow, "A");
  b.add_app(4.0, 1.0, 0.0);  // 0.4
  b.begin_string(10.0, 1000.0, Worth::kLow, "B");
  b.add_app(7.0, 1.0, 0.0);  // 0.7
  b.begin_string(10.0, 1000.0, Worth::kLow, "C");
  b.add_app(0.5, 1.0, 0.0);  // 0.05
  return b.build();
}

TEST(Decode, StopsAtFirstFailureNotSkips) {
  const SystemModel m = stop_not_skip_system();
  const auto order = identity_order(m);
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 1u);
  EXPECT_EQ(r.first_failed, 1);
  EXPECT_TRUE(r.allocation.deployed(0));
  EXPECT_FALSE(r.allocation.deployed(1));
  EXPECT_FALSE(r.allocation.deployed(2));  // never attempted
}

TEST(Decode, OrderChangesOutcome) {
  const SystemModel m = stop_not_skip_system();
  // Order C, A, B: C (0.05) + A (0.4) fit; B (0.7) fails.
  const std::vector<StringId> order{2, 0, 1};
  const DecodeResult r = decode_order(m, order);
  EXPECT_EQ(r.strings_deployed, 2u);
  EXPECT_EQ(r.first_failed, 1);
  EXPECT_TRUE(r.allocation.deployed(0));
  EXPECT_TRUE(r.allocation.deployed(2));
}

TEST(Decode, EmptyOrderDeploysNothing) {
  const SystemModel m = testing::two_machine_system();
  const DecodeResult r = decode_order(m, {});
  EXPECT_EQ(r.strings_deployed, 0u);
  EXPECT_EQ(r.fitness.total_worth, 0);
  EXPECT_DOUBLE_EQ(r.fitness.slackness, 1.0);
}

TEST(Decode, IdentityOrderHelper) {
  const SystemModel m = testing::two_machine_system();
  const auto order = identity_order(m);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(Decode, DeployedSetAlwaysPassesFeasibility) {
  const SystemModel m = stop_not_skip_system();
  for (const std::vector<StringId>& order :
       {std::vector<StringId>{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {2, 0, 1}}) {
    const DecodeResult r = decode_order(m, order);
    EXPECT_TRUE(analysis::check_feasibility(m, r.allocation).feasible());
  }
}

}  // namespace
}  // namespace tsce::core
