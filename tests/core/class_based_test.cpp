#include "core/class_based.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "model/system_model.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(ClassBased, HighWorthClassWinsEvenWhenManyMediumsWouldScoreMore) {
  // Capacity fits either one high-worth string (100) or three mediums (30
  // worth... but 10*11=110 > 100 with eleven mediums).  One machine with
  // capacity 1.0: high needs 0.9; each of 11 mediums needs 0.09 (sum 0.99).
  // The flat worth-sum optimum deploys the 11 mediums (110 > 100); the
  // class-based scheme MUST deploy the high string first.
  SystemModelBuilder b(1);
  b.begin_string(10.0, 10000.0, Worth::kHigh, "flagship");
  b.add_app(9.0, 1.0, 0.0);  // 0.9 utilization
  for (int k = 0; k < 11; ++k) {
    b.begin_string(10.0, 10000.0, Worth::kMedium);
    b.add_app(0.9, 1.0, 0.0);  // 0.09 each
  }
  const SystemModel m = b.build();
  util::Rng rng(1);
  const auto result = ClassBasedAllocator{}.allocate(m, rng);
  EXPECT_TRUE(result.allocation.deployed(0)) << "high class must be frozen first";
  // Remaining capacity 0.1 fits one medium.
  EXPECT_EQ(result.fitness.total_worth, 110);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(ClassBased, FeasibleOnRandomWorkload) {
  util::Rng rng(2);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = 3;
  config.num_strings = 12;
  const SystemModel m = generate(config, rng);
  util::Rng search_rng(3);
  const auto result = ClassBasedAllocator{}.allocate(m, search_rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_EQ(result.fitness.total_worth,
            analysis::total_worth(m, result.allocation));
}

TEST(ClassBased, DeploysEverythingWhenLightlyLoaded) {
  util::Rng rng(4);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 8;
  config.num_strings = 8;
  const SystemModel m = generate(config, rng);
  util::Rng search_rng(5);
  const auto result = ClassBasedAllocator{}.allocate(m, search_rng);
  EXPECT_EQ(result.fitness.total_worth, m.total_worth_available());
}

TEST(ClassBased, HandlesSingleClassInstances) {
  SystemModelBuilder b(2);
  b.uniform_bandwidth(5.0);
  for (int k = 0; k < 4; ++k) {
    b.begin_string(10.0, 100.0, Worth::kLow);
    b.add_app(1.0, 0.4, 0.0);
  }
  const SystemModel m = b.build();
  util::Rng rng(6);
  const auto result = ClassBasedAllocator{}.allocate(m, rng);
  EXPECT_EQ(result.fitness.total_worth, 4);
}

TEST(ClassBased, EmptyClassesAreSkipped) {
  SystemModelBuilder b(1);
  b.begin_string(10.0, 100.0, Worth::kMedium);
  b.add_app(1.0, 0.4, 0.0);
  const SystemModel m = b.build();
  util::Rng rng(7);
  const auto result = ClassBasedAllocator{}.allocate(m, rng);
  EXPECT_EQ(result.fitness.total_worth, 10);
}

TEST(ClassBased, BatchedEvaluationDeterministicAcrossThreadCounts) {
  // The per-class GENITOR search fans its initial populations out across the
  // BatchEvaluator's workers; results must be byte-identical at any
  // eval_threads count (and match the inline default).
  util::Rng rng(8);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = 3;
  config.num_strings = 12;
  const SystemModel m = generate(config, rng);
  auto run = [&](std::size_t threads) {
    ClassBasedOptions options;
    options.ga.population_size = 16;
    options.ga.max_iterations = 60;
    options.ga.stagnation_limit = 30;
    options.eval_threads = threads;
    util::Rng search_rng(9);
    return ClassBasedAllocator(options).allocate(m, search_rng);
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one.order, four.order);
  EXPECT_EQ(one.fitness.total_worth, four.fitness.total_worth);
  EXPECT_EQ(one.fitness.slackness, four.fitness.slackness);
  EXPECT_EQ(one.evaluations, four.evaluations);
  EXPECT_TRUE(analysis::check_feasibility(m, one.allocation).feasible());
}

}  // namespace
}  // namespace tsce::core
