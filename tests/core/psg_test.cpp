#include "core/psg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "core/ordered.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::StringId;
using model::SystemModel;

/// Small contended instance for search tests.
SystemModel small_contended_system(std::uint64_t seed, std::size_t machines = 3,
                                   std::size_t strings = 10) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

PsgOptions quick_options() {
  PsgOptions options;
  options.ga.population_size = 30;
  options.ga.max_iterations = 120;
  options.ga.stagnation_limit = 60;
  options.trials = 2;
  return options;
}

TEST(PermutationProblem, ReorderTopUsesPatternOrder) {
  using C = PermutationProblem::Chromosome;
  const C receiver{3, 1, 4, 0, 2};
  const C pattern{4, 3, 2, 1, 0};
  // Top 3 of receiver = {3,1,4}; their order in pattern: 4 first, then 3,
  // then 1.  Bottom part {0,2} untouched.
  const C child = PermutationProblem::reorder_top(receiver, pattern, 3);
  EXPECT_EQ(child, (C{4, 3, 1, 0, 2}));
}

TEST(PermutationProblem, ReorderTopFullLengthMatchesPattern) {
  using C = PermutationProblem::Chromosome;
  const C receiver{0, 1, 2, 3};
  const C pattern{2, 0, 3, 1};
  EXPECT_EQ(PermutationProblem::reorder_top(receiver, pattern, 4), pattern);
}

TEST(PermutationProblem, ReorderTopCutZeroIsIdentity) {
  using C = PermutationProblem::Chromosome;
  const C receiver{2, 0, 1};
  const C pattern{1, 2, 0};
  EXPECT_EQ(PermutationProblem::reorder_top(receiver, pattern, 0), receiver);
}

TEST(PermutationProblem, CrossoverProducesPermutations) {
  const SystemModel m = small_contended_system(1);
  const PermutationProblem problem(m);
  util::Rng rng(2);
  auto a = problem.random_chromosome(rng);
  auto b = problem.random_chromosome(rng);
  for (int round = 0; round < 20; ++round) {
    auto [c1, c2] = problem.crossover(a, b, rng);
    EXPECT_TRUE(std::is_permutation(c1.begin(), c1.end(), a.begin()));
    EXPECT_TRUE(std::is_permutation(c2.begin(), c2.end(), a.begin()));
    a = std::move(c1);
    b = std::move(c2);
  }
}

TEST(PermutationProblem, CrossoverKeepsBottomPartOfReceiver) {
  using C = PermutationProblem::Chromosome;
  const SystemModel m = small_contended_system(1);
  const PermutationProblem problem(m);
  util::Rng rng(3);
  const auto a = problem.random_chromosome(rng);
  const auto b = problem.random_chromosome(rng);
  // Check directly through the deterministic building block.
  for (std::size_t cut = 0; cut <= a.size(); ++cut) {
    const C child = PermutationProblem::reorder_top(a, b, cut);
    for (std::size_t p = cut; p < a.size(); ++p) {
      EXPECT_EQ(child[p], a[p]) << "bottom position " << p << " changed";
    }
    EXPECT_TRUE(std::is_permutation(child.begin(), child.end(), a.begin()));
  }
}

TEST(PermutationProblem, MutateSwapsExactlyTwoPositions) {
  const SystemModel m = small_contended_system(1);
  const PermutationProblem problem(m);
  util::Rng rng(4);
  const auto c = problem.random_chromosome(rng);
  for (int round = 0; round < 20; ++round) {
    const auto mutant = problem.mutate(c, rng);
    int diffs = 0;
    for (std::size_t p = 0; p < c.size(); ++p) {
      if (mutant[p] != c[p]) ++diffs;
    }
    EXPECT_EQ(diffs, 2);
    EXPECT_TRUE(std::is_permutation(mutant.begin(), mutant.end(), c.begin()));
  }
}

TEST(PermutationProblem, EvaluateMatchesDecode) {
  const SystemModel m = small_contended_system(5);
  const PermutationProblem problem(m);
  util::Rng rng(6);
  const auto c = problem.random_chromosome(rng);
  const auto fitness = problem.evaluate(c);
  const auto decoded = decode_order(m, c);
  EXPECT_EQ(fitness.total_worth, decoded.fitness.total_worth);
  EXPECT_DOUBLE_EQ(fitness.slackness, decoded.fitness.slackness);
}

TEST(Psg, BeatsWorstRandomOrderAndStaysFeasible) {
  const SystemModel m = small_contended_system(7);
  util::Rng rng(8);
  const auto psg = Psg(quick_options()).allocate(m, rng);
  // Searching over many orders cannot do worse than the weakest of a handful
  // of random single decodes.
  util::Rng rng2(8);
  int worst_random = std::numeric_limits<int>::max();
  for (int trial = 0; trial < 5; ++trial) {
    auto order = identity_order(m);
    rng2.shuffle(order);
    worst_random = std::min(worst_random, decode_order(m, order).fitness.total_worth);
  }
  EXPECT_GE(psg.fitness.total_worth, worst_random);
  EXPECT_TRUE(analysis::check_feasibility(m, psg.allocation).feasible());
}

TEST(Psg, DeterministicForSameSeed) {
  const SystemModel m = small_contended_system(9);
  util::Rng rng1(10);
  util::Rng rng2(10);
  const auto a = Psg(quick_options()).allocate(m, rng1);
  const auto b = Psg(quick_options()).allocate(m, rng2);
  EXPECT_EQ(a.fitness.total_worth, b.fitness.total_worth);
  EXPECT_DOUBLE_EQ(a.fitness.slackness, b.fitness.slackness);
  EXPECT_EQ(a.order, b.order);
}

TEST(PermutationProblem, BatchEvaluateMatchesSerialEvaluate) {
  const SystemModel m = small_contended_system(5);
  const PermutationProblem serial(m, 1);
  const PermutationProblem parallel(m, 2);
  util::Rng rng(21);
  std::vector<PermutationProblem::Chromosome> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(serial.random_chromosome(rng));
  const auto parallel_fitness = parallel.evaluate_batch(batch);
  ASSERT_EQ(parallel_fitness.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto one = serial.evaluate(batch[i]);
    EXPECT_EQ(parallel_fitness[i].total_worth, one.total_worth);
    EXPECT_EQ(parallel_fitness[i].slackness, one.slackness);
  }
}

TEST(Psg, EvalThreadsDoNotChangeResult) {
  const SystemModel m = small_contended_system(16);
  PsgOptions serial_options = quick_options();
  serial_options.eval_threads = 1;
  PsgOptions parallel_options = quick_options();
  parallel_options.eval_threads = 2;
  util::Rng rng1(17);
  util::Rng rng2(17);
  const auto a = Psg(serial_options).allocate(m, rng1);
  const auto b = Psg(parallel_options).allocate(m, rng2);
  EXPECT_EQ(a.fitness.total_worth, b.fitness.total_worth);
  EXPECT_EQ(a.fitness.slackness, b.fitness.slackness);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(SeededPsg, NeverWorseThanItsSeeds) {
  // Elitism + seeding: the Seeded PSG result dominates both MWF and TF.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const SystemModel m = small_contended_system(seed);
    util::Rng rng(seed);
    const auto mwf = MostWorthFirst{}.allocate(m, rng);
    const auto tf = TightestFirst{}.allocate(m, rng);
    util::Rng rng_psg(seed + 100);
    const auto seeded = SeededPsg(quick_options()).allocate(m, rng_psg);
    EXPECT_GE(seeded.fitness.total_worth,
              std::max(mwf.fitness.total_worth, tf.fitness.total_worth))
        << "seed " << seed;
  }
}

TEST(LpSeededPsg, NeverWorseThanTheLpGuidedSeed) {
  for (std::uint64_t seed : {31u, 32u}) {
    const SystemModel m = small_contended_system(seed);
    const DecodeResult guided = decode_order(m, lp_guided_order(m));
    util::Rng rng(seed + 200);
    const auto result = LpSeededPsg(quick_options()).allocate(m, rng);
    EXPECT_GE(result.fitness.total_worth, guided.fitness.total_worth)
        << "seed " << seed;
    EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  }
}

TEST(LpSeededPsg, HasDistinctName) {
  EXPECT_EQ(LpSeededPsg{}.name(), "LP-Seeded PSG");
  EXPECT_EQ(SeededPsg{}.name(), "Seeded PSG");
}

TEST(Psg, DefaultOptionsMatchThePaper) {
  // §5: population 250, bias 1.6, stop at 5000 iterations or 300 without an
  // elite change; §8: four trials per run.
  const PsgOptions defaults;
  EXPECT_EQ(defaults.ga.population_size, 250u);
  EXPECT_DOUBLE_EQ(defaults.ga.bias, 1.6);
  EXPECT_EQ(defaults.ga.max_iterations, 5000u);
  EXPECT_EQ(defaults.ga.stagnation_limit, 300u);
  EXPECT_EQ(defaults.trials, 4u);
}

TEST(Psg, ReportsEvaluationBudget) {
  const SystemModel m = small_contended_system(14);
  util::Rng rng(15);
  PsgOptions options = quick_options();
  options.trials = 1;
  const auto result = Psg(options).allocate(m, rng);
  // At least the initial population is evaluated.
  EXPECT_GE(result.evaluations, options.ga.population_size);
}

}  // namespace
}  // namespace tsce::core
