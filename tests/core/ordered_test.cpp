#include "core/ordered.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "analysis/tightness.hpp"
#include "model/system_model.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

SystemModel three_worth_system() {
  SystemModelBuilder b(2);
  b.uniform_bandwidth(8.0);
  b.begin_string(10.0, 100.0, Worth::kLow, "low");
  b.add_app(1.0, 0.5, 0.0);
  b.begin_string(10.0, 100.0, Worth::kHigh, "high");
  b.add_app(1.0, 0.5, 0.0);
  b.begin_string(10.0, 100.0, Worth::kMedium, "medium");
  b.add_app(1.0, 0.5, 0.0);
  return b.build();
}

TEST(MwfOrder, RanksByDescendingWorth) {
  const SystemModel m = three_worth_system();
  const auto order = mwf_order(m);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // worth 100
  EXPECT_EQ(order[1], 2);  // worth 10
  EXPECT_EQ(order[2], 0);  // worth 1
}

TEST(MwfOrder, StableForEqualWorth) {
  SystemModelBuilder b(1);
  for (int k = 0; k < 4; ++k) {
    b.begin_string(10.0, 100.0, Worth::kMedium);
    b.add_app(1.0, 0.5, 0.0);
  }
  const SystemModel m = b.build();
  const auto order = mwf_order(m);
  EXPECT_EQ(order, (std::vector<model::StringId>{0, 1, 2, 3}));
}

TEST(TfOrder, RanksByDescendingApproxTightness) {
  const SystemModel m = testing::two_machine_system();
  const auto order = tf_order(m);
  // approx T: s0 = 6.05/30 = 0.2017 > s1 = 7.025/50 = 0.1405.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_GE(analysis::approx_tightness(m, order[0]),
            analysis::approx_tightness(m, order[1]));
}

TEST(TfOrder, SortedInvariantOnRandomWorkload) {
  util::Rng rng(5);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 6;
  config.num_strings = 20;
  const SystemModel m = generate(config, rng);
  const auto order = tf_order(m);
  for (std::size_t p = 0; p + 1 < order.size(); ++p) {
    EXPECT_GE(analysis::approx_tightness(m, order[p]),
              analysis::approx_tightness(m, order[p + 1]) - 1e-12);
  }
}

TEST(MostWorthFirst, DeploysHighWorthUnderContention) {
  // One machine fits only one of two strings; MWF must pick the high-worth one.
  SystemModelBuilder b(1);
  b.begin_string(10.0, 1000.0, Worth::kLow, "low");
  b.add_app(7.0, 1.0, 0.0);  // 0.7
  b.begin_string(10.0, 1000.0, Worth::kHigh, "high");
  b.add_app(7.0, 1.0, 0.0);  // 0.7
  const SystemModel m = b.build();
  util::Rng rng(1);
  const auto result = MostWorthFirst{}.allocate(m, rng);
  EXPECT_EQ(result.fitness.total_worth, 100);
  EXPECT_TRUE(result.allocation.deployed(1));
  EXPECT_FALSE(result.allocation.deployed(0));
}

TEST(MostWorthFirst, ResultIsFeasibleOnRandomWorkload) {
  util::Rng rng(6);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded, 0.2);
  config.num_machines = 4;
  const SystemModel m = generate(config, rng);
  const auto result = MostWorthFirst{}.allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_EQ(result.order.size(), m.num_strings());
}

TEST(TightestFirst, ResultIsFeasibleOnRandomWorkload) {
  util::Rng rng(7);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kQosLimited, 0.2);
  config.num_machines = 4;
  const SystemModel m = generate(config, rng);
  const auto result = TightestFirst{}.allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(Allocators, NamesAreDistinct) {
  EXPECT_EQ(MostWorthFirst{}.name(), "MWF");
  EXPECT_EQ(TightestFirst{}.name(), "TF");
}

TEST(LpGuidedOrder, IsAPermutationAndDeterministic) {
  util::Rng rng(21);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded, 0.2);
  config.num_machines = 4;
  const SystemModel m = generate(config, rng);
  const auto order = lp_guided_order(m);
  ASSERT_EQ(order.size(), m.num_strings());
  std::vector<bool> seen(m.num_strings(), false);
  for (const auto id : order) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(id)]);
    seen[static_cast<std::size_t>(id)] = true;
  }
  EXPECT_EQ(order, lp_guided_order(m));  // LP path is deterministic
}

TEST(LpGuidedOrder, FullyDeployableStringsComeFirst) {
  // One heavy low-worth string (cannot fit) and two light high-worth ones:
  // the LP deploys the light strings fully and only a fraction of the heavy
  // one, so the lights must precede it.
  SystemModelBuilder b(1);
  b.begin_string(10.0, 100.0, Worth::kLow, "heavy");
  b.add_app(20.0, 1.0, 0.0);  // utilization 2.0 alone: f = 0.5 at best
  b.begin_string(10.0, 100.0, Worth::kHigh, "light-a");
  b.add_app(1.0, 1.0, 0.0);
  b.begin_string(10.0, 100.0, Worth::kHigh, "light-b");
  b.add_app(1.0, 1.0, 0.0);
  const SystemModel m = b.build();
  const auto order = lp_guided_order(m);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 0);  // the fractional heavy string sorts last
}

}  // namespace
}  // namespace tsce::core
