#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "core/ordered.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::SystemModel;

SystemModel contended(std::uint64_t seed, std::size_t machines = 3,
                      std::size_t strings = 10) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

TEST(HillClimb, ProducesFeasibleAllocation) {
  const SystemModel m = contended(1);
  util::Rng rng(2);
  HillClimbOptions options;
  options.restarts = 2;
  options.max_evaluations = 300;
  const auto result = HillClimb(options).allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_EQ(result.order.size(), m.num_strings());
}

TEST(HillClimb, NeverWorseThanItsOwnStartingPoints) {
  // With one restart and a fixed seed, the climb starts from a random order
  // and only accepts improvements: the result dominates that start.
  const SystemModel m = contended(3);
  HillClimbOptions options;
  options.restarts = 1;
  options.max_evaluations = 200;
  util::Rng rng(4);
  const auto result = HillClimb(options).allocate(m, rng);
  util::Rng rng_replay(4);
  auto start = identity_order(m);
  rng_replay.shuffle(start);
  const auto start_fitness = decode_order(m, start).fitness;
  EXPECT_FALSE(result.fitness < start_fitness);
}

TEST(HillClimb, LpGuidedStartDominatesTheGuidedSeed) {
  // Restart 0 climbs from lp_guided_order; first-improvement climbing never
  // accepts a worse order, so the result dominates the seed's decode.
  const SystemModel m = contended(8);
  HillClimbOptions options;
  options.restarts = 1;
  options.max_evaluations = 200;
  options.lp_guided_start = true;
  util::Rng rng(9);
  const auto result = HillClimb(options).allocate(m, rng);
  const auto seed_fitness = decode_order(m, lp_guided_order(m)).fitness;
  EXPECT_FALSE(result.fitness < seed_fitness);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(HillClimb, LpGuidedStartLeavesOtherRestartsUnchanged) {
  // The guided start replaces only restart 0's shuffled order; the rng draws
  // are still consumed, so in the deterministic engine restarts 1..N-1 see
  // identical streams with the option on or off.
  const SystemModel m = contended(10);
  HillClimbOptions base;
  base.restarts = 3;
  base.threads = 1;  // deterministic engine: per-restart streams
  base.max_evaluations = 300;
  HillClimbOptions guided = base;
  guided.lp_guided_start = true;
  util::Rng rng_a(11), rng_b(11);
  const auto plain = HillClimb(base).allocate(m, rng_a);
  const auto with_guide = HillClimb(guided).allocate(m, rng_b);
  // Both dominate-or-equal is not guaranteed per-restart, but the guided run
  // can only differ through restart 0, whose start dominates a random one as
  // often as not; assert the shared invariant instead: both are feasible and
  // the guided run is never worse than the guided seed itself.
  EXPECT_TRUE(analysis::check_feasibility(m, plain.allocation).feasible());
  EXPECT_TRUE(analysis::check_feasibility(m, with_guide.allocation).feasible());
  const auto seed_fitness = decode_order(m, lp_guided_order(m)).fitness;
  EXPECT_FALSE(with_guide.fitness < seed_fitness);
}

TEST(HillClimb, RespectsEvaluationBudget) {
  const SystemModel m = contended(5);
  HillClimbOptions options;
  options.restarts = 100;
  options.max_evaluations = 50;
  util::Rng rng(6);
  const auto result = HillClimb(options).allocate(m, rng);
  EXPECT_LE(result.evaluations, 55u);  // budget plus the in-flight neighbor
}

TEST(HillClimb, ParallelRestartsDeterministicAcrossThreadCounts) {
  // With threads >= 1 every restart derives its rng stream from its index, so
  // the result must be identical at any worker count (and across reruns) —
  // including threads = 1, the inline no-pool execution of the same engine.
  const SystemModel m = contended(15);
  HillClimbOptions options;
  options.restarts = 4;
  options.max_evaluations = 400;
  auto run = [&](std::size_t threads) {
    HillClimbOptions o = options;
    o.threads = threads;
    util::Rng rng(16);
    return HillClimb(o).allocate(m, rng);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto three = run(3);
  const auto two_again = run(2);
  EXPECT_EQ(two.fitness.total_worth, three.fitness.total_worth);
  EXPECT_EQ(two.fitness.slackness, three.fitness.slackness);
  EXPECT_EQ(two.order, three.order);
  EXPECT_EQ(two.evaluations, three.evaluations);
  EXPECT_EQ(one.order, two.order);
  EXPECT_EQ(one.fitness.slackness, two.fitness.slackness);
  EXPECT_EQ(one.evaluations, two.evaluations);
  EXPECT_EQ(two.order, two_again.order);
  EXPECT_EQ(two.evaluations, two_again.evaluations);
  EXPECT_TRUE(analysis::check_feasibility(m, two.allocation).feasible());
}

TEST(HillClimb, ParallelBudgetIsSplitAcrossRestarts) {
  const SystemModel m = contended(17);
  HillClimbOptions options;
  options.restarts = 4;
  options.threads = 2;
  options.max_evaluations = 100;
  util::Rng rng(18);
  const auto result = HillClimb(options).allocate(m, rng);
  // Each restart gets a 25-evaluation slice plus its in-flight neighbor.
  EXPECT_LE(result.evaluations, 100u + options.restarts);
}

TEST(HillClimb, SingleStringInstance) {
  util::Rng rng(7);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 2;
  config.num_strings = 1;
  const SystemModel m = generate(config, rng);
  util::Rng search_rng(8);
  const auto result = HillClimb{}.allocate(m, search_rng);
  EXPECT_EQ(result.order.size(), 1u);
}

TEST(SimulatedAnnealing, ProducesFeasibleAllocation) {
  const SystemModel m = contended(9);
  util::Rng rng(10);
  AnnealingOptions options;
  options.iterations = 300;
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_EQ(result.evaluations, 301u);
}

TEST(SimulatedAnnealing, TracksBestNotCurrent) {
  // Even with aggressive temperature (accepting many downhill moves), the
  // reported result must dominate a plain random decode from the same seed
  // family almost surely; at minimum it must be internally consistent.
  const SystemModel m = contended(11);
  util::Rng rng(12);
  AnnealingOptions options;
  options.iterations = 400;
  options.initial_temperature = 50.0;
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  const auto replay = decode_order(m, result.order);
  EXPECT_EQ(replay.fitness.total_worth, result.fitness.total_worth);
  EXPECT_DOUBLE_EQ(replay.fitness.slackness, result.fitness.slackness);
}

TEST(SimulatedAnnealing, ColdAnnealingIsGreedy) {
  // Near-zero temperature: only improving moves are accepted, so the final
  // fitness is monotone in iterations (tested indirectly: more iterations
  // never hurt).
  const SystemModel m = contended(13);
  AnnealingOptions cold_short;
  cold_short.iterations = 50;
  cold_short.initial_temperature = 1e-9;
  AnnealingOptions cold_long = cold_short;
  cold_long.iterations = 400;
  util::Rng rng1(14);
  util::Rng rng2(14);
  const auto short_result = SimulatedAnnealing(cold_short).allocate(m, rng1);
  const auto long_result = SimulatedAnnealing(cold_long).allocate(m, rng2);
  EXPECT_FALSE(long_result.fitness < short_result.fitness);
}

TEST(SimulatedAnnealing, LegacyEngineUnchangedByTemperingKnobs) {
  // threads == 0 selects the legacy serial chain; the tempering-only knobs
  // (replicas, exchange_interval, ladder_ratio) must not perturb it, so a
  // fixed seed replays byte-identically whatever they are set to.
  const SystemModel m = contended(19);
  auto run = [&](AnnealingOptions options) {
    options.iterations = 250;
    options.threads = 0;
    util::Rng rng(20);
    return SimulatedAnnealing(options).allocate(m, rng);
  };
  const auto baseline = run({});
  AnnealingOptions weird;
  weird.replicas = 9;
  weird.exchange_interval = 1;
  weird.ladder_ratio = 5.0;
  const auto knobbed = run(weird);
  EXPECT_EQ(baseline.order, knobbed.order);
  EXPECT_EQ(baseline.fitness.total_worth, knobbed.fitness.total_worth);
  EXPECT_EQ(baseline.fitness.slackness, knobbed.fitness.slackness);
  EXPECT_EQ(baseline.evaluations, knobbed.evaluations);
}

TEST(SimulatedAnnealing, TemperingDeterministicAcrossThreadCounts) {
  const SystemModel m = contended(21);
  auto run = [&](std::size_t threads) {
    AnnealingOptions options;
    options.iterations = 400;
    options.replicas = 3;
    options.exchange_interval = 32;
    options.threads = threads;
    util::Rng rng(22);
    return SimulatedAnnealing(options).allocate(m, rng);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);  // threads > replicas: workers cap at 3
  const auto two_again = run(2);
  EXPECT_EQ(one.order, two.order);
  EXPECT_EQ(one.fitness.total_worth, two.fitness.total_worth);
  EXPECT_EQ(one.fitness.slackness, two.fitness.slackness);
  EXPECT_EQ(one.evaluations, two.evaluations);
  EXPECT_EQ(two.order, eight.order);
  EXPECT_EQ(two.evaluations, eight.evaluations);
  EXPECT_EQ(two.order, two_again.order);
  EXPECT_EQ(two.fitness.slackness, two_again.fitness.slackness);
  EXPECT_TRUE(analysis::check_feasibility(m, two.allocation).feasible());
}

TEST(SimulatedAnnealing, TemperingBudgetMatchesSerialEngine) {
  // The tempering engine splits `iterations` across the replicas and each
  // replica charges one decode for its start order, so the total evaluation
  // count is iterations + replicas — the serial engine's iterations + 1
  // generalized to N chains.  Holds whether or not replicas divides evenly.
  const SystemModel m = contended(23);
  AnnealingOptions options;
  options.iterations = 305;
  options.replicas = 4;
  options.threads = 1;
  util::Rng rng(24);
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  EXPECT_EQ(result.evaluations, 305u + 4u);
}

TEST(SimulatedAnnealing, DegenerateReplicaCounts) {
  // replicas = 0 is clamped to one chain, so it must agree byte-for-byte
  // with replicas = 1 (both: a single chain, no exchanges possible).
  const SystemModel m = contended(25);
  auto run = [&](std::size_t replicas) {
    AnnealingOptions options;
    options.iterations = 200;
    options.replicas = replicas;
    options.threads = 1;
    util::Rng rng(26);
    return SimulatedAnnealing(options).allocate(m, rng);
  };
  const auto zero = run(0);
  const auto one = run(1);
  EXPECT_EQ(zero.order, one.order);
  EXPECT_EQ(zero.fitness.total_worth, one.fitness.total_worth);
  EXPECT_EQ(zero.fitness.slackness, one.fitness.slackness);
  EXPECT_EQ(zero.evaluations, one.evaluations);
  EXPECT_TRUE(analysis::check_feasibility(m, one.allocation).feasible());
}

TEST(SimulatedAnnealing, ExchangeIntervalZeroRunsIndependentChains) {
  // exchange_interval = 0 disables the barriers: the replicas become
  // independent cooled chains folded best-of.  Still deterministic across
  // thread counts, still feasible.
  const SystemModel m = contended(27);
  auto run = [&](std::size_t threads) {
    AnnealingOptions options;
    options.iterations = 300;
    options.replicas = 3;
    options.exchange_interval = 0;
    options.threads = threads;
    util::Rng rng(28);
    return SimulatedAnnealing(options).allocate(m, rng);
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one.order, four.order);
  EXPECT_EQ(one.fitness.total_worth, four.fitness.total_worth);
  EXPECT_EQ(one.fitness.slackness, four.fitness.slackness);
  EXPECT_EQ(one.evaluations, four.evaluations);
  EXPECT_TRUE(analysis::check_feasibility(m, one.allocation).feasible());
}

TEST(SimulatedAnnealing, TemperingTracksBestNotCurrent) {
  // The reported order must replay to the reported fitness (same invariant
  // the serial engine keeps, now across replica exchanges).
  const SystemModel m = contended(29);
  AnnealingOptions options;
  options.iterations = 400;
  options.initial_temperature = 50.0;
  options.threads = 2;
  util::Rng rng(30);
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  const auto replay = decode_order(m, result.order);
  EXPECT_EQ(replay.fitness.total_worth, result.fitness.total_worth);
  EXPECT_DOUBLE_EQ(replay.fitness.slackness, result.fitness.slackness);
}

}  // namespace
}  // namespace tsce::core
