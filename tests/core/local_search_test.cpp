#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "analysis/feasibility.hpp"
#include "core/decode.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::SystemModel;

SystemModel contended(std::uint64_t seed, std::size_t machines = 3,
                      std::size_t strings = 10) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

TEST(HillClimb, ProducesFeasibleAllocation) {
  const SystemModel m = contended(1);
  util::Rng rng(2);
  HillClimbOptions options;
  options.restarts = 2;
  options.max_evaluations = 300;
  const auto result = HillClimb(options).allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_EQ(result.order.size(), m.num_strings());
}

TEST(HillClimb, NeverWorseThanItsOwnStartingPoints) {
  // With one restart and a fixed seed, the climb starts from a random order
  // and only accepts improvements: the result dominates that start.
  const SystemModel m = contended(3);
  HillClimbOptions options;
  options.restarts = 1;
  options.max_evaluations = 200;
  util::Rng rng(4);
  const auto result = HillClimb(options).allocate(m, rng);
  util::Rng rng_replay(4);
  auto start = identity_order(m);
  rng_replay.shuffle(start);
  const auto start_fitness = decode_order(m, start).fitness;
  EXPECT_FALSE(result.fitness < start_fitness);
}

TEST(HillClimb, RespectsEvaluationBudget) {
  const SystemModel m = contended(5);
  HillClimbOptions options;
  options.restarts = 100;
  options.max_evaluations = 50;
  util::Rng rng(6);
  const auto result = HillClimb(options).allocate(m, rng);
  EXPECT_LE(result.evaluations, 55u);  // budget plus the in-flight neighbor
}

TEST(HillClimb, ParallelRestartsDeterministicAcrossThreadCounts) {
  // With threads >= 1 every restart derives its rng stream from its index, so
  // the result must be identical at any worker count (and across reruns) —
  // including threads = 1, the inline no-pool execution of the same engine.
  const SystemModel m = contended(15);
  HillClimbOptions options;
  options.restarts = 4;
  options.max_evaluations = 400;
  auto run = [&](std::size_t threads) {
    HillClimbOptions o = options;
    o.threads = threads;
    util::Rng rng(16);
    return HillClimb(o).allocate(m, rng);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto three = run(3);
  const auto two_again = run(2);
  EXPECT_EQ(two.fitness.total_worth, three.fitness.total_worth);
  EXPECT_EQ(two.fitness.slackness, three.fitness.slackness);
  EXPECT_EQ(two.order, three.order);
  EXPECT_EQ(two.evaluations, three.evaluations);
  EXPECT_EQ(one.order, two.order);
  EXPECT_EQ(one.fitness.slackness, two.fitness.slackness);
  EXPECT_EQ(one.evaluations, two.evaluations);
  EXPECT_EQ(two.order, two_again.order);
  EXPECT_EQ(two.evaluations, two_again.evaluations);
  EXPECT_TRUE(analysis::check_feasibility(m, two.allocation).feasible());
}

TEST(HillClimb, ParallelBudgetIsSplitAcrossRestarts) {
  const SystemModel m = contended(17);
  HillClimbOptions options;
  options.restarts = 4;
  options.threads = 2;
  options.max_evaluations = 100;
  util::Rng rng(18);
  const auto result = HillClimb(options).allocate(m, rng);
  // Each restart gets a 25-evaluation slice plus its in-flight neighbor.
  EXPECT_LE(result.evaluations, 100u + options.restarts);
}

TEST(HillClimb, SingleStringInstance) {
  util::Rng rng(7);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  config.num_machines = 2;
  config.num_strings = 1;
  const SystemModel m = generate(config, rng);
  util::Rng search_rng(8);
  const auto result = HillClimb{}.allocate(m, search_rng);
  EXPECT_EQ(result.order.size(), 1u);
}

TEST(SimulatedAnnealing, ProducesFeasibleAllocation) {
  const SystemModel m = contended(9);
  util::Rng rng(10);
  AnnealingOptions options;
  options.iterations = 300;
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_EQ(result.evaluations, 301u);
}

TEST(SimulatedAnnealing, TracksBestNotCurrent) {
  // Even with aggressive temperature (accepting many downhill moves), the
  // reported result must dominate a plain random decode from the same seed
  // family almost surely; at minimum it must be internally consistent.
  const SystemModel m = contended(11);
  util::Rng rng(12);
  AnnealingOptions options;
  options.iterations = 400;
  options.initial_temperature = 50.0;
  const auto result = SimulatedAnnealing(options).allocate(m, rng);
  const auto replay = decode_order(m, result.order);
  EXPECT_EQ(replay.fitness.total_worth, result.fitness.total_worth);
  EXPECT_DOUBLE_EQ(replay.fitness.slackness, result.fitness.slackness);
}

TEST(SimulatedAnnealing, ColdAnnealingIsGreedy) {
  // Near-zero temperature: only improving moves are accepted, so the final
  // fitness is monotone in iterations (tested indirectly: more iterations
  // never hurt).
  const SystemModel m = contended(13);
  AnnealingOptions cold_short;
  cold_short.iterations = 50;
  cold_short.initial_temperature = 1e-9;
  AnnealingOptions cold_long = cold_short;
  cold_long.iterations = 400;
  util::Rng rng1(14);
  util::Rng rng2(14);
  const auto short_result = SimulatedAnnealing(cold_short).allocate(m, rng1);
  const auto long_result = SimulatedAnnealing(cold_long).allocate(m, rng2);
  EXPECT_FALSE(long_result.fitness < short_result.fitness);
}

}  // namespace
}  // namespace tsce::core
