#include "core/imr.hpp"

#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "model/system_model.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using analysis::UtilizationState;
using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(Imr, ComputationalIntensityMatchesDefinition) {
  const SystemModel m = testing::two_machine_system();
  // a0: 2*0.5/10 = 0.1; a1: 4*1.0/10 = 0.4.
  EXPECT_DOUBLE_EQ(computational_intensity(m, 0, 0), 0.1);
  EXPECT_DOUBLE_EQ(computational_intensity(m, 0, 1), 0.4);
  // b0: 5*0.8/20 = 0.2; b1: 2*0.25/20 = 0.025.
  EXPECT_DOUBLE_EQ(computational_intensity(m, 1, 0), 0.2);
  EXPECT_DOUBLE_EQ(computational_intensity(m, 1, 1), 0.025);
}

TEST(Imr, BalancesLoadAcrossMachines) {
  const SystemModel m = testing::two_machine_system();
  const UtilizationState util(m);
  const auto assignment = imr_map_string(m, util, 0);
  ASSERT_EQ(assignment.size(), 2u);
  // Seed a1 (intensity 0.4) lands on machine 0 (tie -> lowest index); a0 then
  // prefers the empty machine 1 over sharing machine 0.
  EXPECT_EQ(assignment[1], 0);
  EXPECT_EQ(assignment[0], 1);
}

TEST(Imr, AvoidsPreloadedMachine) {
  const SystemModel m = testing::two_machine_system();
  analysis::AllocationSession session(m);
  // Put string 0 entirely on machine 0 (utilization 0.5 there).
  ASSERT_TRUE(session.try_commit(0, {0, 0}));
  const auto assignment = imr_map_string(m, session.util(), 1);
  // Both apps of string 1 fit comfortably on the empty machine 1.
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[1], 1);
}

TEST(Imr, SingleAppString) {
  const SystemModel m = testing::minimal_system();
  const UtilizationState util(m);
  const auto assignment = imr_map_string(m, util, 0);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_EQ(assignment[0], 0);
}

TEST(Imr, AssignsEveryApplication) {
  util::Rng rng(3);
  auto config = workload::GeneratorConfig::for_scenario(
      workload::Scenario::kLightlyLoaded);
  config.num_machines = 5;
  config.num_strings = 10;
  const SystemModel m = generate(config, rng);
  const UtilizationState util(m);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    const auto assignment = imr_map_string(m, util, static_cast<model::StringId>(k));
    ASSERT_EQ(assignment.size(), m.strings[k].size());
    for (const auto j : assignment) {
      EXPECT_GE(j, 0);
      EXPECT_LT(j, 5);
    }
  }
}

TEST(Imr, DeterministicForIdenticalState) {
  util::Rng rng(4);
  auto config = workload::GeneratorConfig::for_scenario(
      workload::Scenario::kLightlyLoaded);
  config.num_machines = 6;
  config.num_strings = 8;
  const SystemModel m = generate(config, rng);
  const UtilizationState util(m);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    const auto a = imr_map_string(m, util, static_cast<model::StringId>(k));
    const auto b = imr_map_string(m, util, static_cast<model::StringId>(k));
    EXPECT_EQ(a, b);
  }
}

TEST(Imr, PrefersColocationWhenRouteIsBottleneck) {
  // Very slow network: splitting a heavy transfer across machines would cost
  // far more route utilization than co-locating costs CPU.
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(0.1)  // 0.1 Mb/s everywhere
                            .begin_string(10.0, 1000.0, Worth::kLow)
                            .add_app(2.0, 0.3, 1000.0)  // 8 Mb output
                            .add_app(2.0, 0.3, 0.0)
                            .build();
  const UtilizationState util(m);
  const auto assignment = imr_map_string(m, util, 0);
  EXPECT_EQ(assignment[0], assignment[1]);
}

TEST(Imr, MarchesThroughLongString) {
  // A 6-app string on 3 machines: every app must be assigned exactly once and
  // the contiguous-march invariant means no app is skipped.
  SystemModelBuilder b(3);
  b.uniform_bandwidth(5.0);
  b.begin_string(10.0, 1000.0, Worth::kMedium);
  for (int i = 0; i < 6; ++i) {
    b.add_app(1.0 + i * 0.5, 0.5, 20.0 * (i < 5 ? 1.0 : 0.0));
  }
  const SystemModel m = b.build();
  const UtilizationState util(m);
  const auto assignment = imr_map_string(m, util, 0);
  ASSERT_EQ(assignment.size(), 6u);
  for (const auto j : assignment) {
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 3);
  }
}

}  // namespace
}  // namespace tsce::core
