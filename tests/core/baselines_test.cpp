#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "core/psg.hpp"
#include "testing/builders.hpp"
#include "workload/generator.hpp"

namespace tsce::core {
namespace {

using model::SystemModel;

SystemModel contended(std::uint64_t seed, std::size_t machines = 3,
                      std::size_t strings = 8) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  return generate(config, rng);
}

TEST(RandomOrder, ProducesFeasibleAllocation) {
  const SystemModel m = contended(1);
  util::Rng rng(2);
  const auto result = RandomOrder{}.allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
  EXPECT_EQ(result.order.size(), m.num_strings());
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(RandomOrder, DifferentSeedsProduceDifferentOrders) {
  const SystemModel m = contended(3, 3, 12);
  util::Rng rng1(4);
  util::Rng rng2(5);
  const auto a = RandomOrder{}.allocate(m, rng1);
  const auto b = RandomOrder{}.allocate(m, rng2);
  EXPECT_NE(a.order, b.order);
}

TEST(AssignmentProblem, GenomeLengthIsTotalApps) {
  const SystemModel m = testing::two_machine_system();
  const AssignmentProblem problem(m);
  EXPECT_EQ(problem.genome_length(), 4u);
}

TEST(AssignmentProblem, RandomChromosomeInRange) {
  const SystemModel m = contended(6);
  const AssignmentProblem problem(m);
  util::Rng rng(7);
  const auto genes = problem.random_chromosome(rng);
  EXPECT_EQ(genes.size(), m.num_apps());
  for (const auto g : genes) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<model::MachineId>(m.num_machines()));
  }
}

TEST(AssignmentProblem, ProjectDeploysOnlyFeasibleStrings) {
  const SystemModel m = contended(8);
  const AssignmentProblem problem(m);
  util::Rng rng(9);
  const auto genes = problem.random_chromosome(rng);
  const auto result = problem.project(genes);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(AssignmentProblem, CrossoverSwapsPrefix) {
  const SystemModel m = contended(10);
  const AssignmentProblem problem(m);
  util::Rng rng(11);
  const auto a = problem.random_chromosome(rng);
  const auto b = problem.random_chromosome(rng);
  const auto [c1, c2] = problem.crossover(a, b, rng);
  ASSERT_EQ(c1.size(), a.size());
  // Every gene of c1 comes from a or b at the same position.
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_TRUE(c1[g] == a[g] || c1[g] == b[g]);
    EXPECT_TRUE(c2[g] == a[g] || c2[g] == b[g]);
  }
}

TEST(AssignmentProblem, MutateChangesAtMostOneGene) {
  const SystemModel m = contended(12);
  const AssignmentProblem problem(m);
  util::Rng rng(13);
  const auto c = problem.random_chromosome(rng);
  for (int round = 0; round < 10; ++round) {
    const auto mutant = problem.mutate(c, rng);
    int diffs = 0;
    for (std::size_t g = 0; g < c.size(); ++g) {
      if (mutant[g] != c[g]) ++diffs;
    }
    EXPECT_LE(diffs, 1);
  }
}

TEST(SolutionSpaceGa, RunsAndStaysFeasible) {
  const SystemModel m = contended(14, 3, 6);
  SolutionSpaceGaOptions options;
  options.ga.population_size = 20;
  options.ga.max_iterations = 60;
  options.ga.stagnation_limit = 30;
  util::Rng rng(15);
  const auto result = SolutionSpaceGa(options).allocate(m, rng);
  EXPECT_TRUE(analysis::check_feasibility(m, result.allocation).feasible());
}

TEST(SolutionSpaceGa, UnderperformsPermutationSearch) {
  // The paper's negative result (§5): searching raw assignments is far less
  // effective than searching string orderings.  With matched budgets the
  // permutation-space GA should never lose on a contended instance.
  const SystemModel m = contended(16, 3, 10);
  SolutionSpaceGaOptions ss_options;
  ss_options.ga.population_size = 25;
  ss_options.ga.max_iterations = 100;
  ss_options.ga.stagnation_limit = 100;
  PsgOptions psg_options;
  psg_options.ga.population_size = 25;
  psg_options.ga.max_iterations = 100;
  psg_options.ga.stagnation_limit = 100;
  psg_options.trials = 1;
  util::Rng rng1(17);
  util::Rng rng2(17);
  const auto ss = SolutionSpaceGa(ss_options).allocate(m, rng1);
  const auto psg = Psg(psg_options).allocate(m, rng2);
  EXPECT_GE(psg.fitness.total_worth, ss.fitness.total_worth);
}

}  // namespace
}  // namespace tsce::core
