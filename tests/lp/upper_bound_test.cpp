#include "lp/upper_bound.hpp"

#include <gtest/gtest.h>

#include "core/psg.hpp"
#include "model/system_model.hpp"
#include "workload/generator.hpp"

namespace tsce::lp {
namespace {

using model::SystemModel;
using model::SystemModelBuilder;
using model::Worth;

TEST(UpperBound, FullyDeployableStringReachesFullWorth) {
  // One machine, one string needing 0.4 utilization: f = 1.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(4.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 100.0, 1e-6);
  ASSERT_EQ(ub.string_fractions.size(), 1u);
  EXPECT_NEAR(ub.string_fractions[0], 1.0, 1e-8);
}

TEST(UpperBound, CapacityLimitsFraction) {
  // One machine, one string needing 2.0 utilization: f = 0.5, worth 50.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(20.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 50.0, 1e-6);
  EXPECT_NEAR(ub.string_fractions[0], 0.5, 1e-8);
}

TEST(UpperBound, TwoMachinesDoubleCapacity) {
  // The same 2.0-utilization string split across two machines: f = 1.
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(100.0)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(20.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 100.0, 1e-6);
}

TEST(UpperBound, PrefersHighWorthUnderContention) {
  // Capacity 1.0; strings need 1.0 each with worths 1 and 100: the LP should
  // spend all capacity on the high-worth string.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kLow)
                            .add_app(10.0, 1.0, 0.0)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(10.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 100.0, 1e-6);
  EXPECT_NEAR(ub.string_fractions[1], 1.0, 1e-8);
  EXPECT_NEAR(ub.string_fractions[0], 0.0, 1e-8);
}

TEST(UpperBound, RouteCapacityBindsMultiAppString) {
  // Heterogeneity pins app 1 to machine 0 and app 2 to machine 1 (the other
  // machine is 2000x slower), so essentially all flow crosses route 0->1.
  // The output is 2 Mb per 1 s period over a 1 Mb/s route: y <= 0.5, so the
  // deployable fraction is ~0.5 and the worth bound ~50.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);  // 1 Mb/s
  b.begin_string(1.0, 10000.0, Worth::kHigh);
  b.add_app({0.5, 1000.0}, {1.0, 1.0}, 250.0);
  b.add_app({1000.0, 0.5}, {1.0, 1.0}, 0.0);
  const SystemModel m = b.build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 50.0, 0.5);
}

TEST(UpperBound, PaperLiteralObjectiveWeightsByLength) {
  // Two strings, worth 10 each, one has 1 app and one has 3 apps; capacity
  // fits only one app's utilization (0.5).  The literal objective prefers
  // fractions of the longer string; the reported value is still sum I*f.
  SystemModelBuilder b(1);
  b.begin_string(10.0, 1000.0, Worth::kMedium, "short");
  b.add_app(5.0, 1.0, 0.0);
  b.begin_string(10.0, 1000.0, Worth::kMedium, "long");
  b.add_app(5.0, 1.0, 0.0);
  b.add_app(5.0, 1.0, 0.0);
  b.add_app(5.0, 1.0, 0.0);
  const SystemModel m = b.build();
  UpperBoundOptions literal;
  literal.objective = UbObjective::kPaperLiteral;
  const auto ub_literal = upper_bound_worth(m, literal);
  const auto ub_worth = upper_bound_worth(m);
  ASSERT_EQ(ub_literal.status, SolveStatus::kOptimal);
  ASSERT_EQ(ub_worth.status, SolveStatus::kOptimal);
  // The default objective achieves at least as much *worth* as the literal.
  EXPECT_GE(ub_worth.value, ub_literal.value - 1e-6);
}

TEST(UpperBoundSlackness, SingleStringHandComputable) {
  // One machine at 0.4 utilization when fully deployed: lambda = 0.6.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(4.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_slackness(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 0.6, 1e-8);
}

TEST(UpperBoundSlackness, BalancesAcrossMachines) {
  // Two machines, two identical 0.5-utilization strings: fractional split
  // puts 0.5 on each machine -> lambda = 0.5.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(100.0);
  for (int k = 0; k < 2; ++k) {
    b.begin_string(10.0, 100.0, Worth::kLow);
    b.add_app(5.0, 1.0, 0.0);
  }
  const SystemModel m = b.build();
  const auto ub = upper_bound_slackness(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 0.5, 1e-8);
}

TEST(UpperBoundSlackness, RouteCanBeTheBottleneck) {
  // Heterogeneity pins app 1 to machine 0 and app 2 to machine 1; the output
  // (2 Mb per 10 s period over a 1 Mb/s route) loads route 0->1 at 0.2 while
  // the CPUs sit near 0.05: lambda is route-bound at ~0.8.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);
  b.begin_string(10.0, 10000.0, Worth::kHigh);
  b.add_app({0.5, 1000.0}, {1.0, 1.0}, 250.0);
  b.add_app({1000.0, 0.5}, {1.0, 1.0}, 0.0);
  const SystemModel m = b.build();
  const auto ub = upper_bound_slackness(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ub.value, 0.8, 0.01);
}

TEST(UpperBound, IterationLimitSurfacesAsStatus) {
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(5.0)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(4.0, 1.0, 20.0)
                            .add_app(4.0, 1.0, 0.0)
                            .build();
  UpperBoundOptions options;
  options.simplex.max_iterations = 1;
  const auto ub = upper_bound_worth(m, options);
  // Either it finishes absurdly fast or truthfully reports the limit.
  EXPECT_TRUE(ub.status == SolveStatus::kOptimal ||
              ub.status == SolveStatus::kIterationLimit);
  if (ub.status == SolveStatus::kIterationLimit) {
    EXPECT_DOUBLE_EQ(ub.value, 0.0);
    EXPECT_TRUE(ub.string_fractions.empty());
  }
}

TEST(UpperBoundSlackness, InfeasibleWhenDemandExceedsCapacity) {
  // One machine, two strings needing 0.8 each: full deployment impossible.
  SystemModelBuilder b(1);
  for (int k = 0; k < 2; ++k) {
    b.begin_string(10.0, 100.0, Worth::kLow);
    b.add_app(8.0, 1.0, 0.0);
  }
  const SystemModel m = b.build();
  const auto ub = upper_bound_slackness(m);
  EXPECT_EQ(ub.status, SolveStatus::kInfeasible);
}

TEST(UpperBound, ShadowPriceIdentifiesMachineBottleneck) {
  // One machine, one string needing 2.0 utilization: f = cap/2, worth =
  // 100*cap/2, so dWorth/dCap = 50 on the binding machine.
  const SystemModel m = SystemModelBuilder(1)
                            .begin_string(10.0, 100.0, Worth::kHigh)
                            .add_app(20.0, 1.0, 0.0)
                            .build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  ASSERT_EQ(ub.machine_shadow_price.size(), 1u);
  EXPECT_NEAR(ub.machine_shadow_price[0], 50.0, 1e-6);
}

TEST(UpperBound, ShadowPriceIdentifiesRouteBottleneck) {
  // The pinned two-app string of RouteCapacityBindsMultiAppString: route 0->1
  // binds (f ~ 0.5); its shadow price is positive while the idle reverse
  // route's is ~0.
  SystemModelBuilder b(2);
  b.uniform_bandwidth(1.0);
  b.begin_string(1.0, 10000.0, Worth::kHigh);
  b.add_app({0.5, 1000.0}, {1.0, 1.0}, 250.0);
  b.add_app({1000.0, 0.5}, {1.0, 1.0}, 0.0);
  const SystemModel m = b.build();
  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  ASSERT_EQ(ub.route_shadow_price.size(), 4u);
  // One extra unit of route capacity carries 1/2 more flow: +50 worth.
  EXPECT_NEAR(ub.route_shadow_price[0 * 2 + 1], 50.0, 1.0);
  EXPECT_NEAR(ub.route_shadow_price[1 * 2 + 0], 0.0, 1e-6);
  // A machine capacity unit only helps through the 1000x-slow co-located
  // path: f += 1/1000, i.e. +0.1 worth — tiny but genuinely positive.
  EXPECT_NEAR(ub.machine_shadow_price[0], 0.1, 0.01);
  // The bottleneck ranking is unambiguous.
  EXPECT_GT(ub.route_shadow_price[0 * 2 + 1], 100.0 * ub.machine_shadow_price[0]);
}

TEST(UpperBound, BuildSizesAreConsistent) {
  const SystemModel m = SystemModelBuilder(2)
                            .uniform_bandwidth(5.0)
                            .begin_string(10.0, 100.0, Worth::kLow)
                            .add_app(1.0, 0.5, 10.0)
                            .add_app(1.0, 0.5, 0.0)
                            .build();
  const LpProblem p = build_upper_bound_lp(m, /*complete=*/false,
                                           UbObjective::kTotalWorth);
  // Variables: x = 2 apps * 2 machines, y = 1 edge * 4 routes.
  EXPECT_EQ(p.num_variables(), 4u + 4u);
  // Rows: (a) 1, (b) 1, (d) 2, (e) 2, (f) 2, (g) 2.
  EXPECT_EQ(p.num_rows(), 10u);
}

/// Property: the LP bound dominates every heuristic on random instances.
class UbDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UbDominance, UpperBoundsSeededPsg) {
  util::Rng rng(GetParam());
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = 3;
  config.num_strings = 8;
  const SystemModel m = generate(config, rng);

  core::PsgOptions options;
  options.ga.population_size = 20;
  options.ga.max_iterations = 80;
  options.ga.stagnation_limit = 40;
  options.trials = 1;
  util::Rng search_rng(GetParam() + 1000);
  const auto heuristic = core::SeededPsg(options).allocate(m, search_rng);

  const auto ub = upper_bound_worth(m);
  ASSERT_EQ(ub.status, SolveStatus::kOptimal);
  EXPECT_GE(ub.value + 1e-6, heuristic.fitness.total_worth)
      << "LP bound must dominate any integral allocation";
  for (const double f : ub.string_fractions) {
    EXPECT_GE(f, -1e-8);
    EXPECT_LE(f, 1.0 + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, UbDominance,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tsce::lp
