#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace tsce::lp {
namespace {

/// Verifies x satisfies every row and bound of the problem within tolerance.
void expect_primal_feasible(const LpProblem& p, const std::vector<double>& x,
                            double tol = 1e-6) {
  ASSERT_EQ(x.size(), p.num_variables());
  for (std::size_t v = 0; v < x.size(); ++v) {
    EXPECT_GE(x[v], p.lower(static_cast<std::int32_t>(v)) - tol) << "var " << v;
    EXPECT_LE(x[v], p.upper(static_cast<std::int32_t>(v)) + tol) << "var " << v;
  }
  std::vector<double> activity(p.num_rows(), 0.0);
  for (const auto& t : p.triplets()) {
    activity[static_cast<std::size_t>(t.row)] += t.value * x[static_cast<std::size_t>(t.col)];
  }
  for (std::size_t r = 0; r < p.num_rows(); ++r) {
    const double rhs = p.rhs(static_cast<std::int32_t>(r));
    switch (p.relation(static_cast<std::int32_t>(r))) {
      case Relation::kLessEqual:
        EXPECT_LE(activity[r], rhs + tol) << "row " << r;
        break;
      case Relation::kGreaterEqual:
        EXPECT_GE(activity[r], rhs - tol) << "row " << r;
        break;
      case Relation::kEqual:
        EXPECT_NEAR(activity[r], rhs, tol) << "row " << r;
        break;
    }
  }
}

TEST(Simplex, TwoVariableMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.  Opt: (2,2) -> 10.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 2.0, 3.0);
  const auto y = p.add_variable(0.0, 3.0, 2.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
  expect_primal_feasible(p, sol.x);
}

TEST(Simplex, MinimizationWithGreaterEqualNeedsPhase1) {
  // min x + y s.t. x + y >= 2, x,y in [0,5].  Opt value 2.
  LpProblem p(Sense::kMinimize);
  const auto x = p.add_variable(0.0, 5.0, 1.0);
  const auto y = p.add_variable(0.0, 5.0, 1.0);
  const auto r = p.add_row(Relation::kGreaterEqual, 2.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
  expect_primal_feasible(p, sol.x);
}

TEST(Simplex, EqualityRowNeedsPhase1) {
  // max x s.t. x + y = 3, x in [0,10], y in [0,1].  Opt: x=3, y=0.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 10.0, 1.0);
  const auto y = p.add_variable(0.0, 1.0, 0.0);
  const auto r = p.add_row(Relation::kEqual, 3.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  expect_primal_feasible(p, sol.x);
}

TEST(Simplex, NegativeRhsLessEqual) {
  // min x s.t. -x <= -2 (x >= 2), x in [0,10].  Opt 2; slack starts violated.
  LpProblem p(Sense::kMinimize);
  const auto x = p.add_variable(0.0, 10.0, 1.0);
  const auto r = p.add_row(Relation::kLessEqual, -2.0);
  p.add_coefficient(r, x, -1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 10.0, 1.0);
  const auto r1 = p.add_row(Relation::kLessEqual, 1.0);
  p.add_coefficient(r1, x, 1.0);
  const auto r2 = p.add_row(Relation::kGreaterEqual, 2.0);
  p.add_coefficient(r2, x, 1.0);
  const auto sol = solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedWithRow) {
  // max x s.t. y <= 1; x has no upper bound.
  LpProblem p(Sense::kMaximize);
  (void)p.add_variable(0.0, kInf, 1.0);
  const auto y = p.add_variable(0.0, kInf, 0.0);
  const auto r = p.add_row(Relation::kLessEqual, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Simplex, RowFreeProblemSitsAtBounds) {
  LpProblem p(Sense::kMaximize);
  (void)p.add_variable(0.0, 3.0, 2.0);   // wants upper bound
  (void)p.add_variable(1.0, 5.0, -1.0);  // wants lower bound
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-12);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-12);
  EXPECT_NEAR(sol.objective, 5.0, 1e-12);
}

TEST(Simplex, RowFreeUnbounded) {
  LpProblem p(Sense::kMaximize);
  (void)p.add_variable(0.0, kInf, 1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, BoundFlipPath) {
  // max x + y s.t. x + 2y <= 4 with x,y in [0,1]: both at upper bound.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 1.0, 1.0);
  const auto y = p.add_variable(0.0, 1.0, 1.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 2.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-8);
}

TEST(Simplex, DegenerateVertexStillTerminates) {
  // Redundant constraints create degeneracy at the optimum (2,2).
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, kInf, 1.0);
  const auto y = p.add_variable(0.0, kInf, 1.0);
  for (const auto& [cx, cy, b] :
       {std::tuple{1.0, 1.0, 4.0}, {1.0, 0.0, 2.0}, {0.0, 1.0, 2.0},
        {2.0, 2.0, 8.0}}) {
    const auto r = p.add_row(Relation::kLessEqual, b);
    p.add_coefficient(r, x, cx);
    p.add_coefficient(r, y, cy);
  }
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-8);
}

TEST(Simplex, TransportationEqualityProblem) {
  // Two sources (supply 1 each), two sinks (demand 1 each); cost matrix
  // [[1, 3], [4, 1]]: optimum ships on the diagonal, cost 2.
  LpProblem p(Sense::kMinimize);
  std::int32_t v[2][2];
  const double cost[2][2] = {{1.0, 3.0}, {4.0, 1.0}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) v[i][j] = p.add_variable(0.0, kInf, cost[i][j]);
  }
  for (int i = 0; i < 2; ++i) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int j = 0; j < 2; ++j) p.add_coefficient(r, v[i][j], 1.0);
  }
  for (int j = 0; j < 2; ++j) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int i = 0; i < 2; ++i) p.add_coefficient(r, v[i][j], 1.0);
  }
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
  expect_primal_feasible(p, sol.x);
}

/// Fractional knapsack LPs have a closed-form greedy optimum: fill items by
/// value density until the capacity is exhausted.  This gives an exact
/// independent cross-check of the solver on a family of random instances.
class KnapsackLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackLp, MatchesGreedyOptimum) {
  util::Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(3, 12));
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform(1.0, 10.0);
    weight[i] = rng.uniform(1.0, 5.0);
  }
  const double capacity =
      rng.uniform(0.2, 0.8) * std::accumulate(weight.begin(), weight.end(), 0.0);

  LpProblem p(Sense::kMaximize);
  for (int i = 0; i < n; ++i) (void)p.add_variable(0.0, 1.0, value[i]);
  const auto r = p.add_row(Relation::kLessEqual, capacity);
  for (int i = 0; i < n; ++i) p.add_coefficient(r, i, weight[i]);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  // Greedy by density.
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return value[a] / weight[a] > value[b] / weight[b];
  });
  double remaining = capacity;
  double greedy = 0.0;
  for (const int i : idx) {
    const double take = std::min(1.0, remaining / weight[i]);
    greedy += take * value[i];
    remaining -= take * weight[i];
    if (remaining <= 0) break;
  }
  EXPECT_NEAR(sol.objective, greedy, 1e-6);
  expect_primal_feasible(p, sol.x);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackLp,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Assignment problems are totally unimodular: the LP optimum equals the best
/// permutation, which brute force can enumerate for small n.  This exercises
/// the equality-row phase-1 path and degenerate pivots under random data.
class AssignmentLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignmentLp, MatchesBruteForcePermutationOptimum) {
  util::Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.0, 10.0);
  }

  LpProblem p(Sense::kMinimize);
  std::vector<std::vector<std::int32_t>> v(n, std::vector<std::int32_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) v[i][j] = p.add_variable(0.0, 1.0, cost[i][j]);
  }
  for (int i = 0; i < n; ++i) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int j = 0; j < n; ++j) p.add_coefficient(r, v[i][j], 1.0);
  }
  for (int j = 0; j < n; ++j) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int i = 0; i < n; ++i) p.add_coefficient(r, v[i][j], 1.0);
  }
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  expect_primal_feasible(p, sol.x);

  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost[i][static_cast<std::size_t>(perm[i])];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(sol.objective, best, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AssignmentLp,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Simplex, MaximizationWithMixedRowTypes) {
  // max 2x + y s.t. x + y = 3, x - y <= 1, x >= 0.5 (as >= row), x,y in [0,3].
  // From x + y = 3 and x - y <= 1: x <= 2; optimum x=2, y=1 -> 5.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 3.0, 2.0);
  const auto y = p.add_variable(0.0, 3.0, 1.0);
  const auto r1 = p.add_row(Relation::kEqual, 3.0);
  p.add_coefficient(r1, x, 1.0);
  p.add_coefficient(r1, y, 1.0);
  const auto r2 = p.add_row(Relation::kLessEqual, 1.0);
  p.add_coefficient(r2, x, 1.0);
  p.add_coefficient(r2, y, -1.0);
  const auto r3 = p.add_row(Relation::kGreaterEqual, 0.5);
  p.add_coefficient(r3, x, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-8);
}

TEST(Simplex, FixedVariablesAreRespected) {
  // y fixed at 2 through identical bounds; max x + y with x + y <= 5.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, kInf, 1.0);
  const auto y = p.add_variable(2.0, 2.0, 1.0);
  const auto r = p.add_row(Relation::kLessEqual, 5.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-10);
  EXPECT_NEAR(sol.objective, 5.0, 1e-8);
}

TEST(Simplex, RowDualsMatchKnownShadowPrices) {
  // max 3x + 2y s.t. x + y <= 4 (binding), x <= 2 (var bound), y in [0,3].
  // At (2,2) the row dual is 2: one more unit of rhs lets y grow by 1.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 2.0, 3.0);
  const auto y = p.add_variable(0.0, 3.0, 2.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  ASSERT_EQ(sol.row_duals.size(), 1u);
  EXPECT_NEAR(sol.row_duals[0], 2.0, 1e-8);
}

TEST(Simplex, NonBindingRowHasZeroDual) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 1.0, 1.0);
  const auto r = p.add_row(Relation::kLessEqual, 100.0);  // slack stays basic
  p.add_coefficient(r, x, 1.0);
  const auto sol = solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.row_duals[0], 0.0, 1e-10);
}

TEST(Simplex, DualsPredictObjectiveChange) {
  // Finite-difference check: perturb the rhs of the binding knapsack row and
  // compare against the dual's prediction.
  LpProblem base(Sense::kMaximize);
  const double value[3] = {6.0, 5.0, 1.0};
  const double weight[3] = {2.0, 3.0, 1.0};
  for (int i = 0; i < 3; ++i) (void)base.add_variable(0.0, 1.0, value[i]);
  const auto r = base.add_row(Relation::kLessEqual, 3.5);
  for (int i = 0; i < 3; ++i) base.add_coefficient(r, i, weight[i]);
  const auto sol = solve(base);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  LpProblem bumped(Sense::kMaximize);
  for (int i = 0; i < 3; ++i) (void)bumped.add_variable(0.0, 1.0, value[i]);
  const auto r2 = bumped.add_row(Relation::kLessEqual, 3.5 + 0.25);
  for (int i = 0; i < 3; ++i) bumped.add_coefficient(r2, i, weight[i]);
  const auto bumped_sol = solve(bumped);
  ASSERT_EQ(bumped_sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(bumped_sol.objective - sol.objective, sol.row_duals[0] * 0.25, 1e-7);
}

TEST(Simplex, StatusToString) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

TEST(Simplex, IterationLimitReported) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 2.0, 3.0);
  const auto y = p.add_variable(0.0, 3.0, 2.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  SimplexOptions options;
  options.max_iterations = 1;
  const auto sol = solve(p, options);
  // Either it finished in one iteration or hit the cap; both are acceptable,
  // but the status must be truthful.
  if (sol.status == SolveStatus::kOptimal) {
    EXPECT_LE(sol.iterations, 1u);
  } else {
    EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
  }
}

}  // namespace
}  // namespace tsce::lp
