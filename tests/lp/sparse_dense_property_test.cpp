#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lp/simplex.hpp"
#include "lp/upper_bound.hpp"
#include "model/system_model.hpp"
#include "util/rng.hpp"

namespace tsce::lp {
namespace {

LpSolution solve_with(const LpProblem& p, SimplexEngine engine,
                      SimplexOptions options = {}) {
  options.engine = engine;
  return solve(p, options);
}

/// Random bounded LP in the shape the upper-bound builder emits: variables in
/// [0, 1] (a few with wider or one-sided bounds), mixed <= / = / >= rows,
/// moderately sparse coefficients.
LpProblem random_bounded_lp(util::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 14));
  const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
  LpProblem p(rng.uniform() < 0.5 ? Sense::kMaximize : Sense::kMinimize);
  for (std::size_t v = 0; v < n; ++v) {
    double lo = 0.0, hi = 1.0;
    const double shape = rng.uniform();
    if (shape < 0.15) {
      lo = rng.uniform(-2.0, 0.0);
      hi = lo + rng.uniform(0.0, 3.0);
    } else if (shape < 0.25) {
      hi = kInf;  // one-sided
    }
    (void)p.add_variable(lo, hi, rng.uniform(-5.0, 5.0));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const double pick = rng.uniform();
    const Relation rel = pick < 0.6   ? Relation::kLessEqual
                         : pick < 0.8 ? Relation::kGreaterEqual
                                      : Relation::kEqual;
    // Keep equality rhs small so feasible instances stay common.
    const double rhs = rel == Relation::kEqual ? rng.uniform(0.0, 2.0)
                                               : rng.uniform(-1.0, 6.0);
    const auto row = p.add_row(rel, rhs);
    std::size_t nnz = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.uniform() < 0.4) {
        p.add_coefficient(row, static_cast<std::int32_t>(v), rng.uniform(-2.0, 2.0));
        ++nnz;
      }
    }
    if (nnz == 0) {
      p.add_coefficient(row, static_cast<std::int32_t>(rng.bounded(n)),
                        rng.uniform(0.5, 2.0));
    }
  }
  return p;
}

/// The dense engine is an independently-implemented oracle: on every random
/// instance both engines must agree on the status and (when optimal) on the
/// objective to 1e-6.
class SparseVsDense : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseVsDense, SameStatusAndObjective) {
  util::Rng rng(GetParam());
  for (int instance = 0; instance < 8; ++instance) {
    const LpProblem p = random_bounded_lp(rng);
    const LpSolution sparse = solve_with(p, SimplexEngine::kSparse);
    const LpSolution dense = solve_with(p, SimplexEngine::kDense);
    ASSERT_EQ(sparse.status, dense.status)
        << "instance " << instance << ": sparse=" << to_string(sparse.status)
        << " dense=" << to_string(dense.status);
    if (sparse.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(sparse.objective, dense.objective, 1e-6) << "instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SparseVsDense,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(SparseVsDense, AgreeOnInfeasible) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 10.0, 1.0);
  const auto r1 = p.add_row(Relation::kLessEqual, 1.0);
  p.add_coefficient(r1, x, 1.0);
  const auto r2 = p.add_row(Relation::kGreaterEqual, 2.0);
  p.add_coefficient(r2, x, 1.0);
  EXPECT_EQ(solve_with(p, SimplexEngine::kSparse).status, SolveStatus::kInfeasible);
  EXPECT_EQ(solve_with(p, SimplexEngine::kDense).status, SolveStatus::kInfeasible);
}

TEST(SparseVsDense, AgreeOnUnbounded) {
  LpProblem p(Sense::kMaximize);
  (void)p.add_variable(0.0, kInf, 1.0);
  const auto y = p.add_variable(0.0, kInf, 0.0);
  const auto r = p.add_row(Relation::kLessEqual, 1.0);
  p.add_coefficient(r, y, 1.0);
  EXPECT_EQ(solve_with(p, SimplexEngine::kSparse).status, SolveStatus::kUnbounded);
  EXPECT_EQ(solve_with(p, SimplexEngine::kDense).status, SolveStatus::kUnbounded);
}

TEST(SparseVsDense, AgreeOnDegenerateOptimum) {
  // Redundant constraints make the optimal vertex degenerate.
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, kInf, 1.0);
  const auto y = p.add_variable(0.0, kInf, 1.0);
  for (const auto& [cx, cy, b] : {std::tuple{1.0, 1.0, 4.0},
                                  {1.0, 0.0, 2.0},
                                  {0.0, 1.0, 2.0},
                                  {2.0, 2.0, 8.0}}) {
    const auto r = p.add_row(Relation::kLessEqual, b);
    p.add_coefficient(r, x, cx);
    p.add_coefficient(r, y, cy);
  }
  const LpSolution sparse = solve_with(p, SimplexEngine::kSparse);
  const LpSolution dense = solve_with(p, SimplexEngine::kDense);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, 4.0, 1e-8);
  EXPECT_NEAR(dense.objective, 4.0, 1e-8);
}

TEST(SparseVsDense, RowDualsAgreeAtOptimality) {
  util::Rng rng(1234);
  for (int instance = 0; instance < 20; ++instance) {
    const LpProblem p = random_bounded_lp(rng);
    const LpSolution sparse = solve_with(p, SimplexEngine::kSparse);
    const LpSolution dense = solve_with(p, SimplexEngine::kDense);
    ASSERT_EQ(sparse.status, dense.status);
    if (sparse.status != SolveStatus::kOptimal) continue;
    // Duals can differ at degenerate vertices (multiple optimal bases), so
    // compare the dual objective implied by the duals instead of each entry:
    // both must price the rhs identically when the primal optimum is unique,
    // and must at least be internally consistent otherwise.  Weak check:
    // complementary slackness direction — non-binding rows priced ~0 is
    // already covered by the engines' own invariants; here assert sizes.
    ASSERT_EQ(sparse.row_duals.size(), p.num_rows());
    ASSERT_EQ(dense.row_duals.size(), p.num_rows());
  }
}

TEST(SparseSimplex, DeterministicSolutionPath) {
  util::Rng rng(99);
  const LpProblem p = random_bounded_lp(rng);
  const LpSolution a = solve_with(p, SimplexEngine::kSparse);
  const LpSolution b = solve_with(p, SimplexEngine::kSparse);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.refactorisations, b.refactorisations);
  EXPECT_EQ(a.objective, b.objective);  // bit-identical, not just near
  EXPECT_EQ(a.x, b.x);
}

TEST(SparseSimplex, RefactorIntervalTriggersRefactorisations) {
  // An assignment LP needs enough pivots that interval=2 must refactorise
  // several times; interval=1000 should get by on the initial factorisations.
  LpProblem p(Sense::kMinimize);
  const int n = 6;
  util::Rng rng(5);
  std::vector<std::vector<std::int32_t>> v(n, std::vector<std::int32_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      v[i][j] = p.add_variable(0.0, 1.0, rng.uniform(0.0, 10.0));
    }
  }
  for (int i = 0; i < n; ++i) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int j = 0; j < n; ++j) p.add_coefficient(r, v[i][j], 1.0);
  }
  for (int j = 0; j < n; ++j) {
    const auto r = p.add_row(Relation::kEqual, 1.0);
    for (int i = 0; i < n; ++i) p.add_coefficient(r, v[i][j], 1.0);
  }

  SimplexOptions tight;
  tight.refactor_interval = 2;
  const LpSolution frequent = solve_with(p, SimplexEngine::kSparse, tight);
  SimplexOptions loose;
  loose.refactor_interval = 1000;
  const LpSolution rare = solve_with(p, SimplexEngine::kSparse, loose);

  ASSERT_EQ(frequent.status, SolveStatus::kOptimal);
  ASSERT_EQ(rare.status, SolveStatus::kOptimal);
  EXPECT_NEAR(frequent.objective, rare.objective, 1e-8);
  ASSERT_GT(frequent.iterations, 2u);  // the trigger had a chance to fire
  EXPECT_GT(frequent.refactorisations, rare.refactorisations);
  // interval=2: at least one refactorisation per two pivots beyond the
  // phase boundaries.
  EXPECT_GE(frequent.refactorisations, frequent.iterations / 2);
}

TEST(SparseSimplex, ZeroDriftToleranceForcesEagerRefactorisation) {
  // drift_tol = 0 makes any FTRAN/BTRAN disagreement (even rounding noise)
  // trigger the drift path: refactorise, retry the iteration, and still land
  // on the optimum.  This exercises the drift branch deterministically.
  LpProblem p(Sense::kMaximize);
  util::Rng rng(11);
  const int n = 8;
  for (int i = 0; i < n; ++i) (void)p.add_variable(0.0, 1.0, rng.uniform(1.0, 10.0));
  for (int r = 0; r < 4; ++r) {
    const auto row = p.add_row(Relation::kLessEqual, rng.uniform(1.0, 3.0));
    for (int i = 0; i < n; ++i) {
      p.add_coefficient(row, i, rng.uniform(0.1, 2.0));
    }
  }
  SimplexOptions options;
  options.drift_tol = 0.0;
  const LpSolution eager = solve_with(p, SimplexEngine::kSparse, options);
  const LpSolution normal = solve_with(p, SimplexEngine::kSparse);
  ASSERT_EQ(eager.status, SolveStatus::kOptimal);
  ASSERT_EQ(normal.status, SolveStatus::kOptimal);
  EXPECT_NEAR(eager.objective, normal.objective, 1e-8);
  EXPECT_GE(eager.refactorisations, normal.refactorisations);
}

TEST(SparseSimplex, WarmStartFromOwnBasisSolvesInZeroIterations) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 2.0, 3.0);
  const auto y = p.add_variable(0.0, 3.0, 2.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 1.0);
  const LpSolution cold = solve_with(p, SimplexEngine::kSparse);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());
  ASSERT_EQ(cold.basis.status.size(), p.num_variables() + p.num_rows());

  SimplexOptions warm;
  warm.basis_warm_start = &cold.basis;
  const LpSolution hot = solve_with(p, SimplexEngine::kSparse, warm);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-10);
  EXPECT_EQ(hot.iterations, 0u);
}

TEST(SparseSimplex, WarmStartSpeedsUpPerturbedResolve) {
  util::Rng rng(17);
  LpProblem base = random_bounded_lp(rng);
  LpSolution cold = solve_with(base, SimplexEngine::kSparse);
  while (cold.status != SolveStatus::kOptimal || cold.iterations == 0) {
    base = random_bounded_lp(rng);
    cold = solve_with(base, SimplexEngine::kSparse);
  }

  // Same structure, slightly perturbed costs: the old basis is a legal
  // starting point and the re-solve must reach the perturbed optimum.
  LpProblem bumped(base.sense());
  for (std::size_t v = 0; v < base.num_variables(); ++v) {
    const auto vi = static_cast<std::int32_t>(v);
    (void)bumped.add_variable(base.lower(vi), base.upper(vi),
                              base.cost(vi) * 1.0001);
  }
  for (std::size_t r = 0; r < base.num_rows(); ++r) {
    const auto ri = static_cast<std::int32_t>(r);
    (void)bumped.add_row(base.relation(ri), base.rhs(ri));
  }
  for (const auto& t : base.triplets()) bumped.add_coefficient(t.row, t.col, t.value);

  SimplexOptions warm;
  warm.basis_warm_start = &cold.basis;
  const LpSolution hot = solve_with(bumped, SimplexEngine::kSparse, warm);
  const LpSolution scratch = solve_with(bumped, SimplexEngine::kSparse);
  ASSERT_EQ(hot.status, scratch.status);
  if (hot.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(hot.objective, scratch.objective, 1e-7);
    EXPECT_LE(hot.iterations, scratch.iterations);
  }
}

TEST(SparseSimplex, MismatchedWarmStartFallsBackToColdSolve) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 2.0, 3.0);
  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  p.add_coefficient(r, x, 1.0);

  SimplexBasis wrong_shape;
  wrong_shape.status.assign(17, VarState::kAtLower);  // wrong size entirely
  SimplexOptions options;
  options.basis_warm_start = &wrong_shape;
  const LpSolution sol = solve(p, options);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 6.0, 1e-8);
}

TEST(UpperBoundSolver, ReusedSolverMatchesOneShotFunctions) {
  model::SystemModelBuilder b(3);
  b.uniform_bandwidth(8.0);
  for (int k = 0; k < 5; ++k) {
    b.begin_string(10.0, 100.0,
                   k % 2 == 0 ? model::Worth::kHigh : model::Worth::kLow);
    b.add_app(1.0, 0.4, 0.2);
    b.add_app(1.0, 0.3, 0.0);
  }
  const model::SystemModel m = b.build();

  UpperBoundSolver solver;
  const UpperBoundResult once = upper_bound_worth(m);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const UpperBoundResult reused = solver.worth(m);
    ASSERT_EQ(reused.status, once.status);
    EXPECT_EQ(reused.value, once.value);  // identical problem, identical path
    EXPECT_EQ(reused.iterations, once.iterations);
  }
}

TEST(UpperBoundSolver, WarmStartPreservesResultAndCutsIterations) {
  model::SystemModelBuilder b(3);
  b.uniform_bandwidth(8.0);
  for (int k = 0; k < 6; ++k) {
    b.begin_string(10.0, 100.0, model::Worth::kMedium);
    b.add_app(1.0, 0.5, 0.1);
    b.add_app(1.0, 0.4, 0.0);
  }
  const model::SystemModel m = b.build();

  UpperBoundSolver chained;
  chained.set_warm_start(true);
  const UpperBoundResult first = chained.worth(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  // Second solve of the identical model starts from the optimal basis.
  const UpperBoundResult second = chained.worth(m);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.value, first.value, 1e-9);
  EXPECT_LE(second.iterations, first.iterations);
}

}  // namespace
}  // namespace tsce::lp
