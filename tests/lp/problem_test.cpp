#include "lp/problem.hpp"

#include <gtest/gtest.h>

namespace tsce::lp {
namespace {

TEST(LpProblem, TracksVariablesAndRows) {
  LpProblem p(Sense::kMaximize);
  const auto x = p.add_variable(0.0, 1.0, 3.0);
  const auto y = p.add_variable(-1.0, kInf, -2.0);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_DOUBLE_EQ(p.lower(y), -1.0);
  EXPECT_EQ(p.upper(y), kInf);
  EXPECT_DOUBLE_EQ(p.cost(x), 3.0);

  const auto r = p.add_row(Relation::kLessEqual, 4.0);
  EXPECT_EQ(r, 0);
  p.add_coefficient(r, x, 1.0);
  p.add_coefficient(r, y, 2.0);
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_EQ(p.relation(r), Relation::kLessEqual);
  EXPECT_DOUBLE_EQ(p.rhs(r), 4.0);
  EXPECT_EQ(p.num_nonzeros(), 2u);
}

TEST(LpProblem, ZeroCoefficientsAreDropped) {
  LpProblem p;
  const auto x = p.add_variable(0.0, 1.0, 0.0);
  const auto r = p.add_row(Relation::kEqual, 0.0);
  p.add_coefficient(r, x, 0.0);
  EXPECT_EQ(p.num_nonzeros(), 0u);
}

TEST(CscMatrix, AssemblesSortedColumns) {
  std::vector<Triplet> triplets{
      {1, 0, 2.0}, {0, 1, 3.0}, {0, 0, 1.0}, {2, 1, 4.0}};
  const auto m = CscMatrix::from_triplets(3, 2, triplets);
  EXPECT_EQ(m.rows, 3u);
  EXPECT_EQ(m.cols, 2u);
  ASSERT_EQ(m.value.size(), 4u);
  // Column 0: rows 0,1; column 1: rows 0,2.
  EXPECT_EQ(m.col_start[0], 0);
  EXPECT_EQ(m.col_start[1], 2);
  EXPECT_EQ(m.col_start[2], 4);
  EXPECT_EQ(m.row_index[0], 0);
  EXPECT_DOUBLE_EQ(m.value[0], 1.0);
  EXPECT_EQ(m.row_index[1], 1);
  EXPECT_DOUBLE_EQ(m.value[1], 2.0);
  EXPECT_EQ(m.row_index[2], 0);
  EXPECT_DOUBLE_EQ(m.value[2], 3.0);
  EXPECT_EQ(m.row_index[3], 2);
  EXPECT_DOUBLE_EQ(m.value[3], 4.0);
}

TEST(CscMatrix, MergesDuplicateEntries) {
  std::vector<Triplet> triplets{{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, -1.0}};
  const auto m = CscMatrix::from_triplets(2, 1, triplets);
  ASSERT_EQ(m.value.size(), 2u);
  EXPECT_DOUBLE_EQ(m.value[0], 3.5);
  EXPECT_DOUBLE_EQ(m.value[1], -1.0);
}

TEST(CscMatrix, DropsEntriesThatCancel) {
  std::vector<Triplet> triplets{{0, 0, 1.0}, {0, 0, -1.0}};
  const auto m = CscMatrix::from_triplets(1, 1, triplets);
  EXPECT_TRUE(m.value.empty());
  EXPECT_EQ(m.col_start[1], 0);
}

TEST(CscMatrix, EmptyMatrix) {
  const auto m = CscMatrix::from_triplets(3, 4, {});
  EXPECT_EQ(m.col_start.size(), 5u);
  for (const auto s : m.col_start) EXPECT_EQ(s, 0);
}

}  // namespace
}  // namespace tsce::lp
