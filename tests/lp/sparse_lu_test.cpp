#include "lp/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tsce::lp {
namespace {

/// Dense column-major view of the basis matrix B whose position-p column is
/// column basis[p] of A, for brute-force reference solves.
std::vector<double> dense_basis(const CscMatrix& a,
                                const std::vector<std::int32_t>& basis) {
  const std::size_t m = basis.size();
  std::vector<double> b(m * m, 0.0);
  for (std::size_t p = 0; p < m; ++p) {
    const auto c = static_cast<std::size_t>(basis[p]);
    for (auto e = a.col_start[c]; e < a.col_start[c + 1]; ++e) {
      b[static_cast<std::size_t>(a.row_index[static_cast<std::size_t>(e)]) * m + p] =
          a.value[static_cast<std::size_t>(e)];
    }
  }
  return b;
}

/// Gaussian elimination with partial pivoting on a dense column-major matrix.
/// Solves M x = rhs; returns false on singular.
bool dense_solve(std::vector<double> mat, std::vector<double>& rhs) {
  const std::size_t m = rhs.size();
  std::vector<std::size_t> perm(m);
  for (std::size_t i = 0; i < m; ++i) perm[i] = i;
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t piv = k;
    for (std::size_t r = k + 1; r < m; ++r) {
      if (std::abs(mat[perm[r] * m + k]) > std::abs(mat[perm[piv] * m + k])) piv = r;
    }
    std::swap(perm[k], perm[piv]);
    const double d = mat[perm[k] * m + k];
    if (std::abs(d) < 1e-12) return false;
    for (std::size_t r = k + 1; r < m; ++r) {
      const double f = mat[perm[r] * m + k] / d;
      if (f == 0.0) continue;
      for (std::size_t c = k; c < m; ++c) mat[perm[r] * m + c] -= f * mat[perm[k] * m + c];
      rhs[perm[r]] -= f * rhs[perm[k]];
    }
  }
  std::vector<double> x(m);
  for (std::size_t k = m; k-- > 0;) {
    double v = rhs[perm[k]];
    for (std::size_t c = k + 1; c < m; ++c) v -= mat[perm[k] * m + c] * x[c];
    x[k] = v / mat[perm[k] * m + k];
  }
  rhs = std::move(x);
  return true;
}

std::vector<double> to_dense(const IndexedVector& v) { return v.values; }

void load(IndexedVector& v, const std::vector<double>& dense) {
  v.resize(dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) v.add(static_cast<std::int32_t>(i), dense[i]);
  }
}

TEST(BasisLu, IdentityBasisIsIdentitySolve) {
  // A = [I]; basis = all columns: ftran/btran must return the input.
  const std::size_t m = 5;
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i) {
    t.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), 1.0});
  }
  const CscMatrix a = CscMatrix::from_triplets(m, m, t);
  std::vector<std::int32_t> basis = {0, 1, 2, 3, 4};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basis, 1e-9));
  EXPECT_EQ(lu.dimension(), m);
  EXPECT_EQ(lu.eta_count(), 0u);

  IndexedVector v;
  load(v, {0.0, 2.0, 0.0, -3.0, 0.5});
  lu.ftran(v);
  EXPECT_NEAR(v.values[1], 2.0, 1e-12);
  EXPECT_NEAR(v.values[3], -3.0, 1e-12);
  EXPECT_NEAR(v.values[4], 0.5, 1e-12);
  lu.btran(v);
  EXPECT_NEAR(v.values[1], 2.0, 1e-12);
}

TEST(BasisLu, SingularBasisRejected) {
  // Two identical columns.
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 1.0}, {1, 1, 2.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, t);
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(a, {0, 1}, 1e-9));
}

TEST(BasisLu, PatternCoversAllNonzeros) {
  // The sparse solve may list exact-zero cancellations in the pattern, but
  // every nonzero of the result must be listed.
  std::vector<Triplet> t = {{0, 0, 2.0}, {1, 0, 1.0}, {1, 1, 3.0}, {2, 2, 1.0},
                            {0, 2, 5.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 3, t);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}, 1e-9));
  IndexedVector v;
  load(v, {2.0, 1.0, 0.0});
  lu.ftran(v);
  std::vector<bool> listed(3, false);
  for (const std::int32_t i : v.pattern) listed[static_cast<std::size_t>(i)] = true;
  for (std::size_t i = 0; i < 3; ++i) {
    if (v.values[i] != 0.0) {
      EXPECT_TRUE(listed[i]) << "missing pattern index " << i;
    }
  }
}

/// Random sparse bases: ftran/btran must agree with a dense reference solve.
class BasisLuRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BasisLuRandom, FtranBtranMatchDenseReference) {
  util::Rng rng(GetParam());
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 24));
  // Diagonally-dominated random matrix: always nonsingular.
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i) {
    t.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i),
                 rng.uniform(2.0, 4.0) * (rng.uniform() < 0.5 ? -1.0 : 1.0)});
  }
  const std::size_t extras = m * 2;
  for (std::size_t e = 0; e < extras; ++e) {
    const auto r = static_cast<std::int32_t>(rng.bounded(m));
    const auto c = static_cast<std::int32_t>(rng.bounded(m));
    if (r == c) continue;
    t.push_back({r, c, rng.uniform(-1.0, 1.0)});
  }
  const CscMatrix a = CscMatrix::from_triplets(m, m, t);
  std::vector<std::int32_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = static_cast<std::int32_t>(i);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basis, 1e-9));

  const std::vector<double> bmat = dense_basis(a, basis);
  std::vector<double> rhs(m, 0.0);
  const std::size_t nnz_rhs = 1 + rng.bounded(m);
  for (std::size_t k = 0; k < nnz_rhs; ++k) rhs[rng.bounded(m)] = rng.uniform(-2.0, 2.0);

  {
    IndexedVector v;
    load(v, rhs);
    lu.ftran(v);
    std::vector<double> ref = rhs;
    ASSERT_TRUE(dense_solve(bmat, ref));
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(to_dense(v)[i], ref[i], 1e-8) << "ftran pos " << i;
    }
  }
  {
    // Transpose reference: solve B^T x = rhs.
    std::vector<double> bt(m * m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) bt[r * m + c] = bmat[c * m + r];
    }
    IndexedVector v;
    load(v, rhs);
    lu.btran(v);
    std::vector<double> ref = rhs;
    ASSERT_TRUE(dense_solve(bt, ref));
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(to_dense(v)[i], ref[i], 1e-8) << "btran row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BasisLuRandom,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(BasisLu, EtaUpdateMatchesRefactorisation) {
  // Replace one basis column via push_eta; the updated solves must agree
  // with a fresh factorisation of the new basis.
  util::Rng rng(7);
  const std::size_t m = 8;
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i) {
    t.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i),
                 rng.uniform(2.0, 4.0)});
  }
  for (std::size_t e = 0; e < 2 * m; ++e) {
    const auto r = static_cast<std::int32_t>(rng.bounded(m));
    const auto c = static_cast<std::int32_t>(rng.bounded(m));
    if (r != c) t.push_back({r, c, rng.uniform(-1.0, 1.0)});
  }
  // One extra column (index m) to pivot in.
  t.push_back({0, static_cast<std::int32_t>(m), 1.5});
  t.push_back({3, static_cast<std::int32_t>(m), -2.0});
  t.push_back({6, static_cast<std::int32_t>(m), 0.75});
  const CscMatrix a = CscMatrix::from_triplets(m, m + 1, t);

  std::vector<std::int32_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = static_cast<std::int32_t>(i);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basis, 1e-9));

  // Spike w = B^-1 A_m, entering at position 2.
  IndexedVector w;
  w.resize(m);
  for (auto e = a.col_start[m]; e < a.col_start[m + 1]; ++e) {
    w.add(a.row_index[static_cast<std::size_t>(e)], a.value[static_cast<std::size_t>(e)]);
  }
  lu.ftran(w);
  ASSERT_TRUE(lu.push_eta(w, 2, 1e-9));
  EXPECT_EQ(lu.eta_count(), 1u);

  std::vector<std::int32_t> new_basis = basis;
  new_basis[2] = static_cast<std::int32_t>(m);
  BasisLu fresh;
  ASSERT_TRUE(fresh.factorize(a, new_basis, 1e-9));

  std::vector<double> rhs(m, 0.0);
  rhs[1] = 1.0;
  rhs[5] = -2.5;
  IndexedVector via_eta, via_fresh;
  load(via_eta, rhs);
  load(via_fresh, rhs);
  lu.ftran(via_eta);
  fresh.ftran(via_fresh);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(via_eta.values[i], via_fresh.values[i], 1e-8) << "ftran pos " << i;
  }
  load(via_eta, rhs);
  load(via_fresh, rhs);
  lu.btran(via_eta);
  fresh.btran(via_fresh);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(via_eta.values[i], via_fresh.values[i], 1e-8) << "btran row " << i;
  }
}

TEST(BasisLu, PushEtaRejectsTinyPivot) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, t);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1}, 1e-9));
  IndexedVector w;
  w.resize(2);
  w.add(0, 1.0);
  w.add(1, 1e-14);  // pivot position 1 below tolerance
  EXPECT_FALSE(lu.push_eta(w, 1, 1e-9));
  EXPECT_EQ(lu.eta_count(), 0u);  // not appended
}

}  // namespace
}  // namespace tsce::lp
