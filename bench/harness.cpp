#include "harness.hpp"

#include <chrono>
#include <cstdio>

#include "core/baselines.hpp"
#include "core/ordered.hpp"

namespace tsce::bench {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ScenarioBenchConfig::register_flags(util::Flags& flags) {
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "Monte-Carlo simulation runs");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("ub", &with_upper_bound, "compute the LP upper bound per run");
  flags.add("csv", &csv, "emit CSV instead of an aligned table");
  flags.add("psg-population", &psg_population, "PSG population size");
  flags.add("psg-iterations", &psg_iterations, "PSG iteration budget");
  flags.add("psg-stagnation", &psg_stagnation, "PSG stagnation limit");
  flags.add("psg-trials", &psg_trials, "PSG independent trials per run");
}

void ScenarioBenchConfig::apply_full_scale(workload::Scenario s) {
  scenario = s;
  machines = 12;
  strings = s == workload::Scenario::kLightlyLoaded ? 25 : 150;
  runs = 100;
  psg_population = 250;
  psg_iterations = 5000;
  psg_stagnation = 300;
  psg_trials = 4;
}

core::PsgOptions ScenarioBenchConfig::psg_options() const {
  core::PsgOptions options;
  options.ga.population_size = static_cast<std::size_t>(psg_population);
  options.ga.max_iterations = static_cast<std::size_t>(psg_iterations);
  options.ga.stagnation_limit = static_cast<std::size_t>(psg_stagnation);
  options.ga.bias = 1.6;
  options.trials = static_cast<std::size_t>(psg_trials);
  return options;
}

std::vector<core::AllocatorPtr> paper_allocators(const core::PsgOptions& psg) {
  std::vector<core::AllocatorPtr> allocators;
  allocators.push_back(std::make_unique<core::Psg>(psg));
  allocators.push_back(std::make_unique<core::MostWorthFirst>());
  allocators.push_back(std::make_unique<core::TightestFirst>());
  allocators.push_back(std::make_unique<core::SeededPsg>(psg));
  return allocators;
}

ScenarioBenchResult run_scenario_bench(const ScenarioBenchConfig& config,
                                       bool slackness_metric) {
  auto gen_config = workload::GeneratorConfig::for_scenario(config.scenario);
  gen_config.num_machines = static_cast<std::size_t>(config.machines);
  gen_config.num_strings = static_cast<std::size_t>(config.strings);

  const auto allocators = paper_allocators(config.psg_options());
  ScenarioBenchResult result;
  result.heuristics.resize(allocators.size());
  for (std::size_t h = 0; h < allocators.size(); ++h) {
    result.heuristics[h].name = allocators[h]->name();
  }
  result.upper_bound.name = "UB";

  util::Rng master(static_cast<std::uint64_t>(config.seed));
  for (std::int64_t run = 0; run < config.runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);

    for (std::size_t h = 0; h < allocators.size(); ++h) {
      util::Rng search_rng = master.spawn();
      const double t0 = now_seconds();
      const auto alloc_result = allocators[h]->allocate(m, search_rng);
      result.heuristics[h].seconds.add(now_seconds() - t0);
      result.heuristics[h].metric.add(
          slackness_metric ? alloc_result.fitness.slackness
                           : static_cast<double>(alloc_result.fitness.total_worth));
    }

    if (config.with_upper_bound) {
      const double t0 = now_seconds();
      const auto ub = slackness_metric ? lp::upper_bound_slackness(m)
                                       : lp::upper_bound_worth(m);
      result.upper_bound.seconds.add(now_seconds() - t0);
      if (ub.status == lp::SolveStatus::kOptimal) {
        result.upper_bound.metric.add(ub.value);
      } else {
        ++result.ub_failures;
        std::fprintf(stderr, "warning: run %lld UB LP: %s\n",
                     static_cast<long long>(run), lp::to_string(ub.status));
      }
    }
  }
  return result;
}

void print_scenario_table(const ScenarioBenchConfig& config,
                          const ScenarioBenchResult& result,
                          const std::string& metric_name, int decimals) {
  util::Table table({"heuristic", metric_name + " (mean \xC2\xB1 95% CI)",
                     "time/run [s]"});
  auto add = [&](const HeuristicSeries& series) {
    if (series.metric.count() == 0) return;
    table.add_row({series.name, util::format_mean_ci(series.metric, decimals),
                   util::Table::num(series.seconds.mean(), 3)});
  };
  for (const auto& h : result.heuristics) add(h);
  if (config.with_upper_bound) add(result.upper_bound);
  if (config.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  if (result.ub_failures > 0) {
    std::printf("(UB failed on %zu run(s))\n", result.ub_failures);
  }
}

}  // namespace tsce::bench
