#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/baselines.hpp"
#include "core/ordered.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace tsce::bench {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* scenario_name(workload::Scenario s) {
  switch (s) {
    case workload::Scenario::kHighlyLoaded: return "highly_loaded";
    case workload::Scenario::kQosLimited: return "qos_limited";
    case workload::Scenario::kLightlyLoaded: return "lightly_loaded";
  }
  return "unknown";
}

}  // namespace

void ScenarioBenchConfig::register_flags(util::Flags& flags) {
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "Monte-Carlo simulation runs");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("ub", &with_upper_bound, "compute the LP upper bound per run");
  flags.add("csv", &csv, "emit CSV instead of an aligned table");
  flags.add("psg-population", &psg_population, "PSG population size");
  flags.add("psg-iterations", &psg_iterations, "PSG iteration budget");
  flags.add("psg-stagnation", &psg_stagnation, "PSG stagnation limit");
  flags.add("psg-trials", &psg_trials, "PSG independent trials per run");
  flags.add("threads", &threads, "worker threads for Monte-Carlo runs (0 = all cores)");
  flags.add("trace", &trace_path, "write span/event JSONL trace to this path");
  flags.add("metrics", &metrics_path, "write a metrics snapshot JSON to this path");
  flags.add("json", &json_path, "write the result series JSON to this path");
  flags.add("metrics-series", &metrics_series_path,
            "sample the metrics registry into a JSONL time series at this path");
  flags.add("metrics-period-ms", &metrics_period_ms,
            "sampling period for --metrics-series");
  flags.add("fr-dump", &fr_dump_path,
            "flight-recorder JSONL dump path (anomaly/SIGUSR1-triggered, else "
            "end of run)");
  flags.add("fr-decode-watermark-ns", &fr_decode_watermark_ns,
            "decode latency (ns) above which the flight recorder auto-dumps "
            "(0 = off)");
}

void ScenarioBenchConfig::apply_full_scale(workload::Scenario s) {
  scenario = s;
  machines = 12;
  strings = s == workload::Scenario::kLightlyLoaded ? 25 : 150;
  runs = 100;
  psg_population = 250;
  psg_iterations = 5000;
  psg_stagnation = 300;
  psg_trials = 4;
}

obs::RunInfo ScenarioBenchConfig::run_info() const {
  obs::RunInfo info = obs::RunInfo::current();
  info.seed = static_cast<std::uint64_t>(seed);
  info.threads = threads <= 0 ? std::thread::hardware_concurrency()
                              : static_cast<std::size_t>(threads);
  info.set_param("scenario", scenario_name(scenario));
  info.set_param("machines", machines);
  info.set_param("strings", strings);
  info.set_param("runs", runs);
  info.set_param("psg_population", psg_population);
  info.set_param("psg_iterations", psg_iterations);
  info.set_param("psg_stagnation", psg_stagnation);
  info.set_param("psg_trials", psg_trials);
  return info;
}

core::PsgOptions ScenarioBenchConfig::psg_options() const {
  core::PsgOptions options;
  options.ga.population_size = static_cast<std::size_t>(psg_population);
  options.ga.max_iterations = static_cast<std::size_t>(psg_iterations);
  options.ga.stagnation_limit = static_cast<std::size_t>(psg_stagnation);
  options.ga.bias = 1.6;
  options.trials = static_cast<std::size_t>(psg_trials);
  return options;
}

std::vector<core::AllocatorPtr> paper_allocators(const core::PsgOptions& psg) {
  std::vector<core::AllocatorPtr> allocators;
  allocators.push_back(std::make_unique<core::Psg>(psg));
  allocators.push_back(std::make_unique<core::MostWorthFirst>());
  allocators.push_back(std::make_unique<core::TightestFirst>());
  allocators.push_back(std::make_unique<core::SeededPsg>(psg));
  return allocators;
}

ScenarioBenchResult run_scenario_bench(const ScenarioBenchConfig& config,
                                       bool slackness_metric) {
  bool tracing = false;
  if (!config.trace_path.empty()) {
    tracing = obs::trace_open(config.trace_path, config.run_info());
    if (!tracing) {
      std::fprintf(stderr, "warning: could not open trace '%s'%s\n",
                   config.trace_path.c_str(),
                   obs::kTracingCompiledIn ? "" : " (tracing compiled out)");
    }
  }
  if (!config.metrics_path.empty()) util::ThreadPool::set_timing(true);

  if (!config.fr_dump_path.empty() || config.fr_decode_watermark_ns > 0) {
    obs::FlightRecorderConfig fr;
    fr.decode_latency_watermark_ns =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, config.fr_decode_watermark_ns));
    fr.auto_dump_path = config.fr_dump_path;
    obs::flight_recorder_configure(fr);
    obs::flight_recorder_install_signal_trigger();
  }

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!config.metrics_series_path.empty()) {
    obs::MetricsExporterConfig ex;
    ex.path = config.metrics_series_path;
    ex.period_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, config.metrics_period_ms));
    exporter = std::make_unique<obs::MetricsExporter>(ex);
    if (!exporter->start()) {
      std::fprintf(stderr, "warning: could not open metrics series '%s'\n",
                   config.metrics_series_path.c_str());
      exporter.reset();
    }
  }

  auto gen_config = workload::GeneratorConfig::for_scenario(config.scenario);
  gen_config.num_machines = static_cast<std::size_t>(config.machines);
  gen_config.num_strings = static_cast<std::size_t>(config.strings);

  const auto allocators = paper_allocators(config.psg_options());
  ScenarioBenchResult result;
  result.heuristics.resize(allocators.size());
  for (std::size_t h = 0; h < allocators.size(); ++h) {
    result.heuristics[h].name = allocators[h]->name();
  }
  result.upper_bound.name = "UB";

  // Every run's rng streams are spawned up front, in the exact order the
  // serial loop used to draw them, so the metric results are independent of
  // the thread count (and identical to the historical serial output).
  const auto runs = static_cast<std::size_t>(config.runs);
  util::Rng master(static_cast<std::uint64_t>(config.seed));
  struct RunPlan {
    util::Rng instance_rng;
    std::vector<util::Rng> search_rngs;
  };
  std::vector<RunPlan> plans(runs);
  for (RunPlan& plan : plans) {
    plan.instance_rng = master.spawn();
    plan.search_rngs.reserve(allocators.size());
    for (std::size_t h = 0; h < allocators.size(); ++h) {
      plan.search_rngs.push_back(master.spawn());
    }
  }

  struct RunOutcome {
    std::vector<double> metric;
    std::vector<double> seconds;
    double ub_value = 0.0;
    double ub_seconds = 0.0;
    lp::SolveStatus ub_status = lp::SolveStatus::kOptimal;
  };
  std::vector<RunOutcome> outcomes(runs);

  auto execute_run = [&](std::size_t run) {
    RunOutcome& out = outcomes[run];
    const model::SystemModel m =
        workload::generate(gen_config, plans[run].instance_rng);
    out.metric.resize(allocators.size());
    out.seconds.resize(allocators.size());
    for (std::size_t h = 0; h < allocators.size(); ++h) {
      obs::Span span(obs::names::kBenchAlloc, {{"phase", allocators[h]->name()},
                                     {"run", std::uint64_t{run}}});
      const double t0 = now_seconds();
      const auto alloc_result =
          allocators[h]->allocate(m, plans[run].search_rngs[h]);
      out.seconds[h] = now_seconds() - t0;
      out.metric[h] =
          slackness_metric ? alloc_result.fitness.slackness
                           : static_cast<double>(alloc_result.fitness.total_worth);
      span.add("metric", out.metric[h]);
      span.add("evaluations", static_cast<double>(alloc_result.evaluations));
    }
    if (config.with_upper_bound) {
      obs::Span span(obs::names::kBenchUb, {{"phase", "UB"}, {"run", std::uint64_t{run}}});
      // Monte-Carlo runs share one scenario shape, so one solver per worker
      // thread reuses the assembled LpProblem's buffers instead of rebuilding
      // the LP from scratch each run.  Warm starts stay OFF: chaining bases
      // across runs would make each solve's pivot path depend on which runs
      // a thread happened to execute, breaking the documented thread-count
      // independence of the harness metrics.
      thread_local lp::UpperBoundSolver ub_solver;
      const double t0 = now_seconds();
      const auto ub =
          slackness_metric ? ub_solver.slackness(m) : ub_solver.worth(m);
      out.ub_seconds = now_seconds() - t0;
      out.ub_status = ub.status;
      out.ub_value = ub.value;
      span.add("metric", out.ub_value);
    }
  };

  if (config.threads == 1 || runs <= 1) {
    for (std::size_t run = 0; run < runs; ++run) execute_run(run);
  } else {
    util::ThreadPool pool(config.threads <= 0
                              ? 0
                              : static_cast<std::size_t>(config.threads));
    pool.parallel_for(runs, execute_run);
  }

  // Fold per-run metrics serially, in run order, for thread-count-independent
  // statistics.
  for (std::size_t run = 0; run < runs; ++run) {
    const RunOutcome& out = outcomes[run];
    for (std::size_t h = 0; h < allocators.size(); ++h) {
      result.heuristics[h].seconds.add(out.seconds[h]);
      result.heuristics[h].metric.add(out.metric[h]);
    }
    if (config.with_upper_bound) {
      result.upper_bound.seconds.add(out.ub_seconds);
      if (out.ub_status == lp::SolveStatus::kOptimal) {
        result.upper_bound.metric.add(out.ub_value);
      } else {
        ++result.ub_failures;
        std::fprintf(stderr, "warning: run %lld UB LP: %s\n",
                     static_cast<long long>(run), lp::to_string(out.ub_status));
      }
    }
  }

  // Worker threads (if any) were joined when the pool left scope above, so
  // every thread buffer is quiescent here.
  if (tracing) obs::trace_close();
  if (exporter != nullptr) exporter->stop();
  if (!config.fr_dump_path.empty()) {
    // A triggered dump (anomaly or SIGUSR1) already captured the interesting
    // window; otherwise persist the final ring contents.
    obs::flight_recorder_poll();
    if (obs::flight_recorder_dump_count() == 0) {
      obs::flight_recorder_dump(config.fr_dump_path);
    }
  }
  if (!config.metrics_path.empty()) {
    util::Json doc = util::Json::object();
    doc.set("run_info", config.run_info().to_json());
    doc.set("metrics", obs::MetricsRegistry::instance().snapshot());
    util::write_json_file(config.metrics_path, doc);
  }
  return result;
}

util::Json scenario_bench_json(const ScenarioBenchConfig& config,
                               const ScenarioBenchResult& result,
                               const std::string& metric_name) {
  auto series_json = [](const HeuristicSeries& series) {
    util::Json j = util::Json::object();
    j.set("name", series.name);
    j.set("mean", series.metric.mean());
    j.set("ci95", series.metric.ci95_half_width());
    j.set("min", series.metric.min());
    j.set("max", series.metric.max());
    j.set("runs", series.metric.count());
    j.set("seconds_mean", series.seconds.mean());
    return j;
  };
  util::Json doc = util::Json::object();
  doc.set("run_info", config.run_info().to_json());
  doc.set("metric", metric_name);
  util::Json heuristics = util::Json::array();
  for (const HeuristicSeries& h : result.heuristics) {
    heuristics.push_back(series_json(h));
  }
  doc.set("heuristics", std::move(heuristics));
  if (config.with_upper_bound) {
    doc.set("upper_bound", series_json(result.upper_bound));
    doc.set("ub_failures", result.ub_failures);
  }
  return doc;
}

void print_scenario_table(const ScenarioBenchConfig& config,
                          const ScenarioBenchResult& result,
                          const std::string& metric_name, int decimals) {
  util::Table table({"heuristic", metric_name + " (mean \xC2\xB1 95% CI)",
                     "time/run [s]"});
  auto add = [&](const HeuristicSeries& series) {
    if (series.metric.count() == 0) return;
    table.add_row({series.name, util::format_mean_ci(series.metric, decimals),
                   util::Table::num(series.seconds.mean(), 3)});
  };
  for (const auto& h : result.heuristics) add(h);
  if (config.with_upper_bound) add(result.upper_bound);
  if (config.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  if (result.ub_failures > 0) {
    std::printf("(UB failed on %zu run(s))\n", result.ub_failures);
  }
  if (!config.json_path.empty()) {
    util::write_json_file(config.json_path,
                          scenario_bench_json(config, result, metric_name));
  }
}

}  // namespace tsce::bench
