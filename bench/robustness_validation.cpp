/// \file robustness_validation.cpp
/// Empirical validation of the paper's central claim (§1, §4): an initial
/// allocation with more system slackness absorbs a larger unpredictable
/// increase in input workload before QoS violations appear.
///
/// Procedure: on lightly loaded (scenario 3) instances, compute two complete
/// allocations — a slackness-oblivious baseline (first feasible random
/// ordering, decoded by the IMR) and the slackness-maximizing Seeded PSG.
/// Then scale the input workload (nominal execution times and output sizes)
/// by increasing factors and run the discrete-event simulator until each
/// allocation first violates a QoS constraint.  The tolerated factor should
/// grow with the allocation's slackness.

#include <cstdio>

#include "core/baselines.hpp"
#include "core/psg.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

/// Largest factor in [1, max_factor] (step `step`) with zero simulated QoS
/// violations; the allocation is fixed while the workload scales.
double tolerated_factor(const tsce::model::SystemModel& m,
                        const tsce::model::Allocation& alloc, double max_factor,
                        double step, double horizon) {
  double tolerated = 0.0;
  for (double factor = 1.0; factor <= max_factor + 1e-9; factor += step) {
    const auto scaled = tsce::sim::scale_input_workload(m, factor);
    const auto result = tsce::sim::simulate(scaled, alloc, {.horizon_s = horizon});
    if (result.total_violations() != 0) break;
    tolerated = factor;
  }
  return tolerated;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 8;
  std::int64_t runs = 5;
  std::int64_t seed = 23;
  double max_factor = 4.0;
  double step = 0.1;
  double horizon = 0.0;
  bool csv = false;
  util::Flags flags(
      "robustness_validation — does higher system slackness absorb larger "
      "input-workload increases without QoS violations? (paper §1/§4 claim, "
      "validated with the discrete-event simulator)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q (scenario 3 style)");
  flags.add("runs", &runs, "instances");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("max-factor", &max_factor, "largest workload scale factor probed");
  flags.add("step", &step, "scale factor step");
  flags.add("horizon", &horizon, "simulated seconds (0 = 20 periods)");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 40;
  psg_options.ga.max_iterations = 250;
  psg_options.ga.stagnation_limit = 120;
  psg_options.trials = 2;

  util::RunningStats base_slack, psg_slack, base_factor, psg_factor;
  std::int64_t comparable_runs = 0;
  util::Rng master(static_cast<std::uint64_t>(seed));
  std::printf("== Robustness validation: slackness vs tolerated workload growth "
              "==\n\n");
  util::Table per_run({"run", "baseline slack", "baseline factor", "PSG slack",
                       "PSG factor"});
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);
    util::Rng r1 = master.spawn();
    util::Rng r2 = master.spawn();
    const auto baseline = core::RandomOrder{}.allocate(m, r1);
    const auto psg = core::SeededPsg(psg_options).allocate(m, r2);
    if (baseline.allocation.num_deployed() != m.num_strings() ||
        psg.allocation.num_deployed() != m.num_strings()) {
      std::printf("run %lld: incomplete mapping, skipped\n",
                  static_cast<long long>(run));
      continue;
    }
    ++comparable_runs;
    const double bf =
        tolerated_factor(m, baseline.allocation, max_factor, step, horizon);
    const double pf = tolerated_factor(m, psg.allocation, max_factor, step, horizon);
    base_slack.add(baseline.fitness.slackness);
    psg_slack.add(psg.fitness.slackness);
    base_factor.add(bf);
    psg_factor.add(pf);
    per_run.add_row({std::to_string(run),
                     util::Table::num(baseline.fitness.slackness, 3),
                     util::Table::num(bf, 2), util::Table::num(psg.fitness.slackness, 3),
                     util::Table::num(pf, 2)});
  }
  if (csv) {
    per_run.print_csv();
  } else {
    per_run.print();
  }

  if (comparable_runs > 0) {
    std::printf("\nSummary over %lld complete-mapping runs:\n",
                static_cast<long long>(comparable_runs));
    util::Table summary({"allocation", "system slackness", "tolerated factor"});
    summary.add_row({"baseline (random order)", util::format_mean_ci(base_slack, 3),
                     util::format_mean_ci(base_factor, 2)});
    summary.add_row({"Seeded PSG (slack-maximizing)",
                     util::format_mean_ci(psg_slack, 3),
                     util::format_mean_ci(psg_factor, 2)});
    if (csv) {
      summary.print_csv();
    } else {
      summary.print();
    }
    std::printf("\nExpected shape: the slack-maximizing allocation tolerates a "
                "workload factor at least as large as the baseline's.\n");
  }
  return 0;
}
