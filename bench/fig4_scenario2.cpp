/// \file fig4_scenario2.cpp
/// Reproduces Figure 4: total worth for *partial mapping in a QoS-limited
/// system* (scenario 2: tight throughput/latency constraints stop the
/// allocation before any hardware resource saturates).
///
/// Expected shape (paper §8): same ordering as Figure 3, but the largest
/// heuristic-to-UB gap of the three scenarios — the LP bound only enforces
/// stage-one capacity, so tight QoS hurts the heuristics more than the bound.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  bench::ScenarioBenchConfig config;
  config.scenario = workload::Scenario::kQosLimited;
  bool full = false;
  util::Flags flags(
      "fig4_scenario2 — Figure 4: total worth, partial mapping, QoS-limited "
      "system (tight Table 1 mu ranges)");
  config.register_flags(flags);
  flags.add("full", &full, "paper-scale parameters (very slow)");
  if (!flags.parse(argc, argv)) return 0;
  if (full) {
    config.apply_full_scale(workload::Scenario::kQosLimited);
    // Re-parse so explicit flags (e.g. --runs=1) override the full-scale
    // defaults instead of being clobbered by them.
    if (!flags.parse(argc, argv)) return 0;
  }

  std::printf("== Figure 4: total worth, scenario 2 (QoS-limited) ==\n");
  std::printf("M=%lld machines, Q=%lld strings, %lld runs\n\n",
              static_cast<long long>(config.machines),
              static_cast<long long>(config.strings),
              static_cast<long long>(config.runs));
  const auto result = bench::run_scenario_bench(config, /*slackness_metric=*/false);
  bench::print_scenario_table(config, result, "total worth", 1);
  return 0;
}
