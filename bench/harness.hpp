/// \file harness.hpp
/// Shared Monte-Carlo experiment runner for the figure/table benches.
///
/// Mirrors the paper's experimental procedure (§6, §8): for each simulation
/// run a fresh random instance is generated, every heuristic allocates it,
/// and the metric (total worth for scenarios 1-2, system slackness for
/// scenario 3) is averaged across runs with a 95% confidence interval.  The
/// LP upper bound is computed per instance with the in-repo simplex.
///
/// Defaults are scaled down from the paper (machines/strings/runs/PSG
/// budget) so the whole bench suite completes in minutes on one core;
/// --full restores paper-scale parameters (slow: the paper reports ~2 hours
/// per PSG run at full scale).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "obs/run_info.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace tsce::bench {

struct ScenarioBenchConfig {
  workload::Scenario scenario = workload::Scenario::kHighlyLoaded;
  std::int64_t machines = 6;
  std::int64_t strings = 32;
  std::int64_t runs = 5;
  std::int64_t seed = 2005;  // IPPS 2005
  bool with_upper_bound = true;
  bool csv = false;
  // PSG budget (paper: 250 / 5000 / 300 / 4 trials; bench default reduced).
  std::int64_t psg_population = 60;
  std::int64_t psg_iterations = 400;
  std::int64_t psg_stagnation = 150;
  std::int64_t psg_trials = 2;
  /// Worker threads for Monte-Carlo replications (1 = serial, 0 = all
  /// cores).  Metric results are identical at any thread count: every run's
  /// rng streams are derived up front in run order, and per-run metrics are
  /// folded into the statistics serially in run order afterwards.  Only the
  /// wall-clock column varies.
  std::int64_t threads = 1;
  /// Telemetry sinks (empty = off).  --trace streams span/event JSONL through
  /// obs::trace_open (no-op when the tracer is compiled out); --metrics dumps
  /// the obs::MetricsRegistry snapshot as JSON after the runs; --json writes
  /// the per-heuristic result series as JSON.  All three carry the RunInfo
  /// provenance block.
  std::string trace_path;
  std::string metrics_path;
  std::string json_path;
  /// --metrics-series: sample the registry every --metrics-period-ms into a
  /// JSONL time series (obs::MetricsExporter) for trace_report
  /// --metrics-series consumption.
  std::string metrics_series_path;
  std::int64_t metrics_period_ms = 250;
  /// --fr-dump: flight-recorder JSONL dump path.  Written by an anomaly or
  /// SIGUSR1 trigger during the run, or (if no trigger fired) once at the end
  /// of the run.  --fr-decode-watermark-ns arms the slow-decode anomaly.
  std::string fr_dump_path;
  std::int64_t fr_decode_watermark_ns = 0;

  /// Registers the shared flags on \p flags (pointers into this object).
  void register_flags(util::Flags& flags);
  /// Applies --full: paper-scale machines/strings/runs/PSG budget.
  void apply_full_scale(workload::Scenario scenario);
  /// PSG options assembled from the flag fields.
  [[nodiscard]] core::PsgOptions psg_options() const;
  /// Provenance block for this configuration (build stamps + seed, threads,
  /// and scenario parameters).
  [[nodiscard]] obs::RunInfo run_info() const;
};

struct HeuristicSeries {
  std::string name;
  util::RunningStats metric;   ///< worth or slackness per run
  util::RunningStats seconds;  ///< wall-clock per run
};

struct ScenarioBenchResult {
  std::vector<HeuristicSeries> heuristics;
  HeuristicSeries upper_bound;        ///< metric = UB value per run
  std::size_t ub_failures = 0;        ///< runs where the LP did not solve
};

/// Builds the paper's heuristic set: PSG, MWF, TF, Seeded PSG.
[[nodiscard]] std::vector<core::AllocatorPtr> paper_allocators(
    const core::PsgOptions& psg);

/// Runs the Monte-Carlo experiment.  \p slackness_metric selects the
/// scenario-3 metric (system slackness of the complete mapping) instead of
/// total worth.
[[nodiscard]] ScenarioBenchResult run_scenario_bench(const ScenarioBenchConfig& config,
                                                     bool slackness_metric);

/// Prints the per-heuristic table in the paper's bar-chart order
/// (PSG, MWF, TF, Seeded PSG, UB).  When config.json_path is set, the same
/// series (plus the RunInfo provenance block) is written there as JSON.
void print_scenario_table(const ScenarioBenchConfig& config,
                          const ScenarioBenchResult& result,
                          const std::string& metric_name, int decimals);

/// The result series as a provenance-stamped JSON document:
/// {"run_info": {...}, "metric": ..., "heuristics": [...], "ub_failures": N}.
[[nodiscard]] util::Json scenario_bench_json(const ScenarioBenchConfig& config,
                                             const ScenarioBenchResult& result,
                                             const std::string& metric_name);

}  // namespace tsce::bench
