/// \file micro_hotpaths.cpp
/// google-benchmark microbenchmarks of the library's hot paths: utilization
/// bookkeeping, IMR mapping, full permutation decode (the PSG inner loop),
/// eq. (5)-(6) estimation, the simplex, and the discrete-event simulator.

#include <benchmark/benchmark.h>

#include <thread>

#include "analysis/estimates.hpp"
#include "dag/allocator.hpp"
#include "dag/generator.hpp"
#include "model/serialization.hpp"
#include "analysis/session.hpp"
#include "core/decode.hpp"
#include "core/evaluator.hpp"
#include "core/imr.hpp"
#include "core/local_search.hpp"
#include "lp/upper_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace tsce;

model::SystemModel make_instance(std::size_t machines, std::size_t strings,
                                 std::uint64_t seed = 99) {
  util::Rng rng(seed);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  return workload::generate(config, rng);
}

void BM_UtilizationAddRemove(benchmark::State& state) {
  const auto m = make_instance(8, static_cast<std::size_t>(state.range(0)));
  model::Allocation alloc(m);
  util::Rng rng(1);
  for (std::size_t k = 0; k < m.num_strings(); ++k) {
    for (std::size_t i = 0; i < m.strings[k].size(); ++i) {
      alloc.assign(static_cast<model::StringId>(k), static_cast<model::AppIndex>(i),
                   static_cast<model::MachineId>(rng.bounded(8)));
    }
    alloc.set_deployed(static_cast<model::StringId>(k), true);
  }
  analysis::UtilizationState util(m);
  for (auto _ : state) {
    for (std::size_t k = 0; k < m.num_strings(); ++k) {
      util.add_string(alloc, static_cast<model::StringId>(k));
    }
    for (std::size_t k = 0; k < m.num_strings(); ++k) {
      util.remove_string(alloc, static_cast<model::StringId>(k));
    }
    benchmark::DoNotOptimize(util.slackness());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(m.num_strings()));
}
BENCHMARK(BM_UtilizationAddRemove)->Arg(16)->Arg(64);

void BM_ImrMapString(benchmark::State& state) {
  const auto m = make_instance(static_cast<std::size_t>(state.range(0)), 20);
  const analysis::UtilizationState util(m);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::imr_map_string(m, util, static_cast<model::StringId>(k)));
    k = (k + 1) % m.num_strings();
  }
}
BENCHMARK(BM_ImrMapString)->Arg(4)->Arg(12);

void BM_DecodeOrder(benchmark::State& state) {
  const auto m =
      make_instance(6, static_cast<std::size_t>(state.range(0)));
  const auto order = core::identity_order(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode_order(m, order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_strings()));
}
BENCHMARK(BM_DecodeOrder)->Arg(12)->Arg(24)->Arg(48);

/// Swap-neighborhood candidate stream (the hill-climb / PSG-mutation access
/// pattern): each candidate is one transposition away from the incumbent and
/// is rejected afterwards.  Decoded incrementally through one DecodeContext,
/// so only the divergent suffix is re-committed per candidate.
void BM_DecodePrefixReuse(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  const std::size_t q = m.num_strings();
  auto order = core::identity_order(m);
  util::Rng shuffle_rng(5);
  shuffle_rng.shuffle(order);
  core::DecodeContext ctx(m);
  util::Rng rng(17);
  for (auto _ : state) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(order[i], order[j]);
    benchmark::DoNotOptimize(core::decode_order_into(ctx, order));
    std::swap(order[i], order[j]);  // reject the neighbor
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["reused/decode"] =
      static_cast<double>(ctx.strings_reused()) /
      static_cast<double>(ctx.decodes());
  state.counters["commits/decode"] =
      static_cast<double>(ctx.commits_attempted()) /
      static_cast<double>(ctx.decodes());
}
BENCHMARK(BM_DecodePrefixReuse)->Arg(32)->Arg(64)->Arg(128);

/// The same candidate stream decoded from scratch each time (the pre-engine
/// behavior): baseline for BM_DecodePrefixReuse.
void BM_DecodeFromScratch(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  const std::size_t q = m.num_strings();
  auto order = core::identity_order(m);
  util::Rng shuffle_rng(5);
  shuffle_rng.shuffle(order);
  util::Rng rng(17);
  for (auto _ : state) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(order[i], order[j]);
    benchmark::DoNotOptimize(core::decode_order(m, order));
    std::swap(order[i], order[j]);  // reject the neighbor
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeFromScratch)->Arg(32)->Arg(64)->Arg(128);

/// Cost of fanning a decoded prototype out to a replica via
/// clone_state_from (the tempering / BatchEvaluator stamping primitive):
/// O(state bytes) memcpys, allocation-free once the replica's buffers are
/// sized.  Arg = number of strings decoded into the prototype.
void BM_SnapshotClone(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  auto order = core::identity_order(m);
  util::Rng shuffle_rng(5);
  shuffle_rng.shuffle(order);
  core::DecodeContext prototype(m);
  benchmark::DoNotOptimize(core::decode_order_into(prototype, order));
  core::DecodeContext replica(m);
  replica.clone_state_from(prototype);  // warm: size the replica's buffers
  for (auto _ : state) {
    replica.clone_state_from(prototype);
    benchmark::DoNotOptimize(replica.depth());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prototype.state_bytes()));
  state.counters["depth"] = static_cast<double>(prototype.depth());
}
BENCHMARK(BM_SnapshotClone)->Arg(32)->Arg(64)->Arg(128);

/// Population-sized batch evaluation through BatchEvaluator (the GENITOR
/// initial-population path); Arg = worker threads.
void BM_BatchEvaluate(benchmark::State& state) {
  const auto m = make_instance(6, 48);
  std::vector<std::vector<model::StringId>> orders(
      32, core::identity_order(m));
  util::Rng rng(23);
  for (auto& o : orders) rng.shuffle(o);
  core::BatchEvaluator evaluator(m, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_fitness(orders));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(orders.size()));
}
BENCHMARK(BM_BatchEvaluate)->Arg(1)->Arg(2);

/// Full annealing run at a fixed decode budget; Arg = AnnealingOptions::
/// threads (0 = legacy serial chain, >= 1 = parallel tempering with 4
/// replicas).  Same total Metropolis steps in every variant, so the wall
/// clock differences isolate engine overhead (at 1 core) or speedup (at N).
void BM_AnnealTempering(benchmark::State& state) {
  const auto m = make_instance(6, 48);
  core::AnnealingOptions options;
  options.iterations = 4000;
  options.replicas = 4;
  options.exchange_interval = 64;
  options.threads = static_cast<std::size_t>(state.range(0));
  const core::SimulatedAnnealing search(options);
  std::size_t evaluations = 0;
  int worth = 0;
  for (auto _ : state) {
    util::Rng rng(31);
    const auto result = search.allocate(m, rng);
    evaluations += result.evaluations;
    worth = result.fitness.total_worth;
    benchmark::DoNotOptimize(result.fitness);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.counters["worth"] = static_cast<double>(worth);
}
BENCHMARK(BM_AnnealTempering)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Thread churn with no metrics activity: the baseline spawn/join cost that
/// BM_ThreadChurnShardRetirement is compared against.
void BM_ThreadChurnBaseline(benchmark::State& state) {
  for (auto _ : state) {
    std::thread worker([] {});
    worker.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadChurnBaseline);

/// Thread churn where each short-lived thread touches one registry counter,
/// so its shard is folded-and-removed under the registry mutex on thread
/// exit.  The delta over BM_ThreadChurnBaseline is the full shard-retirement
/// cost (ROADMAP: decide whether the mutex needs replacing with a lock-free
/// list — see DESIGN.md for the recorded verdict).
void BM_ThreadChurnShardRetirement(benchmark::State& state) {
  for (auto _ : state) {
    std::thread worker([] {
      obs::MetricsRegistry::instance()
          .counter(obs::names::kBenchMicroCounter)
          .add(1);
    });
    worker.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadChurnShardRetirement);

void BM_EstimateAll(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  const auto decoded = core::decode_order(m, core::identity_order(m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::estimate_all(m, decoded.allocation));
  }
}
BENCHMARK(BM_EstimateAll)->Arg(12)->Arg(24);

/// Paper-shaped upper-bound LP (multi-app strings, full flow/route blocks)
/// solved by either engine: Arg0 = strings, Arg1 = 0 sparse / 1 dense.  The
/// dense engine's explicit basis inverse is O(m^2) per pivot, so the gap
/// widens with the instance; the pair of rows per Arg0 is the before/after
/// column of BENCH_lp.json.
void BM_SimplexUpperBound(benchmark::State& state) {
  const auto m = make_instance(4, static_cast<std::size_t>(state.range(0)));
  lp::UpperBoundOptions options;
  options.simplex.engine = state.range(1) == 0 ? lp::SimplexEngine::kSparse
                                               : lp::SimplexEngine::kDense;
  lp::UpperBoundResult last;
  for (auto _ : state) {
    last = lp::upper_bound_worth(m, options);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(state.range(1) == 0 ? "sparse" : "dense");
  state.counters["rows"] = static_cast<double>(last.lp_rows);
  state.counters["cols"] = static_cast<double>(last.lp_cols);
  state.counters["iters"] = static_cast<double>(last.iterations);
  state.counters["refactors"] = static_cast<double>(last.refactorisations);
}
BENCHMARK(BM_SimplexUpperBound)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({24, 0})
    ->Args({24, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);

/// Sparse engine head-to-head on one mid-size paper-shaped LP, reusing the
/// assembled problem (the UpperBoundSolver service path) so the measurement
/// isolates the solve itself.
void BM_SimplexSparse(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  const lp::LpProblem problem = lp::build_upper_bound_lp(
      m, /*complete=*/false, lp::UbObjective::kTotalWorth);
  lp::SimplexOptions options;  // kSparse default
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(problem, options));
  }
  state.counters["rows"] = static_cast<double>(problem.num_rows());
  state.counters["nnz"] = static_cast<double>(problem.num_nonzeros());
}
BENCHMARK(BM_SimplexSparse)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

/// Fleet-scale workload: hundreds of machines, thousands of single-app
/// strings (the TDM-client shape — no inter-app edges, so the route-capacity
/// block vanishes and the LP is Q deployment rows + M capacity rows).  The
/// dense engine is not benchmarked here: its O(m^2)-per-pivot inverse makes
/// this scale infeasible, which is the point of the sparse rewrite.
model::SystemModel fleet_instance(std::size_t machines, std::size_t strings) {
  util::Rng rng(99);
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = machines;
  config.num_strings = strings;
  config.min_apps_per_string = 1;
  config.max_apps_per_string = 1;
  return workload::generate(config, rng);
}

void BM_UpperBoundFleet(benchmark::State& state) {
  const auto m = fleet_instance(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  lp::UpperBoundSolver solver;  // reuse the assembled problem across runs
  lp::UpperBoundResult last;
  for (auto _ : state) {
    last = solver.worth(m);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(lp::to_string(last.status));
  state.counters["rows"] = static_cast<double>(last.lp_rows);
  state.counters["cols"] = static_cast<double>(last.lp_cols);
  state.counters["iters"] = static_cast<double>(last.iterations);
  state.counters["refactors"] = static_cast<double>(last.refactorisations);
}
BENCHMARK(BM_UpperBoundFleet)
    ->Args({200, 2000})
    ->Args({400, 4000})
    ->Unit(benchmark::kMillisecond);

void BM_Simulate(benchmark::State& state) {
  const auto m = make_instance(6, 8, 123);
  const auto decoded = core::decode_order(m, core::identity_order(m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(m, decoded.allocation, {.horizon_s = 200.0}));
  }
  state.SetLabel("200 simulated seconds");
}
BENCHMARK(BM_Simulate)->Unit(benchmark::kMillisecond);

void BM_DagMapString(benchmark::State& state) {
  util::Rng rng(7);
  dag::DagGeneratorConfig config;
  config.num_machines = static_cast<std::size_t>(state.range(0));
  config.num_strings = 12;
  const auto m = dag::generate_dag_system(config, rng);
  const dag::DagUtilization util(m);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dag::dag_map_string(m, util, static_cast<model::StringId>(k)));
    k = (k + 1) % m.num_strings();
  }
}
BENCHMARK(BM_DagMapString)->Arg(4)->Arg(12);

void BM_JsonModelRoundTrip(benchmark::State& state) {
  const auto m = make_instance(6, static_cast<std::size_t>(state.range(0)));
  const std::string text = model::to_json(m).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::system_model_from_json(util::Json::parse(text)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonModelRoundTrip)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

/// Cost of one registry counter increment (the obs hot-path primitive): a
/// thread-local relaxed load+store, no lock, no RMW.
void BM_MetricsCounterAdd(benchmark::State& state) {
  auto& counter = obs::MetricsRegistry::instance().counter(obs::names::kBenchMicroCounter);
  for (auto _ : state) {
    counter.add(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterAdd);

/// Cost of a span + event when no trace is open: with TSCE_TRACING=ON one
/// relaxed atomic load each; with TSCE_TRACING=OFF the loop body is empty
/// (tracer fully elided), so this measures the zero-overhead claim directly.
void BM_TracingDisabledSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span(obs::names::kBenchMicroSpan, {{"k", 1}});
    obs::trace_event(obs::names::kBenchMicroEvent, {{"k", 2}});
    benchmark::DoNotOptimize(obs::tracing_active());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(obs::kTracingCompiledIn ? "tracing compiled in (inactive)"
                                         : "tracing compiled out");
}
BENCHMARK(BM_TracingDisabledSpan);

void BM_SessionCommitUncommit(benchmark::State& state) {
  const auto m = make_instance(6, 16);
  analysis::AllocationSession session(m);
  // Pre-commit half the strings as steady background load.
  for (model::StringId k = 0; k < 8; ++k) {
    const auto assignment = core::imr_map_string(m, session.util(), k);
    (void)session.try_commit(k, assignment);
  }
  const auto assignment = core::imr_map_string(m, session.util(), 8);
  for (auto _ : state) {
    if (session.try_commit(8, assignment)) session.uncommit(8);
  }
}
BENCHMARK(BM_SessionCommitUncommit);

}  // namespace

BENCHMARK_MAIN();
