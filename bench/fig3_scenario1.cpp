/// \file fig3_scenario1.cpp
/// Reproduces Figure 3: total worth of allocated strings for each heuristic
/// and the LP upper bound under *partial mapping in a highly loaded system*
/// (scenario 1: relaxed QoS, hardware capacity binds first).
///
/// Expected shape (paper §8): PSG ~ Seeded PSG > MWF, TF; UB above all; the
/// heuristic-to-UB gap is smaller than in scenario 2.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  bench::ScenarioBenchConfig config;
  config.scenario = workload::Scenario::kHighlyLoaded;
  bool full = false;
  util::Flags flags(
      "fig3_scenario1 — Figure 3: total worth, partial mapping, highly loaded "
      "system (150 strings at paper scale; defaults reduced for speed)");
  config.register_flags(flags);
  flags.add("full", &full, "paper-scale parameters (12 machines, 150 strings, "
                           "100 runs, full PSG budget; very slow)");
  if (!flags.parse(argc, argv)) return 0;
  if (full) {
    config.apply_full_scale(workload::Scenario::kHighlyLoaded);
    // Re-parse so explicit flags (e.g. --runs=1) override the full-scale
    // defaults instead of being clobbered by them.
    if (!flags.parse(argc, argv)) return 0;
  }

  std::printf("== Figure 3: total worth, scenario 1 (highly loaded) ==\n");
  std::printf("M=%lld machines, Q=%lld strings, %lld runs\n\n",
              static_cast<long long>(config.machines),
              static_cast<long long>(config.strings),
              static_cast<long long>(config.runs));
  const auto result = bench::run_scenario_bench(config, /*slackness_metric=*/false);
  bench::print_scenario_table(config, result, "total worth", 1);
  return 0;
}
