/// \file micro_obs.cpp
/// Microbenchmarks of the always-on observability layer itself: HDR histogram
/// record/snapshot, flight-recorder events, the cycle-counter clock, and the
/// end-to-end per-sample overhead the hot paths pay (clock read + histogram
/// record + recorder event).  CI runs BM_ObsOverhead* / BM_HdrRecord as a
/// release-leg smoke so a regression in the instrumentation cost itself is
/// caught, not just regressions in the instrumented code.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace {

using namespace tsce;

/// Latency-shaped samples (lognormal around ~20 us with a heavy tail).
std::vector<std::uint64_t> latency_samples(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(10.0, 1.2);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = static_cast<std::uint64_t>(dist(rng));
  return out;
}

/// Raw HdrHistogram::record on a standalone shard: the index math plus four
/// owner-thread relaxed bumps.
void BM_HdrRecord(benchmark::State& state) {
  obs::HdrHistogram hist;
  const auto samples = latency_samples(4096, 42);
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(samples[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rel_err"] = hist.layout().max_relative_error();
}
BENCHMARK(BM_HdrRecord);

/// Snapshot + the full quantile spread, at several populated sizes.
void BM_HdrSnapshotQuantiles(benchmark::State& state) {
  obs::HdrHistogram hist;
  for (const auto v :
       latency_samples(static_cast<std::size_t>(state.range(0)), 7)) {
    hist.record(v);
  }
  for (auto _ : state) {
    const obs::HdrSnapshot snap = hist.snapshot();
    benchmark::DoNotOptimize(snap.quantile(0.50));
    benchmark::DoNotOptimize(snap.quantile(0.90));
    benchmark::DoNotOptimize(snap.quantile(0.99));
    benchmark::DoNotOptimize(snap.quantile(0.999));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HdrSnapshotQuantiles)->Arg(1024)->Arg(65536);

/// One cycle-counter read (the unit every latency sample pays twice).
void BM_ObsOverheadClock(benchmark::State& state) {
  (void)obs::ticks_per_ns();  // calibrate outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::clock_ticks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["ticks_per_ns"] = obs::ticks_per_ns();
}
BENCHMARK(BM_ObsOverheadClock);

/// Registry-routed histogram record: thread-local shard lookup + HDR record.
void BM_ObsOverheadRegistryHistogram(benchmark::State& state) {
  auto& hist =
      obs::MetricsRegistry::instance().histogram(obs::names::kBenchMicroHdr);
  hist.record(1);  // warm: allocate this thread's shard off the timed path
  const auto samples = latency_samples(4096, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(samples[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsOverheadRegistryHistogram);

/// One flight-recorder ring event (timestamp + five relaxed stores).
void BM_ObsOverheadRecorderEvent(benchmark::State& state) {
  obs::flight_recorder_record(obs::FrKind::kMark, 0, 0, 0);  // warm the ring
  std::uint64_t n = 0;
  for (auto _ : state) {
    obs::flight_recorder_record(obs::FrKind::kMark, n++, 2, 3);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsOverheadRecorderEvent);

/// The combined tax one instrumented decode pays: two clock reads, the
/// ticks->ns conversion, a registry histogram record, and a recorder event.
void BM_ObsOverheadDecodeSample(benchmark::State& state) {
  auto& hist =
      obs::MetricsRegistry::instance().histogram(obs::names::kBenchMicroHdr);
  hist.record(1);
  obs::flight_recorder_record(obs::FrKind::kMark, 0, 0, 0);
  (void)obs::ticks_per_ns();
  for (auto _ : state) {
    const std::uint64_t t0 = obs::clock_ticks();
    benchmark::DoNotOptimize(t0);
    const std::uint64_t ns = obs::ticks_to_ns(obs::clock_ticks() - t0);
    hist.record(ns);
    obs::flight_recorder_note_decode(ns, 3, 5);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsOverheadDecodeSample);

}  // namespace

BENCHMARK_MAIN();
