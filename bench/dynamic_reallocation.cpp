/// \file dynamic_reallocation.cpp
/// Extension bench (E15): the paper motivates dynamic mapping for workload
/// changes the initial allocation cannot absorb (§1).  This bench grows the
/// input workload past the planned slack and compares three responses:
///
///   * static      — keep the initial mapping (QoS violations appear),
///   * repair      — minimal-disturbance reallocation (core/dynamic.hpp),
///   * replan      — full Seeded PSG from scratch (max quality, max churn).
///
/// Reported per workload factor: worth retained, applications migrated, and
/// strings dropped.  The repair should retain most of the replan's worth at a
/// fraction of its migrations.

#include <cstdio>

#include "analysis/feasibility.hpp"
#include "core/dynamic.hpp"
#include "core/psg.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

/// Scales the input workload of every even-indexed string only: a localized
/// surge (one sensor subsystem heats up) rather than a uniform one, which is
/// the case where migrating to less-loaded machines actually helps.
tsce::model::SystemModel scale_subset(const tsce::model::SystemModel& model,
                                      double factor) {
  tsce::model::SystemModel grown = model;
  for (std::size_t k = 0; k < grown.strings.size(); k += 2) {
    for (auto& a : grown.strings[k].apps) {
      for (auto& t : a.nominal_time_s) t *= factor;
      a.output_kbytes *= factor;
    }
  }
  return grown;
}

std::size_t migrations_between(const tsce::model::Allocation& a,
                               const tsce::model::Allocation& b) {
  std::size_t moved = 0;
  for (std::size_t k = 0; k < a.num_strings(); ++k) {
    const auto sk = static_cast<tsce::model::StringId>(k);
    if (!a.deployed(sk) || !b.deployed(sk)) continue;
    for (std::size_t i = 0; i < a.string_size(sk); ++i) {
      if (a.machine_of(sk, static_cast<tsce::model::AppIndex>(i)) !=
          b.machine_of(sk, static_cast<tsce::model::AppIndex>(i))) {
        ++moved;
      }
    }
  }
  return moved;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 10;
  std::int64_t runs = 4;
  std::int64_t seed = 53;
  bool csv = false;
  util::Flags flags(
      "dynamic_reallocation — static vs minimal-repair vs full-replan "
      "responses to input workload growth");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "instances");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 40;
  psg_options.ga.max_iterations = 250;
  psg_options.ga.stagnation_limit = 120;
  psg_options.trials = 2;

  std::printf("== Responses to workload growth (M=%lld, Q=%lld, %lld runs) "
              "==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings),
              static_cast<long long>(runs));
  util::Table table({"factor", "static feasible", "repair worth", "repair migr.",
                     "repair dropped", "replan worth", "replan migr."});

  for (const double factor : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    util::RunningStats static_ok, repair_worth, repair_migr, repair_drop;
    util::RunningStats replan_worth, replan_migr;
    util::Rng master(static_cast<std::uint64_t>(seed));
    for (std::int64_t run = 0; run < runs; ++run) {
      util::Rng instance_rng = master.spawn();
      const model::SystemModel m = workload::generate(gen_config, instance_rng);
      util::Rng plan_rng = master.spawn();
      const auto initial = core::SeededPsg(psg_options).allocate(m, plan_rng);
      const model::SystemModel grown = scale_subset(m, factor);

      static_ok.add(
          analysis::check_feasibility(grown, initial.allocation).feasible() ? 1.0
                                                                            : 0.0);
      const auto repaired = core::reallocate(grown, initial.allocation);
      repair_worth.add(repaired.fitness.total_worth);
      repair_migr.add(static_cast<double>(repaired.migrations));
      repair_drop.add(static_cast<double>(repaired.dropped.size()));

      util::Rng replan_rng = master.spawn();
      const auto replanned = core::SeededPsg(psg_options).allocate(grown, replan_rng);
      replan_worth.add(replanned.fitness.total_worth);
      replan_migr.add(static_cast<double>(
          migrations_between(initial.allocation, replanned.allocation)));
    }
    table.add_row({util::Table::num(factor, 1),
                   util::Table::num(static_ok.mean() * 100.0, 0) + "%",
                   util::format_mean_ci(repair_worth, 0),
                   util::format_mean_ci(repair_migr, 1),
                   util::format_mean_ci(repair_drop, 1),
                   util::format_mean_ci(replan_worth, 0),
                   util::format_mean_ci(replan_migr, 1)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf("\nReading: once 'static feasible' drops below 100%%, the repair "
              "retains (nearly) the replan's worth with far fewer migrations.\n");
  return 0;
}
