/// \file fig5_scenario3.cpp
/// Reproduces Figure 5: *system slackness* for complete mapping in a lightly
/// loaded system (scenario 3: every string fits, so only the secondary
/// metric differentiates the heuristics).
///
/// Expected shape (paper §8): PSG ~ Seeded PSG >= MWF, TF, all below the
/// fractional-mapping UB on slackness.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  bench::ScenarioBenchConfig config;
  config.scenario = workload::Scenario::kLightlyLoaded;
  config.machines = 8;
  config.strings = 13;
  bool full = false;
  util::Flags flags(
      "fig5_scenario3 — Figure 5: system slackness, complete mapping, lightly "
      "loaded system (25 strings at paper scale)");
  config.register_flags(flags);
  flags.add("full", &full, "paper-scale parameters (12 machines, 25 strings, "
                           "100 runs)");
  if (!flags.parse(argc, argv)) return 0;
  if (full) {
    config.apply_full_scale(workload::Scenario::kLightlyLoaded);
    // Re-parse so explicit flags (e.g. --runs=1) override the full-scale
    // defaults instead of being clobbered by them.
    if (!flags.parse(argc, argv)) return 0;
  }

  std::printf("== Figure 5: system slackness, scenario 3 (lightly loaded) ==\n");
  std::printf("M=%lld machines, Q=%lld strings, %lld runs\n\n",
              static_cast<long long>(config.machines),
              static_cast<long long>(config.strings),
              static_cast<long long>(config.runs));
  const auto result = bench::run_scenario_bench(config, /*slackness_metric=*/true);
  bench::print_scenario_table(config, result, "system slackness", 3);
  return 0;
}
