/// \file validation_utilization.cpp
/// Cross-validation (E14): the stage-one analysis computes utilizations from
/// closed forms (eqs. 2-3); the discrete-event simulator meters the same
/// quantities from actual execution.  For feasible allocations in steady
/// state the two must agree — this bench reports the worst absolute error
/// across machines and routes on random instances.

#include <cmath>
#include <cstdio>

#include "analysis/utilization.hpp"
#include "core/ordered.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 10;
  std::int64_t runs = 5;
  std::int64_t seed = 41;
  double horizon = 600.0;
  bool csv = false;
  util::Flags flags(
      "validation_utilization — analytic U_machine/U_route (eqs. 2-3) vs the "
      "utilizations metered by the discrete-event simulator");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q (lightly loaded)");
  flags.add("runs", &runs, "instances");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("horizon", &horizon, "simulated seconds per instance");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kLightlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  std::printf("== Analytic vs simulated utilization (%lld runs, horizon %.0f s) "
              "==\n\n",
              static_cast<long long>(runs), horizon);
  util::Table table({"run", "max machine util (analytic)", "worst |machine err|",
                     "worst |route err|", "deployed"});
  util::RunningStats machine_err, route_err;
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);
    util::Rng search_rng = master.spawn();
    const auto plan = core::MostWorthFirst{}.allocate(m, search_rng);
    const auto analytic =
        analysis::UtilizationState::from_allocation(m, plan.allocation);
    const auto sim = sim::simulate(m, plan.allocation, {.horizon_s = horizon});

    double worst_machine = 0.0;
    for (std::size_t j = 0; j < m.num_machines(); ++j) {
      worst_machine = std::max(
          worst_machine,
          std::abs(sim.measured_machine_util[j] -
                   analytic.machine_util(static_cast<model::MachineId>(j))));
    }
    double worst_route = 0.0;
    const auto mm = static_cast<model::MachineId>(m.num_machines());
    for (model::MachineId j1 = 0; j1 < mm; ++j1) {
      for (model::MachineId j2 = 0; j2 < mm; ++j2) {
        if (j1 == j2) continue;
        worst_route = std::max(
            worst_route,
            std::abs(sim.measured_route_util[static_cast<std::size_t>(j1) *
                                                 m.num_machines() +
                                             static_cast<std::size_t>(j2)] -
                     analytic.route_util(j1, j2)));
      }
    }
    machine_err.add(worst_machine);
    route_err.add(worst_route);
    table.add_row({std::to_string(run),
                   util::Table::num(analytic.max_machine_util(), 3),
                   util::Table::num(worst_machine, 4),
                   util::Table::num(worst_route, 4),
                   std::to_string(plan.allocation.num_deployed()) + "/" +
                       std::to_string(m.num_strings())});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf("\nMean worst-case error: machines %.4f, routes %.4f "
              "(finite-horizon boundary effects only).\n",
              machine_err.mean(), route_err.mean());
  return 0;
}
