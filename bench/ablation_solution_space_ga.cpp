/// \file ablation_solution_space_ga.cpp
/// Reproduces the §5 negative result: "a genetic algorithm operating in the
/// solution space failed to find any feasible allocation even for a
/// relatively small set of strings in a reasonable amount of time" — the
/// motivation for searching the permutation space instead.
///
/// With matched evaluation budgets, the bench compares (a) how often the raw
/// assignment GA deploys the complete string set and (b) the total worth it
/// reaches, against the permutation-space PSG and the one-pass MWF.

#include <cstdio>

#include "core/baselines.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 4;
  std::int64_t strings = 14;
  std::int64_t runs = 3;
  std::int64_t iterations = 250;
  std::int64_t seed = 17;
  bool csv = false;
  util::Flags flags(
      "ablation_solution_space_ga — permutation-space vs solution-space "
      "genetic search (paper §5 negative result)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "instances");
  flags.add("iterations", &iterations, "GA iteration budget (both searches)");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 40;
  psg_options.ga.max_iterations = static_cast<std::size_t>(iterations);
  psg_options.ga.stagnation_limit = static_cast<std::size_t>(iterations);
  psg_options.trials = 1;
  core::SolutionSpaceGaOptions ss_options;
  ss_options.ga.population_size = 40;
  ss_options.ga.max_iterations = static_cast<std::size_t>(iterations);
  ss_options.ga.stagnation_limit = static_cast<std::size_t>(iterations);

  util::RunningStats psg_worth, ss_worth, mwf_worth;
  util::RunningStats psg_deployed, ss_deployed;
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);
    util::Rng r1 = master.spawn();
    util::Rng r2 = master.spawn();
    util::Rng r3 = master.spawn();
    const auto psg = core::Psg(psg_options).allocate(m, r1);
    const auto ss = core::SolutionSpaceGa(ss_options).allocate(m, r2);
    const auto mwf = core::MostWorthFirst{}.allocate(m, r3);
    psg_worth.add(psg.fitness.total_worth);
    ss_worth.add(ss.fitness.total_worth);
    mwf_worth.add(mwf.fitness.total_worth);
    psg_deployed.add(static_cast<double>(psg.allocation.num_deployed()));
    ss_deployed.add(static_cast<double>(ss.allocation.num_deployed()));
  }

  std::printf("== Solution-space GA vs permutation-space PSG (M=%lld, Q=%lld) "
              "==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings));
  util::Table table({"search", "total worth", "strings deployed"});
  table.add_row({"PSG (permutation space)", util::format_mean_ci(psg_worth, 1),
                 util::format_mean_ci(psg_deployed, 1)});
  table.add_row({"GA (solution space)", util::format_mean_ci(ss_worth, 1),
                 util::format_mean_ci(ss_deployed, 1)});
  table.add_row({"MWF (one pass)", util::format_mean_ci(mwf_worth, 1), "-"});
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf("\nExpected shape (paper §5): the solution-space GA falls well "
              "short of the permutation-space search.\n");
  return 0;
}
