/// \file table1_workload.cpp
/// Reproduces Table 1: the mu range specifications for Lmax[k] and P[k] per
/// simulation scenario, plus the resulting sampled workload statistics (the
/// paper's §6 parameter ranges made concrete).

#include <cstdio>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t seed = 2005;
  std::int64_t sample_runs = 5;
  bool csv = false;
  util::Flags flags(
      "table1_workload — Table 1: mu range specification per scenario, with "
      "sampled P[k]/Lmax[k] statistics");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("sample-runs", &sample_runs, "instances sampled per scenario");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  std::printf("== Table 1: range specifications for the random variable mu ==\n\n");
  util::Table spec({"scenario", "mu for Lmax[k]", "mu for P[k]", "strings Q"});
  spec.add_row({"1 (highly loaded)", "[4, 6]", "[3, 4.5]", "150"});
  spec.add_row({"2 (QoS-limited)", "[1.25, 2.75]", "[1.5, 2.5]", "150"});
  spec.add_row({"3 (lightly loaded)", "[4, 6]", "[3, 4.5]", "25"});
  if (csv) {
    spec.print_csv();
  } else {
    spec.print();
  }

  std::printf("\nSampled workload statistics (%lld instances per scenario, "
              "paper-scale M=12):\n\n",
              static_cast<long long>(sample_runs));
  util::Table stats({"scenario", "apps/string", "P[k] [s]", "Lmax[k] [s]",
                     "Lmax/P ratio"});
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (const auto scenario :
       {workload::Scenario::kHighlyLoaded, workload::Scenario::kQosLimited,
        workload::Scenario::kLightlyLoaded}) {
    util::RunningStats apps, period, latency, ratio;
    for (std::int64_t run = 0; run < sample_runs; ++run) {
      util::Rng rng = master.spawn();
      const auto config = workload::GeneratorConfig::for_scenario(scenario);
      const auto m = workload::generate(config, rng);
      for (const auto& s : m.strings) {
        apps.add(static_cast<double>(s.size()));
        period.add(s.period_s);
        latency.add(s.max_latency_s);
        ratio.add(s.max_latency_s / s.period_s);
      }
    }
    stats.add_row({std::to_string(static_cast<int>(scenario)),
                   util::format_mean_ci(apps, 2), util::format_mean_ci(period, 1),
                   util::format_mean_ci(latency, 1),
                   util::format_mean_ci(ratio, 2)});
  }
  if (csv) {
    stats.print_csv();
  } else {
    stats.print();
  }
  return 0;
}
