/// \file runtime_comparison.cpp
/// Reproduces the §8 execution-time discussion: "Both of the fast heuristics
/// (MWF and TF) executed in a few seconds.  The evolutionary algorithms (PSG
/// and Seeded PSG) required approximately two hours per single run ... The LP
/// algorithm ... runs extremely fast — its execution time was less than two
/// seconds."
///
/// At bench scale the absolute numbers shrink, but the *ordering* must hold:
/// MWF/TF and the LP are orders of magnitude faster than the evolutionary
/// searches.

#include <chrono>
#include <cstdio>

#include "core/baselines.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "lp/upper_bound.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {
double time_it(const auto& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 40;
  std::int64_t seed = 7;
  std::int64_t psg_iterations = 1500;
  bool csv = false;
  util::Flags flags(
      "runtime_comparison — heuristic execution times on one scenario-1 "
      "instance (paper §8 text)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("seed", &seed, "RNG seed");
  flags.add("psg-iterations", &psg_iterations, "PSG iteration budget");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  util::Rng rng(static_cast<std::uint64_t>(seed));
  auto config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  config.num_machines = static_cast<std::size_t>(machines);
  config.num_strings = static_cast<std::size_t>(strings);
  const model::SystemModel m = workload::generate(config, rng);

  core::PsgOptions psg_options;
  psg_options.ga.population_size = 250;  // paper budget shape
  psg_options.ga.max_iterations = static_cast<std::size_t>(psg_iterations);
  psg_options.ga.stagnation_limit = static_cast<std::size_t>(psg_iterations);
  psg_options.trials = 1;

  std::printf("== Heuristic runtime comparison (M=%lld, Q=%lld) ==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings));
  util::Table table({"algorithm", "time [s]", "total worth / UB value"});

  int worth = 0;
  double seconds = time_it([&] {
    util::Rng r(1);
    worth = core::MostWorthFirst{}.allocate(m, r).fitness.total_worth;
  });
  table.add_row({"MWF", util::Table::num(seconds, 4), std::to_string(worth)});

  seconds = time_it([&] {
    util::Rng r(2);
    worth = core::TightestFirst{}.allocate(m, r).fitness.total_worth;
  });
  table.add_row({"TF", util::Table::num(seconds, 4), std::to_string(worth)});

  seconds = time_it([&] {
    util::Rng r(3);
    worth = core::Psg(psg_options).allocate(m, r).fitness.total_worth;
  });
  table.add_row({"PSG", util::Table::num(seconds, 4), std::to_string(worth)});

  seconds = time_it([&] {
    util::Rng r(4);
    worth = core::SeededPsg(psg_options).allocate(m, r).fitness.total_worth;
  });
  table.add_row({"Seeded PSG", util::Table::num(seconds, 4), std::to_string(worth)});

  double ub_value = 0.0;
  seconds = time_it([&] { ub_value = lp::upper_bound_worth(m).value; });
  table.add_row({"UB (simplex LP)", util::Table::num(seconds, 4),
                 util::Table::num(ub_value, 1)});

  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf(
      "\nExpected ordering (paper Sec. 8): MWF/TF execute in a blink; the LP is "
      "fast; the evolutionary searches dominate the cost.  At this reduced "
      "scale PSG and the LP are within an order of magnitude; at paper scale "
      "(150 strings, 250-chromosome population, 5000 iterations, 4 trials) "
      "the PSG decode count grows ~100x while the LP stays polynomial, "
      "reproducing the paper's hours-vs-seconds gap.\n");
  return 0;
}
