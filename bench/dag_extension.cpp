/// \file dag_extension.cpp
/// Extension bench (E16): the paper's footnote 2 anticipates DAG-structured
/// strings in the final ARMS program.  This bench exercises the DAG module:
///
///   * equivalence check — chain workloads analyzed via the DAG module match
///     the linear pipeline exactly (worth/slackness of the MWF allocation);
///   * DAG workloads — allocation statistics on random fork/join graphs, and
///     how much latency headroom the critical-path analysis recovers versus
///     the (pessimistic) chain-sum bound a linear analysis would impose.

#include <algorithm>
#include <cstdio>

#include "core/ordered.hpp"
#include "dag/allocator.hpp"
#include "dag/generator.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 6;
  std::int64_t strings = 12;
  std::int64_t runs = 5;
  std::int64_t seed = 61;
  bool csv = false;
  util::Flags flags(
      "dag_extension — DAG-structured strings: chain equivalence plus "
      "fork/join allocation statistics");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "instances");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  // Part 1: chains through both analyses.
  std::printf("== Part 1: chain workloads, linear vs DAG module ==\n\n");
  util::Table equiv({"run", "linear MWF worth", "DAG MWF worth", "match"});
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng rng = master.spawn();
    auto config =
        workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
    config.num_machines = static_cast<std::size_t>(machines);
    config.num_strings = static_cast<std::size_t>(strings);
    const model::SystemModel linear = workload::generate(config, rng);
    util::Rng r(1);
    const auto lin = core::MostWorthFirst{}.allocate(linear, r);
    const auto dag_result = dag::allocate_most_worth_first(dag::lift(linear));
    equiv.add_row({std::to_string(run), std::to_string(lin.fitness.total_worth),
                   std::to_string(dag_result.fitness.total_worth),
                   lin.fitness.total_worth == dag_result.fitness.total_worth
                       ? "yes"
                       : "NO"});
  }
  if (csv) {
    equiv.print_csv();
  } else {
    equiv.print();
  }

  // Part 2: genuine DAG workloads.
  std::printf("\n== Part 2: fork/join DAG workloads ==\n\n");
  util::Table dag_table({"run", "worth deployed", "strings deployed", "slackness",
                         "critical-path / chain-sum latency"});
  util::RunningStats ratio_stats;
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng rng = master.spawn();
    dag::DagGeneratorConfig config;
    config.num_machines = static_cast<std::size_t>(machines);
    config.num_strings = static_cast<std::size_t>(strings);
    const dag::DagSystemModel m = dag::generate_dag_system(config, rng);
    const auto result = dag::allocate_most_worth_first(m);

    // Critical-path vs chain-sum latency over deployed strings.
    const auto est = dag::estimate_all(m, result.allocation);
    util::RunningStats ratio;
    for (std::size_t k = 0; k < m.num_strings(); ++k) {
      if (!result.allocation.deployed(static_cast<model::StringId>(k))) continue;
      double chain_sum = 0.0;
      for (const double c : est.comp[k]) chain_sum += c;
      for (const double t : est.tran[k]) chain_sum += t;
      const double critical = est.latency(m, static_cast<model::StringId>(k));
      if (chain_sum > 0.0) ratio.add(critical / chain_sum);
    }
    ratio_stats.merge(ratio);
    dag_table.add_row(
        {std::to_string(run), std::to_string(result.fitness.total_worth),
         std::to_string(result.strings_deployed) + "/" + std::to_string(strings),
         util::Table::num(result.fitness.slackness, 3),
         util::format_mean_ci(ratio, 2)});
  }
  if (csv) {
    dag_table.print_csv();
  } else {
    dag_table.print();
  }
  std::printf("\nMean critical-path/chain-sum ratio %.2f: the DAG analysis "
              "recovers the latency headroom a chain-sum bound would waste on "
              "parallel branches.\n",
              ratio_stats.mean());
  return 0;
}
