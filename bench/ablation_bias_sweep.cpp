/// \file ablation_bias_sweep.cpp
/// Reproduces the §5 bias-selection experiment: "The bias value 1.6 was found
/// experimentally by observing the performance of the heuristic while varying
/// the bias values across the range [1,2] in steps 0.1."
///
/// The Whitley bias function requires bias > 1, so the sweep runs over
/// 1.1 .. 2.0.  For each bias the PSG is run on the same instances and the
/// mean total worth is reported.

#include <cstdio>

#include "core/psg.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 3;
  std::int64_t strings = 24;
  std::int64_t runs = 5;
  std::int64_t iterations = 120;
  std::int64_t population = 50;
  std::int64_t seed = 11;
  bool csv = false;
  util::Flags flags(
      "ablation_bias_sweep — PSG selective-pressure sweep over bias in "
      "[1.1, 2.0] step 0.1 (paper §5, chosen value 1.6)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "instances per bias value");
  flags.add("iterations", &iterations, "PSG iteration budget");
  flags.add("population", &population, "PSG population size");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  // Pre-generate the instances so every bias value sees identical workloads.
  std::vector<model::SystemModel> instances;
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng rng = master.spawn();
    instances.push_back(workload::generate(gen_config, rng));
  }

  std::printf("== PSG bias sweep (M=%lld, Q=%lld, %lld runs per bias) ==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings),
              static_cast<long long>(runs));
  util::Table table({"bias", "total worth (mean \xC2\xB1 95% CI)"});
  for (int step = 1; step <= 10; ++step) {
    const double bias = 1.0 + 0.1 * step;
    core::PsgOptions options;
    options.ga.bias = bias;
    options.ga.population_size = static_cast<std::size_t>(population);
    options.ga.max_iterations = static_cast<std::size_t>(iterations);
    options.ga.stagnation_limit = static_cast<std::size_t>(iterations);
    options.trials = 1;
    const core::Psg psg(options);

    util::RunningStats worth;
    for (std::size_t run = 0; run < instances.size(); ++run) {
      // Same search seed per instance across biases: only the bias varies.
      util::Rng search_rng(static_cast<std::uint64_t>(seed) * 1000 + run);
      worth.add(psg.allocate(instances[run], search_rng).fitness.total_worth);
    }
    table.add_row({util::Table::num(bias, 1), util::format_mean_ci(worth, 1)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
