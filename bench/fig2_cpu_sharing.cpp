/// \file fig2_cpu_sharing.cpp
/// Reproduces Figure 2: the three CPU-sharing overlap cases between a
/// higher-priority application a_1^1 and a lower-priority application a_1^2
/// on one machine.  For each case the bench reports the eq. (5) analytic
/// estimate of a_1^2's computation time next to the discrete-event
/// simulator's measured average — they must agree exactly for these
/// worst-case-aligned periodic workloads.
///
///   case 1: P[1] = P[2],  u1 = 1.0  ->  t_comp = t2 + t1           = 4.0 s
///   case 2: P[1] = 2P[2], u1 = 1.0  ->  t_comp = t2 + (P2/P1) t1   = 3.0 s
///   case 3: P[1] = 2P[2], u1 = 0.5  ->  t_comp = t2 + (P2/P1)u1 t1 = 2.5 s

#include <cstdio>

#include "analysis/estimates.hpp"
#include "model/system_model.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

tsce::model::SystemModel make_case(double p1, double p2, double u1) {
  using namespace tsce::model;
  return SystemModelBuilder(1)
      .begin_string(p1, /*Lmax=*/3.0, Worth::kHigh, "string1(tight)")
      .add_app(2.0, u1, 0.0, "a11")
      .begin_string(p2, /*Lmax=*/100.0, Worth::kLow, "string2(loose)")
      .add_app(2.0, 1.0, 0.0, "a12")
      .build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  double horizon = 160.0;
  bool csv = false;
  util::Flags flags(
      "fig2_cpu_sharing — Figure 2: analytic (eq. 5) vs simulated computation "
      "times under the three CPU-sharing overlap cases");
  flags.add("horizon", &horizon, "simulated seconds per case");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  struct Case {
    const char* name;
    double p1, p2, u1;
  };
  const Case cases[] = {
      {"case 1: P1=P2, u1=1.0", 4.0, 4.0, 1.0},
      {"case 2: P1=2*P2, u1=1.0", 8.0, 4.0, 1.0},
      {"case 3: P1=2*P2, u1=0.5", 8.0, 4.0, 0.5},
  };

  std::printf("== Figure 2: CPU sharing between prioritized periodic apps ==\n\n");
  util::Table table({"case", "t_comp^1 [s]", "eq.(5) t_comp^2 [s]",
                     "simulated t_comp^2 [s]", "match"});
  for (const Case& c : cases) {
    const model::SystemModel m = make_case(c.p1, c.p2, c.u1);
    model::Allocation alloc(m);
    alloc.assign(0, 0, 0);
    alloc.assign(1, 0, 0);
    alloc.set_deployed(0, true);
    alloc.set_deployed(1, true);

    const auto est = analysis::estimate_all(m, alloc);
    const auto sim = sim::simulate(m, alloc, {.horizon_s = horizon});
    const double analytic = est.comp[1][0];
    const double simulated = sim.apps[1][0].comp_s.mean();
    table.add_row({c.name, util::Table::num(est.comp[0][0], 2),
                   util::Table::num(analytic, 2), util::Table::num(simulated, 2),
                   std::abs(analytic - simulated) < 1e-6 ? "yes" : "NO"});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
