/// \file ablation_search_strategies.cpp
/// Extension ablation (E11): how much of the PSG's advantage comes from the
/// GENITOR machinery versus simply searching the permutation space at all?
/// Compares, under a matched decode-evaluation budget:
///   * MWF / TF          — one ordering each (the paper's fast heuristics)
///   * RandomOrder       — one random ordering
///   * HillClimb         — first-improvement swaps with restarts
///   * SimulatedAnnealing— swap neighborhood, geometric cooling
///   * PSG / Seeded PSG  — the paper's GENITOR search
///   * ClassBased        — §4's alternate worth-class scheme (E12)
/// plus the exact permutation optimum on instances small enough to enumerate.

#include <cstdio>
#include <memory>

#include "core/baselines.hpp"
#include "core/class_based.hpp"
#include "core/exact.hpp"
#include "core/local_search.hpp"
#include "core/ordered.hpp"
#include "core/psg.hpp"
#include "obs/names.hpp"
#include "obs/run_info.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 2;
  std::int64_t strings = 9;
  std::int64_t runs = 6;
  std::int64_t budget = 120;  // decode evaluations per searcher
  std::int64_t seed = 13;
  bool with_exact = true;
  bool csv = false;
  std::string trace_path;
  util::Flags flags(
      "ablation_search_strategies — permutation-space search strategies under "
      "a matched evaluation budget, sandwiched by the exact optimum");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q (exact needs <= 9)");
  flags.add("runs", &runs, "instances");
  flags.add("budget", &budget, "decode evaluations per search strategy");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("exact", &with_exact, "also compute the exact permutation optimum");
  flags.add("csv", &csv, "emit CSV");
  flags.add("trace", &trace_path, "write span/event JSONL trace to this path");
  if (!flags.parse(argc, argv)) return 0;

  bool tracing = false;
  if (!trace_path.empty()) {
    obs::RunInfo info = obs::RunInfo::current();
    info.seed = static_cast<std::uint64_t>(seed);
    info.set_param("scenario", "highly_loaded");
    info.set_param("machines", machines);
    info.set_param("strings", strings);
    info.set_param("runs", runs);
    info.set_param("budget", budget);
    tracing = obs::trace_open(trace_path, info);
    if (!tracing) {
      std::fprintf(stderr, "warning: could not open trace '%s'%s\n",
                   trace_path.c_str(),
                   obs::kTracingCompiledIn ? "" : " (tracing compiled out)");
    }
  }

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kHighlyLoaded);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  const auto b = static_cast<std::size_t>(budget);
  core::PsgOptions psg_options;
  psg_options.ga.population_size = std::min<std::size_t>(40, b / 4);
  psg_options.ga.max_iterations = (b - psg_options.ga.population_size) / 3;
  psg_options.ga.stagnation_limit = psg_options.ga.max_iterations;
  psg_options.trials = 1;
  core::HillClimbOptions hc_options;
  hc_options.restarts = 4;
  hc_options.max_evaluations = b;
  core::AnnealingOptions sa_options;
  sa_options.iterations = b;
  core::ClassBasedOptions cb_options;
  cb_options.ga.population_size = std::min<std::size_t>(30, b / 4);
  cb_options.ga.max_iterations = (b / 3) / 3;
  cb_options.ga.stagnation_limit = cb_options.ga.max_iterations;

  std::vector<core::AllocatorPtr> searchers;
  searchers.push_back(std::make_unique<core::MostWorthFirst>());
  searchers.push_back(std::make_unique<core::TightestFirst>());
  searchers.push_back(std::make_unique<core::RandomOrder>());
  searchers.push_back(std::make_unique<core::HillClimb>(hc_options));
  searchers.push_back(std::make_unique<core::SimulatedAnnealing>(sa_options));
  searchers.push_back(std::make_unique<core::Psg>(psg_options));
  searchers.push_back(std::make_unique<core::SeededPsg>(psg_options));
  searchers.push_back(std::make_unique<core::ClassBasedAllocator>(cb_options));

  std::vector<util::RunningStats> worth(searchers.size());
  util::RunningStats exact_worth;
  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);
    for (std::size_t s = 0; s < searchers.size(); ++s) {
      util::Rng rng = master.spawn();
      obs::Span span(obs::names::kBenchAlloc, {{"phase", searchers[s]->name()},
                                     {"run", std::uint64_t{static_cast<std::uint64_t>(run)}}});
      const auto result = searchers[s]->allocate(m, rng);
      span.add("metric", static_cast<double>(result.fitness.total_worth));
      span.add("evaluations", static_cast<double>(result.evaluations));
      worth[s].add(result.fitness.total_worth);
    }
    if (with_exact && m.num_strings() <= 9) {
      util::Rng rng = master.spawn();
      obs::Span span(obs::names::kBenchAlloc, {{"phase", "Exact"},
                                     {"run", std::uint64_t{static_cast<std::uint64_t>(run)}}});
      const auto result = core::ExactPermutationSearch{}.allocate(m, rng);
      span.add("metric", static_cast<double>(result.fitness.total_worth));
      exact_worth.add(result.fitness.total_worth);
    }
  }
  if (tracing) obs::trace_close();

  std::printf("== Permutation-space search strategies (M=%lld, Q=%lld, budget "
              "%lld decodes) ==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings),
              static_cast<long long>(budget));
  util::Table table({"strategy", "total worth (mean \xC2\xB1 95% CI)"});
  for (std::size_t s = 0; s < searchers.size(); ++s) {
    table.add_row({searchers[s]->name(), util::format_mean_ci(worth[s], 1)});
  }
  if (exact_worth.count() > 0) {
    table.add_row({"Exact (permutation optimum)", util::format_mean_ci(exact_worth, 1)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
