/// \file ablation_scheduler_policies.cpp
/// Extension ablation (E13): the paper assumes local schedulers prioritize by
/// relative tightness and notes the analysis "can be modified if a different
/// scheduling policy is used" (§3).  This bench swaps the priority rule in
/// the stage-two analysis (and the sequential decode built on it) and
/// measures the achievable total worth per rule: tightness-aware scheduling
/// should deploy more worth in the QoS-limited scenario because it protects
/// exactly the strings whose latency budgets are scarce.

#include <cstdio>

#include "analysis/session.hpp"
#include "core/imr.hpp"
#include "core/ordered.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

/// MWF-ordered sequential decode under an explicit priority rule.
tsce::analysis::Fitness decode_with_rule(const tsce::model::SystemModel& m,
                                         tsce::analysis::PriorityRule rule) {
  tsce::analysis::AllocationSession session(m, rule);
  for (const auto k : tsce::core::mwf_order(m)) {
    const auto assignment = tsce::core::imr_map_string(m, session.util(), k);
    if (!session.try_commit(k, assignment)) break;
  }
  return session.fitness();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsce;
  std::int64_t machines = 5;
  std::int64_t strings = 28;
  std::int64_t runs = 8;
  std::int64_t seed = 37;
  bool csv = false;
  util::Flags flags(
      "ablation_scheduler_policies — total worth achievable when local "
      "schedulers prioritize by tightness (paper), rate-monotonic, or worth "
      "(QoS-limited workload)");
  flags.add("machines", &machines, "machine count M");
  flags.add("strings", &strings, "string count Q");
  flags.add("runs", &runs, "instances");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("csv", &csv, "emit CSV");
  if (!flags.parse(argc, argv)) return 0;

  auto gen_config =
      workload::GeneratorConfig::for_scenario(workload::Scenario::kQosLimited);
  gen_config.num_machines = static_cast<std::size_t>(machines);
  gen_config.num_strings = static_cast<std::size_t>(strings);

  constexpr analysis::PriorityRule kRules[] = {
      analysis::PriorityRule::kRelativeTightness,
      analysis::PriorityRule::kRateMonotonic,
      analysis::PriorityRule::kWorth,
  };
  util::RunningStats worth[3], slack[3];

  util::Rng master(static_cast<std::uint64_t>(seed));
  for (std::int64_t run = 0; run < runs; ++run) {
    util::Rng instance_rng = master.spawn();
    const model::SystemModel m = workload::generate(gen_config, instance_rng);
    for (int r = 0; r < 3; ++r) {
      const auto fitness = decode_with_rule(m, kRules[r]);
      worth[r].add(fitness.total_worth);
      slack[r].add(fitness.slackness);
    }
  }

  std::printf("== Local-scheduler priority rules, QoS-limited scenario "
              "(M=%lld, Q=%lld, %lld runs, MWF ordering) ==\n\n",
              static_cast<long long>(machines), static_cast<long long>(strings),
              static_cast<long long>(runs));
  util::Table table({"priority rule", "total worth", "slackness"});
  for (int r = 0; r < 3; ++r) {
    table.add_row({analysis::to_string(kRules[r]),
                   util::format_mean_ci(worth[r], 1),
                   util::format_mean_ci(slack[r], 3)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf("\nExpected shape: relative tightness (the paper's rule) deploys "
              "at least as much worth as the alternatives in the QoS-limited "
              "regime.\n");
  return 0;
}
