/// \file ordered.hpp
/// The single-pass ordering heuristics: Most Worth First and Tightest First
/// (paper §5).  Both sort the strings by a ranking criterion and decode that
/// single ordering through the IMR with per-string feasibility checks.

#pragma once

#include <vector>

#include "core/allocator.hpp"

namespace tsce::core {

/// Strings ranked by descending worth I[k]; ties by ascending string id.
[[nodiscard]] std::vector<model::StringId> mwf_order(const model::SystemModel& model);

/// Strings ranked by descending approximate relative tightness (eq. 4 with
/// allocation-dependent terms replaced by averages); ties by ascending id.
[[nodiscard]] std::vector<model::StringId> tf_order(const model::SystemModel& model);

/// Strings ranked by the fractional-mapping LP relaxation (upper_bound.hpp):
/// descending deployed fraction f_k, ties by descending worth then ascending
/// id.  Strings the LP deploys fully are exactly the ones an optimal integral
/// allocation is most likely to keep, so decoding them first gives the
/// sequential IMR decoder a head start.  Falls back to mwf_order when the LP
/// does not reach optimality (iteration limit on adversarial instances).
[[nodiscard]] std::vector<model::StringId> lp_guided_order(
    const model::SystemModel& model);

class MostWorthFirst final : public Allocator {
 public:
  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "MWF"; }
};

class TightestFirst final : public Allocator {
 public:
  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "TF"; }
};

}  // namespace tsce::core
