#include "core/psg.hpp"

#include <algorithm>
#include <cassert>

#include "core/decode.hpp"
#include "core/ordered.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace tsce::core {

using model::StringId;
using model::SystemModel;

analysis::Fitness PermutationProblem::evaluate(const Chromosome& order) const {
  return decode_order_into(evaluator_.context(0), order).fitness;
}

std::vector<analysis::Fitness> PermutationProblem::evaluate_batch(
    std::span<const Chromosome> batch) const {
  return evaluator_.evaluate_fitness(batch);
}

PermutationProblem::Chromosome PermutationProblem::reorder_top(
    const Chromosome& receiver, const Chromosome& pattern, std::size_t cut) {
  assert(cut <= receiver.size());
  assert(receiver.size() == pattern.size());
  // Position of every string in the pattern parent.  Chromosomes may hold a
  // sparse subset of string ids (class-based search), so size by the largest
  // id rather than the chromosome length.
  StringId max_id = 0;
  for (const StringId id : pattern) max_id = std::max(max_id, id);
  std::vector<std::size_t> pos(static_cast<std::size_t>(max_id) + 1, 0);
  for (std::size_t p = 0; p < pattern.size(); ++p) {
    pos[static_cast<std::size_t>(pattern[p])] = p;
  }
  Chromosome child = receiver;
  std::sort(child.begin(), child.begin() + static_cast<std::ptrdiff_t>(cut),
            [&](StringId a, StringId b) {
              return pos[static_cast<std::size_t>(a)] < pos[static_cast<std::size_t>(b)];
            });
  return child;
}

std::pair<PermutationProblem::Chromosome, PermutationProblem::Chromosome>
PermutationProblem::crossover(const Chromosome& a, const Chromosome& b,
                              util::Rng& rng) const {
  const std::size_t q = a.size();
  if (q < 2) return {a, b};
  // Cut point in [1, q-1]: both parts non-empty.
  const auto cut = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(q) - 1));
  return {reorder_top(a, b, cut), reorder_top(b, a, cut)};
}

PermutationProblem::Chromosome PermutationProblem::mutate(const Chromosome& c,
                                                          util::Rng& rng) const {
  Chromosome child = c;
  const std::size_t q = child.size();
  if (q < 2) return child;
  const auto i = rng.bounded(q);
  auto j = rng.bounded(q);
  while (j == i) j = rng.bounded(q);
  std::swap(child[i], child[j]);
  return child;
}

PermutationProblem::Chromosome PermutationProblem::random_chromosome(
    util::Rng& rng) const {
  Chromosome c = identity_order(*model_);
  rng.shuffle(c);
  return c;
}

AllocatorResult Psg::allocate(const SystemModel& model, util::Rng& rng) const {
  const PermutationProblem problem(model, options_.eval_threads);
  const auto seed_orders = seeds(model);

  AllocatorResult best;
  bool have_best = false;
  std::size_t total_evaluations = 0;
  const std::string phase = name();
  for (std::size_t trial = 0; trial < std::max<std::size_t>(1, options_.trials);
       ++trial) {
    obs::Span span(obs::names::kSearchTrial,
                   {{"phase", phase}, {"trial", std::uint64_t{trial}}});
    util::Rng trial_rng = rng.spawn();
    genitor::Genitor<PermutationProblem> ga(problem, options_.ga);
    auto ga_result =
        ga.run(trial_rng, seed_orders,
               [&](std::size_t iteration, const analysis::Fitness& elite) {
                 obs::trace_event(obs::names::kSearchImprove,
                                  {{"phase", phase},
                                   {"trial", std::uint64_t{trial}},
                                   {"iteration", std::uint64_t{iteration}},
                                   {"worth", elite.total_worth},
                                   {"slackness", elite.slackness}});
               });
    total_evaluations += ga_result.evaluations;
    span.add("iterations", static_cast<double>(ga_result.iterations));
    span.add("evaluations", static_cast<double>(ga_result.evaluations));
    span.add("best_worth", static_cast<double>(ga_result.best_fitness.total_worth));
    if (!have_best || best.fitness < ga_result.best_fitness) {
      DecodeResult decoded = decode_order(model, ga_result.best);
      best.allocation = std::move(decoded.allocation);
      best.fitness = decoded.fitness;
      best.order = std::move(ga_result.best);
      have_best = true;
    }
  }
  best.evaluations = total_evaluations;
  return best;
}

std::vector<std::vector<StringId>> SeededPsg::seeds(const SystemModel& model) const {
  return {mwf_order(model), tf_order(model)};
}

std::vector<std::vector<StringId>> LpSeededPsg::seeds(const SystemModel& model) const {
  return {mwf_order(model), tf_order(model), lp_guided_order(model)};
}

}  // namespace tsce::core
