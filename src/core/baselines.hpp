/// \file baselines.hpp
/// Comparison baselines that are not part of the paper's reported heuristics:
///
/// * RandomOrder — a single random permutation decoded through the IMR; shows
///   how much the MWF/TF rankings and the PSG search each buy.
/// * SolutionSpaceGa — a genetic algorithm operating directly on
///   application-to-machine assignments.  The paper reports that such a GA
///   "failed to find any feasible allocation even for a relatively small set
///   of strings in a reasonable amount of time" (§5); this implementation
///   reproduces that negative result (bench E9).

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "genitor/genitor.hpp"

namespace tsce::core {

class RandomOrder final : public Allocator {
 public:
  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "RandomOrder"; }
};

/// GENITOR problem over raw assignments.  The chromosome holds one machine id
/// per application (all strings flattened).  Decoding deploys strings in
/// index order, skipping any whose commit fails the two-stage analysis.
class AssignmentProblem {
 public:
  using Chromosome = std::vector<model::MachineId>;
  using Fitness = analysis::Fitness;

  explicit AssignmentProblem(const model::SystemModel& model);

  [[nodiscard]] Fitness evaluate(const Chromosome& genes) const;
  [[nodiscard]] std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                                            const Chromosome& b,
                                                            util::Rng& rng) const;
  [[nodiscard]] Chromosome mutate(const Chromosome& c, util::Rng& rng) const;
  [[nodiscard]] Chromosome random_chromosome(util::Rng& rng) const;

  /// Deploys the chromosome and returns the full result (used for the final
  /// report, not during search).
  [[nodiscard]] AllocatorResult project(const Chromosome& genes) const;

  [[nodiscard]] std::size_t genome_length() const noexcept { return total_apps_; }

 private:
  const model::SystemModel* model_;
  std::size_t total_apps_;
  std::vector<std::size_t> offset_;  ///< first gene of each string
};

struct SolutionSpaceGaOptions {
  genitor::Config ga{.population_size = 250,
                     .bias = 1.6,
                     .max_iterations = 5000,
                     .stagnation_limit = 300};
  std::size_t trials = 1;
};

class SolutionSpaceGa final : public Allocator {
 public:
  explicit SolutionSpaceGa(SolutionSpaceGaOptions options = {})
      : options_(options) {}

  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "SolutionSpaceGA"; }

 private:
  SolutionSpaceGaOptions options_;
};

}  // namespace tsce::core
