/// \file exact.hpp
/// Exhaustive search over the permutation space: the true optimum of the
/// "order strings, decode with the IMR" formulation for small instances.
///
/// With Q strings the search decodes all Q! orderings (with memoized prefix
/// pruning), so it is only practical for Q <= ~8.  Its value is as ground
/// truth: it sandwiches the heuristics (heuristic <= exact <= LP bound) in
/// tests and ablations.

#pragma once

#include <cstddef>

#include "core/allocator.hpp"

namespace tsce::core {

struct ExactSearchOptions {
  /// Refuse instances with more strings than this (Q! explodes).
  std::size_t max_strings = 9;
  /// Hard cap on decodes; the best-so-far is returned when exhausted.
  std::size_t max_evaluations = 2'000'000;
  /// Engine selector, mirroring HillClimbOptions::threads.  0 (default) is
  /// the legacy serial engine: one enumeration, one global bound, one global
  /// evaluation budget.  Any value >= 1 selects the deterministic parallel
  /// engine: the top level of the tree splits into one subtree task per first
  /// string, each with an independent bound and max_evaluations/Q budget
  /// slice, folded best-of in branch index order — byte-identical at 1, 2, or
  /// N threads.  Both engines find the same optimal fitness when budgets do
  /// not bind (the bound only prunes strictly-worse subtrees), but budget
  /// truncation points and the representative order may differ between the
  /// serial and parallel engines.
  std::size_t threads = 0;
};

/// Branch-and-bound over orderings: a depth-first enumeration that prunes a
/// prefix as soon as its decode already fails (every completion of a failing
/// prefix decodes to the same partial allocation, because the sequential
/// decode stops at the first infeasible string).
class ExactPermutationSearch final : public Allocator {
 public:
  explicit ExactPermutationSearch(ExactSearchOptions options = {})
      : options_(options) {}

  /// Throws std::invalid_argument when the instance exceeds max_strings.
  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Exact"; }

 private:
  ExactSearchOptions options_;
};

}  // namespace tsce::core
