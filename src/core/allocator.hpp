/// \file allocator.hpp
/// Common interface for the initial static allocation heuristics.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "util/rng.hpp"

namespace tsce::core {

struct AllocatorResult {
  model::Allocation allocation;
  analysis::Fitness fitness;
  /// String ordering that produced the allocation (useful for seeding and
  /// reporting); empty for allocators that do not search the permutation
  /// space.
  std::vector<model::StringId> order;
  /// Number of full decode evaluations performed.
  std::size_t evaluations = 0;
};

/// Stateless strategy object: allocate() may be called concurrently on
/// different (model, rng) pairs.
class Allocator {
 public:
  virtual ~Allocator() = default;

  [[nodiscard]] virtual AllocatorResult allocate(const model::SystemModel& model,
                                                 util::Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using AllocatorPtr = std::unique_ptr<Allocator>;

}  // namespace tsce::core
