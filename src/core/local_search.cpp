#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>

#include "core/decode.hpp"

namespace tsce::core {

using analysis::Fitness;
using model::StringId;
using model::SystemModel;

AllocatorResult HillClimb::allocate(const SystemModel& model, util::Rng& rng) const {
  AllocatorResult best;
  bool have_best = false;
  std::size_t evaluations = 0;
  const std::size_t q = model.num_strings();

  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, options_.restarts);
       ++restart) {
    std::vector<StringId> current = identity_order(model);
    rng.shuffle(current);
    DecodeResult current_decoded = decode_order(model, current);
    ++evaluations;

    bool improved = true;
    while (improved &&
           (options_.max_evaluations == 0 || evaluations < options_.max_evaluations)) {
      improved = false;
      for (std::size_t attempt = 0;
           attempt < options_.max_neighbors_per_step && q >= 2; ++attempt) {
        const std::size_t i = rng.bounded(q);
        std::size_t j = rng.bounded(q);
        while (j == i) j = rng.bounded(q);
        std::swap(current[i], current[j]);
        DecodeResult neighbor = decode_order(model, current);
        ++evaluations;
        if (current_decoded.fitness < neighbor.fitness) {
          current_decoded = std::move(neighbor);
          improved = true;
          break;  // first improvement: restart the neighborhood scan
        }
        std::swap(current[i], current[j]);  // undo
        if (options_.max_evaluations != 0 && evaluations >= options_.max_evaluations) {
          break;
        }
      }
    }
    if (!have_best || best.fitness < current_decoded.fitness) {
      best.allocation = std::move(current_decoded.allocation);
      best.fitness = current_decoded.fitness;
      best.order = current;
      have_best = true;
    }
    if (options_.max_evaluations != 0 && evaluations >= options_.max_evaluations) {
      break;
    }
  }
  best.evaluations = evaluations;
  return best;
}

namespace {
/// Flattens the lexicographic metric into one scalar for annealing: worth
/// dominates because slackness lies in [0, 1].
double energy(const Fitness& f) noexcept {
  return static_cast<double>(f.total_worth) + f.slackness;
}
}  // namespace

AllocatorResult SimulatedAnnealing::allocate(const SystemModel& model,
                                             util::Rng& rng) const {
  const std::size_t q = model.num_strings();
  std::vector<StringId> current = identity_order(model);
  rng.shuffle(current);
  DecodeResult current_decoded = decode_order(model, current);

  AllocatorResult best;
  best.allocation = current_decoded.allocation;
  best.fitness = current_decoded.fitness;
  best.order = current;
  best.evaluations = 1;

  double temperature = options_.initial_temperature > 0.0
                           ? options_.initial_temperature
                           : 0.1 * std::max(1, model.total_worth_available());
  for (std::size_t iter = 0; iter < options_.iterations && q >= 2; ++iter) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(current[i], current[j]);
    DecodeResult neighbor = decode_order(model, current);
    ++best.evaluations;

    const double delta = energy(neighbor.fitness) - energy(current_decoded.fitness);
    const bool accept =
        delta >= 0.0 || rng.uniform() < std::exp(delta / std::max(temperature, 1e-9));
    if (accept) {
      current_decoded = std::move(neighbor);
      if (best.fitness < current_decoded.fitness) {
        best.allocation = current_decoded.allocation;
        best.fitness = current_decoded.fitness;
        best.order = current;
      }
    } else {
      std::swap(current[i], current[j]);  // undo
    }
    temperature *= options_.cooling;
  }
  return best;
}

}  // namespace tsce::core
