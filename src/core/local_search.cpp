#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/decode.hpp"
#include "core/evaluator.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace tsce::core {

using analysis::Fitness;
using model::StringId;
using model::SystemModel;

namespace {

/// One first-improvement climb from \p current (mutated in place to the local
/// optimum).  \p evaluations is the shared decode counter; \p budget is an
/// absolute cap on it (0 = unlimited).  Returns the optimum's outcome.
DecodeOutcome climb(DecodeContext& ctx, std::vector<StringId>& current,
                    util::Rng& rng, const HillClimbOptions& options,
                    std::size_t& evaluations, std::size_t budget) {
  const std::size_t q = current.size();
  DecodeOutcome current_decoded = decode_order_into(ctx, current);
  ++evaluations;

  bool improved = true;
  while (improved && (budget == 0 || evaluations < budget)) {
    improved = false;
    for (std::size_t attempt = 0;
         attempt < options.max_neighbors_per_step && q >= 2; ++attempt) {
      const std::size_t i = rng.bounded(q);
      std::size_t j = rng.bounded(q);
      while (j == i) j = rng.bounded(q);
      std::swap(current[i], current[j]);
      const DecodeOutcome neighbor = decode_order_into(ctx, current);
      ++evaluations;
      if (current_decoded.fitness < neighbor.fitness) {
        current_decoded = neighbor;
        improved = true;
        break;  // first improvement: restart the neighborhood scan
      }
      std::swap(current[i], current[j]);  // undo
      if (budget != 0 && evaluations >= budget) break;
    }
  }
  return current_decoded;
}

}  // namespace

AllocatorResult HillClimb::allocate(const SystemModel& model, util::Rng& rng) const {
  const std::size_t restarts = std::max<std::size_t>(1, options_.restarts);
  Fitness best_fitness{};
  std::vector<StringId> best_order;
  bool have_best = false;
  std::size_t evaluations = 0;
  DecodeContext replay_ctx(model);

  if (options_.threads == 0) {
    // Legacy serial engine: one context across all restarts, the caller's rng
    // driving both the restart shuffles and the neighbor picks, and a global
    // evaluation budget.
    for (std::size_t restart = 0; restart < restarts; ++restart) {
      obs::Span span(obs::names::kSearchRestart,
                     {{"phase", "HillClimb"}, {"restart", std::uint64_t{restart}}});
      std::vector<StringId> current = identity_order(model);
      rng.shuffle(current);
      const std::size_t before = evaluations;
      const DecodeOutcome optimum = climb(replay_ctx, current, rng, options_,
                                          evaluations, options_.max_evaluations);
      span.add("evaluations", static_cast<double>(evaluations - before));
      span.add("worth", static_cast<double>(optimum.fitness.total_worth));
      if (!have_best || best_fitness < optimum.fitness) {
        best_fitness = optimum.fitness;
        best_order = std::move(current);
        have_best = true;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "HillClimb"},
                          {"trial", std::uint64_t{restart}},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
      if (options_.max_evaluations != 0 && evaluations >= options_.max_evaluations) {
        break;
      }
    }
  } else {
    // Deterministic engine (threads >= 1): restarts are independent, so each
    // gets its own worker context, an index-derived rng stream, and an equal
    // slice of the budget; the result is byte-identical at any thread count.
    // Ties across restarts go to the lowest restart index.
    const std::uint64_t base_seed = rng();
    const std::size_t slice =
        options_.max_evaluations == 0
            ? 0
            : std::max<std::size_t>(1, options_.max_evaluations / restarts);
    struct Restart {
      Fitness fitness;
      std::vector<StringId> order;
      std::size_t evaluations = 0;
    };
    std::vector<Restart> outcomes(restarts);
    BatchEvaluator evaluator(model, options_.threads);
    evaluator.for_each(restarts, [&](std::size_t r, DecodeContext& ctx) {
      obs::Span span(obs::names::kSearchRestart,
                     {{"phase", "HillClimb"}, {"restart", std::uint64_t{r}}});
      util::Rng restart_rng = util::Rng::stream(base_seed, r);
      std::vector<StringId> current = identity_order(model);
      restart_rng.shuffle(current);
      const DecodeOutcome optimum =
          climb(ctx, current, restart_rng, options_, outcomes[r].evaluations, slice);
      outcomes[r].fitness = optimum.fitness;
      outcomes[r].order = std::move(current);
      span.add("evaluations", static_cast<double>(outcomes[r].evaluations));
      span.add("worth", static_cast<double>(optimum.fitness.total_worth));
    });
    // The fold is serial and deterministic; improvement events carry the
    // restart index, so post-hoc ordering matches the parallel execution.
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      evaluations += outcomes[r].evaluations;
      if (!have_best || best_fitness < outcomes[r].fitness) {
        best_fitness = outcomes[r].fitness;
        best_order = outcomes[r].order;
        have_best = true;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "HillClimb"},
                          {"trial", std::uint64_t{r}},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
    }
  }

  AllocatorResult best;
  best.fitness = best_fitness;
  best.allocation = replay_ctx.materialize(decode_order_into(replay_ctx, best_order))
                        .allocation;
  best.order = std::move(best_order);
  best.evaluations = evaluations;
  return best;
}

namespace {
/// Flattens the lexicographic metric into one scalar for annealing: worth
/// dominates because slackness lies in [0, 1].
double energy(const Fitness& f) noexcept {
  return static_cast<double>(f.total_worth) + f.slackness;
}
}  // namespace

AllocatorResult SimulatedAnnealing::allocate(const SystemModel& model,
                                             util::Rng& rng) const {
  const std::size_t q = model.num_strings();
  std::vector<StringId> current = identity_order(model);
  rng.shuffle(current);
  DecodeContext ctx(model);
  DecodeOutcome current_decoded = decode_order_into(ctx, current);

  Fitness best_fitness = current_decoded.fitness;
  std::vector<StringId> best_order = current;
  std::size_t evaluations = 1;

  obs::Span span(obs::names::kSearchAnneal, {{"phase", "Annealing"}});
  double temperature = options_.initial_temperature > 0.0
                           ? options_.initial_temperature
                           : 0.1 * std::max(1, model.total_worth_available());
  for (std::size_t iter = 0; iter < options_.iterations && q >= 2; ++iter) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(current[i], current[j]);
    const DecodeOutcome neighbor = decode_order_into(ctx, current);
    ++evaluations;

    const double delta = energy(neighbor.fitness) - energy(current_decoded.fitness);
    const bool accept =
        delta >= 0.0 || rng.uniform() < std::exp(delta / std::max(temperature, 1e-9));
    if (accept) {
      current_decoded = neighbor;
      if (best_fitness < current_decoded.fitness) {
        best_fitness = current_decoded.fitness;
        best_order = current;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "Annealing"},
                          {"iteration", std::uint64_t{iter}},
                          {"temperature", temperature},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
    } else {
      std::swap(current[i], current[j]);  // undo
    }
    temperature *= options_.cooling;
  }
  span.add("evaluations", static_cast<double>(evaluations));
  span.add("worth", static_cast<double>(best_fitness.total_worth));

  AllocatorResult best;
  best.fitness = best_fitness;
  best.allocation =
      ctx.materialize(decode_order_into(ctx, best_order)).allocation;
  best.order = std::move(best_order);
  best.evaluations = evaluations;
  return best;
}

}  // namespace tsce::core
