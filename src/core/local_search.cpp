#include "core/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/decode.hpp"
#include "core/evaluator.hpp"
#include "core/ordered.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace tsce::core {

using analysis::Fitness;
using model::StringId;
using model::SystemModel;

namespace {

/// One first-improvement climb from \p current (mutated in place to the local
/// optimum).  \p evaluations is the shared decode counter; \p budget is an
/// absolute cap on it (0 = unlimited).  Returns the optimum's outcome.
DecodeOutcome climb(DecodeContext& ctx, std::vector<StringId>& current,
                    util::Rng& rng, const HillClimbOptions& options,
                    std::size_t& evaluations, std::size_t budget) {
  const std::size_t q = current.size();
  DecodeOutcome current_decoded = decode_order_into(ctx, current);
  ++evaluations;

  bool improved = true;
  while (improved && (budget == 0 || evaluations < budget)) {
    improved = false;
    for (std::size_t attempt = 0;
         attempt < options.max_neighbors_per_step && q >= 2; ++attempt) {
      const std::size_t i = rng.bounded(q);
      std::size_t j = rng.bounded(q);
      while (j == i) j = rng.bounded(q);
      std::swap(current[i], current[j]);
      const DecodeOutcome neighbor = decode_order_into(ctx, current);
      ++evaluations;
      if (current_decoded.fitness < neighbor.fitness) {
        current_decoded = neighbor;
        improved = true;
        break;  // first improvement: restart the neighborhood scan
      }
      std::swap(current[i], current[j]);  // undo
      if (budget != 0 && evaluations >= budget) break;
    }
  }
  return current_decoded;
}

}  // namespace

AllocatorResult HillClimb::allocate(const SystemModel& model, util::Rng& rng) const {
  const std::size_t restarts = std::max<std::size_t>(1, options_.restarts);
  Fitness best_fitness{};
  std::vector<StringId> best_order;
  bool have_best = false;
  std::size_t evaluations = 0;
  DecodeContext replay_ctx(model);

  if (options_.threads == 0) {
    // Legacy serial engine: one context across all restarts, the caller's rng
    // driving both the restart shuffles and the neighbor picks, and a global
    // evaluation budget.
    for (std::size_t restart = 0; restart < restarts; ++restart) {
      obs::Span span(obs::names::kSearchRestart,
                     {{"phase", "HillClimb"}, {"restart", std::uint64_t{restart}}});
      std::vector<StringId> current = identity_order(model);
      rng.shuffle(current);
      // The shuffle's rng draws are consumed unconditionally so the guided
      // start perturbs only restart 0's start point, not later restarts.
      if (options_.lp_guided_start && restart == 0) {
        current = lp_guided_order(model);
      }
      const std::size_t before = evaluations;
      const DecodeOutcome optimum = climb(replay_ctx, current, rng, options_,
                                          evaluations, options_.max_evaluations);
      span.add("evaluations", static_cast<double>(evaluations - before));
      span.add("worth", static_cast<double>(optimum.fitness.total_worth));
      if (!have_best || best_fitness < optimum.fitness) {
        best_fitness = optimum.fitness;
        best_order = std::move(current);
        have_best = true;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "HillClimb"},
                          {"trial", std::uint64_t{restart}},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
      if (options_.max_evaluations != 0 && evaluations >= options_.max_evaluations) {
        break;
      }
    }
  } else {
    // Deterministic engine (threads >= 1): restarts are independent, so each
    // gets its own worker context, an index-derived rng stream, and an equal
    // slice of the budget; the result is byte-identical at any thread count.
    // Ties across restarts go to the lowest restart index.
    const std::uint64_t base_seed = rng();
    const std::size_t slice =
        options_.max_evaluations == 0
            ? 0
            : std::max<std::size_t>(1, options_.max_evaluations / restarts);
    struct Restart {
      Fitness fitness;
      std::vector<StringId> order;
      std::size_t evaluations = 0;
    };
    std::vector<Restart> outcomes(restarts);
    BatchEvaluator evaluator(model, options_.threads);
    evaluator.for_each(restarts, [&](std::size_t r, DecodeContext& ctx) {
      obs::Span span(obs::names::kSearchRestart,
                     {{"phase", "HillClimb"}, {"restart", std::uint64_t{r}}});
      util::Rng restart_rng = util::Rng::stream(base_seed, r);
      std::vector<StringId> current = identity_order(model);
      restart_rng.shuffle(current);
      if (options_.lp_guided_start && r == 0) {
        current = lp_guided_order(model);
      }
      const DecodeOutcome optimum =
          climb(ctx, current, restart_rng, options_, outcomes[r].evaluations, slice);
      outcomes[r].fitness = optimum.fitness;
      outcomes[r].order = std::move(current);
      span.add("evaluations", static_cast<double>(outcomes[r].evaluations));
      span.add("worth", static_cast<double>(optimum.fitness.total_worth));
    });
    // The fold is serial and deterministic; improvement events carry the
    // restart index, so post-hoc ordering matches the parallel execution.
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      evaluations += outcomes[r].evaluations;
      if (!have_best || best_fitness < outcomes[r].fitness) {
        best_fitness = outcomes[r].fitness;
        best_order = outcomes[r].order;
        have_best = true;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "HillClimb"},
                          {"trial", std::uint64_t{r}},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
    }
  }

  AllocatorResult best;
  best.fitness = best_fitness;
  best.allocation = replay_ctx.materialize(decode_order_into(replay_ctx, best_order))
                        .allocation;
  best.order = std::move(best_order);
  best.evaluations = evaluations;
  return best;
}

namespace {
/// Flattens the lexicographic metric into one scalar for annealing: worth
/// dominates because slackness lies in [0, 1].
double energy(const Fitness& f) noexcept {
  return static_cast<double>(f.total_worth) + f.slackness;
}

/// One chain of the tempering ladder: its own order, rng stream, prefix-reuse
/// decode context, temperature, and per-replica incumbent.  Everything a
/// sweep task touches lives here, so replicas never share mutable state.
struct TemperReplica {
  std::vector<StringId> order;
  Fitness fitness{};  ///< fitness of the current order
  Fitness best_fitness{};
  std::vector<StringId> best_order;
  double temperature = 0.0;
  util::Rng rng{0};
  std::unique_ptr<DecodeContext> ctx;
  std::size_t remaining = 0;  ///< Metropolis steps left in this replica's slice
  std::size_t evaluations = 0;
};

/// Runs up to \p steps Metropolis steps on one replica — the serial engine's
/// acceptance rule at the replica's own (cooling) temperature, driven
/// entirely by the replica's private rng stream.
void temper_steps(TemperReplica& rep, const AnnealingOptions& options,
                  std::size_t steps) {
  const std::size_t q = rep.order.size();
  if (q < 2) {
    rep.remaining = 0;
    return;
  }
  for (std::size_t s = 0; s < steps && rep.remaining > 0; ++s, --rep.remaining) {
    const std::size_t i = rep.rng.bounded(q);
    std::size_t j = rep.rng.bounded(q);
    while (j == i) j = rep.rng.bounded(q);
    std::swap(rep.order[i], rep.order[j]);
    const DecodeOutcome neighbor = decode_order_into(*rep.ctx, rep.order);
    ++rep.evaluations;
    const double delta = energy(neighbor.fitness) - energy(rep.fitness);
    const bool accept =
        delta >= 0.0 ||
        rep.rng.uniform() < std::exp(delta / std::max(rep.temperature, 1e-9));
    if (accept) {
      rep.fitness = neighbor.fitness;
      if (rep.best_fitness < rep.fitness) {
        rep.best_fitness = rep.fitness;
        rep.best_order = rep.order;
      }
    } else {
      std::swap(rep.order[i], rep.order[j]);  // undo
    }
    rep.temperature *= options.cooling;
  }
}

/// Deterministic parallel tempering (AnnealingOptions::threads >= 1).
///
/// N replicas on a geometric temperature ladder step in fixed-size sweeps;
/// at each sweep barrier adjacent pairs (alternating parity per sweep) may
/// exchange their states with the Metropolis-Hastings swap rule, the swap
/// draw coming from a dedicated exchange stream.  All per-replica randomness
/// is index-derived and the barrier fold walks replicas in index order, so
/// the result is byte-identical at any worker count.
AllocatorResult temper_allocate(const SystemModel& model, util::Rng& rng,
                                const AnnealingOptions& options) {
  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  const double t0 = options.initial_temperature > 0.0
                        ? options.initial_temperature
                        : 0.1 * std::max(1, model.total_worth_available());
  const std::uint64_t base_seed = rng();
  // Streams 0..replicas-1 drive the replicas; stream `replicas` is reserved
  // for the exchange decisions so it can never collide with a replica's.
  util::Rng exchange_rng = util::Rng::stream(base_seed, replicas);

  obs::Span span(obs::names::kSearchAnneal,
                 {{"phase", "Annealing"},
                  {"replicas", std::uint64_t{replicas}},
                  {"threads", std::uint64_t{options.threads}}});
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& sweeps_total = registry.counter(obs::names::kTemperSweeps);
  obs::Counter& exchanges_total = registry.counter(obs::names::kTemperExchanges);
  obs::Counter& swaps_total = registry.counter(obs::names::kTemperSwaps);

  std::vector<TemperReplica> reps(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    TemperReplica& rep = reps[r];
    rep.rng = util::Rng::stream(base_seed, r);
    rep.ctx = std::make_unique<DecodeContext>(model);
    // Replicas fan out from one byte-identical state image (a memcpy-cheap
    // clone of replica 0) before shuffling their own start orders.
    if (r > 0) rep.ctx->clone_state_from(*reps[0].ctx);
    rep.order = identity_order(model);
    rep.rng.shuffle(rep.order);
    rep.temperature =
        t0 * std::pow(options.ladder_ratio, static_cast<double>(r));
    rep.remaining = options.iterations / replicas +
                    (r < options.iterations % replicas ? 1 : 0);
  }

  const std::size_t workers = std::min(options.threads, replicas);
  std::unique_ptr<util::ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<util::ThreadPool>(workers);
  auto run_parallel = [&](auto&& fn) {
    if (pool) {
      pool->for_each_index(replicas, fn);
    } else {
      for (std::size_t r = 0; r < replicas; ++r) fn(r);
    }
  };

  Fitness best_fitness{};
  std::vector<StringId> best_order;
  bool have_best = false;
  std::size_t sweep = 0;
  // Fold the per-replica incumbents at a barrier; replica index breaks ties,
  // so post-hoc ordering matches any parallel execution.
  auto fold = [&] {
    for (std::size_t r = 0; r < replicas; ++r) {
      if (reps[r].best_order.empty()) continue;
      if (!have_best || best_fitness < reps[r].best_fitness) {
        best_fitness = reps[r].best_fitness;
        best_order = reps[r].best_order;
        have_best = true;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "Annealing"},
                          {"trial", std::uint64_t{r}},
                          {"iteration", std::uint64_t{sweep}},
                          {"temperature", reps[r].temperature},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
    }
  };

  // Initial decode of every replica's shuffled start order (counted like the
  // serial engine's first evaluation), in parallel.
  run_parallel([&](std::size_t r) {
    TemperReplica& rep = reps[r];
    rep.fitness = decode_order_into(*rep.ctx, rep.order).fitness;
    ++rep.evaluations;
    rep.best_fitness = rep.fitness;
    rep.best_order = rep.order;
  });
  fold();

  auto pending = [&] {
    for (const TemperReplica& rep : reps) {
      if (rep.remaining > 0) return true;
    }
    return false;
  };
  while (pending()) {
    obs::Span sweep_span(
        obs::names::kSearchTemperSweep,
        {{"phase", "Annealing"}, {"sweep", std::uint64_t{sweep}}});
    run_parallel([&](std::size_t r) {
      TemperReplica& rep = reps[r];
      if (rep.remaining == 0) return;
      obs::Span rep_span(obs::names::kSearchTemperReplica,
                         {{"phase", "Annealing"},
                          {"replica", std::uint64_t{r}},
                          {"sweep", std::uint64_t{sweep}}});
      const std::size_t steps = options.exchange_interval == 0
                                    ? rep.remaining
                                    : std::min(options.exchange_interval,
                                               rep.remaining);
      temper_steps(rep, options, steps);
      rep_span.add("temperature", rep.temperature);
      rep_span.add("worth", static_cast<double>(rep.fitness.total_worth));
    });
    sweeps_total.add(1);

    if (options.exchange_interval != 0 && replicas >= 2) {
      // Adjacent-pair exchange with alternating parity: pairs (0,1),(2,3),..
      // on even sweeps, (1,2),(3,4),.. on odd ones.  The swap draw is always
      // consumed so the exchange stream's position never depends on the
      // energies.
      for (std::size_t i = sweep % 2; i + 1 < replicas; i += 2) {
        TemperReplica& cold = reps[i];
        TemperReplica& hot = reps[i + 1];
        const double u = exchange_rng.uniform();
        const double beta_cold = 1.0 / std::max(cold.temperature, 1e-9);
        const double beta_hot = 1.0 / std::max(hot.temperature, 1e-9);
        // Maximization form of the tempering swap rule: always swap when the
        // hotter replica holds the better state, otherwise with probability
        // exp((beta_cold - beta_hot) * (E_hot - E_cold)) < 1.
        const double delta =
            (beta_cold - beta_hot) * (energy(hot.fitness) - energy(cold.fitness));
        const bool swapped = delta >= 0.0 || u < std::exp(delta);
        exchanges_total.add(1);
        if (swapped) {
          std::swap(cold.order, hot.order);
          std::swap(cold.fitness, hot.fitness);
          swaps_total.add(1);
        }
        obs::trace_event(obs::names::kSearchTemperExchange,
                         {{"phase", "Annealing"},
                          {"sweep", std::uint64_t{sweep}},
                          {"pair", std::uint64_t{i}},
                          {"accepted", swapped ? 1 : 0}});
      }
    }
    fold();
    ++sweep;
  }

  std::size_t evaluations = 0;
  for (const TemperReplica& rep : reps) evaluations += rep.evaluations;
  span.add("sweeps", static_cast<double>(sweep));
  span.add("evaluations", static_cast<double>(evaluations));
  span.add("worth", static_cast<double>(best_fitness.total_worth));

  AllocatorResult best;
  best.fitness = best_fitness;
  DecodeContext replay_ctx(model);
  best.allocation =
      replay_ctx.materialize(decode_order_into(replay_ctx, best_order)).allocation;
  best.order = std::move(best_order);
  best.evaluations = evaluations;
  return best;
}
}  // namespace

AllocatorResult SimulatedAnnealing::allocate(const SystemModel& model,
                                             util::Rng& rng) const {
  if (options_.threads >= 1) return temper_allocate(model, rng, options_);
  // Legacy serial engine (threads == 0): one chain driven off the caller's
  // rng, byte-identical to the pre-tempering implementation.
  const std::size_t q = model.num_strings();
  std::vector<StringId> current = identity_order(model);
  rng.shuffle(current);
  DecodeContext ctx(model);
  DecodeOutcome current_decoded = decode_order_into(ctx, current);

  Fitness best_fitness = current_decoded.fitness;
  std::vector<StringId> best_order = current;
  std::size_t evaluations = 1;

  obs::Span span(obs::names::kSearchAnneal, {{"phase", "Annealing"}});
  double temperature = options_.initial_temperature > 0.0
                           ? options_.initial_temperature
                           : 0.1 * std::max(1, model.total_worth_available());
  for (std::size_t iter = 0; iter < options_.iterations && q >= 2; ++iter) {
    const std::size_t i = rng.bounded(q);
    std::size_t j = rng.bounded(q);
    while (j == i) j = rng.bounded(q);
    std::swap(current[i], current[j]);
    const DecodeOutcome neighbor = decode_order_into(ctx, current);
    ++evaluations;

    const double delta = energy(neighbor.fitness) - energy(current_decoded.fitness);
    const bool accept =
        delta >= 0.0 || rng.uniform() < std::exp(delta / std::max(temperature, 1e-9));
    if (accept) {
      current_decoded = neighbor;
      if (best_fitness < current_decoded.fitness) {
        best_fitness = current_decoded.fitness;
        best_order = current;
        obs::trace_event(obs::names::kSearchImprove,
                         {{"phase", "Annealing"},
                          {"iteration", std::uint64_t{iter}},
                          {"temperature", temperature},
                          {"worth", best_fitness.total_worth},
                          {"slackness", best_fitness.slackness}});
      }
    } else {
      std::swap(current[i], current[j]);  // undo
    }
    temperature *= options_.cooling;
  }
  span.add("evaluations", static_cast<double>(evaluations));
  span.add("worth", static_cast<double>(best_fitness.total_worth));

  AllocatorResult best;
  best.fitness = best_fitness;
  best.allocation =
      ctx.materialize(decode_order_into(ctx, best_order)).allocation;
  best.order = std::move(best_order);
  best.evaluations = evaluations;
  return best;
}

}  // namespace tsce::core
