/// \file local_search.hpp
/// Permutation-space search baselines beyond GENITOR: steepest-descent hill
/// climbing with random restarts and simulated annealing.  Both use the same
/// swap neighborhood as the PSG mutation operator and the same IMR decode,
/// so differences isolate the search strategy itself (ablation bench E11).

#pragma once

#include <cstddef>

#include "core/allocator.hpp"

namespace tsce::core {

struct HillClimbOptions {
  /// Random restarts; the best local optimum wins.
  std::size_t restarts = 4;
  /// Neighbor evaluations per climb before giving up on an improvement.
  std::size_t max_neighbors_per_step = 64;
  /// Total decode-evaluation budget across all restarts (0 = unlimited).
  /// The deterministic engine (threads >= 1) splits the budget evenly across
  /// restarts so results do not depend on the execution schedule.
  std::size_t max_evaluations = 0;
  /// Engine selector.  0 (default) is the legacy serial engine: restarts are
  /// driven off the caller's rng stream and max_evaluations is one global
  /// budget.  Any value >= 1 selects the deterministic engine: each restart
  /// derives its rng stream from its index (util::Rng::stream) and gets an
  /// equal budget slice, so the result is byte-identical at 1, 2, or N
  /// threads (1 runs inline with no pool).
  std::size_t threads = 0;
  /// When set, restart 0 climbs from the LP-guided ordering
  /// (lp_guided_order: strings ranked by the fractional relaxation's deployed
  /// fractions) instead of a random shuffle; later restarts still shuffle.
  /// The rng draw the shuffle would have consumed is still consumed, so
  /// toggling this changes only restart 0's start point, not the random
  /// starts of the other restarts.
  bool lp_guided_start = false;
};

/// First-improvement hill climbing over string orderings with the swap
/// neighborhood.
class HillClimb final : public Allocator {
 public:
  explicit HillClimb(HillClimbOptions options = {}) : options_(options) {}

  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "HillClimb"; }

 private:
  HillClimbOptions options_;
};

struct AnnealingOptions {
  /// Total Metropolis steps.  The serial engine runs them as one chain; the
  /// tempering engine (threads >= 1) splits them evenly across the replicas,
  /// so the decode-evaluation budget is the same at any replica count.
  std::size_t iterations = 2000;
  /// Initial temperature in worth units; 0 picks 10% of available worth.
  double initial_temperature = 0.0;
  /// Geometric cooling rate per iteration.
  double cooling = 0.998;
  /// Tempering engine only: replicas on the geometric temperature ladder
  /// (replica r starts at initial_temperature * ladder_ratio^r).  0 and 1
  /// both run a single chain (no exchanges).
  std::size_t replicas = 4;
  /// Tempering engine only: Metropolis steps per replica between exchange
  /// barriers.  0 disables exchanges (independent chains, best-of fold).
  std::size_t exchange_interval = 64;
  /// Tempering engine only: temperature ratio between adjacent replicas.
  double ladder_ratio = 1.7;
  /// Engine selector, mirroring HillClimbOptions::threads.  0 (default) is
  /// the legacy serial single-chain engine driven off the caller's rng.  Any
  /// value >= 1 selects the deterministic parallel tempering engine: replica
  /// r derives its rng stream from its index (util::Rng::stream) and owns a
  /// prefix-reuse DecodeContext; replicas step in fixed-size sweeps, exchange
  /// at deterministic barriers from a dedicated exchange stream, and the fold
  /// is by replica index — so the result is byte-identical at 1, 2, or N
  /// threads (1 runs inline with no pool; workers cap at the replica count).
  std::size_t threads = 0;
};

/// Simulated annealing over string orderings.  The acceptance energy is the
/// lexicographic fitness flattened to worth + slackness (slackness in [0,1]
/// can never outweigh a 1-unit worth difference).  With threads >= 1 the
/// engine is deterministic parallel tempering (see AnnealingOptions::threads
/// and DESIGN.md §10).
class SimulatedAnnealing final : public Allocator {
 public:
  explicit SimulatedAnnealing(AnnealingOptions options = {}) : options_(options) {}

  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Annealing"; }

 private:
  AnnealingOptions options_;
};

}  // namespace tsce::core
