#include "core/ordered.hpp"

#include <algorithm>

#include "analysis/tightness.hpp"
#include "core/decode.hpp"
#include "lp/upper_bound.hpp"

namespace tsce::core {

using model::StringId;
using model::SystemModel;

std::vector<StringId> mwf_order(const SystemModel& model) {
  std::vector<StringId> order = identity_order(model);
  std::stable_sort(order.begin(), order.end(), [&](StringId a, StringId b) {
    return model.strings[static_cast<std::size_t>(a)].worth_factor() >
           model.strings[static_cast<std::size_t>(b)].worth_factor();
  });
  return order;
}

std::vector<StringId> tf_order(const SystemModel& model) {
  std::vector<StringId> order = identity_order(model);
  std::vector<double> tightness(model.num_strings());
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    tightness[k] = analysis::approx_tightness(model, static_cast<StringId>(k));
  }
  std::stable_sort(order.begin(), order.end(), [&](StringId a, StringId b) {
    return tightness[static_cast<std::size_t>(a)] >
           tightness[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<StringId> lp_guided_order(const SystemModel& model) {
  const lp::UpperBoundResult ub = lp::upper_bound_worth(model);
  if (ub.status != lp::SolveStatus::kOptimal ||
      ub.string_fractions.size() != model.num_strings()) {
    return mwf_order(model);
  }
  std::vector<StringId> order = identity_order(model);
  std::stable_sort(order.begin(), order.end(), [&](StringId a, StringId b) {
    const double fa = ub.string_fractions[static_cast<std::size_t>(a)];
    const double fb = ub.string_fractions[static_cast<std::size_t>(b)];
    if (fa != fb) return fa > fb;
    return model.strings[static_cast<std::size_t>(a)].worth_factor() >
           model.strings[static_cast<std::size_t>(b)].worth_factor();
  });
  return order;
}

namespace {
AllocatorResult decode_with(const SystemModel& model, std::vector<StringId> order) {
  DecodeResult decoded = decode_order(model, order);
  AllocatorResult result;
  result.allocation = std::move(decoded.allocation);
  result.fitness = decoded.fitness;
  result.order = std::move(order);
  result.evaluations = 1;
  return result;
}
}  // namespace

AllocatorResult MostWorthFirst::allocate(const SystemModel& model,
                                         util::Rng& /*rng*/) const {
  return decode_with(model, mwf_order(model));
}

AllocatorResult TightestFirst::allocate(const SystemModel& model,
                                        util::Rng& /*rng*/) const {
  return decode_with(model, tf_order(model));
}

}  // namespace tsce::core
