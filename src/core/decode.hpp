/// \file decode.hpp
/// Projection from the permutation space into the solution space (paper §5):
/// strings are handed to the IMR in a given order; after each string the
/// two-stage feasibility analysis runs on the intermediate mapping, and the
/// first failure terminates the process (partial allocation), leaving the
/// previous feasible mapping as the result.
///
/// The evaluation engine: search allocators decode millions of neighboring
/// permutations, so DecodeContext keeps one long-lived AllocationSession and
/// diffs each new order against the commit stack of the previous one.  Only
/// the divergent suffix is re-decoded; the longest common prefix is reused
/// verbatim.  Rewinding is a checkpoint restore (DESIGN.md §12): the context
/// keeps a per-depth SessionSnapshot stack, so dropping a suffix is a few
/// memcpys of flat state instead of replaying removals.  Observable state
/// after a restore is bit-identical to an exact-rollback rewind and to a
/// from-scratch decode of the shared prefix (the session's flat layout makes
/// the snapshot a byte image), so incremental results equal full re-decodes
/// exactly.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/session.hpp"
#include "core/imr.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::core {

struct DecodeResult {
  model::Allocation allocation;
  analysis::Fitness fitness;
  /// Number of strings deployed before the process stopped.
  std::size_t strings_deployed = 0;
  /// The string whose commit failed, or kInvalidId when every string fit.
  model::StringId first_failed = model::kInvalidId;
};

/// Allocation-free view of one decode: everything DecodeResult carries except
/// the allocation itself (readable from the context that produced it).
struct DecodeOutcome {
  analysis::Fitness fitness;
  std::size_t strings_deployed = 0;
  model::StringId first_failed = model::kInvalidId;
  /// Strings reused from the committed prefix of the previous decode.
  std::size_t prefix_reused = 0;
};

/// Reusable decoding state: a long-lived AllocationSession, the stack of
/// committed strings, and one SessionSnapshot per depth (checkpoints_[d] is
/// the session state with exactly the first d committed strings deployed).
/// A context is single-threaded; parallel evaluation uses one context per
/// worker (see BatchEvaluator in evaluator.hpp).
class DecodeContext {
 public:
  explicit DecodeContext(const model::SystemModel& model);
  /// Folds the lifetime counters into the process-wide obs::MetricsRegistry
  /// ("decode.calls" etc.) so the hot loop never touches shared state.
  ~DecodeContext();

  [[nodiscard]] const model::SystemModel& system() const noexcept {
    return session_.system();
  }

  /// Incremental primitive: IMR-maps string k onto the current utilization
  /// state and attempts the commit.  On success k joins the commit stack and
  /// the new depth is checkpointed.  The exact enumerator drives its
  /// depth-first search with these.
  bool try_push(model::StringId k);
  /// Uncommits the most recently pushed string (checkpoint restore).
  void pop();
  /// Rewinds until only \p prefix_len strings remain committed: restores the
  /// checkpoint taken when the prefix was first decoded — O(state bytes),
  /// independent of suffix length.
  void rewind_to(std::size_t prefix_len);

  /// Clones another context's decode state (session, commit stack, and the
  /// live checkpoints) into this one, reusing this context's buffers —
  /// O(state bytes) memcpys, allocation-free in steady state.  Both contexts
  /// must be built from the same SystemModel.  Replica-based engines
  /// (tempering, BatchEvaluator) use this to fan a decoded prototype out to
  /// workers instead of re-decoding per replica.
  void clone_state_from(const DecodeContext& other);
  /// Bytes one snapshot/clone copies (see AllocationSession::state_bytes).
  [[nodiscard]] std::size_t state_bytes() const noexcept {
    return session_.state_bytes();
  }

  /// Committed strings, in commit order.
  [[nodiscard]] std::span<const model::StringId> committed() const noexcept {
    return committed_;
  }
  [[nodiscard]] std::size_t depth() const noexcept { return committed_.size(); }

  [[nodiscard]] analysis::Fitness fitness() const noexcept {
    return session_.fitness();
  }
  [[nodiscard]] const model::Allocation& allocation() const noexcept {
    return session_.allocation();
  }
  [[nodiscard]] const analysis::UtilizationState& util() const noexcept {
    return session_.util();
  }

  /// Copies the current session state into a full DecodeResult using the
  /// outcome of the decode that produced it.
  [[nodiscard]] DecodeResult materialize(const DecodeOutcome& outcome) const;

  /// Lifetime counters (for benchmarks and engine introspection).  Thin
  /// shims over the context-local tallies that back the registry metrics;
  /// process-wide totals live in obs::MetricsRegistry.
  [[nodiscard]] std::size_t decodes() const noexcept { return decodes_; }
  [[nodiscard]] std::size_t commits_attempted() const noexcept {
    return commits_attempted_;
  }
  [[nodiscard]] std::size_t strings_reused() const noexcept { return reused_; }

 private:
  friend DecodeOutcome decode_order_into(DecodeContext& ctx,
                                         std::span<const model::StringId> order);

  analysis::AllocationSession session_;
  std::vector<model::StringId> committed_;
  /// checkpoints_[d] = session state at depth d, valid for d in [0, depth()].
  /// Snapshots reuse their buffers, so steady-state pushes don't allocate.
  std::vector<analysis::SessionSnapshot> checkpoints_;
  ImrScratch imr_scratch_;
  std::vector<model::MachineId> assignment_scratch_;
  std::size_t decodes_ = 0;
  std::size_t commits_attempted_ = 0;
  std::size_t reused_ = 0;
};

/// Decodes \p order into \p ctx, reusing the longest common prefix with the
/// context's committed stack: O(divergent suffix) instead of O(order length).
/// The result is bit-identical to decode_order on a fresh session.
DecodeOutcome decode_order_into(DecodeContext& ctx,
                                std::span<const model::StringId> order);

/// Decodes \p order (a permutation of string ids, possibly a prefix) on a
/// fresh session.  Thin wrapper over DecodeContext; search loops should hold
/// a context and call decode_order_into instead.
[[nodiscard]] DecodeResult decode_order(const model::SystemModel& model,
                                        std::span<const model::StringId> order);

/// Identity order 0..Q-1.
[[nodiscard]] std::vector<model::StringId> identity_order(
    const model::SystemModel& model);

}  // namespace tsce::core
