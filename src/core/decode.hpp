/// \file decode.hpp
/// Projection from the permutation space into the solution space (paper §5):
/// strings are handed to the IMR in a given order; after each string the
/// two-stage feasibility analysis runs on the intermediate mapping, and the
/// first failure terminates the process (partial allocation), leaving the
/// previous feasible mapping as the result.

#pragma once

#include <span>
#include <vector>

#include "analysis/metrics.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::core {

struct DecodeResult {
  model::Allocation allocation;
  analysis::Fitness fitness;
  /// Number of strings deployed before the process stopped.
  std::size_t strings_deployed = 0;
  /// The string whose commit failed, or -1 when every string fit.
  model::StringId first_failed = -1;
};

/// Decodes \p order (a permutation of string ids, possibly a prefix).
[[nodiscard]] DecodeResult decode_order(const model::SystemModel& model,
                                        std::span<const model::StringId> order);

/// Identity order 0..Q-1.
[[nodiscard]] std::vector<model::StringId> identity_order(
    const model::SystemModel& model);

}  // namespace tsce::core
