#include "core/class_based.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "core/decode.hpp"
#include "core/evaluator.hpp"
#include "genitor/genitor.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace tsce::core {

using model::StringId;
using model::SystemModel;
using model::Worth;

namespace {

/// GENITOR problem over orderings of one worth class, evaluated by decoding
/// the frozen base order followed by the class ordering.  Every candidate
/// shares the frozen base as a prefix, so the context-based decode reuses it
/// across the whole search instead of re-deploying it per evaluation.
/// Satisfies genitor::BatchProblem: evaluate_batch() fans candidate sets
/// (the initial population) out across the BatchEvaluator's workers, with
/// byte-identical results at any eval_threads count.
class ClassOrderProblem {
 public:
  using Chromosome = std::vector<StringId>;
  using Fitness = analysis::Fitness;

  ClassOrderProblem(const SystemModel& model, const std::vector<StringId>& base,
                    std::vector<StringId> members, std::size_t eval_threads)
      : base_(&base), members_(std::move(members)),
        evaluator_(model, eval_threads) {}

  [[nodiscard]] Fitness evaluate(const Chromosome& order) const {
    full_.assign(base_->begin(), base_->end());
    full_.insert(full_.end(), order.begin(), order.end());
    return decode_order_into(evaluator_.context(0), full_).fitness;
  }

  [[nodiscard]] std::vector<Fitness> evaluate_batch(
      std::span<const Chromosome> batch) const {
    std::vector<Chromosome> full_orders(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      full_orders[i].reserve(base_->size() + batch[i].size());
      full_orders[i].assign(base_->begin(), base_->end());
      full_orders[i].insert(full_orders[i].end(), batch[i].begin(),
                            batch[i].end());
    }
    return evaluator_.evaluate_fitness(full_orders);
  }

  [[nodiscard]] std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                                            const Chromosome& b,
                                                            util::Rng& rng) const {
    if (a.size() < 2) return {a, b};
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(a.size()) - 1));
    return {PermutationProblem::reorder_top(a, b, cut),
            PermutationProblem::reorder_top(b, a, cut)};
  }

  [[nodiscard]] Chromosome mutate(const Chromosome& c, util::Rng& rng) const {
    Chromosome child = c;
    if (child.size() < 2) return child;
    const std::size_t i = rng.bounded(child.size());
    std::size_t j = rng.bounded(child.size());
    while (j == i) j = rng.bounded(child.size());
    std::swap(child[i], child[j]);
    return child;
  }

  [[nodiscard]] Chromosome random_chromosome(util::Rng& rng) const {
    Chromosome c = members_;
    rng.shuffle(c);
    return c;
  }

 private:
  const std::vector<StringId>* base_;
  std::vector<StringId> members_;
  mutable BatchEvaluator evaluator_;
  mutable std::vector<StringId> full_;
};

}  // namespace

AllocatorResult ClassBasedAllocator::allocate(const SystemModel& model,
                                              util::Rng& rng) const {
  static constexpr std::array<Worth, 3> kClassOrder = {Worth::kHigh, Worth::kMedium,
                                                       Worth::kLow};
  std::vector<StringId> committed;  // deployed strings of frozen classes
  std::size_t evaluations = 0;

  std::size_t class_index = 0;
  for (const Worth worth_class : kClassOrder) {
    std::vector<StringId> members;
    for (std::size_t k = 0; k < model.num_strings(); ++k) {
      if (model.strings[k].worth == worth_class) {
        members.push_back(static_cast<StringId>(k));
      }
    }
    if (members.empty()) continue;
    obs::Span span(obs::names::kSearchClass,
                   {{"phase", "ClassBased"},
                    {"class", std::uint64_t{class_index++}},
                    {"members", std::uint64_t{members.size()}}});

    std::vector<StringId> best_class_order;
    if (members.size() == 1) {
      best_class_order = members;
      ++evaluations;
    } else {
      const ClassOrderProblem problem(model, committed, members,
                                      options_.eval_threads);
      genitor::Config config = options_.ga;
      config.population_size = std::min<std::size_t>(
          config.population_size, std::max<std::size_t>(4, members.size() * 4));
      genitor::Genitor<ClassOrderProblem> ga(problem, config);
      analysis::Fitness best_fitness{};
      bool have_best = false;
      const std::size_t trace_class = class_index - 1;
      for (std::size_t trial = 0; trial < std::max<std::size_t>(1, options_.trials);
           ++trial) {
        util::Rng trial_rng = rng.spawn();
        auto ga_result = ga.run(
            trial_rng, {},
            [&](std::size_t iteration, const analysis::Fitness& elite) {
              obs::trace_event(obs::names::kSearchImprove,
                               {{"phase", "ClassBased"},
                                {"trial", std::uint64_t{trace_class}},
                                {"iteration", std::uint64_t{iteration}},
                                {"worth", elite.total_worth},
                                {"slackness", elite.slackness}});
            });
        evaluations += ga_result.evaluations;
        if (!have_best || best_fitness < ga_result.best_fitness) {
          best_fitness = ga_result.best_fitness;
          best_class_order = std::move(ga_result.best);
          have_best = true;
        }
      }
    }

    // Freeze the deployed prefix of the class: strings the decode rejected
    // are dropped (the class scheme never revisits them).
    std::vector<StringId> full = committed;
    full.insert(full.end(), best_class_order.begin(), best_class_order.end());
    const DecodeResult decoded = decode_order(model, full);
    for (const StringId k : best_class_order) {
      if (decoded.allocation.deployed(k)) committed.push_back(k);
    }
  }

  DecodeResult final_decode = decode_order(model, committed);
  AllocatorResult result;
  result.allocation = std::move(final_decode.allocation);
  result.fitness = final_decode.fitness;
  result.order = std::move(committed);
  result.evaluations = evaluations + 1;
  return result;
}

}  // namespace tsce::core
