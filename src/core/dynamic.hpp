/// \file dynamic.hpp
/// Dynamic reallocation after an unpredictable workload change (paper §1:
/// "dynamic mapping approaches may be needed to reallocate resources during
/// execution").
///
/// Given the updated system model (e.g. nominal times grown beyond what the
/// initial allocation's slack absorbs) and the currently running allocation,
/// the re-mapper repairs QoS with minimal disturbance:
///
///   1. keep every string whose existing mapping is still feasible,
///   2. re-map the violating strings one at a time with the IMR (most worth
///      first), migrating only their applications,
///   3. drop strings (lowest worth first) only when no mapping fits, then
///      retry the dropped ones once in case the drops freed capacity.
///
/// Migration count — the number of applications whose machine changed — is
/// the disturbance metric (each migration is a process restart on a ship).

#pragma once

#include <vector>

#include "analysis/priority.hpp"
#include "core/allocator.hpp"

namespace tsce::core {

struct ReallocationOptions {
  analysis::PriorityRule rule = analysis::PriorityRule::kRelativeTightness;
  /// Reserved (kept for ABI stability of callers); reallocation never retries
  /// dropped strings because a failed commit consumes no capacity and the
  /// committed load only grows — a retry faces a strictly harder system.
  bool retry_dropped = true;
};

struct ReallocationResult {
  model::Allocation allocation;
  analysis::Fitness fitness;
  /// Strings whose mapping changed (same deployment, different machines).
  std::vector<model::StringId> remapped;
  /// Strings left undeployed because no feasible mapping existed.
  std::vector<model::StringId> dropped;
  /// Applications whose machine changed relative to \p current.
  std::size_t migrations = 0;
};

/// Repairs \p current against \p updated_model.  \p current may be any
/// allocation shaped like the model (typically the initial static mapping).
[[nodiscard]] ReallocationResult reallocate(const model::SystemModel& updated_model,
                                            const model::Allocation& current,
                                            ReallocationOptions options = {});

}  // namespace tsce::core
