/// \file class_based.hpp
/// The alternate worth scheme sketched in §4: when high-worth strings are
/// worth more than *any* number of lower-worth strings, they form a special
/// class that is allocated first; only then are the lower classes considered
/// (the scheme of Kim et al. [25], outside the paper's main requirements but
/// implemented here as an extension).
///
/// ClassBasedAllocator partitions the strings into worth classes (high=100,
/// medium=10, low=1), runs an inner permutation search *within* each class in
/// descending class order, and freezes each class's deployment before moving
/// on.  Compared with the flat PSG, this guarantees class-priority at the
/// cost of global ordering freedom (ablation bench E12).

#pragma once

#include <memory>

#include "core/allocator.hpp"
#include "core/psg.hpp"

namespace tsce::core {

struct ClassBasedOptions {
  /// Budget of the inner per-class GENITOR search.
  genitor::Config ga{.population_size = 40,
                     .bias = 1.6,
                     .max_iterations = 200,
                     .stagnation_limit = 100};
  std::size_t trials = 1;
  /// Worker threads for batched candidate evaluation inside each per-class
  /// GENITOR search (the initial population fan-out), mirroring
  /// PsgOptions::eval_threads.  1 (default) runs inline with no pool; results
  /// are byte-identical at any thread count (BatchEvaluator contract).
  std::size_t eval_threads = 1;
};

class ClassBasedAllocator final : public Allocator {
 public:
  explicit ClassBasedAllocator(ClassBasedOptions options = {}) : options_(options) {}

  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "ClassBased"; }

 private:
  ClassBasedOptions options_;
};

}  // namespace tsce::core
