#include "core/decode.hpp"

#include <numeric>

#include "analysis/session.hpp"
#include "core/imr.hpp"

namespace tsce::core {

using model::StringId;
using model::SystemModel;

DecodeResult decode_order(const SystemModel& model,
                          std::span<const StringId> order) {
  analysis::AllocationSession session(model);
  DecodeResult result;
  result.first_failed = -1;
  for (const StringId k : order) {
    const auto assignment = imr_map_string(model, session.util(), k);
    if (!session.try_commit(k, assignment)) {
      result.first_failed = k;
      break;
    }
    ++result.strings_deployed;
  }
  result.fitness = session.fitness();
  result.allocation = session.allocation();
  return result;
}

std::vector<StringId> identity_order(const SystemModel& model) {
  std::vector<StringId> order(model.num_strings());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace tsce::core
