#include "core/decode.hpp"

#include <cassert>
#include <numeric>

#include "core/imr.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/hot.hpp"

namespace tsce::core {

using model::StringId;
using model::SystemModel;

namespace {

/// Registry handles resolved once per process; contexts fold their local
/// tallies into these on destruction (the hot loop stays untouched).
struct DecodeMetrics {
  obs::Counter& calls;
  obs::Counter& commits_attempted;
  obs::Counter& strings_reused;
  obs::Histogram& prefix_reuse_len;
  obs::Histogram& latency_ns;  ///< wall-clock per decode_order_into call

  static DecodeMetrics& get() {
    static DecodeMetrics m{
        obs::MetricsRegistry::instance().counter(obs::names::kDecodeCalls),
        obs::MetricsRegistry::instance().counter(obs::names::kDecodeCommitsAttempted),
        obs::MetricsRegistry::instance().counter(obs::names::kDecodeStringsReused),
        obs::MetricsRegistry::instance().histogram(obs::names::kDecodePrefixReuseLen),
        obs::MetricsRegistry::instance().histogram(obs::names::kDecodeLatencyNs)};
    return m;
  }
};

}  // namespace

DecodeContext::DecodeContext(const SystemModel& model) : session_(model) {
  committed_.reserve(model.num_strings());
  checkpoints_.resize(model.num_strings() + 1);
  session_.snapshot_into(checkpoints_[0]);
}

DecodeContext::~DecodeContext() {
  if (decodes_ == 0 && commits_attempted_ == 0) return;
  DecodeMetrics& m = DecodeMetrics::get();
  m.calls.add(decodes_);
  m.commits_attempted.add(commits_attempted_);
  m.strings_reused.add(reused_);
}

TSCE_HOT bool DecodeContext::try_push(StringId k) {
  ++commits_attempted_;
  imr_map_string_into(session_.system(), session_.util(), k, imr_scratch_,
                      assignment_scratch_);
  if (!session_.try_commit(k, assignment_scratch_)) return false;
  committed_.push_back(k);
  // Checkpoint the new depth so any later rewind past this point is a
  // restore.  Snapshot buffers are depth-slot-stable, so this is memcpys
  // only once the first full decode has sized them.
  session_.snapshot_into(checkpoints_[committed_.size()]);
  return true;
}

TSCE_HOT void DecodeContext::pop() {
  assert(!committed_.empty());
  session_.restore_from(checkpoints_[committed_.size() - 1]);
  committed_.pop_back();
}

TSCE_HOT void DecodeContext::rewind_to(std::size_t prefix_len) {
  assert(prefix_len <= committed_.size());
  if (prefix_len >= committed_.size()) return;
  // Checkpoint restore: O(state bytes) regardless of how long the dropped
  // suffix is.  Bit-identical to batched exact-rollback removal of the
  // suffix (the session property test pins this equivalence down).
  session_.restore_from(checkpoints_[prefix_len]);
  committed_.resize(prefix_len);
}

void DecodeContext::clone_state_from(const DecodeContext& other) {
  assert(&session_.system() == &other.session_.system());
  committed_ = other.committed_;
  // The live checkpoints [0, depth] are part of the decode state; deeper
  // slots are stale in both contexts and never read before being rewritten.
  for (std::size_t d = 0; d <= other.committed_.size(); ++d) {
    checkpoints_[d] = other.checkpoints_[d];
  }
  session_.restore_from(checkpoints_[committed_.size()]);
}

DecodeResult DecodeContext::materialize(const DecodeOutcome& outcome) const {
  DecodeResult result;
  result.allocation = session_.allocation();
  result.fitness = outcome.fitness;
  result.strings_deployed = outcome.strings_deployed;
  result.first_failed = outcome.first_failed;
  return result;
}

TSCE_HOT DecodeOutcome decode_order_into(DecodeContext& ctx,
                                         std::span<const StringId> order) {
  const std::uint64_t t0 = obs::clock_ticks();
  ++ctx.decodes_;
  // Longest common prefix of the new order and the committed stack.  Strings
  // at and beyond the previous decode's first failure were never committed,
  // so the stack is exactly the deployed prefix of the last order: everything
  // up to the divergence point can be kept as-is.
  std::size_t lcp = 0;
  const std::size_t max_lcp = std::min(ctx.committed_.size(), order.size());
  while (lcp < max_lcp && ctx.committed_[lcp] == order[lcp]) ++lcp;
  ctx.rewind_to(lcp);
  ctx.reused_ += lcp;
  DecodeMetrics::get().prefix_reuse_len.record(lcp);

  DecodeOutcome outcome;
  outcome.prefix_reused = lcp;
  outcome.strings_deployed = lcp;
  for (std::size_t p = lcp; p < order.size(); ++p) {
    if (!ctx.try_push(order[p])) {
      outcome.first_failed = order[p];
      break;
    }
    ++outcome.strings_deployed;
  }
  outcome.fitness = ctx.fitness();
  // Latency is recorded only — never branched on — so the decode itself stays
  // deterministic; the flight recorder applies its slow-decode watermark to
  // the same reading.
  const std::uint64_t ns = obs::ticks_to_ns(obs::clock_ticks() - t0);
  DecodeMetrics::get().latency_ns.record(ns);
  obs::flight_recorder_note_decode(ns, lcp, outcome.strings_deployed);
  return outcome;
}

DecodeResult decode_order(const SystemModel& model,
                          std::span<const StringId> order) {
  DecodeContext ctx(model);
  return ctx.materialize(decode_order_into(ctx, order));
}

std::vector<StringId> identity_order(const SystemModel& model) {
  std::vector<StringId> order(model.num_strings());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace tsce::core
