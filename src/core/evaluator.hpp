/// \file evaluator.hpp
/// Batch-parallel candidate evaluation for the permutation searches.
///
/// BatchEvaluator owns a util::ThreadPool and one DecodeContext per worker.
/// Work items are pulled from a shared atomic cursor, but every result slot
/// is written by index, and the prefix-reuse decode is bit-exact regardless
/// of what a worker's context evaluated before (see decode.hpp) — so the
/// output is byte-identical at 1 thread and at N threads, for any work
/// schedule.  Determinism contract: anything randomized inside a work item
/// must derive its generator from the item index (util::Rng::stream), never
/// from a shared stream.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/decode.hpp"
#include "model/system_model.hpp"
#include "util/thread_pool.hpp"

namespace tsce::core {

class BatchEvaluator {
 public:
  /// \p threads = 1 runs inline with no pool (the serial engine); 0 uses
  /// std::thread::hardware_concurrency().
  explicit BatchEvaluator(const model::SystemModel& model, std::size_t threads = 1);

  [[nodiscard]] std::size_t num_workers() const noexcept { return contexts_.size(); }

  /// Worker w's context (w < num_workers()).  Serial callers share worker 0.
  [[nodiscard]] DecodeContext& context(std::size_t w) noexcept { return *contexts_[w]; }

  /// Decodes every order; result i is bit-identical to decode_order(model,
  /// orders[i]) at any thread count.
  [[nodiscard]] std::vector<DecodeOutcome> evaluate(
      std::span<const std::vector<model::StringId>> orders);

  /// Fitness-only convenience over evaluate().
  [[nodiscard]] std::vector<analysis::Fitness> evaluate_fitness(
      std::span<const std::vector<model::StringId>> orders);

  /// Deterministic parallel map: runs fn(item, ctx) for item in [0, count)
  /// with some worker's context.  fn must write its result into a slot keyed
  /// by item and must not touch shared mutable state; per-item randomness
  /// must come from util::Rng::stream(seed, item).
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn) {
    if (!pool_) {
      for (std::size_t i = 0; i < count; ++i) fn(i, *contexts_[0]);
      return;
    }
    std::atomic<std::size_t> cursor{0};
    std::vector<std::future<void>> done;
    done.reserve(contexts_.size());
    for (std::size_t w = 0; w < contexts_.size(); ++w) {
      done.push_back(pool_->submit([this, w, count, &cursor, &fn] {
        DecodeContext& ctx = *contexts_[w];
        for (std::size_t i = cursor.fetch_add(1); i < count;
             i = cursor.fetch_add(1)) {
          fn(i, ctx);
        }
      }));
    }
    for (auto& f : done) f.get();  // rethrows the first worker exception
  }

 private:
  std::vector<std::unique_ptr<DecodeContext>> contexts_;
  std::unique_ptr<util::ThreadPool> pool_;  // null in serial mode
};

}  // namespace tsce::core
