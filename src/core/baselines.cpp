#include "core/baselines.hpp"

#include <algorithm>

#include "analysis/session.hpp"
#include "core/decode.hpp"

namespace tsce::core {

using model::MachineId;
using model::StringId;
using model::SystemModel;

AllocatorResult RandomOrder::allocate(const SystemModel& model,
                                      util::Rng& rng) const {
  std::vector<StringId> order = identity_order(model);
  rng.shuffle(order);
  DecodeResult decoded = decode_order(model, order);
  AllocatorResult result;
  result.allocation = std::move(decoded.allocation);
  result.fitness = decoded.fitness;
  result.order = std::move(order);
  result.evaluations = 1;
  return result;
}

AssignmentProblem::AssignmentProblem(const SystemModel& model)
    : model_(&model), total_apps_(model.num_apps()) {
  offset_.reserve(model.num_strings());
  std::size_t off = 0;
  for (const auto& s : model.strings) {
    offset_.push_back(off);
    off += s.size();
  }
}

AllocatorResult AssignmentProblem::project(const Chromosome& genes) const {
  analysis::AllocationSession session(*model_);
  const auto q = static_cast<StringId>(model_->num_strings());
  std::vector<MachineId> assignment;
  for (StringId k = 0; k < q; ++k) {
    const std::size_t n = model_->strings[static_cast<std::size_t>(k)].size();
    assignment.assign(genes.begin() + static_cast<std::ptrdiff_t>(offset_[static_cast<std::size_t>(k)]),
                      genes.begin() + static_cast<std::ptrdiff_t>(offset_[static_cast<std::size_t>(k)] + n));
    // Skip-and-continue: an infeasible string is left undeployed, later
    // strings still get a chance (more lenient than the permutation decode).
    (void)session.try_commit(k, assignment);
  }
  AllocatorResult result;
  result.fitness = session.fitness();
  result.allocation = session.allocation();
  result.evaluations = 1;
  return result;
}

AssignmentProblem::Fitness AssignmentProblem::evaluate(const Chromosome& genes) const {
  return project(genes).fitness;
}

std::pair<AssignmentProblem::Chromosome, AssignmentProblem::Chromosome>
AssignmentProblem::crossover(const Chromosome& a, const Chromosome& b,
                             util::Rng& rng) const {
  if (a.size() < 2) return {a, b};
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(a.size()) - 1));
  Chromosome c1 = a;
  Chromosome c2 = b;
  for (std::size_t g = 0; g < cut; ++g) std::swap(c1[g], c2[g]);
  return {std::move(c1), std::move(c2)};
}

AssignmentProblem::Chromosome AssignmentProblem::mutate(const Chromosome& c,
                                                        util::Rng& rng) const {
  Chromosome child = c;
  if (child.empty()) return child;
  const std::size_t g = rng.bounded(child.size());
  child[g] = static_cast<MachineId>(rng.bounded(model_->num_machines()));
  return child;
}

AssignmentProblem::Chromosome AssignmentProblem::random_chromosome(
    util::Rng& rng) const {
  Chromosome genes(total_apps_);
  for (auto& g : genes) {
    g = static_cast<MachineId>(rng.bounded(model_->num_machines()));
  }
  return genes;
}

AllocatorResult SolutionSpaceGa::allocate(const SystemModel& model,
                                          util::Rng& rng) const {
  const AssignmentProblem problem(model);
  AllocatorResult best;
  bool have_best = false;
  std::size_t total_evaluations = 0;
  for (std::size_t trial = 0; trial < std::max<std::size_t>(1, options_.trials);
       ++trial) {
    util::Rng trial_rng = rng.spawn();
    genitor::Genitor<AssignmentProblem> ga(problem, options_.ga);
    auto ga_result = ga.run(trial_rng);
    total_evaluations += ga_result.evaluations;
    if (!have_best || best.fitness < ga_result.best_fitness) {
      best = problem.project(ga_result.best);
      have_best = true;
    }
  }
  best.evaluations = total_evaluations;
  return best;
}

}  // namespace tsce::core
