#include "core/evaluator.hpp"

#include <thread>

namespace tsce::core {

BatchEvaluator::BatchEvaluator(const model::SystemModel& model, std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  contexts_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    contexts_.push_back(std::make_unique<DecodeContext>(model));
    // Stamp every worker with a byte-identical image of worker 0's state
    // (O(state bytes) memcpys): all contexts start from the same snapshot, so
    // result i never depends on which worker picked it up.
    if (w > 0) contexts_[w]->clone_state_from(*contexts_[0]);
  }
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

std::vector<DecodeOutcome> BatchEvaluator::evaluate(
    std::span<const std::vector<model::StringId>> orders) {
  std::vector<DecodeOutcome> outcomes(orders.size());
  for_each(orders.size(), [&](std::size_t i, DecodeContext& ctx) {
    outcomes[i] = decode_order_into(ctx, orders[i]);
    // prefix_reused depends on what this worker's context evaluated before,
    // i.e. on the work schedule; strip it so batch results are byte-identical
    // at any thread count (reuse totals stay readable via the contexts).
    outcomes[i].prefix_reused = 0;
  });
  return outcomes;
}

std::vector<analysis::Fitness> BatchEvaluator::evaluate_fitness(
    std::span<const std::vector<model::StringId>> orders) {
  std::vector<analysis::Fitness> fitness(orders.size());
  for_each(orders.size(), [&](std::size_t i, DecodeContext& ctx) {
    fitness[i] = decode_order_into(ctx, orders[i]).fitness;
  });
  return fitness;
}

}  // namespace tsce::core
