/// \file imr.hpp
/// The Incremental Mapping Routine (paper §5): greedy allocation of one
/// string onto the machine suite, guided by post-assignment resource
/// utilization.
///
/// The routine seeds at the most computationally intensive application
/// (argmax of t_av * u_av / P), places it on the machine with minimal
/// resulting utilization, then repeatedly locates the next most intensive
/// unassigned application and marches the contiguous assigned range toward
/// it; every intermediate application is placed on the machine minimizing the
/// max of the affected machine utilization and the utilization of the route
/// connecting it to its already-placed neighbor.  Ties are broken by lowest
/// machine index so the routine is deterministic.

#pragma once

#include <vector>

#include "analysis/utilization.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::core {

/// Computational intensity used for application ordering inside the IMR:
/// t_av[i] * u_av[i] / P[k].
[[nodiscard]] double computational_intensity(const model::SystemModel& model,
                                             model::StringId k,
                                             model::AppIndex i) noexcept;

/// Reusable working buffers for the IMR.  Hot search loops map a string per
/// candidate evaluation; keeping the buffers alive across calls makes the
/// routine allocation-free after the first use (see DecodeContext).
struct ImrScratch {
  std::vector<double> machine_extra;
  std::vector<double> route_extra;
  std::vector<char> in_d;
};

/// Maps string \p k against the resource usage in \p util (which reflects all
/// previously committed strings; it is not modified), writing one machine per
/// application into \p assignment (resized as needed).  Feasibility is NOT
/// checked here; the caller runs the two-stage analysis on the resulting
/// intermediate mapping.
void imr_map_string_into(const model::SystemModel& model,
                         const analysis::UtilizationState& util,
                         model::StringId k, ImrScratch& scratch,
                         std::vector<model::MachineId>& assignment);

/// Convenience wrapper over imr_map_string_into with throwaway buffers.
[[nodiscard]] std::vector<model::MachineId> imr_map_string(
    const model::SystemModel& model, const analysis::UtilizationState& util,
    model::StringId k);

}  // namespace tsce::core
