#include "core/dynamic.hpp"

#include <algorithm>

#include "analysis/session.hpp"
#include "core/imr.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace tsce::core {

using analysis::AllocationSession;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

namespace {

std::vector<MachineId> assignment_of(const model::Allocation& alloc, StringId k) {
  std::vector<MachineId> assignment(alloc.string_size(k));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = alloc.machine_of(k, static_cast<AppIndex>(i));
  }
  return assignment;
}

std::size_t count_migrations(const std::vector<MachineId>& before,
                             const std::vector<MachineId>& after) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++moved;
  }
  return moved;
}

/// Re-map telemetry: reallocate() runs on the live-service control path, so
/// its latency and churn (migrations per event) feed the same HDR spine as
/// the decode hot path.
struct RemapMetrics {
  obs::Counter& calls;
  obs::Counter& remapped;
  obs::Counter& dropped;
  obs::Histogram& latency_ns;
  obs::Histogram& migrations;

  static RemapMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static RemapMetrics m{reg.counter(obs::names::kDynamicRemapCalls),
                          reg.counter(obs::names::kDynamicRemapRemapped),
                          reg.counter(obs::names::kDynamicRemapDropped),
                          reg.histogram(obs::names::kDynamicRemapLatencyNs),
                          reg.histogram(obs::names::kDynamicRemapMigrations)};
    return m;
  }
};

}  // namespace

ReallocationResult reallocate(const SystemModel& updated_model,
                              const model::Allocation& current,
                              ReallocationOptions options) {
  const std::uint64_t t0 = obs::clock_ticks();
  AllocationSession session(updated_model, options.rule);
  ReallocationResult result;

  // Strings ordered most-worth-first (tie: tighter period first, then id):
  // when capacity is scarce the valuable strings get it.
  std::vector<StringId> order;
  for (std::size_t k = 0; k < updated_model.num_strings(); ++k) {
    if (current.deployed(static_cast<StringId>(k))) {
      order.push_back(static_cast<StringId>(k));
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](StringId a, StringId b) {
    const auto& sa = updated_model.strings[static_cast<std::size_t>(a)];
    const auto& sb = updated_model.strings[static_cast<std::size_t>(b)];
    if (sa.worth_factor() != sb.worth_factor()) {
      return sa.worth_factor() > sb.worth_factor();
    }
    return sa.period_s < sb.period_s;
  });

  // Pass 1: keep still-feasible mappings untouched.
  std::vector<StringId> pending;
  for (const StringId k : order) {
    const auto old_assignment = assignment_of(current, k);
    if (!session.try_commit(k, old_assignment)) {
      pending.push_back(k);
    }
  }

  // Pass 2: re-map violating strings via the IMR against the live state;
  // strings that still do not fit anywhere are dropped.  (A later retry
  // cannot help: failed commits consume no capacity and committed load only
  // grows, so a second attempt faces a strictly harder system.)
  (void)options.retry_dropped;
  for (const StringId k : pending) {
    const auto remapped = imr_map_string(updated_model, session.util(), k);
    if (session.try_commit(k, remapped)) {
      result.remapped.push_back(k);
      result.migrations += count_migrations(assignment_of(current, k), remapped);
    } else {
      result.dropped.push_back(k);
    }
  }

  std::sort(result.remapped.begin(), result.remapped.end());
  std::sort(result.dropped.begin(), result.dropped.end());
  result.allocation = session.allocation();
  result.fitness = session.fitness();

  RemapMetrics& m = RemapMetrics::get();
  m.calls.add(1);
  m.remapped.add(result.remapped.size());
  m.dropped.add(result.dropped.size());
  m.migrations.record(result.migrations);
  const std::uint64_t ns = obs::ticks_to_ns(obs::clock_ticks() - t0);
  m.latency_ns.record(ns);
  obs::flight_recorder_record(obs::FrKind::kRemap, ns, result.migrations,
                              result.dropped.size());
  return result;
}

}  // namespace tsce::core
