#include "core/imr.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/hot.hpp"

namespace tsce::core {

using analysis::UtilizationState;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

double computational_intensity(const SystemModel& model, StringId k,
                               AppIndex i) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  return a.avg_time_s() * a.avg_util() / s.period_s;
}

namespace {

/// Local view of resource usage: committed state plus the in-progress
/// assignments of the string being mapped.  Buffers live in the caller's
/// ImrScratch so repeated mappings do not allocate.
class ScratchUtil {
 public:
  ScratchUtil(const SystemModel& model, const UtilizationState& util, StringId k,
              ImrScratch& scratch)
      : model_(model),
        util_(util),
        k_(k),
        machine_extra_(scratch.machine_extra),
        route_extra_(scratch.route_extra) {
    machine_extra_.assign(model.num_machines(), 0.0);
    route_extra_.assign(model.num_machines() * model.num_machines(), 0.0);
  }

  [[nodiscard]] double machine_util_if(MachineId j, AppIndex i) const noexcept {
    return util_.machine_util(j) + machine_extra_[static_cast<std::size_t>(j)] +
           util_.machine_delta(k_, i, j);
  }

  /// Route j1->j2 utilization if the output of app \p sender were added.
  [[nodiscard]] double route_util_if(MachineId j1, MachineId j2,
                                     AppIndex sender) const noexcept {
    if (j1 == j2) return 0.0;
    return util_.route_util(j1, j2) + route_extra_[route_index(j1, j2)] +
           util_.route_delta(k_, sender, j1, j2);
  }

  void commit_app(AppIndex i, MachineId j) noexcept {
    machine_extra_[static_cast<std::size_t>(j)] += util_.machine_delta(k_, i, j);
  }

  void commit_transfer(AppIndex sender, MachineId j1, MachineId j2) noexcept {
    if (j1 == j2) return;
    route_extra_[route_index(j1, j2)] += util_.route_delta(k_, sender, j1, j2);
  }

 private:
  [[nodiscard]] std::size_t route_index(MachineId j1, MachineId j2) const noexcept {
    return static_cast<std::size_t>(j1) * model_.num_machines() +
           static_cast<std::size_t>(j2);
  }

  const SystemModel& model_;
  const UtilizationState& util_;
  StringId k_;
  std::vector<double>& machine_extra_;
  std::vector<double>& route_extra_;
};

}  // namespace

TSCE_HOT void imr_map_string_into(const SystemModel& model, const UtilizationState& util,
                         StringId k, ImrScratch& buffers,
                         std::vector<MachineId>& assignment) {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  const auto m = static_cast<MachineId>(model.num_machines());
  assert(n > 0 && m > 0);

  assignment.assign(static_cast<std::size_t>(n), model::kUnassigned);
  auto& in_d = buffers.in_d;
  in_d.assign(static_cast<std::size_t>(n), 0);
  ScratchUtil scratch(model, util, k, buffers);

  // Step 1: the most computationally intensive application seeds the mapping.
  auto most_intensive_unassigned = [&]() {
    AppIndex best = model::kInvalidId;
    double best_val = -std::numeric_limits<double>::infinity();
    for (AppIndex i = 0; i < n; ++i) {
      if (in_d[static_cast<std::size_t>(i)]) continue;
      const double v = computational_intensity(model, k, i);
      if (v > best_val) {
        best_val = v;
        best = i;
      }
    }
    return best;
  };
  const AppIndex seed = most_intensive_unassigned();

  // Step 2: machine with minimal post-assignment utilization (ties -> lowest j).
  {
    MachineId best_j = 0;
    double best_u = std::numeric_limits<double>::infinity();
    for (MachineId j = 0; j < m; ++j) {
      const double u = scratch.machine_util_if(j, seed);
      if (u < best_u) {
        best_u = u;
        best_j = j;
      }
    }
    assignment[static_cast<std::size_t>(seed)] = best_j;
    scratch.commit_app(seed, best_j);
    in_d[static_cast<std::size_t>(seed)] = true;
  }

  // Step 4: grow the contiguous assigned range [i_left, i_right] toward the
  // next most intensive unassigned application, one neighbor at a time.
  AppIndex i_left = seed;
  AppIndex i_right = seed;
  AppIndex assigned = 1;
  while (assigned < n) {
    const AppIndex target = most_intensive_unassigned();
    assert(target != model::kInvalidId);
    while (target > i_right) {
      const AppIndex i = i_right + 1;
      const MachineId prev = assignment[static_cast<std::size_t>(i - 1)];
      // Minimize the max of the machine utilization and the utilization of
      // the route carrying O[i-1] from the predecessor's machine.
      MachineId best_j = 0;
      double best_val = std::numeric_limits<double>::infinity();
      for (MachineId j = 0; j < m; ++j) {
        const double val = std::max(scratch.machine_util_if(j, i),
                                    scratch.route_util_if(prev, j, i - 1));
        if (val < best_val) {
          best_val = val;
          best_j = j;
        }
      }
      assignment[static_cast<std::size_t>(i)] = best_j;
      scratch.commit_app(i, best_j);
      scratch.commit_transfer(i - 1, prev, best_j);
      in_d[static_cast<std::size_t>(i)] = true;
      ++assigned;
      i_right = i;
    }
    while (target < i_left) {
      const AppIndex i = i_left - 1;
      const MachineId next = assignment[static_cast<std::size_t>(i + 1)];
      MachineId best_j = 0;
      double best_val = std::numeric_limits<double>::infinity();
      for (MachineId j = 0; j < m; ++j) {
        const double val = std::max(scratch.machine_util_if(j, i),
                                    scratch.route_util_if(j, next, i));
        if (val < best_val) {
          best_val = val;
          best_j = j;
        }
      }
      assignment[static_cast<std::size_t>(i)] = best_j;
      scratch.commit_app(i, best_j);
      scratch.commit_transfer(i, best_j, next);
      in_d[static_cast<std::size_t>(i)] = true;
      ++assigned;
      i_left = i;
    }
  }
}

std::vector<MachineId> imr_map_string(const SystemModel& model,
                                      const UtilizationState& util, StringId k) {
  ImrScratch scratch;
  std::vector<MachineId> assignment;
  imr_map_string_into(model, util, k, scratch, assignment);
  return assignment;
}

}  // namespace tsce::core
