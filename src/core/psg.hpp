/// \file psg.hpp
/// Permutation Space GENITOR-based heuristic (PSG) and its seeded variant
/// (paper §5).
///
/// Chromosomes are orderings of the string set; a chromosome is projected
/// into the solution space by the IMR-based sequential decoder.  The
/// GENITOR-specific operators work on the TOP part of the chromosome: a
/// random cut point splits each parent, and the strings of one parent's top
/// part are reordered to match their relative positions in the other parent.
/// Operating on the top part matters for partial allocations — strings in the
/// bottom part may be unmapped, so reordering there would not change the
/// projected solution.  Mutation swaps two randomly chosen strings.

#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "core/evaluator.hpp"
#include "genitor/genitor.hpp"

namespace tsce::core {

struct PsgOptions {
  genitor::Config ga;  ///< paper defaults: 250 / bias 1.6 / 5000 / 300
  /// Independent restarts; the best of all trials is reported (the paper uses
  /// four trials per run for the evolutionary algorithms).
  std::size_t trials = 4;
  /// Worker threads for batch chromosome evaluation (initial populations);
  /// 1 = serial, 0 = hardware concurrency.  Results are identical at any
  /// thread count (the BatchEvaluator determinism contract).
  std::size_t eval_threads = 1;
};

/// GENITOR problem adapter for the permutation space.  Owns the evaluation
/// engine: every evaluate() goes through a long-lived DecodeContext (prefix
/// reuse, no per-candidate allocation), and evaluate_batch() fans initial
/// populations out across the BatchEvaluator's workers.
class PermutationProblem {
 public:
  using Chromosome = std::vector<model::StringId>;
  using Fitness = analysis::Fitness;

  explicit PermutationProblem(const model::SystemModel& model,
                              std::size_t eval_threads = 1)
      : model_(&model), evaluator_(model, eval_threads) {}

  [[nodiscard]] Fitness evaluate(const Chromosome& order) const;
  [[nodiscard]] std::vector<Fitness> evaluate_batch(
      std::span<const Chromosome> batch) const;
  [[nodiscard]] std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                                            const Chromosome& b,
                                                            util::Rng& rng) const;
  [[nodiscard]] Chromosome mutate(const Chromosome& c, util::Rng& rng) const;
  [[nodiscard]] Chromosome random_chromosome(util::Rng& rng) const;

  /// Reorders the first \p cut entries of \p receiver so they appear in the
  /// relative order they hold in \p pattern (the paper's crossover step).
  [[nodiscard]] static Chromosome reorder_top(const Chromosome& receiver,
                                              const Chromosome& pattern,
                                              std::size_t cut);

 private:
  const model::SystemModel* model_;
  mutable BatchEvaluator evaluator_;
};

class Psg : public Allocator {
 public:
  explicit Psg(PsgOptions options = {}) : options_(options) {}

  [[nodiscard]] AllocatorResult allocate(const model::SystemModel& model,
                                         util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "PSG"; }

 protected:
  /// Seeds injected into every trial's initial population; the base PSG has
  /// none.
  [[nodiscard]] virtual std::vector<std::vector<model::StringId>> seeds(
      const model::SystemModel& model) const {
    (void)model;
    return {};
  }

 private:
  PsgOptions options_;
};

/// PSG whose initial population includes the MWF and TF orderings.
class SeededPsg final : public Psg {
 public:
  explicit SeededPsg(PsgOptions options = {}) : Psg(options) {}
  [[nodiscard]] std::string name() const override { return "Seeded PSG"; }

 protected:
  [[nodiscard]] std::vector<std::vector<model::StringId>> seeds(
      const model::SystemModel& model) const override;
};

/// PSG seeded with MWF, TF, and the LP-guided ordering (lp_guided_order):
/// strings ranked by the fractional relaxation's deployed fractions, so the
/// population starts next to the LP optimum's support.
class LpSeededPsg final : public Psg {
 public:
  explicit LpSeededPsg(PsgOptions options = {}) : Psg(options) {}
  [[nodiscard]] std::string name() const override { return "LP-Seeded PSG"; }

 protected:
  [[nodiscard]] std::vector<std::vector<model::StringId>> seeds(
      const model::SystemModel& model) const override;
};

}  // namespace tsce::core
