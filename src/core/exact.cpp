#include "core/exact.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/decode.hpp"
#include "core/evaluator.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace tsce::core {

using analysis::Fitness;
using model::StringId;
using model::SystemModel;

namespace {

/// Depth-first enumeration state on top of the incremental decode engine:
/// DecodeContext supplies push/pop string commits, so each tree edge costs
/// one IMR mapping plus the suffix-local feasibility re-analysis.  The
/// context is borrowed (not owned) so the parallel engine can run one
/// enumerator per top-level branch on a worker's long-lived context.
class Enumerator {
 public:
  Enumerator(const SystemModel& model, DecodeContext& ctx,
             std::size_t max_evaluations)
      : model_(model), ctx_(ctx), max_evaluations_(max_evaluations),
        used_(model.num_strings(), false) {
    remaining_worth_ = model.total_worth_available();
  }

  /// Full-tree enumeration from the empty prefix (the serial engine).
  void run() {
    consider(ctx_.fitness());
    descend();
  }

  /// Enumerates only the orderings that start with string \p k — one
  /// top-level branch of the tree, self-contained so branches can run as
  /// independent tasks.  The root commit is charged like the serial engine's
  /// depth-0 loop body; a failing root commit reduces the branch to the
  /// empty prefix (every completion of it decodes to the empty allocation).
  void run_branch(StringId k) {
    ++evaluations_;
    const int worth_k = model_.strings[static_cast<std::size_t>(k)].worth_factor();
    if (ctx_.try_push(k)) {
      used_[static_cast<std::size_t>(k)] = true;
      remaining_worth_ -= worth_k;
      descend();
      remaining_worth_ += worth_k;
      used_[static_cast<std::size_t>(k)] = false;
      ctx_.pop();
    } else {
      consider(ctx_.fitness());
    }
  }

  [[nodiscard]] const model::Allocation& best_allocation() const noexcept {
    return best_allocation_;
  }
  [[nodiscard]] Fitness best_fitness() const noexcept { return best_fitness_; }
  [[nodiscard]] const std::vector<StringId>& best_order() const noexcept {
    return best_order_;
  }
  [[nodiscard]] bool have_best() const noexcept { return have_best_; }
  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  void consider(const Fitness& fitness) {
    if (!have_best_ || best_fitness_ < fitness) {
      best_fitness_ = fitness;
      best_allocation_ = ctx_.allocation();
      best_order_.assign(ctx_.committed().begin(), ctx_.committed().end());
      have_best_ = true;
      obs::trace_event(obs::names::kSearchImprove,
                       {{"phase", "Exact"},
                        {"iteration", std::uint64_t{evaluations_}},
                        {"worth", best_fitness_.total_worth},
                        {"slackness", best_fitness_.slackness}});
    }
  }

  void descend() {
    if (evaluations_ >= max_evaluations_) return;
    // Bound: even deploying every remaining string cannot beat the best.
    const Fitness current = ctx_.fitness();
    if (have_best_ &&
        current.total_worth + remaining_worth_ < best_fitness_.total_worth) {
      return;
    }
    bool leaf = true;
    const auto q = static_cast<StringId>(model_.num_strings());
    for (StringId k = 0; k < q; ++k) {
      if (used_[static_cast<std::size_t>(k)]) continue;
      leaf = false;
      ++evaluations_;
      const int worth_k = model_.strings[static_cast<std::size_t>(k)].worth_factor();
      if (ctx_.try_push(k)) {
        used_[static_cast<std::size_t>(k)] = true;
        remaining_worth_ -= worth_k;
        descend();
        remaining_worth_ += worth_k;
        used_[static_cast<std::size_t>(k)] = false;
        ctx_.pop();
      } else {
        // The sequential decode stops at the first infeasible string: every
        // completion of this prefix ending in k has the current value.
        consider(current);
      }
      if (evaluations_ >= max_evaluations_) return;
    }
    if (leaf) consider(current);
  }

  const SystemModel& model_;
  DecodeContext& ctx_;
  std::size_t max_evaluations_;
  std::size_t evaluations_ = 0;
  std::vector<bool> used_;
  int remaining_worth_ = 0;

  bool have_best_ = false;
  Fitness best_fitness_{};
  model::Allocation best_allocation_;
  std::vector<StringId> best_order_;
};

}  // namespace

AllocatorResult ExactPermutationSearch::allocate(const SystemModel& model,
                                                 util::Rng& /*rng*/) const {
  if (model.num_strings() > options_.max_strings) {
    throw std::invalid_argument(
        "ExactPermutationSearch: instance too large (" +
        std::to_string(model.num_strings()) + " strings > max " +
        std::to_string(options_.max_strings) + ")");
  }
  obs::Span span(obs::names::kSearchExact,
                 {{"phase", "Exact"},
                  {"threads", std::uint64_t{options_.threads}}});
  AllocatorResult result;

  if (options_.threads == 0) {
    // Legacy serial engine: one global enumeration sharing one bound and one
    // evaluation budget across the whole tree.
    DecodeContext ctx(model);
    Enumerator enumerator(model, ctx, options_.max_evaluations);
    enumerator.run();
    span.add("evaluations", static_cast<double>(enumerator.evaluations()));
    span.add("worth", static_cast<double>(enumerator.best_fitness().total_worth));
    result.allocation = enumerator.best_allocation();
    result.fitness = enumerator.best_fitness();
    result.order = enumerator.best_order();
    result.evaluations = enumerator.evaluations();
    return result;
  }

  // Deterministic parallel engine (threads >= 1): the top level of the tree
  // is split into one task per first string, each enumerated independently
  // with its own bound and an equal slice of the evaluation budget, so no
  // task's pruning depends on another task's timing.  The fold walks
  // branches in index order (strictly-better wins), which makes the result
  // byte-identical at any worker count.  Per-branch bounds prune less than
  // the serial engine's global bound, the price of schedule independence.
  const std::size_t q = model.num_strings();
  struct Branch {
    Fitness fitness{};
    model::Allocation allocation;
    std::vector<StringId> order;
    std::size_t evaluations = 0;
    bool have = false;
  };
  std::vector<Branch> branches(q);
  const std::size_t slice = std::max<std::size_t>(
      1, options_.max_evaluations / std::max<std::size_t>(1, q));
  BatchEvaluator evaluator(model, options_.threads);
  evaluator.for_each(q, [&](std::size_t k, DecodeContext& ctx) {
    obs::Span branch_span(obs::names::kSearchExactBranch,
                          {{"phase", "Exact"}, {"branch", std::uint64_t{k}}});
    ctx.rewind_to(0);
    Enumerator enumerator(model, ctx, slice);
    enumerator.run_branch(static_cast<StringId>(k));
    branches[k].fitness = enumerator.best_fitness();
    branches[k].allocation = enumerator.best_allocation();
    branches[k].order = enumerator.best_order();
    branches[k].evaluations = enumerator.evaluations();
    branches[k].have = enumerator.have_best();
    branch_span.add("evaluations", static_cast<double>(enumerator.evaluations()));
    branch_span.add("worth",
                    static_cast<double>(enumerator.best_fitness().total_worth));
  });

  // Seed the reduction with the empty prefix (the serial engine's root
  // consideration), then fold branches in index order.
  DecodeResult root = decode_order(model, {});
  result.allocation = std::move(root.allocation);
  result.fitness = root.fitness;
  result.order.clear();
  std::size_t evaluations = 0;
  for (std::size_t k = 0; k < q; ++k) {
    evaluations += branches[k].evaluations;
    if (branches[k].have && result.fitness < branches[k].fitness) {
      result.fitness = branches[k].fitness;
      result.allocation = std::move(branches[k].allocation);
      result.order = std::move(branches[k].order);
    }
  }
  result.evaluations = evaluations;
  span.add("evaluations", static_cast<double>(evaluations));
  span.add("worth", static_cast<double>(result.fitness.total_worth));
  return result;
}

}  // namespace tsce::core
