#include "core/exact.hpp"

#include <stdexcept>

#include "core/decode.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace tsce::core {

using analysis::Fitness;
using model::StringId;
using model::SystemModel;

namespace {

/// Depth-first enumeration state on top of the incremental decode engine:
/// DecodeContext supplies push/pop string commits, so each tree edge costs
/// one IMR mapping plus the suffix-local feasibility re-analysis.
class Enumerator {
 public:
  Enumerator(const SystemModel& model, std::size_t max_evaluations)
      : model_(model), ctx_(model), max_evaluations_(max_evaluations),
        used_(model.num_strings(), false) {
    remaining_worth_ = model.total_worth_available();
  }

  void run() {
    consider(ctx_.fitness());
    descend();
  }

  [[nodiscard]] const model::Allocation& best_allocation() const noexcept {
    return best_allocation_;
  }
  [[nodiscard]] Fitness best_fitness() const noexcept { return best_fitness_; }
  [[nodiscard]] const std::vector<StringId>& best_order() const noexcept {
    return best_order_;
  }
  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  void consider(const Fitness& fitness) {
    if (!have_best_ || best_fitness_ < fitness) {
      best_fitness_ = fitness;
      best_allocation_ = ctx_.allocation();
      best_order_.assign(ctx_.committed().begin(), ctx_.committed().end());
      have_best_ = true;
      obs::trace_event(obs::names::kSearchImprove,
                       {{"phase", "Exact"},
                        {"iteration", std::uint64_t{evaluations_}},
                        {"worth", best_fitness_.total_worth},
                        {"slackness", best_fitness_.slackness}});
    }
  }

  void descend() {
    if (evaluations_ >= max_evaluations_) return;
    // Bound: even deploying every remaining string cannot beat the best.
    const Fitness current = ctx_.fitness();
    if (have_best_ &&
        current.total_worth + remaining_worth_ < best_fitness_.total_worth) {
      return;
    }
    bool leaf = true;
    const auto q = static_cast<StringId>(model_.num_strings());
    for (StringId k = 0; k < q; ++k) {
      if (used_[static_cast<std::size_t>(k)]) continue;
      leaf = false;
      ++evaluations_;
      const int worth_k = model_.strings[static_cast<std::size_t>(k)].worth_factor();
      if (ctx_.try_push(k)) {
        used_[static_cast<std::size_t>(k)] = true;
        remaining_worth_ -= worth_k;
        descend();
        remaining_worth_ += worth_k;
        used_[static_cast<std::size_t>(k)] = false;
        ctx_.pop();
      } else {
        // The sequential decode stops at the first infeasible string: every
        // completion of this prefix ending in k has the current value.
        consider(current);
      }
      if (evaluations_ >= max_evaluations_) return;
    }
    if (leaf) consider(current);
  }

  const SystemModel& model_;
  DecodeContext ctx_;
  std::size_t max_evaluations_;
  std::size_t evaluations_ = 0;
  std::vector<bool> used_;
  int remaining_worth_ = 0;

  bool have_best_ = false;
  Fitness best_fitness_{};
  model::Allocation best_allocation_;
  std::vector<StringId> best_order_;
};

}  // namespace

AllocatorResult ExactPermutationSearch::allocate(const SystemModel& model,
                                                 util::Rng& /*rng*/) const {
  if (model.num_strings() > options_.max_strings) {
    throw std::invalid_argument(
        "ExactPermutationSearch: instance too large (" +
        std::to_string(model.num_strings()) + " strings > max " +
        std::to_string(options_.max_strings) + ")");
  }
  obs::Span span(obs::names::kSearchExact, {{"phase", "Exact"}});
  Enumerator enumerator(model, options_.max_evaluations);
  enumerator.run();
  span.add("evaluations", static_cast<double>(enumerator.evaluations()));
  span.add("worth", static_cast<double>(enumerator.best_fitness().total_worth));
  AllocatorResult result;
  result.allocation = enumerator.best_allocation();
  result.fitness = enumerator.best_fitness();
  result.order = enumerator.best_order();
  result.evaluations = enumerator.evaluations();
  return result;
}

}  // namespace tsce::core
