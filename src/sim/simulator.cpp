#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

#include "analysis/priority.hpp"

namespace tsce::sim {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

namespace {

constexpr double kEps = 1e-9;
constexpr double kInfTime = std::numeric_limits<double>::infinity();

/// One data set moving through the pipeline.
struct Dataset {
  double arrival = 0.0;         ///< when it became available at this stage
  double remaining = 0.0;       ///< CPU work (app) or megabits (transfer) left
  double source_release = 0.0;  ///< periodic release time at the string source
};

/// A deployed application instance on its machine.
struct AppNode {
  StringId k;
  AppIndex i;
  MachineId machine;
  double max_rate;       ///< u[i,j]: CPU share ceiling
  double work;           ///< t[i,j] * u[i,j] per data set
  double period;
  bool last_in_string;
  std::deque<Dataset> queue;
  double rate = 0.0;
};

/// A deployed inter-machine transfer (output of app i of string k).
struct EdgeNode {
  StringId k;
  AppIndex i;          ///< sending app
  MachineId j1, j2;
  double megabits;     ///< O[i] per data set
  double bandwidth;    ///< w[j1,j2]
  double period;
  std::deque<Dataset> queue;
  double rate = 0.0;
};

}  // namespace

std::size_t SimResult::total_violations() const noexcept {
  std::size_t n = 0;
  for (const auto& per_string : apps) {
    for (const auto& a : per_string) n += a.comp_violations + a.tran_violations;
  }
  for (const auto& s : strings) n += s.latency_violations;
  return n;
}

SimResult simulate(const SystemModel& model, const Allocation& alloc,
                   SimOptions options) {
  const std::size_t q = model.num_strings();
  const std::size_t m = model.num_machines();

  SimResult result;
  result.apps.resize(q);
  result.strings.resize(q);

  // Build nodes for deployed strings.
  std::vector<double> tightness(q, 0.0);
  std::deque<AppNode> app_nodes;  // deque: stable addresses
  std::deque<EdgeNode> edge_nodes;
  // node lookup: app_of[k][i]
  std::vector<std::vector<AppNode*>> app_of(q);
  std::vector<std::vector<EdgeNode*>> edge_of(q);
  double max_period = 0.0;

  for (std::size_t k = 0; k < q; ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto& s = model.strings[k];
    tightness[k] = analysis::priority_value(model, alloc, static_cast<StringId>(k),
                                            options.priority_rule);
    max_period = std::max(max_period, s.period_s);
    result.apps[k].resize(s.size());
    app_of[k].resize(s.size(), nullptr);
    edge_of[k].resize(s.size() > 0 ? s.size() - 1 : 0, nullptr);
    for (std::size_t i = 0; i < s.size(); ++i) {
      const MachineId j = alloc.machine_of(static_cast<StringId>(k),
                                           static_cast<AppIndex>(i));
      AppNode node;
      node.k = static_cast<StringId>(k);
      node.i = static_cast<AppIndex>(i);
      node.machine = j;
      node.max_rate = s.apps[i].nominal_util[static_cast<std::size_t>(j)];
      node.work = s.apps[i].cpu_work(static_cast<std::size_t>(j));
      node.period = s.period_s;
      node.last_in_string = i + 1 == s.size();
      app_nodes.push_back(node);
      app_of[k][i] = &app_nodes.back();
      if (i + 1 < s.size()) {
        const MachineId j2 = alloc.machine_of(static_cast<StringId>(k),
                                              static_cast<AppIndex>(i + 1));
        if (j != j2) {
          EdgeNode edge;
          edge.k = static_cast<StringId>(k);
          edge.i = static_cast<AppIndex>(i);
          edge.j1 = j;
          edge.j2 = j2;
          edge.megabits = model::kbytes_to_megabits(s.apps[i].output_kbytes);
          edge.bandwidth = model.network.bandwidth_mbps(j, j2);
          edge.period = s.period_s;
          edge_nodes.push_back(edge);
          edge_of[k][i] = &edge_nodes.back();
        }
      }
    }
  }

  const double horizon =
      options.horizon_s > 0.0 ? options.horizon_s : 20.0 * std::max(max_period, 1.0);
  result.simulated_s = horizon;
  const double warmup = std::min(options.warmup_s, horizon);
  const double window = horizon - warmup;
  std::vector<double> machine_busy(m, 0.0);
  std::vector<double> route_busy(m * m, 0.0);

  // Per-machine / per-route resident lists, sorted by priority (tightest
  // first; deterministic tie-break by string id then app index).
  auto app_before = [&](const AppNode* a, const AppNode* b) {
    if (tightness[static_cast<std::size_t>(a->k)] !=
        tightness[static_cast<std::size_t>(b->k)]) {
      return tightness[static_cast<std::size_t>(a->k)] >
             tightness[static_cast<std::size_t>(b->k)];
    }
    if (a->k != b->k) return a->k < b->k;
    return a->i < b->i;
  };
  auto edge_before = [&](const EdgeNode* a, const EdgeNode* b) {
    if (tightness[static_cast<std::size_t>(a->k)] !=
        tightness[static_cast<std::size_t>(b->k)]) {
      return tightness[static_cast<std::size_t>(a->k)] >
             tightness[static_cast<std::size_t>(b->k)];
    }
    if (a->k != b->k) return a->k < b->k;
    return a->i < b->i;
  };
  std::vector<std::vector<AppNode*>> machine_nodes(m);
  for (auto& node : app_nodes) {
    machine_nodes[static_cast<std::size_t>(node.machine)].push_back(&node);
  }
  for (auto& nodes : machine_nodes) std::sort(nodes.begin(), nodes.end(), app_before);
  std::vector<std::vector<EdgeNode*>> route_nodes(m * m);
  for (auto& edge : edge_nodes) {
    route_nodes[static_cast<std::size_t>(edge.j1) * m +
                static_cast<std::size_t>(edge.j2)]
        .push_back(&edge);
  }
  for (auto& nodes : route_nodes) std::sort(nodes.begin(), nodes.end(), edge_before);

  // Periodic sources.
  std::vector<std::size_t> released(q, 0);

  // Delivery of a finished data set from app i of string k at time t.
  // `record` gates statistics (false during warm-up); delivery always happens.
  auto deliver_downstream = [&](const AppNode& from, const Dataset& d, double t,
                                bool record) {
    const auto k = static_cast<std::size_t>(from.k);
    const auto i = static_cast<std::size_t>(from.i);
    if (from.last_in_string) {
      const double latency = t - d.source_release;
      if (record) {
        result.strings[k].latency_s.add(latency);
        result.strings[k].datasets_completed += 1;
        if (latency > model.strings[k].max_latency_s * (1.0 + 1e-9)) {
          result.strings[k].latency_violations += 1;
        }
      }
      return;
    }
    EdgeNode* edge = edge_of[k][i];
    if (edge == nullptr || edge->megabits <= 0.0) {
      // Same machine (or empty output): instantaneous transfer, measured 0.
      if (record) result.apps[k][i].tran_s.add(0.0);
      AppNode* next = app_of[k][i + 1];
      next->queue.push_back({t, next->work, d.source_release});
      return;
    }
    edge->queue.push_back({t, edge->megabits, d.source_release});
  };

  double t = 0.0;
  for (; result.events < options.max_events; ++result.events) {
    // 1. Rate assignment: priority cascade on CPUs, strict priority on routes.
    for (const auto& nodes : machine_nodes) {
      double remaining = 1.0;
      for (AppNode* node : nodes) {
        if (node->queue.empty()) {
          node->rate = 0.0;
          continue;
        }
        node->rate = std::min(node->max_rate, remaining);
        remaining -= node->rate;
      }
    }
    for (const auto& nodes : route_nodes) {
      bool served = false;
      for (EdgeNode* edge : nodes) {
        if (edge->queue.empty() || served) {
          edge->rate = 0.0;
        } else {
          edge->rate = edge->bandwidth;
          served = true;
        }
      }
    }

    // 2. Earliest next event: completion or periodic arrival.
    double t_next = kInfTime;
    for (const auto& node : app_nodes) {
      if (!node.queue.empty() && node.rate > 0.0) {
        t_next = std::min(t_next, t + node.queue.front().remaining / node.rate);
      }
    }
    for (const auto& edge : edge_nodes) {
      if (!edge.queue.empty() && edge.rate > 0.0) {
        t_next = std::min(t_next, t + edge.queue.front().remaining / edge.rate);
      }
    }
    for (std::size_t k = 0; k < q; ++k) {
      if (!alloc.deployed(static_cast<StringId>(k))) continue;
      const double next_release =
          static_cast<double>(released[k]) * model.strings[k].period_s;
      if (next_release <= horizon) t_next = std::min(t_next, next_release);
    }
    if (!std::isfinite(t_next) || t_next > horizon) break;

    // 3. Advance work (and meter resource consumption past the warm-up).
    const double dt = t_next - t;
    if (dt > 0.0) {
      const double metered_dt =
          std::max(0.0, std::min(t_next, horizon) - std::max(t, warmup));
      for (auto& node : app_nodes) {
        if (!node.queue.empty() && node.rate > 0.0) {
          node.queue.front().remaining =
              std::max(0.0, node.queue.front().remaining - node.rate * dt);
          machine_busy[static_cast<std::size_t>(node.machine)] +=
              node.rate * metered_dt;
        }
      }
      for (auto& edge : edge_nodes) {
        if (!edge.queue.empty() && edge.rate > 0.0) {
          edge.queue.front().remaining =
              std::max(0.0, edge.queue.front().remaining - edge.rate * dt);
          route_busy[static_cast<std::size_t>(edge.j1) * m +
                     static_cast<std::size_t>(edge.j2)] += metered_dt;
        }
      }
    }
    t = t_next;
    const bool record = t >= warmup;

    // 4. Completions (at most one per node per event round).
    for (auto& node : app_nodes) {
      if (node.queue.empty() || node.rate <= 0.0) continue;
      Dataset& d = node.queue.front();
      if (d.remaining > kEps) continue;
      const auto k = static_cast<std::size_t>(node.k);
      const auto i = static_cast<std::size_t>(node.i);
      const double comp = t - d.arrival;
      if (record) {
        result.apps[k][i].comp_s.add(comp);
        if (comp > node.period * (1.0 + 1e-9)) {
          result.apps[k][i].comp_violations += 1;
        }
      }
      const Dataset done = d;
      node.queue.pop_front();
      deliver_downstream(node, done, t, record);
    }
    for (auto& edge : edge_nodes) {
      if (edge.queue.empty() || edge.rate <= 0.0) continue;
      Dataset& d = edge.queue.front();
      if (d.remaining > kEps) continue;
      const auto k = static_cast<std::size_t>(edge.k);
      const auto i = static_cast<std::size_t>(edge.i);
      const double tran = t - d.arrival;
      if (record) {
        result.apps[k][i].tran_s.add(tran);
        if (tran > edge.period * (1.0 + 1e-9)) {
          result.apps[k][i].tran_violations += 1;
        }
      }
      const Dataset done = d;
      edge.queue.pop_front();
      AppNode* next = app_of[k][i + 1];
      next->queue.push_back({t, next->work, done.source_release});
    }

    // 5. Periodic releases due now.
    for (std::size_t k = 0; k < q; ++k) {
      if (!alloc.deployed(static_cast<StringId>(k))) continue;
      const double period = model.strings[k].period_s;
      while (static_cast<double>(released[k]) * period <= t + kEps &&
             static_cast<double>(released[k]) * period <= horizon) {
        const double release = static_cast<double>(released[k]) * period;
        AppNode* first = app_of[k][0];
        first->queue.push_back({release, first->work, release});
        released[k] += 1;
      }
    }
  }

  result.measured_machine_util.assign(m, 0.0);
  result.measured_route_util.assign(m * m, 0.0);
  if (window > 0.0) {
    for (std::size_t j = 0; j < m; ++j) {
      result.measured_machine_util[j] = machine_busy[j] / window;
    }
    for (std::size_t r = 0; r < m * m; ++r) {
      result.measured_route_util[r] = route_busy[r] / window;
    }
  }
  return result;
}

SystemModel scale_input_workload(const SystemModel& model, double factor) {
  SystemModel scaled = model;
  for (auto& s : scaled.strings) {
    for (auto& a : s.apps) {
      for (auto& time : a.nominal_time_s) time *= factor;
      a.output_kbytes *= factor;
    }
  }
  return scaled;
}

}  // namespace tsce::sim
