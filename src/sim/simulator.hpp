/// \file simulator.hpp
/// Discrete-event simulation of deployed application strings.
///
/// The simulator executes the periodic pipelines of every deployed string on
/// the shared machines and routes, reproducing the scheduling model behind
/// eqs. (5)-(6):
///
/// * All strings release their first data set at t = 0 (the paper's
///   worst-case alignment of periods) and then strictly periodically.
/// * CPUs are priority-preemptive with capacity cascade: applications are
///   ranked by the relative tightness of their string; each active
///   application receives min(u[i,j], remaining capacity), so lower-priority
///   work proceeds on leftover CPU cycles exactly as in Figure 2, case 3.
/// * Routes are priority-preemptive single servers: the tightest active
///   transfer gets the full bandwidth, the rest wait.
///
/// Per data set the simulator measures computation times (queueing +
/// processing at an application), transfer times, and end-to-end latency,
/// and counts QoS violations against eq. (1).  This provides an empirical
/// cross-check of the analytic feasibility analysis and powers the
/// robustness-validation bench (E8).

#pragma once

#include <cstddef>
#include <vector>

#include "analysis/priority.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "util/stats.hpp"

namespace tsce::sim {

struct SimOptions {
  /// Simulated horizon in seconds; 0 picks 20x the longest deployed period.
  double horizon_s = 0.0;
  /// Safety valve for runaway event loops.
  std::size_t max_events = 10'000'000;
  /// Local-scheduler priority rule on CPUs and routes (paper default:
  /// relative tightness; see analysis/priority.hpp for alternatives).
  analysis::PriorityRule priority_rule = analysis::PriorityRule::kRelativeTightness;
  /// Statistics before this time are discarded (transient warm-up); the
  /// paper's worst-case analysis aligns all periods at t = 0, so the default
  /// keeps everything.
  double warmup_s = 0.0;
};

struct AppStats {
  util::RunningStats comp_s;        ///< measured computation times
  util::RunningStats tran_s;        ///< measured transfer times (if any)
  std::size_t comp_violations = 0;  ///< comp time > P[k]
  std::size_t tran_violations = 0;  ///< transfer time > P[k]
};

struct StringStats {
  util::RunningStats latency_s;
  std::size_t latency_violations = 0;  ///< latency > Lmax[k]
  std::size_t datasets_completed = 0;
};

struct SimResult {
  /// Indexed [k][i]; empty vectors for undeployed strings.
  std::vector<std::vector<AppStats>> apps;
  std::vector<StringStats> strings;
  std::size_t events = 0;
  double simulated_s = 0.0;

  /// Measured average CPU share consumed per machine over the measurement
  /// window — the empirical counterpart of U_machine[j], eq. (2).
  std::vector<double> measured_machine_util;
  /// Measured transmit-time fraction per route (row-major M x M) — the
  /// empirical counterpart of U_route[j1,j2], eq. (3).
  std::vector<double> measured_route_util;

  [[nodiscard]] std::size_t total_violations() const noexcept;
};

/// Runs the simulation for the deployed strings of \p alloc.
[[nodiscard]] SimResult simulate(const model::SystemModel& model,
                                 const model::Allocation& alloc,
                                 SimOptions options = {});

/// Returns a copy of \p model with the input workload scaled by \p factor:
/// nominal execution times and output sizes are multiplied by factor while
/// periods and latency bounds stay fixed, emulating an unpredictable increase
/// in input workload (paper §1).
[[nodiscard]] model::SystemModel scale_input_workload(const model::SystemModel& model,
                                                      double factor);

}  // namespace tsce::sim
