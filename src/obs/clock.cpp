#include "obs/clock.hpp"

#include <chrono>

namespace tsce::obs {
namespace {

double calibrate() noexcept {
#if defined(__x86_64__) || defined(__aarch64__)
  using clock = std::chrono::steady_clock;
  // Spin ~2 ms against steady_clock.  The cycle counter is constant-rate on
  // both targets, so a single short window gives a stable ratio; 2 ms keeps
  // the quantization error of the two bracketing steady_clock reads (~50 ns)
  // below 0.01%.
  const auto t0 = clock::now();
  const std::uint64_t c0 = clock_ticks();
  std::uint64_t elapsed_ns = 0;
  do {
    elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
  } while (elapsed_ns < 2'000'000);
  const std::uint64_t c1 = clock_ticks();
  if (c1 <= c0 || elapsed_ns == 0) return 1.0;  // broken counter: treat as ns
  return static_cast<double>(c1 - c0) / static_cast<double>(elapsed_ns);
#else
  return 1.0;  // fallback clock_ticks() already returns nanoseconds
#endif
}

}  // namespace

double ticks_per_ns() noexcept {
  static const double ratio = calibrate();
  return ratio;
}

}  // namespace tsce::obs
