#include "obs/run_info.hpp"

#include "obs/trace.hpp"

// Configure-time build stamps (see src/obs/CMakeLists.txt).  Defaults keep
// the translation unit compilable outside the CMake build (e.g. tooling).
#ifndef TSCE_GIT_SHA
#define TSCE_GIT_SHA "unknown"
#endif
#ifndef TSCE_BUILD_TYPE
#define TSCE_BUILD_TYPE "unknown"
#endif
#ifndef TSCE_COMPILER
#define TSCE_COMPILER "unknown"
#endif
#ifndef TSCE_SANITIZE_FLAGS
#define TSCE_SANITIZE_FLAGS ""
#endif

namespace tsce::obs {

RunInfo RunInfo::current() {
  RunInfo info;
  info.git_sha = TSCE_GIT_SHA;
  info.build_type = TSCE_BUILD_TYPE;
  info.compiler = TSCE_COMPILER;
  info.sanitize = TSCE_SANITIZE_FLAGS;
  info.tracing_compiled = kTracingCompiledIn;
  return info;
}

util::Json RunInfo::to_json() const {
  util::Json j = util::Json::object();
  j.set("git_sha", git_sha);
  j.set("build_type", build_type);
  j.set("compiler", compiler);
  j.set("sanitize", sanitize);
  j.set("tracing_compiled", tracing_compiled);
  j.set("seed", static_cast<std::int64_t>(seed));
  j.set("threads", threads);
  util::Json p = util::Json::object();
  for (const auto& [key, value] : params) p.set(key, value);
  j.set("params", std::move(p));
  return j;
}

}  // namespace tsce::obs
