/// \file histogram.hpp
/// HdrHistogram: log-linear bucketed latency histogram with bounded relative
/// error and exact tail-quantile queries (p50/p90/p99/p999/max).
///
/// Replaces the pow2-bucket histogram behind obs::MetricsRegistry: a pow2
/// bucket at 16 us spans 8 us of values (50% relative error at the tail),
/// which cannot distinguish a p99 of 17 us from one of 31 us.  The HDR layout
/// keeps every power-of-two range subdivided into 2^(sub_bits-1) linear
/// sub-buckets, so the relative error of any reconstructed value is bounded
/// by 1/2^(sub_bits-1) — configurable via significant (decimal) digits:
/// 1 digit -> 16 sub-buckets (6.25% bound), 2 -> 128 (1.56%), 3 -> 1024
/// (0.2%).
///
/// Index math (HdrLayout) is a handful of bit operations: values below
/// 2^sub_bits are counted exactly at their own index; a larger value of
/// bit-width w lands in bucket i = w - sub_bits at index i*half + (v >> i).
/// record() is therefore ~1-2 ns: bit_width, shift, add — plus three
/// owner-thread relaxed counter bumps (count/sum/min/max).
///
/// Concurrency model mirrors the metrics registry shards: one HdrHistogram is
/// written by exactly one thread (cells are relaxed atomics so concurrent
/// snapshot reads are race-free); merging happens at snapshot time by summing
/// count arrays, which is associative and commutative, so the merged snapshot
/// is byte-identical regardless of shard count or merge order — the property
/// the determinism auditor pins at 1/2/8 threads.
///
/// HdrSnapshot is the plain-value result of snapshot/merge: quantile queries,
/// JSON serialization (sparse non-empty buckets, upper-edge "le" labels), and
/// further merging all operate on it.

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "util/hot.hpp"
#include "util/json.hpp"

namespace tsce::obs {

/// Bucket geometry shared by HdrHistogram and HdrSnapshot.
struct HdrLayout {
  int significant_digits = 2;  ///< decimal digits of value resolution
  int sub_bucket_bits = 7;     ///< 2^bits linear sub-buckets per octave
  int max_value_bits = 47;     ///< values >= 2^bits saturate into the top cell
  std::size_t counts_len = 0;

  /// \p digits in [1,3]; \p value_bits in (sub_bucket_bits, 63].  Default
  /// geometry (2 digits, 47 bits) resolves nanosecond latencies up to ~39 h
  /// within 1.56% using 2688 cells (21 KiB per shard).
  static HdrLayout make(int digits, int value_bits) noexcept;

  [[nodiscard]] std::size_t half_count() const noexcept {
    return std::size_t{1} << (sub_bucket_bits - 1);
  }

  /// Worst-case relative error of value_at(index_of(v)) vs v.
  [[nodiscard]] double max_relative_error() const noexcept {
    return 1.0 / static_cast<double>(half_count());
  }

  /// Cell index for a sample.  Values of bit-width <= sub_bucket_bits are
  /// exact (index == value); larger values are linear within their octave.
  [[nodiscard]] TSCE_HOT std::size_t index_of(std::uint64_t v) const noexcept {
    const int w = static_cast<int>(std::bit_width(v));
    if (w <= sub_bucket_bits) return static_cast<std::size_t>(v);
    int bucket = w - sub_bucket_bits;
    const int max_bucket = max_value_bits - sub_bucket_bits;
    if (bucket > max_bucket) {  // saturate: clamp into the top cell
      return counts_len - 1;
    }
    return static_cast<std::size_t>(bucket) * half_count() +
           static_cast<std::size_t>(v >> bucket);
  }

  /// Highest value that maps to \p index (the bucket's upper edge, used as
  /// the quantile estimate so estimates never undershoot the true value).
  [[nodiscard]] std::uint64_t value_at(std::size_t index) const noexcept {
    const std::size_t full = half_count() * 2;
    if (index < full) return index;  // exact range
    const std::size_t bucket = index / half_count() - 1;
    const std::size_t sub = index - bucket * half_count();
    return ((static_cast<std::uint64_t>(sub) + 1) << bucket) - 1;
  }
};

/// Merged (or single-shard) histogram value: plain integers, freely copyable.
struct HdrSnapshot {
  HdrLayout layout;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;

  explicit HdrSnapshot(HdrLayout l = HdrLayout::make(2, 47))
      : layout(l), counts(l.counts_len, 0) {}

  /// Value at quantile \p q in [0, 1]: the upper edge of the cell holding the
  /// ceil(q * count)-th sample (exact rank; bounded-relative-error value).
  /// q = 1 returns the exact recorded max; count == 0 returns 0.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Elementwise sum; both operands must share a layout.  Associative and
  /// commutative, so any merge tree over the same shards is byte-identical.
  void merge(const HdrSnapshot& other);

  /// {"count","sum","min","max","mean","p50","p90","p99","p999",
  ///  "sig_digits","rel_err","buckets":[{"le","n"},...]} — buckets sparse.
  [[nodiscard]] util::Json to_json() const;
};

/// Single-writer histogram shard.  record() is wait-free for the owning
/// thread; snapshot()/merge_into() may run concurrently from any thread
/// (relaxed reads, so in-flight records may be missed, never torn).
class HdrHistogram {
 public:
  explicit HdrHistogram(int significant_digits = 2, int max_value_bits = 47);

  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  [[nodiscard]] const HdrLayout& layout() const noexcept { return layout_; }

  TSCE_HOT void record(std::uint64_t v) noexcept {
    bump(cells_[layout_.index_of(v)], 1);
    bump(count_, 1);
    bump(sum_, v);
    if (v < min_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
    }
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  /// Records \p v \p n times (one cell bump — used when folding pre-tallied
  /// per-object counts into a shard).
  void record_n(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0) return;
    bump(cells_[layout_.index_of(v)], n);
    bump(count_, n);
    bump(sum_, v * n);
    if (v < min_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
    }
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Copies this shard into a plain snapshot (relaxed reads).
  [[nodiscard]] HdrSnapshot snapshot() const;

  /// Adds this shard's cells into \p out (same layout required).
  void merge_into(HdrSnapshot& out) const;

  /// Zeroes every cell.  Safe to call from a non-owner thread only while the
  /// owner is quiescent (test/reset paths, under the registry lock).
  void reset() noexcept;

 private:
  static void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n) noexcept {
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  HdrLayout layout_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace tsce::obs
