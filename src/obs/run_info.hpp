/// \file run_info.hpp
/// Run provenance: which build produced a bench JSON or trace, and with what
/// inputs.
///
/// Every machine-readable artifact (bench JSON via bench/harness, trace
/// headers via obs::trace_open, metrics snapshots) carries a RunInfo block so
/// a number in BENCH_*.json is attributable to a git state, build
/// configuration, seed, and scenario parameters.  Build-identity fields are
/// stamped at CMake configure time (re-run cmake after committing to refresh
/// the sha; a stale stamp is reported as "<sha>-stale" when the work tree
/// changed underneath — we keep it simple and only record the configure-time
/// value).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace tsce::obs {

struct RunInfo {
  // Build identity (filled by current() from configure-time stamps).
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  std::string sanitize;         ///< TSCE_SANITIZE value, empty when off
  bool tracing_compiled = false;

  // Run identity (filled by the caller).
  std::uint64_t seed = 0;
  std::size_t threads = 1;
  /// Free-form scenario parameters, serialized in insertion order
  /// (e.g. {"scenario","highly_loaded"}, {"machines","6"}).
  std::vector<std::pair<std::string, std::string>> params;

  void set_param(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }
  void set_param(std::string key, std::int64_t value) {
    params.emplace_back(std::move(key), std::to_string(value));
  }

  /// Build-identity fields populated; run-identity fields at defaults.
  [[nodiscard]] static RunInfo current();

  [[nodiscard]] util::Json to_json() const;
};

}  // namespace tsce::obs
