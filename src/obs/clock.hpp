/// \file clock.hpp
/// A cycle-counter clock for per-request latency instrumentation.
///
/// The always-on observability layer (HdrHistogram latency spine, flight
/// recorder) timestamps individual decodes and commits, so the clock read has
/// to cost single-digit nanoseconds: std::chrono::steady_clock goes through
/// the vDSO (~20-25 ns per read), which doubles the budget of a two-read
/// latency sample.  clock_ticks() reads the hardware cycle counter instead
/// (rdtsc on x86-64, cntvct_el0 on aarch64; both are constant-rate on every
/// deployment target) and falls back to steady_clock elsewhere.
///
/// Ticks are converted to nanoseconds through a ratio calibrated once per
/// process against steady_clock (ticks_per_ns()); the calibration spin costs
/// a few milliseconds on first use, so hot paths should never be the first
/// caller — obs initialization (registry handle resolution, flight-recorder
/// configuration) triggers it eagerly.
///
/// Tick values are wall-clock measurements and therefore nondeterministic;
/// nothing derived from them may feed search decisions (the determinism
/// auditor runs with this instrumentation enabled and stays byte-identical
/// because latencies are only ever *recorded*, never branched on).

#pragma once

#include <cstdint>

#if !defined(__x86_64__) && !defined(__aarch64__)
#include <chrono>
#endif

namespace tsce::obs {

/// Raw monotonic cycle-counter read.  Wait-free, no syscall.
inline std::uint64_t clock_ticks() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Calibrated tick rate (ticks per nanosecond).  First call spins ~2 ms
/// against steady_clock; later calls return the cached ratio.
[[nodiscard]] double ticks_per_ns() noexcept;

/// Converts a tick delta to nanoseconds through the calibrated ratio.
[[nodiscard]] inline std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) / ticks_per_ns());
}

/// Converts a nanosecond threshold to ticks (for watermark comparisons on the
/// hot path, so the per-event check is one integer compare).
[[nodiscard]] inline std::uint64_t ns_to_ticks(std::uint64_t ns) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ns) * ticks_per_ns());
}

}  // namespace tsce::obs
