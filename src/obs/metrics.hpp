/// \file metrics.hpp
/// Process-wide registry of cheap, thread-locally aggregated metrics.
///
/// Instrumented code asks the registry once for a handle (Counter, MaxGauge,
/// Histogram) and then updates it on the hot path; every update touches only
/// the calling thread's shard (a plain relaxed load/store on a cache line no
/// other thread writes), so there is no contention and no lock.  snapshot()
/// folds all live shards plus the tallies of exited threads into one JSON
/// document; the thread-pool's queue/latency statistics (owned by util, which
/// obs sits above) are folded into the same snapshot.
///
/// Registration is bounded (kMaxCounters/kMaxGauges/kMaxHistograms) so shard
/// storage is a fixed-size block and handle references stay stable for the
/// process lifetime.  Metric names are dotted paths ("decode.calls",
/// "session.reject.latency").
///
/// Hot-path modules that already keep local tallies (e.g. DecodeContext's
/// lifetime counters) act as their own "shard": they fold into the registry's
/// counters when the object dies, keeping their inner loops untouched.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace tsce::obs {

class MetricsRegistry;

/// Monotonic counter.  add() is wait-free: one relaxed load+store on the
/// calling thread's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t index) noexcept : index_(index) {}
  std::uint32_t index_;
};

/// Running-maximum gauge (e.g. peak queue depth).
class MaxGauge {
 public:
  void observe(std::uint64_t v) noexcept;

 private:
  friend class MetricsRegistry;
  explicit MaxGauge(std::uint32_t index) noexcept : index_(index) {}
  std::uint32_t index_;
};

/// HDR (log-linear) histogram of non-negative integer samples with bounded
/// relative error: 2 significant decimal digits (128 linear sub-buckets per
/// octave, 1.56% worst-case error) up to 2^47, tracking exact count, sum,
/// min, and max alongside the buckets.  Snapshots expose
/// p50/p90/p99/p999/mean; see obs/histogram.hpp for the bucket math.
///
/// record() is wait-free after the calling thread's first record on any
/// histogram (which allocates the thread's HDR shard in a cold helper).
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::uint32_t index) noexcept : index_(index) {}
  std::uint32_t index_;
};

class MetricsRegistry {
 public:
  /// Opaque state, defined in metrics.cpp (public so the per-thread shard
  /// machinery in that file's anonymous namespace can name it).
  struct Impl;

  static constexpr std::size_t kMaxCounters = 64;
  static constexpr std::size_t kMaxGauges = 32;
  static constexpr std::size_t kMaxHistograms = 32;

  [[nodiscard]] static MetricsRegistry& instance();

  /// Returns the handle registered under \p name, creating it on first use.
  /// Handles are process-lifetime references.  Throws std::length_error when
  /// the fixed capacity is exhausted.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] MaxGauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Folds every thread's shard (live and exited) into one JSON document:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "thread_pool": {...}}.  Histogram entries carry HdrSnapshot::to_json
  /// output (count/sum/min/max/mean/p50/p90/p99/p999 + sparse buckets).
  /// Concurrent updates are allowed (relaxed reads may miss in-flight
  /// increments).  The fold is an elementwise sum, so for deterministically
  /// valued metrics the document is byte-identical regardless of how samples
  /// were spread across threads.
  [[nodiscard]] util::Json snapshot();

  /// Zeroes every metric (including thread-pool stats).  Test-only: callers
  /// must ensure no other thread is updating metrics concurrently.
  void reset();

 private:
  MetricsRegistry();

  /// Linear find-or-create under the registry lock (handle classes befriend
  /// only this class, so construction must happen inside a member).
  template <typename Handle>
  static Handle& find_or_add(std::vector<std::string>& names,
                             std::vector<Handle>& handles, std::size_t capacity,
                             std::string_view name, const char* kind);

  Impl* impl_;  // intentionally leaked singleton state (no static-destruction order issues)
};

}  // namespace tsce::obs
