/// \file flight_recorder.hpp
/// Always-on, fixed-cost flight recorder for the service-era hot path.
///
/// The JSONL tracer (trace.hpp) is all-or-nothing: either every span is
/// serialized to disk (unaffordable at millions of decodes per second) or
/// nothing is recorded and a latency spike leaves no evidence.  The flight
/// recorder fills the gap: every thread owns a fixed-size ring of binary
/// trace events that is ALWAYS recording — one event is a timestamp read plus
/// four relaxed stores (~3-5 ns), no branch on any runtime gate — and the
/// ring simply overwrites its oldest entries.  When something goes wrong the
/// recent past is still in memory and can be dumped to JSONL:
///
///   * on demand        — flight_recorder_dump(path),
///   * on SIGUSR1       — install_signal_trigger() + poll() from any
///                        housekeeping tick (the metrics exporter polls),
///   * on an anomaly    — a decode slower than the configured watermark or a
///                        run of consecutive rejected commits triggers one
///                        automatic dump to the configured path, capturing
///                        the event window surrounding the anomaly.
///
/// Events are binary and schema-fixed (FrEvent: tick timestamp, kind, tid,
/// three payload words); the dump converts ticks to seconds, labels each kind
/// with its registered name from names.hpp, names its payload fields, and
/// emits trace-compatible JSONL (header record with RunInfo provenance, then
/// one event record per line, sorted by timestamp) that tools/trace_report
/// consumes directly.
///
/// End-of-life ordering: when a thread retires (e.g. a ThreadPool worker
/// joined mid-run), its ring folds into a global retired ring under the
/// recorder lock, so a later dump still contains the retired thread's events
/// — the same fold-on-retire contract the metrics registry shards follow.
///
/// Concurrency: ring slots are relaxed atomics written only by the owning
/// thread; a concurrent dump reads them without tearing individual words.
/// The recorder never allocates on the record path (rings are created by a
/// cold first-touch helper, exactly like metrics shards).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tsce::obs {

/// Event vocabulary.  Every kind has a dotted name in names.hpp (kFr*) and
/// field labels for its payload words (see flight_recorder.cpp).
enum class FrKind : std::uint16_t {
  kDecode = 0,        ///< a0 = latency ns, a1 = prefix reused, a2 = deployed
  kCommitReject = 1,  ///< a0 = string id, a1 = violation class, a2 = streak
  kUncommit = 2,      ///< a0 = latency ns, a1 = strings uncommitted
  kRemap = 3,         ///< a0 = latency ns, a1 = migrations, a2 = dropped
  kAnomaly = 4,       ///< a0 = anomaly code, a1 = value, a2 = watermark
  kMark = 5,          ///< user-defined payload (tests, bench phase marks)
};
inline constexpr std::size_t kFrKindCount = 6;

/// Anomaly codes carried in kAnomaly's first payload word.
enum class FrAnomaly : std::uint64_t {
  kSlowDecode = 1,   ///< decode latency exceeded the watermark
  kRejectBurst = 2,  ///< consecutive rejected commits exceeded the watermark
};

struct FlightRecorderConfig {
  /// Events retained per thread; rounded up to a power of two.  The retired
  /// sink keeps 4x this many events across all retired threads.
  std::size_t ring_capacity = 4096;
  /// Decode latency (ns) above which an anomaly fires.  0 disables.
  std::uint64_t decode_latency_watermark_ns = 0;
  /// Consecutive rejected commits on one thread above which an anomaly
  /// fires.  0 disables.  (Rejections are normal during search — bursts are
  /// only anomalous for admission-style request streams, so this defaults
  /// off.)
  std::uint32_t reject_burst_watermark = 0;
  /// Where an anomaly- or signal-triggered dump lands.  Empty disables
  /// automatic dumps (anomaly events are still recorded in the ring).
  std::string auto_dump_path;
};

/// Installs \p config process-wide.  Not thread-safe against concurrent
/// recording; call during startup (harness flag parsing, test SetUp).
void flight_recorder_configure(const FlightRecorderConfig& config);
[[nodiscard]] const FlightRecorderConfig& flight_recorder_config() noexcept;

/// Records one event into the calling thread's ring.  Wait-free after the
/// thread's first event (which allocates its ring in a cold helper).
void flight_recorder_record(FrKind kind, std::uint64_t a0, std::uint64_t a1 = 0,
                            std::uint64_t a2 = 0) noexcept;

/// Records a decode event and fires the slow-decode anomaly when \p ns
/// exceeds the configured watermark.
void flight_recorder_note_decode(std::uint64_t ns, std::uint64_t prefix_reused,
                                 std::uint64_t deployed) noexcept;

/// Records a rejected commit, advancing the calling thread's reject streak
/// and firing the reject-burst anomaly at the watermark; a successful commit
/// resets the streak via flight_recorder_note_commit_ok().
void flight_recorder_note_reject(std::uint64_t string_id,
                                 std::uint64_t violation) noexcept;
void flight_recorder_note_commit_ok() noexcept;

/// Dumps every live and retired ring as JSONL (header + ts-sorted events).
/// Returns false on I/O failure.
bool flight_recorder_dump(const std::string& path);

/// Number of dumps performed so far (manual + triggered).
[[nodiscard]] std::uint64_t flight_recorder_dump_count() noexcept;

/// Installs a SIGUSR1 handler that requests a dump; the dump itself runs at
/// the next poll() (signal handlers cannot do file I/O safely).
void flight_recorder_install_signal_trigger();

/// Executes any pending signal-requested dump to the configured
/// auto_dump_path.  Cheap when nothing is pending; the metrics exporter
/// calls this every tick.
void flight_recorder_poll();

/// Total events ever recorded (live + retired + overwritten).
[[nodiscard]] std::uint64_t flight_recorder_events_recorded() noexcept;

/// Drops all buffered events and trigger state (test-only; callers must
/// ensure no thread is recording concurrently).
void flight_recorder_reset();

/// Dotted event name for \p kind (registered in names.hpp).
[[nodiscard]] std::string_view flight_recorder_kind_name(FrKind kind) noexcept;

}  // namespace tsce::obs
