#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "util/hot.hpp"
#include "util/thread_pool.hpp"

namespace tsce::obs {

namespace {

/// One thread's slice of every metric.  Only the owning thread writes it;
/// snapshot() reads it with relaxed loads.  Histogram shards are full HDR
/// histograms (21 KiB each), so they are allocated lazily on the owning
/// thread's first record of that metric rather than eagerly for all
/// kMaxHistograms slots.
struct Shard {
  std::array<std::atomic<std::uint64_t>, MetricsRegistry::kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, MetricsRegistry::kMaxGauges> gauge_max{};
  std::array<std::atomic<HdrHistogram*>, MetricsRegistry::kMaxHistograms> hists{};
};

/// Owner-thread single-writer increment: no RMW, no lock prefix.
inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

inline void raise(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  if (v > cell.load(std::memory_order_relaxed)) {
    cell.store(v, std::memory_order_relaxed);
  }
}

}  // namespace

struct MetricsRegistry::Impl {
  std::mutex mu;  ///< guards names, handle storage, and the shard list
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::vector<Counter> counters;
  std::vector<MaxGauge> gauges;
  std::vector<Histogram> hists;
  std::vector<Shard*> live_shards;
  Shard retired;  ///< counter/gauge tallies folded in by exiting threads
  /// Histogram tallies of exited threads, pre-merged into plain snapshots
  /// (retiring a thread frees its 21 KiB-per-histogram shards).
  std::array<HdrSnapshot, kMaxHistograms> retired_hists;

  Impl() {
    counters.reserve(kMaxCounters);
    gauges.reserve(kMaxGauges);
    hists.reserve(kMaxHistograms);
  }

  void fold_and_remove(Shard* s) {
    std::lock_guard lock(mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      bump(retired.counters[i], s->counters[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < kMaxGauges; ++i) {
      raise(retired.gauge_max[i], s->gauge_max[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      HdrHistogram* h = s->hists[i].load(std::memory_order_relaxed);
      if (h != nullptr) {
        h->merge_into(retired_hists[i]);
        delete h;
      }
    }
    std::erase(live_shards, s);
    delete s;
  }
};

namespace {

MetricsRegistry::Impl* g_impl = nullptr;  // set once by instance()

/// Registers a fresh shard on first metric touch from a thread and folds it
/// into the retired totals when the thread exits.
struct ShardOwner {
  Shard* shard;
  ShardOwner() : shard(new Shard) {
    std::lock_guard lock(g_impl->mu);
    g_impl->live_shards.push_back(shard);
  }
  ~ShardOwner() { g_impl->fold_and_remove(shard); }
};

inline Shard& local_shard() {
  // instance() has necessarily run before any handle exists, so g_impl is set.
  static thread_local ShardOwner owner;
  return *owner.shard;
}

void zero(Shard& s) {
  for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : s.gauge_max) g.store(0, std::memory_order_relaxed);
  for (auto& h : s.hists) {
    if (HdrHistogram* hist = h.load(std::memory_order_relaxed)) hist->reset();
  }
}

/// Cold first-record path: allocates the calling thread's HDR shard for slot
/// \p index.  Kept out of line (and out of any TSCE_HOT body) so the steady-
/// state record path is provably allocation-free.
[[gnu::noinline]] HdrHistogram* ensure_hist(Shard& s,
                                            std::uint32_t index) {
  // First-touch only: one allocation per (thread, histogram-slot) lifetime,
  // deliberately noinline'd out of the TSCE_HOT record() body; the steady
  // state never reaches it.  tsce-lint: allow(transitive-hot-alloc)
  auto* h = new HdrHistogram();  // default geometry: 2 sig digits, 47 bits
  s.hists[index].store(h, std::memory_order_release);
  return h;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept { bump(local_shard().counters[index_], n); }

void MaxGauge::observe(std::uint64_t v) noexcept {
  raise(local_shard().gauge_max[index_], v);
}

TSCE_HOT void Histogram::record(std::uint64_t v) noexcept {
  Shard& s = local_shard();
  HdrHistogram* h = s.hists[index_].load(std::memory_order_relaxed);
  if (h == nullptr) h = ensure_hist(s, index_);
  h->record(v);
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl) { g_impl = impl_; }

MetricsRegistry& MetricsRegistry::instance() {
  // Allocates exactly once per process (function-local static, leaked on
  // purpose so shutdown order cannot destroy the registry under a recording
  // thread).  tsce-lint: allow(transitive-hot-alloc)
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

template <typename Handle>
Handle& MetricsRegistry::find_or_add(std::vector<std::string>& names,
                                     std::vector<Handle>& handles,
                                     std::size_t capacity, std::string_view name,
                                     const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return handles[i];
  }
  if (handles.size() == capacity) {
    throw std::length_error(std::string("MetricsRegistry: ") + kind +
                            " capacity exhausted registering '" + std::string(name) +
                            "'");
  }
  if (names.empty()) {
    // First registration sizes both vectors to the hard capacity, so the
    // registration path never reallocates even when reached from a hot frame.
    names.reserve(capacity);
    handles.reserve(capacity);
  }
  names.emplace_back(name);
  handles.push_back(Handle(static_cast<std::uint32_t>(handles.size())));
  return handles.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_add(impl_->counter_names, impl_->counters, kMaxCounters, name,
                     "counter");
}

MaxGauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_add(impl_->gauge_names, impl_->gauges, kMaxGauges, name, "gauge");
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return find_or_add(impl_->hist_names, impl_->hists, kMaxHistograms, name,
                     "histogram");
}

util::Json MetricsRegistry::snapshot() {
  std::lock_guard lock(impl_->mu);
  auto shards = impl_->live_shards;
  shards.push_back(&impl_->retired);

  util::Json counters = util::Json::object();
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const Shard* s : shards) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    counters.set(impl_->counter_names[i], static_cast<std::int64_t>(total));
  }

  util::Json gauges = util::Json::object();
  for (std::size_t i = 0; i < impl_->gauge_names.size(); ++i) {
    std::uint64_t peak = 0;
    for (const Shard* s : shards) {
      peak = std::max(peak, s->gauge_max[i].load(std::memory_order_relaxed));
    }
    gauges.set(impl_->gauge_names[i] + ".max", static_cast<std::int64_t>(peak));
  }

  util::Json hists = util::Json::object();
  for (std::size_t i = 0; i < impl_->hist_names.size(); ++i) {
    // Elementwise-sum merge: associative and commutative, so the folded
    // snapshot is byte-identical no matter how samples were sharded.
    HdrSnapshot merged = impl_->retired_hists[i];
    for (const Shard* s : impl_->live_shards) {
      if (const HdrHistogram* h = s->hists[i].load(std::memory_order_acquire)) {
        h->merge_into(merged);
      }
    }
    hists.set(impl_->hist_names[i], merged.to_json());
  }

  // The thread pool keeps its own raw tallies (util sits below obs); fold
  // them into the same snapshot so there is one metrics document.
  const util::ThreadPool::Stats& pool = util::ThreadPool::global_stats();
  util::Json pool_json = util::Json::object();
  const auto tasks = pool.tasks.load(std::memory_order_relaxed);
  const auto timed = pool.timed_tasks.load(std::memory_order_relaxed);
  pool_json.set("tasks", static_cast<std::int64_t>(tasks));
  pool_json.set("queue_depth.max", static_cast<std::int64_t>(
                                       pool.max_queue_depth.load(std::memory_order_relaxed)));
  pool_json.set("timed_tasks", static_cast<std::int64_t>(timed));
  pool_json.set("task_wait_ns.total", static_cast<std::int64_t>(
                                          pool.wait_ns_total.load(std::memory_order_relaxed)));
  pool_json.set("task_wait_ns.max", static_cast<std::int64_t>(
                                        pool.wait_ns_max.load(std::memory_order_relaxed)));
  pool_json.set("task_run_ns.total", static_cast<std::int64_t>(
                                         pool.run_ns_total.load(std::memory_order_relaxed)));
  pool_json.set("task_run_ns.mean",
                timed > 0 ? static_cast<double>(
                                pool.run_ns_total.load(std::memory_order_relaxed)) /
                                static_cast<double>(timed)
                          : 0.0);

  util::Json doc = util::Json::object();
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(hists));
  doc.set("thread_pool", std::move(pool_json));
  return doc;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(impl_->mu);
  for (Shard* s : impl_->live_shards) zero(*s);
  zero(impl_->retired);
  for (HdrSnapshot& h : impl_->retired_hists) h = HdrSnapshot();
  util::ThreadPool::global_stats().reset();
}

}  // namespace tsce::obs
