/// \file trace.hpp
/// Structured JSONL tracing for the search allocators and bench harnesses.
///
/// Records are newline-delimited JSON objects:
///   {"t":"header","version":1,"run_info":{...}}          — once, at open
///   {"t":"span","name":..,"tid":..,"ts":..,"dur":..,"f":{..}}
///   {"t":"event","name":..,"tid":..,"ts":..,"f":{..}}
/// Timestamps are steady-clock seconds relative to trace_open.  Spans carry a
/// "phase" field by convention so tools/trace_report can group the same span
/// kind ("search.trial") per strategy.
///
/// Gating is two-level:
///  * Compile time: the CMake option TSCE_TRACING=OFF defines
///    TSCE_TRACING_ENABLED=0 and this header degrades to empty inline stubs —
///    Span becomes an empty class, tracing_active() a constexpr false, so
///    every `if (tracing_active())` call site is dead code and the tracer
///    contributes zero instructions (verified by the configure-time
///    tracing_elided_check).
///  * Run time: even when compiled in, nothing is recorded until trace_open()
///    installs an output file (the harnesses' `--trace <path>`); the inactive
///    cost of a span or event is one relaxed atomic load.
///
/// Threading: each thread serializes records into its own buffer (no lock);
/// the buffer is flushed to the shared file (under the file lock) when the
/// thread closes its outermost span, when it grows past a threshold, or when
/// the thread exits.  trace_close() flushes every registered buffer and must
/// be called after worker pools have been joined (the bench harnesses satisfy
/// this by construction: BatchEvaluator/ThreadPool are destroyed before the
/// harness returns).

#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#include "obs/run_info.hpp"

#ifndef TSCE_TRACING_ENABLED
#define TSCE_TRACING_ENABLED 1
#endif

namespace tsce::obs {

inline constexpr bool kTracingCompiledIn = TSCE_TRACING_ENABLED != 0;

/// One record field: a key plus a numeric or string value.  No allocation —
/// keys and string values must outlive the call (they are serialized
/// immediately), which string literals and local std::strings do.
struct Field {
  std::string_view key;
  double num = 0.0;
  std::string_view str{};
  bool is_str = false;

  constexpr Field(std::string_view k, double v) noexcept : key(k), num(v) {}
  constexpr Field(std::string_view k, std::int64_t v) noexcept
      : key(k), num(static_cast<double>(v)) {}
  constexpr Field(std::string_view k, std::uint64_t v) noexcept
      : key(k), num(static_cast<double>(v)) {}
  constexpr Field(std::string_view k, int v) noexcept
      : key(k), num(static_cast<double>(v)) {}
  constexpr Field(std::string_view k, unsigned v) noexcept
      : key(k), num(static_cast<double>(v)) {}
  constexpr Field(std::string_view k, std::string_view v) noexcept
      : key(k), str(v), is_str(true) {}
  constexpr Field(std::string_view k, const char* v) noexcept
      : key(k), str(v), is_str(true) {}
};

#if TSCE_TRACING_ENABLED

/// True between a successful trace_open() and trace_close().
[[nodiscard]] bool tracing_active() noexcept;

/// Opens \p path for writing and emits the header record.  Returns false on
/// I/O failure or when a trace is already open.
bool trace_open(const std::string& path, const RunInfo& info);

/// Flushes every thread buffer and closes the file.  Call after worker
/// threads have been joined; records appended concurrently may be dropped.
void trace_close();

/// Emits an instantaneous event record.
void trace_event(std::string_view name, std::initializer_list<Field> fields);

/// RAII span: records name, start timestamp, and duration on destruction.
/// Fields can be attached at construction or accumulated via add() before the
/// span closes.  Spans are intended for phase granularity (a GA trial, a
/// restart, one bench run) — never the per-candidate decode path.
class Span {
 public:
  explicit Span(std::string_view name);
  Span(std::string_view name, std::initializer_list<Field> fields);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void add(std::string_view key, double v);
  void add(std::string_view key, std::string_view v);

 private:
  bool active_ = false;
  double start_ = 0.0;
  std::string name_;
  std::string fields_;  ///< pre-serialized ,"k":v fragments
};

#else  // TSCE_TRACING_ENABLED == 0: fully elided surface

constexpr bool tracing_active() noexcept { return false; }
inline bool trace_open(const std::string&, const RunInfo&) { return false; }
inline void trace_close() {}
inline void trace_event(std::string_view, std::initializer_list<Field>) {}

class Span {
 public:
  explicit Span(std::string_view) {}
  Span(std::string_view, std::initializer_list<Field>) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void add(std::string_view, double) {}
  void add(std::string_view, std::string_view) {}
};

#endif  // TSCE_TRACING_ENABLED

}  // namespace tsce::obs
