#include "obs/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace tsce::obs {

HdrLayout HdrLayout::make(int digits, int value_bits) noexcept {
  HdrLayout layout;
  layout.significant_digits = std::clamp(digits, 1, 3);
  // Smallest power of two holding 10^digits linear sub-buckets: 1 -> 16,
  // 2 -> 128, 3 -> 1024.
  int pow10 = 1;
  for (int d = 0; d < layout.significant_digits; ++d) pow10 *= 10;
  layout.sub_bucket_bits =
      std::bit_width(static_cast<unsigned>(pow10 - 1));
  layout.max_value_bits =
      std::clamp(value_bits, layout.sub_bucket_bits + 1, 63);
  const std::size_t half = layout.half_count();
  const std::size_t buckets =
      static_cast<std::size_t>(layout.max_value_bits - layout.sub_bucket_bits);
  layout.counts_len = buckets * half + half * 2;
  return layout;
}

std::uint64_t HdrSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // The top cell's upper edge can exceed the true max; the exact max is
      // tracked separately, so clamp the estimate to it.
      return std::min(layout.value_at(i), max);
    }
  }
  return max;
}

void HdrSnapshot::merge(const HdrSnapshot& other) {
  assert(counts.size() == other.counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

util::Json HdrSnapshot::to_json() const {
  util::Json h = util::Json::object();
  h.set("count", static_cast<std::int64_t>(count));
  h.set("sum", static_cast<std::int64_t>(sum));
  h.set("min", static_cast<std::int64_t>(count == 0 ? 0 : min));
  h.set("max", static_cast<std::int64_t>(max));
  h.set("mean", count > 0
                    ? static_cast<double>(sum) / static_cast<double>(count)
                    : 0.0);
  h.set("p50", static_cast<std::int64_t>(quantile(0.50)));
  h.set("p90", static_cast<std::int64_t>(quantile(0.90)));
  h.set("p99", static_cast<std::int64_t>(quantile(0.99)));
  h.set("p999", static_cast<std::int64_t>(quantile(0.999)));
  h.set("sig_digits", static_cast<std::int64_t>(layout.significant_digits));
  h.set("rel_err", layout.max_relative_error());
  util::Json bs = util::Json::array();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    util::Json entry = util::Json::object();
    entry.set("le", static_cast<std::int64_t>(layout.value_at(i)));
    entry.set("n", static_cast<std::int64_t>(counts[i]));
    bs.push_back(std::move(entry));
  }
  h.set("buckets", std::move(bs));
  return h;
}

HdrHistogram::HdrHistogram(int significant_digits, int max_value_bits)
    : layout_(HdrLayout::make(significant_digits, max_value_bits)),
      cells_(new std::atomic<std::uint64_t>[layout_.counts_len]) {
  for (std::size_t i = 0; i < layout_.counts_len; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

HdrSnapshot HdrHistogram::snapshot() const {
  HdrSnapshot out(layout_);
  merge_into(out);
  return out;
}

void HdrHistogram::merge_into(HdrSnapshot& out) const {
  assert(out.counts.size() == layout_.counts_len);
  for (std::size_t i = 0; i < layout_.counts_len; ++i) {
    out.counts[i] += cells_[i].load(std::memory_order_relaxed);
  }
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n > 0) {
    const std::uint64_t lo = min_.load(std::memory_order_relaxed);
    out.min = out.count == 0 ? lo : std::min(out.min, lo);
    out.max = std::max(out.max, max_.load(std::memory_order_relaxed));
  }
  out.count += n;
  out.sum += sum_.load(std::memory_order_relaxed);
}

void HdrHistogram::reset() noexcept {
  for (std::size_t i = 0; i < layout_.counts_len; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace tsce::obs
