/// \file exporter.hpp
/// Cadence-based time-series export of MetricsRegistry snapshots.
///
/// The registry's snapshot() is a point-in-time fold; long runs (service
/// soak, bench sweeps) want the *trajectory* — throughput ramps, tail-latency
/// drift, reject bursts — which means sampling the registry on a cadence and
/// persisting every sample.  MetricsExporter owns that loop: a background
/// thread wakes every period, snapshots the registry, stamps the sample with
/// a sequence number and seconds-since-start, and appends it to the output.
///
/// Two formats:
///   * kJsonl        — append-only series: one header record carrying RunInfo
///                     provenance, then one {"t":"sample","seq","t_s",
///                     "metrics":{...}} record per tick.  This is the format
///                     tools/trace_report --metrics-series folds into
///                     throughput / tail-latency tables and CSV.
///   * kOpenMetrics  — the file is rewritten every tick as an OpenMetrics
///                     text exposition (counters as _total, histograms as
///                     _count/_sum plus quantile samples, terminated by
///                     "# EOF") for scrape-style collection.
///
/// Each tick also calls flight_recorder_poll(), so a SIGUSR1-requested flight
/// recorder dump is serviced within one export period — the exporter doubles
/// as the process's observability housekeeping tick.
///
/// The exporter only *reads* telemetry; it never updates a metric or records
/// an event, so its background thread creates no registry shard or recorder
/// ring and cannot perturb determinism-audited runs.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "util/json.hpp"

namespace tsce::obs {

struct MetricsExporterConfig {
  enum class Format { kJsonl, kOpenMetrics };

  std::string path;
  Format format = Format::kJsonl;
  std::uint32_t period_ms = 1000;
};

class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExporterConfig config);
  ~MetricsExporter();  // implies stop()

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Opens the output (JSONL: writes the RunInfo header) and starts the
  /// sampler thread.  Returns false when the file cannot be opened or the
  /// exporter is already running.
  bool start();

  /// Takes one final sample, stops the thread, and closes the output.
  /// Idempotent.
  void stop();

  /// Takes one sample synchronously (also called by the sampler thread).
  /// Requires start(); returns false when not running or on I/O failure.
  bool export_once();

  /// Samples written so far.
  [[nodiscard]] std::uint64_t samples() const noexcept;

  [[nodiscard]] const MetricsExporterConfig& config() const noexcept {
    return config_;
  }

 private:
  void run();
  bool write_sample_locked(const util::Json& metrics, double t_s);

  MetricsExporterConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::FILE* file_ = nullptr;  // JSONL appends; OpenMetrics reopens per tick
  bool running_ = false;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace tsce::obs
