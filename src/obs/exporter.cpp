#include "obs/exporter.hpp"

#include <cinttypes>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/run_info.hpp"

namespace tsce::obs {

namespace {

/// OpenMetrics sample names: dots become underscores, everything outside
/// [a-zA-Z0-9_] is dropped.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      out += c;
    } else if (c == '.') {
      out += '_';
    }
  }
  return out;
}

void append_sample(std::string& out, const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %.17g\n", value);
  out += name;
  out += buf;
}

/// Renders one registry snapshot as an OpenMetrics text exposition.
std::string render_openmetrics(const util::Json& metrics) {
  std::string out;
  if (metrics.contains("counters")) {
    for (const auto& [name, v] : metrics.at("counters").as_object()) {
      const std::string m = "tsce_" + sanitize(name);
      out += "# TYPE " + m + " counter\n";
      append_sample(out, m + "_total", v.as_number());
    }
  }
  if (metrics.contains("gauges")) {
    for (const auto& [name, v] : metrics.at("gauges").as_object()) {
      const std::string m = "tsce_" + sanitize(name);
      out += "# TYPE " + m + " gauge\n";
      append_sample(out, m, v.as_number());
    }
  }
  if (metrics.contains("histograms")) {
    for (const auto& [name, h] : metrics.at("histograms").as_object()) {
      const std::string m = "tsce_" + sanitize(name);
      out += "# TYPE " + m + " summary\n";
      append_sample(out, m + "_count", h.at("count").as_number());
      append_sample(out, m + "_sum", h.at("sum").as_number());
      for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
        const std::string key =
            q == std::string_view("0.5")    ? "p50"
            : q == std::string_view("0.9")  ? "p90"
            : q == std::string_view("0.99") ? "p99"
                                            : "p999";
        if (!h.contains(key)) continue;
        append_sample(out, m + "{quantile=\"" + q + "\"}",
                      h.at(key).as_number());
      }
      if (h.contains("max")) append_sample(out, m + "_max", h.at("max").as_number());
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterConfig config)
    : config_(std::move(config)) {}

MetricsExporter::~MetricsExporter() { stop(); }

bool MetricsExporter::start() {
  std::unique_lock lock(mu_);
  if (running_) return false;
  if (config_.format == MetricsExporterConfig::Format::kJsonl) {
    file_ = std::fopen(config_.path.c_str(), "w");
    if (file_ == nullptr) return false;
    const std::string header =
        "{\"t\":\"header\",\"version\":1,\"exporter\":\"metrics\","
        "\"period_ms\":" +
        std::to_string(config_.period_ms) +
        ",\"run_info\":" + RunInfo::current().to_json().dump() + "}\n";
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fflush(file_);
  }
  running_ = true;
  stop_requested_ = false;
  seq_ = 0;
  t0_ = std::chrono::steady_clock::now();
  lock.unlock();
  thread_ = std::thread([this] { run(); });
  return true;
}

void MetricsExporter::run() {
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.period_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    flight_recorder_poll();
    export_once();
    lock.lock();
  }
}

bool MetricsExporter::export_once() {
  util::Json metrics;
  {
    std::lock_guard lock(mu_);
    if (!running_) return false;
  }
  // Snapshot outside mu_ so a slow registry fold never delays stop().
  metrics = MetricsRegistry::instance().snapshot();
  std::lock_guard lock(mu_);
  if (!running_) return false;
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  return write_sample_locked(metrics, t_s);
}

bool MetricsExporter::write_sample_locked(const util::Json& metrics,
                                          double t_s) {
  if (config_.format == MetricsExporterConfig::Format::kJsonl) {
    if (file_ == nullptr) return false;
    char prefix[96];
    std::snprintf(prefix, sizeof prefix,
                  "{\"t\":\"sample\",\"seq\":%" PRIu64 ",\"t_s\":%.6f,"
                  "\"metrics\":",
                  seq_, t_s);
    const std::string line =
        std::string(prefix) + metrics.dump() + "}\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
      return false;
    }
    std::fflush(file_);
  } else {
    // OpenMetrics exposition is a point-in-time scrape: rewrite the file.
    std::FILE* f = std::fopen(config_.path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = render_openmetrics(metrics);
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) return false;
  }
  ++seq_;
  return true;
}

void MetricsExporter::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so short runs (shorter than one period) still export data.
  export_once();
  std::lock_guard lock(mu_);
  running_ = false;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::uint64_t MetricsExporter::samples() const noexcept {
  std::lock_guard lock(mu_);
  return seq_;
}

}  // namespace tsce::obs
