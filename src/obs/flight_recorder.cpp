#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/names.hpp"
#include "obs/run_info.hpp"

namespace tsce::obs {

namespace {

/// One ring slot.  Words are individually-relaxed atomics: the owning thread
/// is the only writer, so a concurrent dump can read a torn *event* (mixed
/// old/new words while the owner overwrites the slot) but never a torn word.
/// Torn events are limited to the single slot at the write head.
struct Slot {
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> meta{0};  // kind << 32 | tid
  std::atomic<std::uint64_t> a0{0};
  std::atomic<std::uint64_t> a1{0};
  std::atomic<std::uint64_t> a2{0};
};

struct Ring {
  std::unique_ptr<Slot[]> slots;
  std::size_t mask = 0;                 // capacity - 1 (capacity is pow2)
  std::atomic<std::uint64_t> head{0};   // total events written by the owner
  std::uint32_t tid = 0;
};

/// Plain-value event used for the retired sink and dump staging.
struct PlainEvent {
  std::uint64_t ts = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
  std::uint32_t tid = 0;
  std::uint16_t kind = 0;
};

/// Global recorder state, leaked so thread-exit folds from late threads never
/// race static destruction (same pattern as the tracer and the registry).
struct FrState {
  std::mutex mu;
  FlightRecorderConfig config;
  std::vector<Ring*> live;
  std::vector<PlainEvent> retired;       // newest-last, bounded
  std::uint64_t retired_recorded = 0;    // total events from retired threads
  std::uint64_t t0_ticks = clock_ticks();
};

FrState& state() {
  static FrState* s = new FrState;
  return *s;
}

// Watermarks mirrored into atomics so the hot-path checks never take the
// configuration lock.
std::atomic<std::uint64_t> g_decode_watermark_ns{0};
std::atomic<std::uint32_t> g_reject_watermark{0};
std::atomic<bool> g_anomaly_fired{false};
std::atomic<std::uint64_t> g_dump_count{0};
std::atomic<std::uint32_t> g_next_tid{0};
volatile std::sig_atomic_t g_signal_pending = 0;

void copy_ring_into(const Ring& ring, std::vector<PlainEvent>& out) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.mask + 1;
  const std::uint64_t n = std::min(head, cap);
  for (std::uint64_t i = head - n; i < head; ++i) {
    const Slot& s = ring.slots[i & ring.mask];
    PlainEvent e;
    e.ts = s.ts.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<std::uint16_t>(meta >> 32);
    e.tid = static_cast<std::uint32_t>(meta);
    e.a0 = s.a0.load(std::memory_order_relaxed);
    e.a1 = s.a1.load(std::memory_order_relaxed);
    e.a2 = s.a2.load(std::memory_order_relaxed);
    out.push_back(e);
  }
}

/// Owns the calling thread's ring; folds it into the retired sink on thread
/// exit so dumps taken after a worker retires still see its events.
struct RingOwner {
  std::unique_ptr<Ring> ring;

  RingOwner() {
    FrState& s = state();
    std::lock_guard lock(s.mu);
    ring = std::make_unique<Ring>();
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(
        std::size_t{16}, s.config.ring_capacity));
    ring->slots = std::make_unique<Slot[]>(cap);
    ring->mask = cap - 1;
    ring->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    s.live.push_back(ring.get());
  }

  ~RingOwner() {
    FrState& s = state();
    std::lock_guard lock(s.mu);
    copy_ring_into(*ring, s.retired);
    s.retired_recorded += ring->head.load(std::memory_order_relaxed);
    // Bound the retired sink: keep the newest 4x ring_capacity events.
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(
                                std::size_t{16}, s.config.ring_capacity)) *
                            4;
    if (s.retired.size() > cap) {
      s.retired.erase(s.retired.begin(),
                      s.retired.end() - static_cast<std::ptrdiff_t>(cap));
    }
    std::erase(s.live, ring.get());
  }
};

Ring& local_ring() {
  static thread_local RingOwner owner;
  return *owner.ring;
}

thread_local std::uint32_t t_reject_streak = 0;

/// Fires at most one automatic dump per process (until reset) so an anomaly
/// storm cannot turn the dump path into the bottleneck.
void trigger_auto_dump() {
  if (g_anomaly_fired.exchange(true, std::memory_order_relaxed)) return;
  std::string path;
  {
    FrState& s = state();
    std::lock_guard lock(s.mu);
    path = s.config.auto_dump_path;
  }
  if (!path.empty()) flight_recorder_dump(path);
}

struct KindDesc {
  std::string_view name;
  const char* f0;
  const char* f1;
  const char* f2;  // nullptr: field omitted from the dump
};

constexpr KindDesc kKinds[kFrKindCount] = {
    {names::kFrDecode, "ns", "reused", "deployed"},
    {names::kFrCommitReject, "string", "violation", "streak"},
    {names::kFrUncommit, "ns", "strings", nullptr},
    {names::kFrRemap, "ns", "migrations", "dropped"},
    {names::kFrAnomaly, "code", "value", "watermark"},
    {names::kFrMark, "a0", "a1", "a2"},
};

void append_event_line(std::string& out, const PlainEvent& e,
                       std::uint64_t t0_ticks) {
  const KindDesc& d =
      kKinds[e.kind < kFrKindCount ? e.kind : kFrKindCount - 1];
  const std::uint64_t rel =
      e.ts >= t0_ticks ? ticks_to_ns(e.ts - t0_ticks) : 0;
  char buf[320];
  int n;
  if (d.f2 != nullptr) {
    n = std::snprintf(buf, sizeof buf,
                      "{\"t\":\"event\",\"name\":\"%.*s\",\"tid\":%u,"
                      "\"ts\":%.9f,\"f\":{\"%s\":%llu,\"%s\":%llu,"
                      "\"%s\":%llu}}\n",
                      static_cast<int>(d.name.size()), d.name.data(), e.tid,
                      static_cast<double>(rel) * 1e-9, d.f0,
                      static_cast<unsigned long long>(e.a0), d.f1,
                      static_cast<unsigned long long>(e.a1), d.f2,
                      static_cast<unsigned long long>(e.a2));
  } else {
    n = std::snprintf(buf, sizeof buf,
                      "{\"t\":\"event\",\"name\":\"%.*s\",\"tid\":%u,"
                      "\"ts\":%.9f,\"f\":{\"%s\":%llu,\"%s\":%llu}}\n",
                      static_cast<int>(d.name.size()), d.name.data(), e.tid,
                      static_cast<double>(rel) * 1e-9, d.f0,
                      static_cast<unsigned long long>(e.a0), d.f1,
                      static_cast<unsigned long long>(e.a1));
  }
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

void flight_recorder_configure(const FlightRecorderConfig& config) {
  FrState& s = state();
  std::lock_guard lock(s.mu);
  s.config = config;
  g_decode_watermark_ns.store(config.decode_latency_watermark_ns,
                              std::memory_order_relaxed);
  g_reject_watermark.store(config.reject_burst_watermark,
                           std::memory_order_relaxed);
  // Pre-warm the tick-rate calibration off the hot path.
  (void)ticks_per_ns();
}

const FlightRecorderConfig& flight_recorder_config() noexcept {
  return state().config;
}

void flight_recorder_record(FrKind kind, std::uint64_t a0, std::uint64_t a1,
                            std::uint64_t a2) noexcept {
  Ring& r = local_ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Slot& slot = r.slots[h & r.mask];
  slot.ts.store(clock_ticks(), std::memory_order_relaxed);
  slot.meta.store(static_cast<std::uint64_t>(kind) << 32 | r.tid,
                  std::memory_order_relaxed);
  slot.a0.store(a0, std::memory_order_relaxed);
  slot.a1.store(a1, std::memory_order_relaxed);
  slot.a2.store(a2, std::memory_order_relaxed);
  r.head.store(h + 1, std::memory_order_release);
}

void flight_recorder_note_decode(std::uint64_t ns, std::uint64_t prefix_reused,
                                 std::uint64_t deployed) noexcept {
  flight_recorder_record(FrKind::kDecode, ns, prefix_reused, deployed);
  const std::uint64_t wm =
      g_decode_watermark_ns.load(std::memory_order_relaxed);
  if (wm != 0 && ns > wm) {
    flight_recorder_record(
        FrKind::kAnomaly,
        static_cast<std::uint64_t>(FrAnomaly::kSlowDecode), ns, wm);
    trigger_auto_dump();
  }
}

void flight_recorder_note_reject(std::uint64_t string_id,
                                 std::uint64_t violation) noexcept {
  const std::uint32_t streak = ++t_reject_streak;
  flight_recorder_record(FrKind::kCommitReject, string_id, violation, streak);
  const std::uint32_t wm = g_reject_watermark.load(std::memory_order_relaxed);
  if (wm != 0 && streak == wm) {
    flight_recorder_record(
        FrKind::kAnomaly,
        static_cast<std::uint64_t>(FrAnomaly::kRejectBurst), streak, wm);
    trigger_auto_dump();
  }
}

void flight_recorder_note_commit_ok() noexcept { t_reject_streak = 0; }

bool flight_recorder_dump(const std::string& path) {
  FrState& s = state();
  std::vector<PlainEvent> events;
  std::uint64_t t0;
  {
    std::lock_guard lock(s.mu);
    events.reserve(s.retired.size() + s.live.size() * 64);
    events.insert(events.end(), s.retired.begin(), s.retired.end());
    for (const Ring* r : s.live) copy_ring_into(*r, events);
    t0 = s.t0_ticks;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const PlainEvent& a, const PlainEvent& b) {
                     return a.ts < b.ts;
                   });
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string out = "{\"t\":\"header\",\"version\":1,\"recorder\":\"flight\","
                    "\"run_info\":" +
                    RunInfo::current().to_json().dump() + "}\n";
  for (const PlainEvent& e : events) append_event_line(out, e, t0);
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  g_dump_count.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::uint64_t flight_recorder_dump_count() noexcept {
  return g_dump_count.load(std::memory_order_relaxed);
}

void flight_recorder_install_signal_trigger() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, [](int) { g_signal_pending = 1; });
#endif
}

void flight_recorder_poll() {
  if (g_signal_pending == 0) return;
  g_signal_pending = 0;
  std::string path;
  {
    FrState& s = state();
    std::lock_guard lock(s.mu);
    path = s.config.auto_dump_path;
  }
  if (!path.empty()) flight_recorder_dump(path);
}

std::uint64_t flight_recorder_events_recorded() noexcept {
  FrState& s = state();
  std::lock_guard lock(s.mu);
  std::uint64_t total = s.retired_recorded;
  for (const Ring* r : s.live) {
    total += r->head.load(std::memory_order_relaxed);
  }
  return total;
}

void flight_recorder_reset() {
  FrState& s = state();
  std::lock_guard lock(s.mu);
  s.retired.clear();
  s.retired_recorded = 0;
  for (Ring* r : s.live) r->head.store(0, std::memory_order_relaxed);
  g_anomaly_fired.store(false, std::memory_order_relaxed);
  g_dump_count.store(0, std::memory_order_relaxed);
  g_signal_pending = 0;
  t_reject_streak = 0;
}

std::string_view flight_recorder_kind_name(FrKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return kKinds[i < kFrKindCount ? i : kFrKindCount - 1].name;
}

}  // namespace tsce::obs
