/// \file names.hpp
/// Single registry of every metric and trace-span/event name literal.
///
/// All dotted-path name literals passed to MetricsRegistry::counter/gauge/
/// histogram, obs::Span, and obs::trace_event live here as constexpr
/// string_views.  Call sites in src/ reference these constants; call sites in
/// bench/ and tools/ may keep inline literals, but tools/tsce_lint verifies
/// every such literal is declared in this file — so the full telemetry
/// vocabulary is greppable in one place and a typo ("decode.cals") fails the
/// lint instead of silently creating a second time series.
///
/// Naming convention: `<module>.<noun>[.<qualifier>]`, lower-case, dots as
/// separators.  Span/event names double as trace_report group keys.

#pragma once

#include <string_view>

namespace tsce::obs::names {

// --- decode engine counters (folded by DecodeContext on destruction) -------
inline constexpr std::string_view kDecodeCalls = "decode.calls";
inline constexpr std::string_view kDecodeCommitsAttempted = "decode.commits_attempted";
inline constexpr std::string_view kDecodeStringsReused = "decode.strings_reused";
inline constexpr std::string_view kDecodePrefixReuseLen = "decode.prefix_reuse_len";

// --- hot-path latency histograms (HDR, nanoseconds) -------------------------
// Wall-clock distributions; excluded from cross-thread-count byte-identity
// checks (see DESIGN.md §13).  Everything else in this file is
// deterministic-valued.
inline constexpr std::string_view kDecodeLatencyNs = "decode.latency_ns";
inline constexpr std::string_view kSessionCommitLatencyNs = "session.commit.latency_ns";
inline constexpr std::string_view kSessionUncommitLatencyNs = "session.uncommit.latency_ns";
inline constexpr std::string_view kDynamicRemapLatencyNs = "dynamic.remap.latency_ns";
inline constexpr std::string_view kLpSolveLatencyNs = "lp.solve.latency_ns";

// --- LP solver (src/lp simplex; counters are deterministic per input) -------
inline constexpr std::string_view kLpIterations = "lp.iterations";
inline constexpr std::string_view kLpRefactorisations = "lp.refactorisations";

// --- dynamic re-map (core/dynamic.cpp reallocate) ----------------------------
inline constexpr std::string_view kDynamicRemapCalls = "dynamic.remap.calls";
inline constexpr std::string_view kDynamicRemapRemapped = "dynamic.remap.remapped";
inline constexpr std::string_view kDynamicRemapDropped = "dynamic.remap.dropped";
inline constexpr std::string_view kDynamicRemapMigrations = "dynamic.remap.migrations";

// --- allocation-session constraint classification (eq. (1)) ----------------
inline constexpr std::string_view kSessionRejectUtilization = "session.reject.utilization";
inline constexpr std::string_view kSessionRejectThroughput = "session.reject.throughput";
inline constexpr std::string_view kSessionRejectLatency = "session.reject.latency";
inline constexpr std::string_view kSessionUncommitBatches = "session.uncommit.batches";
inline constexpr std::string_view kSessionUncommitStrings = "session.uncommit.strings";

// --- search spans and convergence events -----------------------------------
inline constexpr std::string_view kSearchTrial = "search.trial";
inline constexpr std::string_view kSearchRestart = "search.restart";
inline constexpr std::string_view kSearchAnneal = "search.anneal";
inline constexpr std::string_view kSearchExact = "search.exact";
inline constexpr std::string_view kSearchExactBranch = "search.exact.branch";
inline constexpr std::string_view kSearchClass = "search.class";
inline constexpr std::string_view kSearchImprove = "search.improve";

// --- parallel tempering (annealing engine with threads >= 1) ---------------
// Spans: one per sweep (driver side) and one per replica step (worker side).
// Events: one per exchange attempt at a sweep barrier.  Counters tally
// sweeps, exchange attempts, and accepted swaps process-wide.
inline constexpr std::string_view kSearchTemperSweep = "search.temper.sweep";
inline constexpr std::string_view kSearchTemperReplica = "search.temper.replica";
inline constexpr std::string_view kSearchTemperExchange = "search.temper.exchange";
inline constexpr std::string_view kTemperSweeps = "search.temper.sweeps";
inline constexpr std::string_view kTemperExchanges = "search.temper.exchanges";
inline constexpr std::string_view kTemperSwaps = "search.temper.swaps";

// --- flight recorder event names (one per FrKind; see flight_recorder.hpp) --
inline constexpr std::string_view kFrDecode = "fr.decode";
inline constexpr std::string_view kFrCommitReject = "fr.commit.reject";
inline constexpr std::string_view kFrUncommit = "fr.uncommit";
inline constexpr std::string_view kFrRemap = "fr.remap";
inline constexpr std::string_view kFrAnomaly = "fr.anomaly";
inline constexpr std::string_view kFrMark = "fr.mark";

// --- bench harness spans ----------------------------------------------------
inline constexpr std::string_view kBenchAlloc = "bench.alloc";
inline constexpr std::string_view kBenchUb = "bench.ub";
inline constexpr std::string_view kBenchMicroCounter = "bench.micro.counter";
inline constexpr std::string_view kBenchMicroSpan = "bench.micro.span";
inline constexpr std::string_view kBenchMicroEvent = "bench.micro.event";
inline constexpr std::string_view kBenchMicroHdr = "bench.micro.hdr";
inline constexpr std::string_view kBenchMicroFr = "bench.micro.fr";

}  // namespace tsce::obs::names
