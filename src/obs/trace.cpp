#include "obs/trace.hpp"

#if TSCE_TRACING_ENABLED

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace tsce::obs {

namespace {

constexpr std::size_t kFlushThreshold = 64 * 1024;

struct ThreadBuf;

/// Global tracer state, leaked on purpose so thread-exit flushes from
/// detached/late threads never race static destruction.
struct TraceState {
  std::mutex mu;  ///< guards file and the buffer registry
  std::FILE* file = nullptr;
  std::chrono::steady_clock::time_point t0{};
  std::vector<ThreadBuf*> bufs;
};

std::atomic<bool> g_active{false};
std::atomic<std::uint32_t> g_next_tid{0};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

/// Flushes \p buf to the trace file; drops it when the trace has been closed
/// (records appended after trace_close are lost by contract).
void flush_locked(TraceState& s, std::string& buf) {
  if (s.file != nullptr && !buf.empty()) {
    std::fwrite(buf.data(), 1, buf.size(), s.file);
  }
  buf.clear();
}

struct ThreadBuf {
  std::string buf;
  std::uint32_t tid;
  int span_depth = 0;

  ThreadBuf() : tid(g_next_tid.fetch_add(1, std::memory_order_relaxed)) {
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    s.bufs.push_back(this);
  }
  ~ThreadBuf() {
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    flush_locked(s, buf);
    std::erase(s.bufs, this);
  }
};

ThreadBuf& local_buf() {
  static thread_local ThreadBuf tb;
  return tb;
}

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       state().t0)
      .count();
}

void append_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
}

void append_num(std::string& out, double v) {
  char num[32];
  // Integral values (counts, generations) print without a fraction.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(num, sizeof num, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(num, sizeof num, "%.17g", v);
  }
  out += num;
}

void append_time(std::string& out, double seconds) {
  char num[32];
  std::snprintf(num, sizeof num, "%.9f", seconds);
  out += num;
}

void append_field(std::string& out, const Field& f) {
  out += '"';
  append_escaped(out, f.key);
  out += "\":";
  if (f.is_str) {
    out += '"';
    append_escaped(out, f.str);
    out += '"';
  } else {
    append_num(out, f.num);
  }
}

/// Shared prefix: {"t":"<type>","name":"<name>","tid":N,"ts":T
void append_prefix(std::string& out, const char* type, std::string_view name,
                   std::uint32_t tid, double ts) {
  out += "{\"t\":\"";
  out += type;
  out += "\",\"name\":\"";
  append_escaped(out, name);
  out += "\",\"tid\":";
  append_num(out, tid);
  out += ",\"ts\":";
  append_time(out, ts);
}

void maybe_flush(ThreadBuf& tb) {
  if (tb.buf.size() < kFlushThreshold && tb.span_depth > 0) return;
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  flush_locked(s, tb.buf);
}

}  // namespace

bool tracing_active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

bool trace_open(const std::string& path, const RunInfo& info) {
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  if (s.file != nullptr) return false;
  s.file = std::fopen(path.c_str(), "w");
  if (s.file == nullptr) return false;
  s.t0 = std::chrono::steady_clock::now();
  const std::string header = "{\"t\":\"header\",\"version\":1,\"run_info\":" +
                             info.to_json().dump() + "}\n";
  std::fwrite(header.data(), 1, header.size(), s.file);
  g_active.store(true, std::memory_order_release);
  return true;
}

void trace_close() {
  g_active.store(false, std::memory_order_release);
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  if (s.file == nullptr) return;
  for (ThreadBuf* tb : s.bufs) flush_locked(s, tb->buf);
  std::fclose(s.file);
  s.file = nullptr;
}

void trace_event(std::string_view name, std::initializer_list<Field> fields) {
  if (!tracing_active()) return;
  ThreadBuf& tb = local_buf();
  append_prefix(tb.buf, "event", name, tb.tid, now_s());
  tb.buf += ",\"f\":{";
  bool first = true;
  for (const Field& f : fields) {
    if (!first) tb.buf += ',';
    first = false;
    append_field(tb.buf, f);
  }
  tb.buf += "}}\n";
  maybe_flush(tb);
}

Span::Span(std::string_view name) : Span(name, {}) {}

Span::Span(std::string_view name, std::initializer_list<Field> fields) {
  if (!tracing_active()) return;
  active_ = true;
  start_ = now_s();
  name_ = name;
  for (const Field& f : fields) {
    fields_ += ',';
    append_field(fields_, f);
  }
  ++local_buf().span_depth;
}

void Span::add(std::string_view key, double v) {
  if (!active_) return;
  fields_ += ',';
  append_field(fields_, Field(key, v));
}

void Span::add(std::string_view key, std::string_view v) {
  if (!active_) return;
  fields_ += ',';
  append_field(fields_, Field(key, v));
}

Span::~Span() {
  if (!active_) return;
  ThreadBuf& tb = local_buf();
  append_prefix(tb.buf, "span", name_, tb.tid, start_);
  tb.buf += ",\"dur\":";
  append_time(tb.buf, now_s() - start_);
  tb.buf += ",\"f\":{";
  // fields_ holds ",\"k\":v" fragments; skip the leading comma.
  if (!fields_.empty()) tb.buf.append(fields_, 1, std::string::npos);
  tb.buf += "}}\n";
  --tb.span_depth;
  maybe_flush(tb);
}

}  // namespace tsce::obs

#endif  // TSCE_TRACING_ENABLED
