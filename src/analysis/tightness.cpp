#include "analysis/tightness.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::StringId;
using model::SystemModel;

double relative_tightness(const SystemModel& model, const Allocation& alloc,
                          StringId k) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  double total = 0.0;
  for (AppIndex i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(alloc.machine_of(k, i));
    total += s.apps[static_cast<std::size_t>(i)].nominal_time_s[j];
    if (i + 1 < n) {
      total += model.network.transfer_s(s.apps[static_cast<std::size_t>(i)].output_kbytes,
                                        alloc.machine_of(k, i), alloc.machine_of(k, i + 1));
    }
  }
  return total / s.max_latency_s;
}

double approx_tightness(const SystemModel& model, StringId k) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const double inv_w_av = model.network.avg_inverse_bandwidth();
  double total = 0.0;
  const auto n = s.size();
  for (std::size_t i = 0; i < n; ++i) {
    total += s.apps[i].avg_time_s();
    if (i + 1 < n) {
      total += model::kbytes_to_megabits(s.apps[i].output_kbytes) * inv_w_av;
    }
  }
  return total / s.max_latency_s;
}

}  // namespace tsce::analysis
