/// \file session.hpp
/// Incremental sequential-allocation session.
///
/// The ordering heuristics (MWF, TF, PSG decode) deploy strings one at a time
/// and must re-run the two-stage feasibility analysis after every string.
/// Re-checking the whole system from scratch is O(Q * A^2); AllocationSession
/// exploits the fact that committing one string only perturbs the resources
/// it touches — stage one is re-checked on touched resources only and stage
/// two re-estimates only resident applications of touched machines/routes
/// (higher-priority estimates are unchanged by construction of eqs. 5-6).
/// A failed commit rolls back completely, leaving the previous feasible
/// intermediate mapping intact (the MWF/TF termination rule).
///
/// Estimate storage is SoA (DESIGN.md §12): one flat double array for all
/// eq. (5) computation estimates and one for all eq. (6) transfer estimates,
/// indexed by prefix sums over string lengths — no per-string vectors, so the
/// steady-state commit/rollback path never allocates.  The whole session
/// state snapshots into a SessionSnapshot and restores back with a handful of
/// memcpys, bit-exactly; the prefix-reuse decode rewinds through this instead
/// of replaying removals, and replica-based engines clone sessions the same
/// way.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/priority.hpp"
#include "analysis/utilization.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"
#include "util/arena.hpp"

namespace tsce::analysis {

/// Which eq. (1) constraint a deployed string violates under the current
/// estimates: a per-app/transfer period overrun (throughput) or an end-to-end
/// latency overrun.  Rejection counts per kind are exported through
/// obs::MetricsRegistry ("session.reject.*").
enum class ConstraintViolation { kNone, kThroughput, kLatency };

/// Bit-exact byte image of an AllocationSession.  All members are flat
/// arrays, so snapshot/restore/copy are memcpys; in steady state (buffers
/// already at working size) the round trip is allocation-free.  A snapshot
/// may only be restored into a session built from the same SystemModel.
struct SessionSnapshot {
  model::Allocation alloc;
  util::ArenaSnapshot util;
  std::vector<double> t_of;
  std::vector<double> comp;
  std::vector<double> tran;
};

class AllocationSession {
 public:
  explicit AllocationSession(
      const model::SystemModel& model,
      PriorityRule rule = PriorityRule::kRelativeTightness);

  /// Attempts to deploy string \p k with the per-app machine \p assignment
  /// (size n_k, no kUnassigned entries).  Runs the two-stage feasibility
  /// analysis on the resulting intermediate mapping; on success the string is
  /// committed and true is returned, otherwise the session state is unchanged
  /// and false is returned.
  bool try_commit(model::StringId k, const std::vector<model::MachineId>& assignment);

  /// Removes a previously committed string, restoring the estimates of every
  /// string that shared resources with it.  Enables backtracking searches
  /// (e.g. the exact permutation enumeration).
  void uncommit(model::StringId k);

  /// Batched uncommit: removes every string in \p ks, then restores the
  /// estimates of the affected survivors once at the end.  The final state is
  /// bit-identical to uncommitting the strings one at a time (in any order):
  /// eq. (5)-(6) estimates are pure functions of the final (allocation,
  /// utilization, tightness) state, and survivors whose resources are
  /// disjoint from the removed set see identical inputs either way.  The
  /// single deferred refresh makes a suffix rewind in the prefix-reuse decode
  /// O(residents) instead of O(suffix x residents).
  void uncommit_all(std::span<const model::StringId> ks);

  /// Forgets all commitments.
  void reset();

  /// Copies the full session state into \p out (buffers reused — no
  /// allocation once \p out has reached working size).  restore_from() is the
  /// exact inverse: the restored session is bit-identical to the session at
  /// snapshot time, including resident-list order, so it is interchangeable
  /// with a session that replayed the same commit history.
  void snapshot_into(SessionSnapshot& out) const;
  void restore_from(const SessionSnapshot& snap);
  /// Bytes a snapshot/clone copies (utilization arena + flat session arrays).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  [[nodiscard]] const model::SystemModel& system() const noexcept { return *model_; }
  [[nodiscard]] const model::Allocation& allocation() const noexcept { return alloc_; }
  [[nodiscard]] const UtilizationState& util() const noexcept { return util_; }

  [[nodiscard]] Fitness fitness() const noexcept {
    return {total_worth(*model_, alloc_), util_.slackness()};
  }

  /// Classifies string \p z against eq. (1) under the current estimates.
  [[nodiscard]] ConstraintViolation constraint_violation(model::StringId z) const noexcept;

  /// Estimated computation times of deployed string k (stale values for
  /// undeployed strings — callers must check deployed() first, as ever).
  [[nodiscard]] std::span<const double> comp_estimates(model::StringId k) const noexcept {
    const auto ku = static_cast<std::size_t>(k);
    return {comp_.data() + app_off_[ku], app_off_[ku + 1] - app_off_[ku]};
  }
  [[nodiscard]] std::span<const double> tran_estimates(model::StringId k) const noexcept {
    const auto ku = static_cast<std::size_t>(k);
    return {tran_.data() + tran_off_[ku], tran_off_[ku + 1] - tran_off_[ku]};
  }

 private:
  /// Estimates string k from scratch and delta-updates residents k preempts
  /// (journaling old slot values), then checks eq. (1) for each affected
  /// string; returns the first violation found (kNone when all pass).
  [[nodiscard]] ConstraintViolation stage_two_after_add(model::StringId k);
  void refresh_estimates_of(model::StringId k);
  /// Shim over constraint_violation for boolean call sites.
  [[nodiscard]] bool string_meets_constraints(model::StringId k) const noexcept {
    return constraint_violation(k) == ConstraintViolation::kNone;
  }

  const model::SystemModel* model_;
  PriorityRule rule_;
  model::Allocation alloc_;
  UtilizationState util_;
  std::vector<double> t_of_;            ///< tightness per deployed string (NaN otherwise)
  std::vector<std::uint32_t> app_off_;  ///< prefix sums of string lengths, size Q+1
  std::vector<std::uint32_t> tran_off_; ///< prefix sums of (length - 1), size Q+1
  std::vector<double> comp_;            ///< flat eq. (5) estimates, app_off_-indexed
  std::vector<double> tran_;            ///< flat eq. (6) estimates, tran_off_-indexed
  // Scratch reused across commits to avoid churn.
  std::vector<model::MachineId> touched_machines_;
  std::vector<std::pair<model::MachineId, model::MachineId>> touched_routes_;
  std::vector<model::StringId> affected_strings_;
  /// Pre-commit values of estimate slots delta-updated by stage two, so a
  /// rejected commit restores them bit-exactly (float subtraction would not).
  std::vector<std::pair<std::uint32_t, double>> comp_journal_;
  std::vector<std::pair<std::uint32_t, double>> tran_journal_;
};

}  // namespace tsce::analysis
