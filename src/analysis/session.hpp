/// \file session.hpp
/// Incremental sequential-allocation session.
///
/// The ordering heuristics (MWF, TF, PSG decode) deploy strings one at a time
/// and must re-run the two-stage feasibility analysis after every string.
/// Re-checking the whole system from scratch is O(Q * A^2); AllocationSession
/// exploits the fact that committing one string only perturbs the resources
/// it touches — stage one is re-checked on touched resources only and stage
/// two re-estimates only resident applications of touched machines/routes
/// (higher-priority estimates are unchanged by construction of eqs. 5-6).
/// A failed commit rolls back completely, leaving the previous feasible
/// intermediate mapping intact (the MWF/TF termination rule).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/priority.hpp"
#include "analysis/utilization.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::analysis {

/// Which eq. (1) constraint a deployed string violates under the current
/// estimates: a per-app/transfer period overrun (throughput) or an end-to-end
/// latency overrun.  Rejection counts per kind are exported through
/// obs::MetricsRegistry ("session.reject.*").
enum class ConstraintViolation { kNone, kThroughput, kLatency };

class AllocationSession {
 public:
  explicit AllocationSession(
      const model::SystemModel& model,
      PriorityRule rule = PriorityRule::kRelativeTightness);

  /// Attempts to deploy string \p k with the per-app machine \p assignment
  /// (size n_k, no kUnassigned entries).  Runs the two-stage feasibility
  /// analysis on the resulting intermediate mapping; on success the string is
  /// committed and true is returned, otherwise the session state is unchanged
  /// and false is returned.
  bool try_commit(model::StringId k, const std::vector<model::MachineId>& assignment);

  /// Removes a previously committed string, restoring the estimates of every
  /// string that shared resources with it.  Enables backtracking searches
  /// (e.g. the exact permutation enumeration).
  void uncommit(model::StringId k);

  /// Batched uncommit: removes every string in \p ks, then restores the
  /// estimates of the affected survivors once at the end.  The final state is
  /// bit-identical to uncommitting the strings one at a time (in any order):
  /// eq. (5)-(6) estimates are pure functions of the final (allocation,
  /// utilization, tightness) state, and survivors whose resources are
  /// disjoint from the removed set see identical inputs either way.  The
  /// single deferred refresh makes a suffix rewind in the prefix-reuse decode
  /// O(residents) instead of O(suffix x residents).
  void uncommit_all(std::span<const model::StringId> ks);

  /// Forgets all commitments.
  void reset();

  [[nodiscard]] const model::SystemModel& system() const noexcept { return *model_; }
  [[nodiscard]] const model::Allocation& allocation() const noexcept { return alloc_; }
  [[nodiscard]] const UtilizationState& util() const noexcept { return util_; }

  [[nodiscard]] Fitness fitness() const noexcept {
    return {total_worth(*model_, alloc_), util_.slackness()};
  }

  /// Classifies string \p z against eq. (1) under the current estimates.
  [[nodiscard]] ConstraintViolation constraint_violation(model::StringId z) const noexcept;

  /// Estimated computation times of deployed string k (empty otherwise).
  [[nodiscard]] const std::vector<double>& comp_estimates(model::StringId k) const noexcept {
    return comp_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] const std::vector<double>& tran_estimates(model::StringId k) const noexcept {
    return tran_[static_cast<std::size_t>(k)];
  }

 private:
  /// Re-estimates every resident app/transfer on resources touched by string
  /// k plus string k itself, then checks eq. (1) for each affected string;
  /// returns the first violation found (kNone when all pass).
  [[nodiscard]] ConstraintViolation stage_two_after_add(model::StringId k);
  void refresh_estimates_of(model::StringId k);
  /// Shim over constraint_violation for boolean call sites.
  [[nodiscard]] bool string_meets_constraints(model::StringId k) const noexcept {
    return constraint_violation(k) == ConstraintViolation::kNone;
  }

  const model::SystemModel* model_;
  PriorityRule rule_;
  model::Allocation alloc_;
  UtilizationState util_;
  std::vector<double> t_of_;                 ///< tightness per deployed string (NaN otherwise)
  std::vector<std::vector<double>> comp_;    ///< cached eq. (5) estimates
  std::vector<std::vector<double>> tran_;    ///< cached eq. (6) estimates
  // Scratch reused across commits to avoid churn.
  std::vector<model::MachineId> touched_machines_;
  std::vector<std::pair<model::MachineId, model::MachineId>> touched_routes_;
  std::vector<model::StringId> affected_strings_;
};

}  // namespace tsce::analysis
