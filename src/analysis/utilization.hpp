/// \file utilization.hpp
/// Machine and communication-route utilization accounting, eqs. (2)-(3).
///
/// UtilizationState supports both batch computation from a complete
/// allocation and incremental add/remove of single strings, which the
/// sequential heuristics (IMR inside MWF/TF/PSG decode) rely on.  It also
/// tracks which applications/transfers reside on each resource, which the
/// stage-two time estimation reuses.
///
/// Memory layout (DESIGN.md §12): the whole state is one contiguous
/// util::Arena block — flat utilization arrays, a slab table of per-resource
/// (offset, size, capacity) triples, and a CSR-style pool of resident AppRef
/// slabs that grow in place amortized.  Because every internal reference is
/// an arena offset, snapshot()/restore() are single memcpys of the used
/// prefix and are bit-exact; remove_string/remove_strings keep the original
/// re-summation semantics for callers that rewind without a snapshot.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"
#include "util/arena.hpp"

namespace tsce::analysis {

/// Reference to application i of string k.
struct AppRef {
  model::StringId k;
  model::AppIndex i;
  friend bool operator==(const AppRef&, const AppRef&) = default;
};

class UtilizationState {
 public:
  UtilizationState() = default;
  explicit UtilizationState(const model::SystemModel& model);

  /// Builds state for all deployed strings of \p alloc, added in increasing
  /// string-id order.  Every utilization is a left fold over its resident
  /// list, so the result is bit-identical to any history whose surviving
  /// deployment order is 0,1,2,... — histories with a different surviving
  /// order agree only up to float re-association (use the overload below to
  /// compare those bitwise).
  static UtilizationState from_allocation(const model::SystemModel& model,
                                          const model::Allocation& alloc);
  /// As above, but deploys in the given order: the from-scratch rebuild that
  /// is bit-identical to an incrementally maintained state whose surviving
  /// strings were added (or last re-added) in \p deploy_order.
  static UtilizationState from_allocation(
      const model::SystemModel& model, const model::Allocation& alloc,
      std::span<const model::StringId> deploy_order);

  /// Adds every application/transfer of string k using its assignment in
  /// \p alloc (string must be fully mapped).
  void add_string(const model::Allocation& alloc, model::StringId k);
  /// Exact inverse of add_string: after the call, every utilization is
  /// bit-identical to a state that never added string k (touched resources
  /// are re-summed over their resident lists rather than decremented, so no
  /// floating-point residue survives).  This exactness is the rollback
  /// invariant the prefix-reuse decode (core::DecodeContext) depends on.
  void remove_string(const model::Allocation& alloc, model::StringId k);
  /// Batched remove_string: erases every string in \p ks, then re-sums each
  /// touched resource once.  Because removal is exact (pure function of the
  /// final resident lists), the result is bit-identical to removing the
  /// strings one at a time, in any order — but a suffix rewind pays one
  /// re-summation per touched resource instead of one per removed string.
  void remove_strings(const model::Allocation& alloc,
                      std::span<const model::StringId> ks);

  /// U_machine[j], eq. (2).
  [[nodiscard]] double machine_util(model::MachineId j) const noexcept {
    return arena_.view(machine_util_)[static_cast<std::size_t>(j)];
  }
  /// U_route[j1,j2], eq. (3).  Intra-machine routes are always 0.
  [[nodiscard]] double route_util(model::MachineId j1, model::MachineId j2) const noexcept {
    return arena_.view(route_util_)[route_index(j1, j2)];
  }

  /// Utilization contribution of app i of string k when placed on machine j.
  [[nodiscard]] double machine_delta(model::StringId k, model::AppIndex i,
                                     model::MachineId j) const noexcept;
  /// Utilization contribution of the output transfer of app i of string k on
  /// route j1->j2 (0 when j1 == j2).
  [[nodiscard]] double route_delta(model::StringId k, model::AppIndex i,
                                   model::MachineId j1, model::MachineId j2) const noexcept;

  /// What-if U_machine[j, i, k] from the IMR description (paper §5).
  [[nodiscard]] double machine_util_if(model::MachineId j, model::StringId k,
                                       model::AppIndex i) const noexcept {
    return machine_util(j) + machine_delta(k, i, j);
  }
  /// What-if U_route[j1, j2, i, k]: utilization of route j1->j2 if the output
  /// of app i of string k were added to it.
  [[nodiscard]] double route_util_if(model::MachineId j1, model::MachineId j2,
                                     model::StringId k, model::AppIndex i) const noexcept {
    return route_util(j1, j2) + route_delta(k, i, j1, j2);
  }

  /// Max utilization over all machines (0 when empty system).
  [[nodiscard]] double max_machine_util() const noexcept;
  /// Max utilization over all routes.
  [[nodiscard]] double max_route_util() const noexcept;

  /// System slackness, eq. (7): min residual capacity over machines & routes.
  [[nodiscard]] double slackness() const noexcept;

  /// Applications currently resident on machine j (unordered).  The span is
  /// invalidated by the next mutation of this state.
  [[nodiscard]] std::span<const AppRef> apps_on(model::MachineId j) const noexcept {
    return slab_span(static_cast<std::size_t>(j));
  }
  /// Transfers resident on route j1->j2; AppRef names the *sending* app.
  [[nodiscard]] std::span<const AppRef> transfers_on(model::MachineId j1,
                                                     model::MachineId j2) const noexcept {
    return slab_span(num_machines() + route_index(j1, j2));
  }

  [[nodiscard]] std::size_t num_machines() const noexcept { return machine_util_.count; }

  /// Snapshot protocol: the state is one arena block, so a snapshot is one
  /// memcpy of the used prefix and restore is the inverse memcpy — bit-exact,
  /// O(bytes), no per-string work.  A snapshot may be restored into any
  /// UtilizationState built from the same SystemModel.
  void snapshot_into(util::ArenaSnapshot& out) const { arena_.snapshot_into(out); }
  void restore_from(const util::ArenaSnapshot& snap) { arena_.restore_from(snap); }
  /// Size of the contiguous state block (what snapshot/clone copy).
  [[nodiscard]] std::size_t state_bytes() const noexcept { return arena_.used(); }

 private:
  /// Per-resource resident slab: a CSR-style (offset, size, capacity) triple
  /// into the arena's AppRef pool.  Lives inside the arena itself so the
  /// snapshot memcpy captures it.
  struct Slab {
    std::uint32_t begin = 0;  ///< byte offset of the slab's first AppRef
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };

  /// Unified resource index: machines are [0, M), routes are M + route_index.
  [[nodiscard]] std::span<const AppRef> slab_span(std::size_t resource) const noexcept {
    const Slab& s = arena_.view(slabs_)[resource];
    return arena_.view(util::ArenaSpan<AppRef>{s.begin, s.size});
  }
  /// Appends \p ref to a resident slab, growing it amortized (in place when
  /// the slab sits at the arena tip).
  void slab_push(std::size_t resource, AppRef ref);
  /// Removes the first occurrence of \p ref, shifting survivors left (same
  /// order semantics as the original vector erase).
  void slab_erase(std::size_t resource, AppRef ref);

  /// Erases k's entries from the resident lists, accumulating the touched
  /// resources into the scratch vectors (callers clear them first).
  void erase_string(const model::Allocation& alloc, model::StringId k);
  /// Recomputes every touched utilization as a fresh sum over its residents.
  void resum_touched();

  [[nodiscard]] std::size_t route_index(model::MachineId j1, model::MachineId j2) const noexcept {
    return static_cast<std::size_t>(j1) * num_machines() + static_cast<std::size_t>(j2);
  }

  const model::SystemModel* model_ = nullptr;
  util::Arena arena_;
  // Fixed header views (offsets never change after construction; the slab
  // pool grows past them at the tip).
  util::ArenaSpan<double> machine_util_;
  util::ArenaSpan<double> route_util_;  // M x M row-major; diagonal stays 0
  util::ArenaSpan<Slab> slabs_;         // M machine slabs, then M*M route slabs
  // Scratch for remove_string (resources whose sums need recomputation).
  std::vector<model::MachineId> touched_machines_;
  std::vector<std::size_t> touched_routes_;
};

}  // namespace tsce::analysis
