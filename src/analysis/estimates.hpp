/// \file estimates.hpp
/// Shared-resource time estimation, eqs. (5)-(6).
///
/// For every deployed application the estimated computation time is its
/// nominal time plus the average waiting caused by higher-priority
/// applications sharing the CPU; transfers are estimated analogously on
/// shared routes.  Priorities follow relative tightness (see tightness.hpp).

#pragma once

#include <span>
#include <vector>

#include "analysis/priority.hpp"
#include "analysis/utilization.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"

namespace tsce::analysis {

/// Per-string estimated times.  Entries for undeployed strings are empty.
struct TimeEstimates {
  /// comp[k][i] = estimated computation time of a_i^k, eq. (5).
  std::vector<std::vector<double>> comp;
  /// tran[k][i] = estimated transfer time of O[i] of string k, eq. (6);
  /// tran[k] has size n_k - 1 (no entry for the final app).
  std::vector<std::vector<double>> tran;
  /// Scheduling priority value per string under the chosen rule — relative
  /// tightness T[k] for the paper's default (NaN for undeployed strings).
  std::vector<double> tightness;

  /// Estimated end-to-end latency of string k: sum of all computation and
  /// transfer estimates along the string.
  [[nodiscard]] double latency(model::StringId k) const noexcept;
};

/// Estimated computation time of one deployed app (k,i), given the resident
/// sets in \p util and per-string tightness values \p t_of.
[[nodiscard]] double estimate_comp_time(const model::SystemModel& model,
                                        const model::Allocation& alloc,
                                        const UtilizationState& util,
                                        std::span<const double> t_of,
                                        model::StringId k, model::AppIndex i) noexcept;

/// Estimated transfer time of the output of deployed app (k,i), i < n_k - 1.
[[nodiscard]] double estimate_tran_time(const model::SystemModel& model,
                                        const model::Allocation& alloc,
                                        const UtilizationState& util,
                                        std::span<const double> t_of,
                                        model::StringId k, model::AppIndex i) noexcept;

/// Computes estimates for every deployed string of \p alloc from scratch,
/// prioritizing by \p rule (the paper's relative tightness by default).
[[nodiscard]] TimeEstimates estimate_all(
    const model::SystemModel& model, const model::Allocation& alloc,
    PriorityRule rule = PriorityRule::kRelativeTightness);

}  // namespace tsce::analysis
