#include "analysis/priority.hpp"

#include "analysis/tightness.hpp"

namespace tsce::analysis {

const char* to_string(PriorityRule rule) noexcept {
  switch (rule) {
    case PriorityRule::kRelativeTightness: return "relative-tightness";
    case PriorityRule::kRateMonotonic: return "rate-monotonic";
    case PriorityRule::kWorth: return "worth";
  }
  return "unknown";
}

double priority_value(const model::SystemModel& model,
                      const model::Allocation& alloc, model::StringId k,
                      PriorityRule rule) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  switch (rule) {
    case PriorityRule::kRelativeTightness:
      return relative_tightness(model, alloc, k);
    case PriorityRule::kRateMonotonic:
      return 1.0 / s.period_s;
    case PriorityRule::kWorth:
      return static_cast<double>(s.worth_factor());
  }
  return 0.0;
}

}  // namespace tsce::analysis
