#include "analysis/estimates.hpp"

#include <cmath>
#include <limits>

#include "analysis/priority.hpp"
#include "analysis/tightness.hpp"
#include "util/hot.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

double TimeEstimates::latency(StringId k) const noexcept {
  const auto& c = comp[static_cast<std::size_t>(k)];
  const auto& t = tran[static_cast<std::size_t>(k)];
  double total = 0.0;
  for (double x : c) total += x;
  for (double x : t) total += x;
  return total;
}

TSCE_HOT double estimate_comp_time(const SystemModel& model, const Allocation& alloc,
                                   const UtilizationState& util,
                                   std::span<const double> t_of, StringId k,
                                   AppIndex i) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const MachineId j = alloc.machine_of(k, i);
  const auto ju = static_cast<std::size_t>(j);
  double t = s.apps[static_cast<std::size_t>(i)].nominal_time_s[ju];
  const double t_k = t_of[static_cast<std::size_t>(k)];
  // Average waiting: each higher-priority data set of app p (string z) on the
  // same machine delays us by its CPU work t[p,j]*u[p,j], scaled by how many
  // of its periods overlap one of ours (P[k]/P[z]); see Figure 2 cases 1-3.
  for (const AppRef& ref : util.apps_on(j)) {
    if (ref.k == k) continue;  // same-string apps share one tightness value
    const double t_z = t_of[static_cast<std::size_t>(ref.k)];
    if (!higher_priority(t_z, ref.k, t_k, k)) continue;
    const auto& sz = model.strings[static_cast<std::size_t>(ref.k)];
    const auto& az = sz.apps[static_cast<std::size_t>(ref.i)];
    t += (s.period_s / sz.period_s) * az.cpu_work(ju);
  }
  return t;
}

TSCE_HOT double estimate_tran_time(const SystemModel& model, const Allocation& alloc,
                                   const UtilizationState& util,
                                   std::span<const double> t_of, StringId k,
                                   AppIndex i) noexcept {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const MachineId j1 = alloc.machine_of(k, i);
  const MachineId j2 = alloc.machine_of(k, i + 1);
  if (j1 == j2) return 0.0;  // intra-machine: infinite bandwidth
  const double w = model.network.bandwidth_mbps(j1, j2);
  double t = model::kbytes_to_megabits(s.apps[static_cast<std::size_t>(i)].output_kbytes) / w;
  const double t_k = t_of[static_cast<std::size_t>(k)];
  for (const AppRef& ref : util.transfers_on(j1, j2)) {
    if (ref.k == k) continue;
    const double t_z = t_of[static_cast<std::size_t>(ref.k)];
    if (!higher_priority(t_z, ref.k, t_k, k)) continue;
    const auto& sz = model.strings[static_cast<std::size_t>(ref.k)];
    const auto& az = sz.apps[static_cast<std::size_t>(ref.i)];
    t += (s.period_s / sz.period_s) * model::kbytes_to_megabits(az.output_kbytes) / w;
  }
  return t;
}

TimeEstimates estimate_all(const SystemModel& model, const Allocation& alloc,
                           PriorityRule rule) {
  const std::size_t q = model.num_strings();
  TimeEstimates est;
  est.comp.resize(q);
  est.tran.resize(q);
  est.tightness.assign(q, std::numeric_limits<double>::quiet_NaN());

  const UtilizationState util = UtilizationState::from_allocation(model, alloc);
  for (std::size_t k = 0; k < q; ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      est.tightness[k] = priority_value(model, alloc, static_cast<StringId>(k), rule);
    }
  }
  for (std::size_t k = 0; k < q; ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto n = model.strings[k].size();
    est.comp[k].resize(n);
    est.tran[k].resize(n > 0 ? n - 1 : 0);
    for (std::size_t i = 0; i < n; ++i) {
      est.comp[k][i] = estimate_comp_time(model, alloc, util, est.tightness,
                                          static_cast<StringId>(k),
                                          static_cast<AppIndex>(i));
      if (i + 1 < n) {
        est.tran[k][i] = estimate_tran_time(model, alloc, util, est.tightness,
                                            static_cast<StringId>(k),
                                            static_cast<AppIndex>(i));
      }
    }
  }
  return est;
}

}  // namespace tsce::analysis
