#include "analysis/session.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "analysis/estimates.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/tightness.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

namespace {

/// Feasibility-rejection and rewind tallies, by cause.  Handles are resolved
/// once; updates are thread-local (see obs/metrics.hpp).
struct SessionMetrics {
  obs::Counter& reject_utilization;  ///< stage one: resource over 100%
  obs::Counter& reject_throughput;   ///< stage two: eq. (1) period overrun
  obs::Counter& reject_latency;      ///< stage two: eq. (1) latency overrun
  obs::Counter& uncommit_batches;
  obs::Counter& uncommit_strings;

  static SessionMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static SessionMetrics m{reg.counter(obs::names::kSessionRejectUtilization),
                            reg.counter(obs::names::kSessionRejectThroughput),
                            reg.counter(obs::names::kSessionRejectLatency),
                            reg.counter(obs::names::kSessionUncommitBatches),
                            reg.counter(obs::names::kSessionUncommitStrings)};
    return m;
  }
};

}  // namespace

AllocationSession::AllocationSession(const SystemModel& model, PriorityRule rule)
    : model_(&model),
      rule_(rule),
      alloc_(model),
      util_(model),
      t_of_(model.num_strings(), std::numeric_limits<double>::quiet_NaN()),
      comp_(model.num_strings()),
      tran_(model.num_strings()) {}

void AllocationSession::uncommit(StringId k) {
  const auto ku = static_cast<std::size_t>(k);
  assert(alloc_.deployed(k));
  const auto& s = model_->strings[ku];

  // Resources the string occupied; their residents need re-estimation.
  touched_machines_.clear();
  touched_routes_.clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const MachineId j = alloc_.machine_of(k, static_cast<AppIndex>(i));
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < s.size()) {
      const MachineId j2 = alloc_.machine_of(k, static_cast<AppIndex>(i + 1));
      if (j != j2) {
        const auto route = std::make_pair(j, j2);
        if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
            touched_routes_.end()) {
          touched_routes_.push_back(route);
        }
      }
    }
  }

  util_.remove_string(alloc_, k);
  alloc_.clear_string(k);
  t_of_[ku] = std::numeric_limits<double>::quiet_NaN();
  comp_[ku].clear();
  tran_[ku].clear();

  affected_strings_.clear();
  for (const MachineId j : touched_machines_) {
    for (const AppRef& ref : util_.apps_on(j)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const auto& [j1, j2] : touched_routes_) {
    for (const AppRef& ref : util_.transfers_on(j1, j2)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const StringId z : affected_strings_) refresh_estimates_of(z);
}

void AllocationSession::uncommit_all(std::span<const StringId> ks) {
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.uncommit_batches.add(1);
  metrics.uncommit_strings.add(ks.size());
  // Union of resources the removed strings occupied (collected while the
  // allocation still holds their assignments).
  touched_machines_.clear();
  touched_routes_.clear();
  for (const StringId k : ks) {
    assert(alloc_.deployed(k));
    const auto& s = model_->strings[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const MachineId j = alloc_.machine_of(k, static_cast<AppIndex>(i));
      if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
          touched_machines_.end()) {
        touched_machines_.push_back(j);
      }
      if (i + 1 < s.size()) {
        const MachineId j2 = alloc_.machine_of(k, static_cast<AppIndex>(i + 1));
        if (j != j2) {
          const auto route = std::make_pair(j, j2);
          if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
              touched_routes_.end()) {
            touched_routes_.push_back(route);
          }
        }
      }
    }
  }

  util_.remove_strings(alloc_, ks);
  for (const StringId k : ks) {
    const auto ku = static_cast<std::size_t>(k);
    alloc_.clear_string(k);
    t_of_[ku] = std::numeric_limits<double>::quiet_NaN();
    comp_[ku].clear();
    tran_[ku].clear();
  }

  // One estimate refresh per affected survivor, against the final state.
  affected_strings_.clear();
  for (const MachineId j : touched_machines_) {
    for (const AppRef& ref : util_.apps_on(j)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const auto& [j1, j2] : touched_routes_) {
    for (const AppRef& ref : util_.transfers_on(j1, j2)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const StringId z : affected_strings_) refresh_estimates_of(z);
}

void AllocationSession::reset() {
  alloc_ = Allocation(*model_);
  util_ = UtilizationState(*model_);
  std::fill(t_of_.begin(), t_of_.end(), std::numeric_limits<double>::quiet_NaN());
  for (auto& c : comp_) c.clear();
  for (auto& t : tran_) t.clear();
}

bool AllocationSession::try_commit(StringId k,
                                   const std::vector<MachineId>& assignment) {
  const auto ku = static_cast<std::size_t>(k);
  const auto& s = model_->strings[ku];
  assert(!alloc_.deployed(k));
  assert(assignment.size() == s.size());

  // Record the tentative assignment.
  affected_strings_.clear();  // stale entries would poison a stage-one rollback
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assert(assignment[i] != model::kUnassigned);
    alloc_.assign(k, static_cast<AppIndex>(i), assignment[i]);
  }
  alloc_.set_deployed(k, true);
  util_.add_string(alloc_, k);

  // Resources touched by this string.
  touched_machines_.clear();
  touched_routes_.clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const MachineId j = assignment[i];
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < s.size() && assignment[i] != assignment[i + 1]) {
      const auto route = std::make_pair(assignment[i], assignment[i + 1]);
      if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
          touched_routes_.end()) {
        touched_routes_.push_back(route);
      }
    }
  }

  // Stage one on touched resources only (others are unchanged).
  bool ok = true;
  for (const MachineId j : touched_machines_) {
    if (!within(util_.machine_util(j), 1.0)) ok = false;
  }
  for (const auto& [j1, j2] : touched_routes_) {
    if (!within(util_.route_util(j1, j2), 1.0)) ok = false;
  }

  if (!ok) {
    SessionMetrics::get().reject_utilization.add(1);
  } else {
    t_of_[ku] = priority_value(*model_, alloc_, k, rule_);
    const ConstraintViolation violation = stage_two_after_add(k);
    ok = violation == ConstraintViolation::kNone;
    if (violation == ConstraintViolation::kThroughput) {
      SessionMetrics::get().reject_throughput.add(1);
    } else if (violation == ConstraintViolation::kLatency) {
      SessionMetrics::get().reject_latency.add(1);
    }
  }

  if (!ok) {
    // Roll back: remove the string and restore estimates of everything it
    // perturbed (recomputing is exact because the resident sets are restored).
    util_.remove_string(alloc_, k);
    alloc_.clear_string(k);
    t_of_[ku] = std::numeric_limits<double>::quiet_NaN();
    comp_[ku].clear();
    tran_[ku].clear();
    for (const StringId z : affected_strings_) {
      if (z != k && alloc_.deployed(z)) refresh_estimates_of(z);
    }
    return false;
  }
  return true;
}

ConstraintViolation AllocationSession::stage_two_after_add(StringId k) {
  // Collect strings whose estimates may change: owners of apps resident on
  // touched machines and of transfers on touched routes, plus k itself.
  affected_strings_.clear();
  auto note = [&](StringId z) {
    if (std::find(affected_strings_.begin(), affected_strings_.end(), z) ==
        affected_strings_.end()) {
      affected_strings_.push_back(z);
    }
  };
  note(k);
  for (const MachineId j : touched_machines_) {
    for (const AppRef& ref : util_.apps_on(j)) note(ref.k);
  }
  for (const auto& [j1, j2] : touched_routes_) {
    for (const AppRef& ref : util_.transfers_on(j1, j2)) note(ref.k);
  }

  for (const StringId z : affected_strings_) refresh_estimates_of(z);
  for (const StringId z : affected_strings_) {
    const ConstraintViolation violation = constraint_violation(z);
    if (violation != ConstraintViolation::kNone) return violation;
  }
  return ConstraintViolation::kNone;
}

void AllocationSession::refresh_estimates_of(StringId z) {
  // Full per-string refresh: strings are short (<= ~10 apps), so recomputing
  // the whole string is cheaper than tracking which of its apps were touched.
  const auto zu = static_cast<std::size_t>(z);
  const auto& s = model_->strings[zu];
  const std::size_t n = s.size();
  comp_[zu].resize(n);
  tran_[zu].resize(n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    comp_[zu][i] = estimate_comp_time(*model_, alloc_, util_, t_of_, z,
                                      static_cast<AppIndex>(i));
    if (i + 1 < n) {
      tran_[zu][i] = estimate_tran_time(*model_, alloc_, util_, t_of_, z,
                                        static_cast<AppIndex>(i));
    }
  }
}

ConstraintViolation AllocationSession::constraint_violation(StringId z) const noexcept {
  const auto zu = static_cast<std::size_t>(z);
  const auto& s = model_->strings[zu];
  double latency = 0.0;
  for (const double c : comp_[zu]) {
    if (!within(c, s.period_s)) return ConstraintViolation::kThroughput;
    latency += c;
  }
  for (const double t : tran_[zu]) {
    if (!within(t, s.period_s)) return ConstraintViolation::kThroughput;
    latency += t;
  }
  return within(latency, s.max_latency_s) ? ConstraintViolation::kNone
                                          : ConstraintViolation::kLatency;
}

}  // namespace tsce::analysis
