#include "analysis/session.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "analysis/estimates.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/tightness.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/hot.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

namespace {

/// Feasibility-rejection and rewind tallies, by cause.  Handles are resolved
/// once; updates are thread-local (see obs/metrics.hpp).
struct SessionMetrics {
  obs::Counter& reject_utilization;  ///< stage one: resource over 100%
  obs::Counter& reject_throughput;   ///< stage two: eq. (1) period overrun
  obs::Counter& reject_latency;      ///< stage two: eq. (1) latency overrun
  obs::Counter& uncommit_batches;
  obs::Counter& uncommit_strings;
  obs::Histogram& commit_latency_ns;    ///< wall clock per try_commit call
  obs::Histogram& uncommit_latency_ns;  ///< wall clock per uncommit_all call

  static SessionMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static SessionMetrics m{reg.counter(obs::names::kSessionRejectUtilization),
                            reg.counter(obs::names::kSessionRejectThroughput),
                            reg.counter(obs::names::kSessionRejectLatency),
                            reg.counter(obs::names::kSessionUncommitBatches),
                            reg.counter(obs::names::kSessionUncommitStrings),
                            reg.histogram(obs::names::kSessionCommitLatencyNs),
                            reg.histogram(obs::names::kSessionUncommitLatencyNs)};
    return m;
  }
};

/// FrKind::kCommitReject violation-class payload (0 = stage-one utilization).
enum : std::uint64_t {
  kFrViolationUtilization = 1,
  kFrViolationThroughput = 2,
  kFrViolationLatency = 3,
};

}  // namespace

AllocationSession::AllocationSession(const SystemModel& model, PriorityRule rule)
    : model_(&model),
      rule_(rule),
      alloc_(model),
      util_(model),
      t_of_(model.num_strings(), std::numeric_limits<double>::quiet_NaN()) {
  const std::size_t q = model.num_strings();
  app_off_.resize(q + 1);
  tran_off_.resize(q + 1);
  std::uint32_t apps = 0;
  std::uint32_t trans = 0;
  for (std::size_t k = 0; k < q; ++k) {
    app_off_[k] = apps;
    tran_off_[k] = trans;
    const auto n = static_cast<std::uint32_t>(model.strings[k].size());
    apps += n;
    trans += n > 0 ? n - 1 : 0;
  }
  app_off_[q] = apps;
  tran_off_[q] = trans;
  comp_.assign(apps, std::numeric_limits<double>::quiet_NaN());
  tran_.assign(trans, std::numeric_limits<double>::quiet_NaN());
  touched_machines_.reserve(model.num_machines());
  touched_routes_.reserve(model.num_machines() * model.num_machines());
  affected_strings_.reserve(q);
  comp_journal_.reserve(apps);
  tran_journal_.reserve(trans);
}

void AllocationSession::snapshot_into(SessionSnapshot& out) const {
  out.alloc = alloc_;  // flat vectors: buffer-reusing copies
  util_.snapshot_into(out.util);
  out.t_of = t_of_;
  out.comp = comp_;
  out.tran = tran_;
}

void AllocationSession::restore_from(const SessionSnapshot& snap) {
  alloc_ = snap.alloc;
  util_.restore_from(snap.util);
  t_of_ = snap.t_of;
  comp_ = snap.comp;
  tran_ = snap.tran;
}

std::size_t AllocationSession::state_bytes() const noexcept {
  return util_.state_bytes() +
         (t_of_.size() + comp_.size() + tran_.size()) * sizeof(double) +
         app_off_.back() * sizeof(MachineId) + t_of_.size();  // alloc flat + flags
}

void AllocationSession::uncommit(StringId k) {
  const auto ku = static_cast<std::size_t>(k);
  assert(alloc_.deployed(k));
  const auto& s = model_->strings[ku];

  // Resources the string occupied; their residents need re-estimation.
  touched_machines_.clear();
  touched_routes_.clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const MachineId j = alloc_.machine_of(k, static_cast<AppIndex>(i));
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < s.size()) {
      const MachineId j2 = alloc_.machine_of(k, static_cast<AppIndex>(i + 1));
      if (j != j2) {
        const auto route = std::make_pair(j, j2);
        if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
            touched_routes_.end()) {
          touched_routes_.push_back(route);
        }
      }
    }
  }

  util_.remove_string(alloc_, k);
  alloc_.clear_string(k);
  t_of_[ku] = std::numeric_limits<double>::quiet_NaN();

  affected_strings_.clear();
  for (const MachineId j : touched_machines_) {
    for (const AppRef& ref : util_.apps_on(j)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const auto& [j1, j2] : touched_routes_) {
    for (const AppRef& ref : util_.transfers_on(j1, j2)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const StringId z : affected_strings_) refresh_estimates_of(z);
}

void AllocationSession::uncommit_all(std::span<const StringId> ks) {
  const std::uint64_t t0 = obs::clock_ticks();
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.uncommit_batches.add(1);
  metrics.uncommit_strings.add(ks.size());
  // Union of resources the removed strings occupied (collected while the
  // allocation still holds their assignments).
  touched_machines_.clear();
  touched_routes_.clear();
  for (const StringId k : ks) {
    assert(alloc_.deployed(k));
    const auto& s = model_->strings[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const MachineId j = alloc_.machine_of(k, static_cast<AppIndex>(i));
      if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
          touched_machines_.end()) {
        touched_machines_.push_back(j);
      }
      if (i + 1 < s.size()) {
        const MachineId j2 = alloc_.machine_of(k, static_cast<AppIndex>(i + 1));
        if (j != j2) {
          const auto route = std::make_pair(j, j2);
          if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
              touched_routes_.end()) {
            touched_routes_.push_back(route);
          }
        }
      }
    }
  }

  util_.remove_strings(alloc_, ks);
  for (const StringId k : ks) {
    alloc_.clear_string(k);
    t_of_[static_cast<std::size_t>(k)] = std::numeric_limits<double>::quiet_NaN();
  }

  // One estimate refresh per affected survivor, against the final state.
  affected_strings_.clear();
  for (const MachineId j : touched_machines_) {
    for (const AppRef& ref : util_.apps_on(j)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const auto& [j1, j2] : touched_routes_) {
    for (const AppRef& ref : util_.transfers_on(j1, j2)) {
      if (std::find(affected_strings_.begin(), affected_strings_.end(), ref.k) ==
          affected_strings_.end()) {
        affected_strings_.push_back(ref.k);
      }
    }
  }
  for (const StringId z : affected_strings_) refresh_estimates_of(z);

  const std::uint64_t ns = obs::ticks_to_ns(obs::clock_ticks() - t0);
  metrics.uncommit_latency_ns.record(ns);
  obs::flight_recorder_record(obs::FrKind::kUncommit, ns, ks.size());
}

void AllocationSession::reset() {
  alloc_ = Allocation(*model_);
  util_ = UtilizationState(*model_);
  std::fill(t_of_.begin(), t_of_.end(), std::numeric_limits<double>::quiet_NaN());
  // Estimate slots of undeployed strings are never read (refresh precedes
  // every read), but reset is cold — scrub them so a stale value can't hide.
  std::fill(comp_.begin(), comp_.end(), std::numeric_limits<double>::quiet_NaN());
  std::fill(tran_.begin(), tran_.end(), std::numeric_limits<double>::quiet_NaN());
}

TSCE_HOT bool AllocationSession::try_commit(StringId k,
                                            const std::vector<MachineId>& assignment) {
  const std::uint64_t t0 = obs::clock_ticks();
  const auto ku = static_cast<std::size_t>(k);
  const auto& s = model_->strings[ku];
  assert(!alloc_.deployed(k));
  assert(assignment.size() == s.size());

  // Record the tentative assignment.  Stale affected/journal entries from a
  // previous commit would poison a stage-one rollback, so clear them up front.
  affected_strings_.clear();
  comp_journal_.clear();
  tran_journal_.clear();
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assert(assignment[i] != model::kUnassigned);
    alloc_.assign(k, static_cast<AppIndex>(i), assignment[i]);
  }
  alloc_.set_deployed(k, true);
  util_.add_string(alloc_, k);

  // Resources touched by this string.
  touched_machines_.clear();
  touched_routes_.clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const MachineId j = assignment[i];
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < s.size() && assignment[i] != assignment[i + 1]) {
      const auto route = std::make_pair(assignment[i], assignment[i + 1]);
      if (std::find(touched_routes_.begin(), touched_routes_.end(), route) ==
          touched_routes_.end()) {
        touched_routes_.push_back(route);
      }
    }
  }

  // Stage one on touched resources only (others are unchanged).
  bool ok = true;
  for (const MachineId j : touched_machines_) {
    if (!within(util_.machine_util(j), 1.0)) ok = false;
  }
  for (const auto& [j1, j2] : touched_routes_) {
    if (!within(util_.route_util(j1, j2), 1.0)) ok = false;
  }

  std::uint64_t fr_violation = kFrViolationUtilization;
  if (!ok) {
    SessionMetrics::get().reject_utilization.add(1);
  } else {
    t_of_[ku] = priority_value(*model_, alloc_, k, rule_);
    const ConstraintViolation violation = stage_two_after_add(k);
    ok = violation == ConstraintViolation::kNone;
    if (violation == ConstraintViolation::kThroughput) {
      SessionMetrics::get().reject_throughput.add(1);
      fr_violation = kFrViolationThroughput;
    } else if (violation == ConstraintViolation::kLatency) {
      SessionMetrics::get().reject_latency.add(1);
      fr_violation = kFrViolationLatency;
    }
  }

  if (!ok) {
    // Roll back: remove the string and restore the estimate slots stage two
    // delta-updated from the journals.  Walking backwards makes repeated
    // touches of one slot land on its oldest (pre-commit) value, so the
    // restore is bit-exact; k's own slots are left stale (unreadable until
    // its next deploy refreshes them).
    util_.remove_string(alloc_, k);
    alloc_.clear_string(k);
    t_of_[ku] = std::numeric_limits<double>::quiet_NaN();
    for (auto it = comp_journal_.rbegin(); it != comp_journal_.rend(); ++it) {
      comp_[it->first] = it->second;
    }
    for (auto it = tran_journal_.rbegin(); it != tran_journal_.rend(); ++it) {
      tran_[it->first] = it->second;
    }
    SessionMetrics::get().commit_latency_ns.record(
        obs::ticks_to_ns(obs::clock_ticks() - t0));
    obs::flight_recorder_note_reject(static_cast<std::uint64_t>(k),
                                     fr_violation);
    return false;
  }
  SessionMetrics::get().commit_latency_ns.record(
      obs::ticks_to_ns(obs::clock_ticks() - t0));
  obs::flight_recorder_note_commit_ok();
  return true;
}

TSCE_HOT ConstraintViolation AllocationSession::stage_two_after_add(StringId k) {
  // Only two kinds of strings see their estimates change when k commits:
  //
  //  * k itself — estimated from scratch below;
  //  * residents z of k's resources over which k takes scheduling priority.
  //    A resident with priority above k never waits on k, so its eq. (5)-(6)
  //    sums gain no term — and a string with unchanged estimates cannot newly
  //    violate eq. (1) (it passed when it was committed), so it needs neither
  //    a refresh nor a re-check.
  //
  // Preempted residents are updated by a delta, not a rescan: a full re-sum
  // walks the resident slab in order and k's entries sit at the slab tail, so
  // re-sum = (cached value) + (k's terms, in k-app order) by left-to-right
  // float associativity — adding the terms to the cached slot is bit-exact.
  // Old slot values are journaled first so a stage-two rejection can restore
  // them exactly (float subtraction would leave residue).
  affected_strings_.clear();
  comp_journal_.clear();
  tran_journal_.clear();
  const auto ku = static_cast<std::size_t>(k);
  const auto& sk = model_->strings[ku];
  const double t_k = t_of_[ku];
  auto note = [&](StringId z) {
    if (std::find(affected_strings_.begin(), affected_strings_.end(), z) ==
        affected_strings_.end()) {
      affected_strings_.push_back(z);
    }
  };
  note(k);
  const std::size_t n = sk.size();
  for (std::size_t p = 0; p < n; ++p) {
    const auto& ap = sk.apps[p];
    const MachineId j = alloc_.machine_of(k, static_cast<AppIndex>(p));
    for (const AppRef& ref : util_.apps_on(j)) {
      if (ref.k == k) continue;
      const auto zu = static_cast<std::size_t>(ref.k);
      if (!higher_priority(t_k, k, t_of_[zu], ref.k)) continue;
      note(ref.k);
      const std::uint32_t slot = app_off_[zu] + ref.i;
      comp_journal_.emplace_back(slot, comp_[slot]);
      comp_[slot] += (model_->strings[zu].period_s / sk.period_s) *
                     ap.cpu_work(static_cast<std::size_t>(j));
    }
    if (p + 1 < n) {
      const MachineId j2 = alloc_.machine_of(k, static_cast<AppIndex>(p + 1));
      if (j == j2) continue;
      const double w = model_->network.bandwidth_mbps(j, j2);
      const double mbits = model::kbytes_to_megabits(ap.output_kbytes);
      for (const AppRef& ref : util_.transfers_on(j, j2)) {
        if (ref.k == k) continue;
        const auto zu = static_cast<std::size_t>(ref.k);
        if (!higher_priority(t_k, k, t_of_[zu], ref.k)) continue;
        note(ref.k);
        const std::uint32_t slot = tran_off_[zu] + ref.i;
        tran_journal_.emplace_back(slot, tran_[slot]);
        tran_[slot] += (model_->strings[zu].period_s / sk.period_s) * mbits / w;
      }
    }
  }

  refresh_estimates_of(k);
  for (const StringId z : affected_strings_) {
    const ConstraintViolation violation = constraint_violation(z);
    if (violation != ConstraintViolation::kNone) return violation;
  }
  return ConstraintViolation::kNone;
}

TSCE_HOT void AllocationSession::refresh_estimates_of(StringId z) {
  // Full per-string refresh: strings are short (<= ~10 apps), so recomputing
  // the whole string is cheaper than tracking which of its apps were touched.
  // The flat slices are fixed-size (prefix-sum layout), so this writes in
  // place — no resize, no allocation.
  const auto zu = static_cast<std::size_t>(z);
  const std::size_t n = model_->strings[zu].size();
  double* const comp = comp_.data() + app_off_[zu];
  double* const tran = tran_.data() + tran_off_[zu];
  for (std::size_t i = 0; i < n; ++i) {
    comp[i] = estimate_comp_time(*model_, alloc_, util_, t_of_, z,
                                 static_cast<AppIndex>(i));
    if (i + 1 < n) {
      tran[i] = estimate_tran_time(*model_, alloc_, util_, t_of_, z,
                                   static_cast<AppIndex>(i));
    }
  }
}

TSCE_HOT ConstraintViolation AllocationSession::constraint_violation(
    StringId z) const noexcept {
  const auto& s = model_->strings[static_cast<std::size_t>(z)];
  double latency = 0.0;
  for (const double c : comp_estimates(z)) {
    if (!within(c, s.period_s)) return ConstraintViolation::kThroughput;
    latency += c;
  }
  for (const double t : tran_estimates(z)) {
    if (!within(t, s.period_s)) return ConstraintViolation::kThroughput;
    latency += t;
  }
  return within(latency, s.max_latency_s) ? ConstraintViolation::kNone
                                          : ConstraintViolation::kLatency;
}

}  // namespace tsce::analysis
