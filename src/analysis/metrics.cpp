#include "analysis/metrics.hpp"

#include "analysis/utilization.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::StringId;
using model::SystemModel;

int total_worth(const SystemModel& model, const Allocation& alloc) noexcept {
  int worth = 0;
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      worth += model.strings[k].worth_factor();
    }
  }
  return worth;
}

double system_slackness(const SystemModel& model, const Allocation& alloc) {
  return UtilizationState::from_allocation(model, alloc).slackness();
}

Fitness evaluate(const SystemModel& model, const Allocation& alloc) {
  return {total_worth(model, alloc), system_slackness(model, alloc)};
}

}  // namespace tsce::analysis
