/// \file priority.hpp
/// Local-scheduler priority rules.
///
/// The paper's analysis assumes machines and routes prioritize by relative
/// tightness (eq. 4), and notes that "this analysis can be modified if a
/// different scheduling policy is used" (§3).  This header makes the rule a
/// parameter: the time-estimation equations (5)-(6), the feasibility
/// analysis, and the discrete-event simulator all accept any rule below, so
/// alternative local schedulers can be evaluated end-to-end (ablation E13).

#pragma once

#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::analysis {

enum class PriorityRule {
  /// The paper's rule: higher relative tightness T[k] wins.
  kRelativeTightness,
  /// Rate-monotonic flavor: shorter period wins (priority value 1/P[k]).
  kRateMonotonic,
  /// Mission-importance flavor: higher worth I[k] wins.
  kWorth,
};

[[nodiscard]] const char* to_string(PriorityRule rule) noexcept;

/// Scalar priority of deployed string k under \p rule; strictly larger value
/// means higher scheduling priority.  Exact ties are broken by lower string
/// id (see higher_priority in tightness.hpp).
[[nodiscard]] double priority_value(const model::SystemModel& model,
                                    const model::Allocation& alloc,
                                    model::StringId k, PriorityRule rule) noexcept;

}  // namespace tsce::analysis
