/// \file metrics.hpp
/// The two-component performance metric (paper §4): total worth of feasibly
/// deployed strings (primary) and system slackness (secondary), compared
/// lexicographically.

#pragma once

#include <bit>
#include <compare>
#include <cstdint>

#include "model/allocation.hpp"
#include "model/system_model.hpp"

namespace tsce::analysis {

struct Fitness {
  int total_worth = 0;
  double slackness = 0.0;

  /// Lexicographic: worth dominates, slackness breaks ties.
  friend constexpr std::partial_ordering operator<=>(const Fitness& a,
                                                     const Fitness& b) noexcept {
    if (a.total_worth != b.total_worth) {
      return a.total_worth <=> b.total_worth;
    }
    return a.slackness <=> b.slackness;
  }
  /// Equality is bit-exact on the slackness double (the determinism
  /// auditor's convention): two fitnesses are "the same result" only when a
  /// replay would serialize identically, so -0.0 != +0.0 here on purpose.
  friend constexpr bool operator==(const Fitness& a, const Fitness& b) noexcept {
    return a.total_worth == b.total_worth &&
           std::bit_cast<std::uint64_t>(a.slackness) ==
               std::bit_cast<std::uint64_t>(b.slackness);
  }
};

/// Sum of worth factors over deployed strings.  The heuristic pipeline only
/// marks strings deployed after they pass the two-stage analysis, so this is
/// the paper's "total worth".
[[nodiscard]] int total_worth(const model::SystemModel& model,
                              const model::Allocation& alloc) noexcept;

/// System slackness Lambda, eq. (7).
[[nodiscard]] double system_slackness(const model::SystemModel& model,
                                      const model::Allocation& alloc);

/// Both components at once.
[[nodiscard]] Fitness evaluate(const model::SystemModel& model,
                               const model::Allocation& alloc);

}  // namespace tsce::analysis
