#include "analysis/utilization.hpp"

#include <algorithm>
#include <cassert>

#include "util/hot.hpp"

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

UtilizationState::UtilizationState(const SystemModel& model) : model_(&model) {
  const std::size_t m = model.num_machines();
  // Header first (fixed offsets), pool slabs grow past it at the tip.  Sizing
  // the arena for the header plus one pool entry per application keeps slab
  // growth off the common path without reserving for the worst case.
  std::size_t apps = 0;
  for (const auto& s : model.strings) apps += s.size();
  arena_ = util::Arena((m + m * m + apps) * sizeof(double));
  machine_util_ = arena_.alloc<double>(m);
  route_util_ = arena_.alloc<double>(m * m);
  slabs_ = arena_.alloc<Slab>(m + m * m);
  touched_machines_.reserve(m);
  touched_routes_.reserve(m * m);
}

UtilizationState UtilizationState::from_allocation(const SystemModel& model,
                                                   const Allocation& alloc) {
  UtilizationState state(model);
  for (std::size_t k = 0; k < alloc.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      state.add_string(alloc, static_cast<StringId>(k));
    }
  }
  return state;
}

UtilizationState UtilizationState::from_allocation(
    const SystemModel& model, const Allocation& alloc,
    std::span<const StringId> deploy_order) {
  UtilizationState state(model);
  for (const StringId k : deploy_order) {
    assert(alloc.deployed(k));
    state.add_string(alloc, k);
  }
  return state;
}

double UtilizationState::machine_delta(StringId k, AppIndex i,
                                       MachineId j) const noexcept {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (t[i,j] * u[i,j]) / P[k]: the minimum average CPU share that lets a_i^k
  // finish each data set within one period.
  return a.cpu_work(static_cast<std::size_t>(j)) / s.period_s;
}

double UtilizationState::route_delta(StringId k, AppIndex i, MachineId j1,
                                     MachineId j2) const noexcept {
  if (j1 == j2) return 0.0;  // intra-machine: infinite bandwidth
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (O[i]/P[k]) / w[j1,j2]: minimum average bandwidth share over the period.
  const double mbps_needed = model::kbytes_to_megabits(a.output_kbytes) / s.period_s;
  return mbps_needed / model_->network.bandwidth_mbps(j1, j2);
}

TSCE_HOT void UtilizationState::slab_push(std::size_t resource, AppRef ref) {
  // Copy the slab descriptor out first: growing the pool may move the arena's
  // backing buffer, which would invalidate a reference into it.
  Slab s = arena_.view(slabs_)[resource];
  if (s.size == s.cap) {
    const std::uint32_t new_cap = s.cap == 0 ? 4 : s.cap * 2;
    const util::ArenaSpan<AppRef> moved =
        arena_.grow(util::ArenaSpan<AppRef>{s.begin, s.cap}, new_cap);
    s.begin = moved.offset;
    s.cap = new_cap;
  }
  arena_.view(util::ArenaSpan<AppRef>{s.begin, s.cap})[s.size] = ref;
  ++s.size;
  arena_.view(slabs_)[resource] = s;
}

TSCE_HOT void UtilizationState::slab_erase(std::size_t resource, AppRef ref) {
  Slab s = arena_.view(slabs_)[resource];
  const std::span<AppRef> residents =
      arena_.view(util::ArenaSpan<AppRef>{s.begin, s.size});
  const auto it = std::find(residents.begin(), residents.end(), ref);
  assert(it != residents.end());
  std::move(it + 1, residents.end(), it);  // preserve order, like vector::erase
  --s.size;
  arena_.view(slabs_)[resource] = s;
}

TSCE_HOT void UtilizationState::add_string(const Allocation& alloc, StringId k) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  for (AppIndex i = 0; i < n; ++i) {
    const MachineId j = alloc.machine_of(k, i);
    assert(j != model::kUnassigned);
    arena_.view(machine_util_)[static_cast<std::size_t>(j)] +=
        machine_delta(k, i, j);
    slab_push(static_cast<std::size_t>(j), {k, i});
    if (i + 1 < n) {
      const MachineId j2 = alloc.machine_of(k, i + 1);
      if (j != j2) {
        const std::size_t r = route_index(j, j2);
        arena_.view(route_util_)[r] += route_delta(k, i, j, j2);
        slab_push(num_machines() + r, {k, i});
      }
    }
  }
}

TSCE_HOT void UtilizationState::remove_string(const Allocation& alloc, StringId k) {
  // Removal erases the string's entries from the resident lists and then
  // recomputes every touched utilization as a fresh left-to-right sum over
  // the survivors.  Subtracting the deltas instead would leave floating-point
  // residues ((u + d) - d != u in general), breaking the exact-rollback
  // invariant that the prefix-reuse decode and try_commit rely on: a
  // commit/uncommit round trip must restore bit-identical state.  Fresh
  // summation makes each utilization a pure function of its resident list,
  // and add_string's running sum equals the same left fold, so the two paths
  // can never drift apart.
  touched_machines_.clear();
  touched_routes_.clear();
  erase_string(alloc, k);
  resum_touched();
}

TSCE_HOT void UtilizationState::remove_strings(const Allocation& alloc,
                                               std::span<const StringId> ks) {
  touched_machines_.clear();
  touched_routes_.clear();
  for (const StringId k : ks) erase_string(alloc, k);
  resum_touched();
}

TSCE_HOT void UtilizationState::erase_string(const Allocation& alloc, StringId k) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  for (AppIndex i = 0; i < n; ++i) {
    const MachineId j = alloc.machine_of(k, i);
    assert(j != model::kUnassigned);
    slab_erase(static_cast<std::size_t>(j), {k, i});
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < n) {
      const MachineId j2 = alloc.machine_of(k, i + 1);
      if (j != j2) {
        const std::size_t r = route_index(j, j2);
        slab_erase(num_machines() + r, {k, i});
        if (std::find(touched_routes_.begin(), touched_routes_.end(), r) ==
            touched_routes_.end()) {
          touched_routes_.push_back(r);
        }
      }
    }
  }
}

TSCE_HOT void UtilizationState::resum_touched() {
  // Fresh left-to-right sums over the flat resident slabs; with the pool in
  // one contiguous block these scans are cache-linear per resource.
  const std::span<double> machine_util = arena_.view(machine_util_);
  for (const MachineId j : touched_machines_) {
    double u = 0.0;
    for (const AppRef& ref : slab_span(static_cast<std::size_t>(j))) {
      u += machine_delta(ref.k, ref.i, j);
    }
    machine_util[static_cast<std::size_t>(j)] = u;
  }
  const auto m = static_cast<MachineId>(num_machines());
  const std::span<double> route_util = arena_.view(route_util_);
  for (const std::size_t r : touched_routes_) {
    const auto j1 = static_cast<MachineId>(r / static_cast<std::size_t>(m));
    const auto j2 = static_cast<MachineId>(r % static_cast<std::size_t>(m));
    double u = 0.0;
    for (const AppRef& ref : slab_span(num_machines() + r)) {
      u += route_delta(ref.k, ref.i, j1, j2);
    }
    route_util[r] = u;
  }
}

double UtilizationState::max_machine_util() const noexcept {
  double best = 0.0;
  for (double u : arena_.view(machine_util_)) best = std::max(best, u);
  return best;
}

double UtilizationState::max_route_util() const noexcept {
  double best = 0.0;
  for (double u : arena_.view(route_util_)) best = std::max(best, u);
  return best;
}

TSCE_HOT double UtilizationState::slackness() const noexcept {
  // machine_util_ and route_util_ are adjacent in the arena, so these two
  // scans stream one contiguous block of M + M*M doubles (auto-vectorized:
  // plain min-reduction over flat arrays).
  double min_slack = 1.0;
  for (double u : arena_.view(machine_util_)) min_slack = std::min(min_slack, 1.0 - u);
  for (double u : arena_.view(route_util_)) min_slack = std::min(min_slack, 1.0 - u);
  return min_slack;
}

}  // namespace tsce::analysis
