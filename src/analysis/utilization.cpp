#include "analysis/utilization.hpp"

#include <algorithm>
#include <cassert>

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

UtilizationState::UtilizationState(const SystemModel& model)
    : model_(&model),
      machine_util_(model.num_machines(), 0.0),
      route_util_(model.num_machines() * model.num_machines(), 0.0),
      machine_apps_(model.num_machines()),
      route_transfers_(model.num_machines() * model.num_machines()) {}

UtilizationState UtilizationState::from_allocation(const SystemModel& model,
                                                   const Allocation& alloc) {
  UtilizationState state(model);
  for (std::size_t k = 0; k < alloc.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      state.add_string(alloc, static_cast<StringId>(k));
    }
  }
  return state;
}

double UtilizationState::machine_delta(StringId k, AppIndex i,
                                       MachineId j) const noexcept {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (t[i,j] * u[i,j]) / P[k]: the minimum average CPU share that lets a_i^k
  // finish each data set within one period.
  return a.cpu_work(static_cast<std::size_t>(j)) / s.period_s;
}

double UtilizationState::route_delta(StringId k, AppIndex i, MachineId j1,
                                     MachineId j2) const noexcept {
  if (j1 == j2) return 0.0;  // intra-machine: infinite bandwidth
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (O[i]/P[k]) / w[j1,j2]: minimum average bandwidth share over the period.
  const double mbps_needed = model::kbytes_to_megabits(a.output_kbytes) / s.period_s;
  return mbps_needed / model_->network.bandwidth_mbps(j1, j2);
}

void UtilizationState::add_string(const Allocation& alloc, StringId k) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  for (AppIndex i = 0; i < n; ++i) {
    const MachineId j = alloc.machine_of(k, i);
    assert(j != model::kUnassigned);
    machine_util_[static_cast<std::size_t>(j)] += machine_delta(k, i, j);
    machine_apps_[static_cast<std::size_t>(j)].push_back({k, i});
    if (i + 1 < n) {
      const MachineId j2 = alloc.machine_of(k, i + 1);
      if (j != j2) {
        const std::size_t r = route_index(j, j2);
        route_util_[r] += route_delta(k, i, j, j2);
        route_transfers_[r].push_back({k, i});
      }
    }
  }
}

void UtilizationState::remove_string(const Allocation& alloc, StringId k) {
  // Removal erases the string's entries from the resident lists and then
  // recomputes every touched utilization as a fresh left-to-right sum over
  // the survivors.  Subtracting the deltas instead would leave floating-point
  // residues ((u + d) - d != u in general), breaking the exact-rollback
  // invariant that the prefix-reuse decode and try_commit rely on: a
  // commit/uncommit round trip must restore bit-identical state.  Fresh
  // summation makes each utilization a pure function of its resident list,
  // and add_string's running sum equals the same left fold, so the two paths
  // can never drift apart.
  touched_machines_.clear();
  touched_routes_.clear();
  erase_string(alloc, k);
  resum_touched();
}

void UtilizationState::remove_strings(const Allocation& alloc,
                                      std::span<const StringId> ks) {
  touched_machines_.clear();
  touched_routes_.clear();
  for (const StringId k : ks) erase_string(alloc, k);
  resum_touched();
}

void UtilizationState::erase_string(const Allocation& alloc, StringId k) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  for (AppIndex i = 0; i < n; ++i) {
    const MachineId j = alloc.machine_of(k, i);
    assert(j != model::kUnassigned);
    auto& residents = machine_apps_[static_cast<std::size_t>(j)];
    residents.erase(std::find(residents.begin(), residents.end(), AppRef{k, i}));
    if (std::find(touched_machines_.begin(), touched_machines_.end(), j) ==
        touched_machines_.end()) {
      touched_machines_.push_back(j);
    }
    if (i + 1 < n) {
      const MachineId j2 = alloc.machine_of(k, i + 1);
      if (j != j2) {
        const std::size_t r = route_index(j, j2);
        auto& transfers = route_transfers_[r];
        transfers.erase(std::find(transfers.begin(), transfers.end(), AppRef{k, i}));
        if (std::find(touched_routes_.begin(), touched_routes_.end(), r) ==
            touched_routes_.end()) {
          touched_routes_.push_back(r);
        }
      }
    }
  }
}

void UtilizationState::resum_touched() {
  for (const MachineId j : touched_machines_) {
    double u = 0.0;
    for (const AppRef& ref : machine_apps_[static_cast<std::size_t>(j)]) {
      u += machine_delta(ref.k, ref.i, j);
    }
    machine_util_[static_cast<std::size_t>(j)] = u;
  }
  const auto m = static_cast<MachineId>(machine_util_.size());
  for (const std::size_t r : touched_routes_) {
    const auto j1 = static_cast<MachineId>(r / static_cast<std::size_t>(m));
    const auto j2 = static_cast<MachineId>(r % static_cast<std::size_t>(m));
    double u = 0.0;
    for (const AppRef& ref : route_transfers_[r]) {
      u += route_delta(ref.k, ref.i, j1, j2);
    }
    route_util_[r] = u;
  }
}

double UtilizationState::max_machine_util() const noexcept {
  double best = 0.0;
  for (double u : machine_util_) best = std::max(best, u);
  return best;
}

double UtilizationState::max_route_util() const noexcept {
  double best = 0.0;
  for (double u : route_util_) best = std::max(best, u);
  return best;
}

double UtilizationState::slackness() const noexcept {
  double min_slack = 1.0;
  for (double u : machine_util_) min_slack = std::min(min_slack, 1.0 - u);
  for (double u : route_util_) min_slack = std::min(min_slack, 1.0 - u);
  return min_slack;
}

}  // namespace tsce::analysis
