#include "analysis/utilization.hpp"

#include <algorithm>
#include <cassert>

namespace tsce::analysis {

using model::Allocation;
using model::AppIndex;
using model::MachineId;
using model::StringId;
using model::SystemModel;

UtilizationState::UtilizationState(const SystemModel& model)
    : model_(&model),
      machine_util_(model.num_machines(), 0.0),
      route_util_(model.num_machines() * model.num_machines(), 0.0),
      machine_apps_(model.num_machines()),
      route_transfers_(model.num_machines() * model.num_machines()) {}

UtilizationState UtilizationState::from_allocation(const SystemModel& model,
                                                   const Allocation& alloc) {
  UtilizationState state(model);
  for (std::size_t k = 0; k < alloc.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      state.add_string(alloc, static_cast<StringId>(k));
    }
  }
  return state;
}

double UtilizationState::machine_delta(StringId k, AppIndex i,
                                       MachineId j) const noexcept {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (t[i,j] * u[i,j]) / P[k]: the minimum average CPU share that lets a_i^k
  // finish each data set within one period.
  return a.cpu_work(static_cast<std::size_t>(j)) / s.period_s;
}

double UtilizationState::route_delta(StringId k, AppIndex i, MachineId j1,
                                     MachineId j2) const noexcept {
  if (j1 == j2) return 0.0;  // intra-machine: infinite bandwidth
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  // (O[i]/P[k]) / w[j1,j2]: minimum average bandwidth share over the period.
  const double mbps_needed = model::kbytes_to_megabits(a.output_kbytes) / s.period_s;
  return mbps_needed / model_->network.bandwidth_mbps(j1, j2);
}

void UtilizationState::apply_string(const Allocation& alloc, StringId k, double sign) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  for (AppIndex i = 0; i < n; ++i) {
    const MachineId j = alloc.machine_of(k, i);
    assert(j != model::kUnassigned);
    machine_util_[static_cast<std::size_t>(j)] += sign * machine_delta(k, i, j);
    auto& residents = machine_apps_[static_cast<std::size_t>(j)];
    if (sign > 0) {
      residents.push_back({k, i});
    } else {
      residents.erase(std::find(residents.begin(), residents.end(), AppRef{k, i}));
    }
    if (i + 1 < n) {
      const MachineId j2 = alloc.machine_of(k, i + 1);
      if (j != j2) {
        const std::size_t r = route_index(j, j2);
        route_util_[r] += sign * route_delta(k, i, j, j2);
        auto& transfers = route_transfers_[r];
        if (sign > 0) {
          transfers.push_back({k, i});
        } else {
          transfers.erase(
              std::find(transfers.begin(), transfers.end(), AppRef{k, i}));
        }
      }
    }
  }
}

void UtilizationState::add_string(const Allocation& alloc, StringId k) {
  apply_string(alloc, k, 1.0);
}

void UtilizationState::remove_string(const Allocation& alloc, StringId k) {
  apply_string(alloc, k, -1.0);
  // Guard against drift from repeated add/remove cycles: clamp tiny negative
  // residues to zero.
  for (auto& u : machine_util_) {
    if (u < 0.0 && u > -1e-12) u = 0.0;
  }
  for (auto& u : route_util_) {
    if (u < 0.0 && u > -1e-12) u = 0.0;
  }
}

double UtilizationState::max_machine_util() const noexcept {
  double best = 0.0;
  for (double u : machine_util_) best = std::max(best, u);
  return best;
}

double UtilizationState::max_route_util() const noexcept {
  double best = 0.0;
  for (double u : route_util_) best = std::max(best, u);
  return best;
}

double UtilizationState::slackness() const noexcept {
  double min_slack = 1.0;
  for (double u : machine_util_) min_slack = std::min(min_slack, 1.0 - u);
  for (double u : route_util_) min_slack = std::min(min_slack, 1.0 - u);
  return min_slack;
}

}  // namespace tsce::analysis
