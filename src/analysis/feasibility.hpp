/// \file feasibility.hpp
/// The two-stage allocation feasibility analysis (paper §3).
///
/// Stage one: every machine and route utilization is at most 1 (eqs. 2-3).
/// Stage two: with local scheduling prioritized by relative tightness, the
/// estimated computation/transfer times (eqs. 5-6) satisfy the throughput and
/// end-to-end latency constraints (eq. 1) for every deployed string.

#pragma once

#include <string>
#include <vector>

#include "analysis/estimates.hpp"
#include "model/allocation.hpp"
#include "model/system_model.hpp"

namespace tsce::analysis {

/// Numerical tolerance used by all feasibility comparisons: a constraint
/// c <= bound passes when c <= bound * (1 + kFeasibilityEps) + kFeasibilityEps.
inline constexpr double kFeasibilityEps = 1e-9;

[[nodiscard]] constexpr bool within(double value, double bound) noexcept {
  return value <= bound * (1.0 + kFeasibilityEps) + kFeasibilityEps;
}

enum class ViolationKind {
  kMachineOverload,   ///< stage 1: U_machine[j] > 1
  kRouteOverload,     ///< stage 1: U_route[j1,j2] > 1
  kCompThroughput,    ///< stage 2: t_comp > P[k]
  kTranThroughput,    ///< stage 2: t_tran > P[k]
  kLatency,           ///< stage 2: end-to-end estimate > Lmax[k]
};

struct Violation {
  ViolationKind kind;
  model::StringId k = model::kInvalidId;    ///< offending string (stage 2) or invalid
  model::AppIndex i = model::kInvalidId;    ///< offending app/transfer or invalid
  model::MachineId j1 = model::kInvalidId;  ///< machine (stage 1) or route source
  model::MachineId j2 = model::kInvalidId;  ///< route destination (routes only)
  double value = 0.0;         ///< measured quantity
  double bound = 0.0;         ///< violated bound

  [[nodiscard]] std::string to_string() const;
};

struct FeasibilityReport {
  bool stage_one_ok = true;
  bool stage_two_ok = true;
  std::vector<Violation> violations;

  [[nodiscard]] bool feasible() const noexcept { return stage_one_ok && stage_two_ok; }
};

/// Stage-one check on precomputed utilizations.
[[nodiscard]] FeasibilityReport check_stage_one(const UtilizationState& util);

/// Stage-two check on precomputed estimates.
[[nodiscard]] FeasibilityReport check_stage_two(const model::SystemModel& model,
                                                const model::Allocation& alloc,
                                                const TimeEstimates& est);

/// Full two-stage analysis of \p alloc from scratch.  Both stages always run
/// so the report lists all violations.  \p rule selects the local-scheduler
/// priority policy stage two assumes (paper default: relative tightness).
[[nodiscard]] FeasibilityReport check_feasibility(
    const model::SystemModel& model, const model::Allocation& alloc,
    PriorityRule rule = PriorityRule::kRelativeTightness);

}  // namespace tsce::analysis
