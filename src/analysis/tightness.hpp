/// \file tightness.hpp
/// Relative tightness T[k], eq. (4), and its allocation-independent
/// approximation used by the Tightest-First heuristic (paper §5).
///
/// Local schedulers prioritize applications and transfers of relatively
/// tighter strings (higher T).  The paper assumes distinct T values; we break
/// exact ties deterministically by string id so priorities form a strict
/// total order regardless.

#pragma once

#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::analysis {

/// Exact relative tightness of a fully mapped string k: total no-sharing
/// processing + transfer time on the assigned resources divided by Lmax[k].
[[nodiscard]] double relative_tightness(const model::SystemModel& model,
                                        const model::Allocation& alloc,
                                        model::StringId k) noexcept;

/// Allocation-free approximation: per-app average nominal execution time
/// (eq. 8) and average inverse bandwidth replace the assigned-resource terms.
[[nodiscard]] double approx_tightness(const model::SystemModel& model,
                                      model::StringId k) noexcept;

/// Strict priority order between deployed strings z and k given their
/// tightness values: higher T wins; exact ties broken by lower string id.
[[nodiscard]] constexpr bool higher_priority(double t_z, model::StringId z, double t_k,
                                             model::StringId k) noexcept {
  if (t_z != t_k) return t_z > t_k;
  return z < k;
}

}  // namespace tsce::analysis
