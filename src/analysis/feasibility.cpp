#include "analysis/feasibility.hpp"

#include <cstdio>

namespace tsce::analysis {

using model::Allocation;
using model::MachineId;
using model::StringId;
using model::SystemModel;

std::string Violation::to_string() const {
  char buf[160];
  switch (kind) {
    case ViolationKind::kMachineOverload:
      std::snprintf(buf, sizeof(buf), "machine %d overloaded: U=%.4f > 1", j1, value);
      break;
    case ViolationKind::kRouteOverload:
      std::snprintf(buf, sizeof(buf), "route %d->%d overloaded: U=%.4f > 1", j1, j2,
                    value);
      break;
    case ViolationKind::kCompThroughput:
      std::snprintf(buf, sizeof(buf),
                    "string %d app %d: t_comp=%.4f > P=%.4f (throughput)", k, i,
                    value, bound);
      break;
    case ViolationKind::kTranThroughput:
      std::snprintf(buf, sizeof(buf),
                    "string %d transfer %d: t_tran=%.4f > P=%.4f (throughput)", k, i,
                    value, bound);
      break;
    case ViolationKind::kLatency:
      std::snprintf(buf, sizeof(buf), "string %d: latency=%.4f > Lmax=%.4f", k,
                    value, bound);
      break;
  }
  return buf;
}

FeasibilityReport check_stage_one(const UtilizationState& util) {
  FeasibilityReport report;
  const auto m = static_cast<MachineId>(util.num_machines());
  for (MachineId j = 0; j < m; ++j) {
    const double u = util.machine_util(j);
    if (!within(u, 1.0)) {
      report.stage_one_ok = false;
      report.violations.push_back(
          {ViolationKind::kMachineOverload, model::kInvalidId, model::kInvalidId, j, model::kInvalidId, u, 1.0});
    }
  }
  for (MachineId j1 = 0; j1 < m; ++j1) {
    for (MachineId j2 = 0; j2 < m; ++j2) {
      if (j1 == j2) continue;
      const double u = util.route_util(j1, j2);
      if (!within(u, 1.0)) {
        report.stage_one_ok = false;
        report.violations.push_back(
            {ViolationKind::kRouteOverload, model::kInvalidId, model::kInvalidId, j1, j2, u, 1.0});
      }
    }
  }
  return report;
}

FeasibilityReport check_stage_two(const SystemModel& model, const Allocation& alloc,
                                  const TimeEstimates& est) {
  FeasibilityReport report;
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto& s = model.strings[k];
    const double p = s.period_s;
    for (std::size_t i = 0; i < est.comp[k].size(); ++i) {
      if (!within(est.comp[k][i], p)) {
        report.stage_two_ok = false;
        report.violations.push_back({ViolationKind::kCompThroughput,
                                     static_cast<StringId>(k),
                                     static_cast<model::AppIndex>(i), model::kInvalidId, model::kInvalidId,
                                     est.comp[k][i], p});
      }
    }
    for (std::size_t i = 0; i < est.tran[k].size(); ++i) {
      if (!within(est.tran[k][i], p)) {
        report.stage_two_ok = false;
        report.violations.push_back({ViolationKind::kTranThroughput,
                                     static_cast<StringId>(k),
                                     static_cast<model::AppIndex>(i), model::kInvalidId, model::kInvalidId,
                                     est.tran[k][i], p});
      }
    }
    const double latency = est.latency(static_cast<StringId>(k));
    if (!within(latency, s.max_latency_s)) {
      report.stage_two_ok = false;
      report.violations.push_back({ViolationKind::kLatency, static_cast<StringId>(k),
                                   model::kInvalidId, model::kInvalidId, model::kInvalidId, latency, s.max_latency_s});
    }
  }
  return report;
}

FeasibilityReport check_feasibility(const SystemModel& model, const Allocation& alloc,
                                    PriorityRule rule) {
  const UtilizationState util = UtilizationState::from_allocation(model, alloc);
  FeasibilityReport report = check_stage_one(util);
  const TimeEstimates est = estimate_all(model, alloc, rule);
  FeasibilityReport stage_two = check_stage_two(model, alloc, est);
  report.stage_two_ok = stage_two.stage_two_ok;
  report.violations.insert(report.violations.end(), stage_two.violations.begin(),
                           stage_two.violations.end());
  return report;
}

}  // namespace tsce::analysis
