/// \file generator.hpp
/// Synthetic workload generation for the three simulation scenarios
/// (paper §6, §8, Table 1).
///
/// Hardware: a heterogeneous suite of M machines; every inter-machine route
/// bandwidth is sampled uniformly from [1, 10] Mb/s; intra-machine routes are
/// infinite.  Workload: strings of 1..10 applications with nominal execution
/// times U[1,10] s and nominal CPU utilizations U[0.1,1] per (app, machine)
/// pair, output sizes U[10,100] KB, and worth drawn uniformly from
/// {1, 10, 100} (the paper does not specify the worth distribution; this
/// choice is documented in DESIGN.md).  Latency and period constraints follow
/// the §8 formulas with per-string multipliers mu sampled from the Table 1
/// ranges.

#pragma once

#include <cstddef>

#include "model/system_model.hpp"
#include "util/rng.hpp"

namespace tsce::workload {

/// The paper's three workload scenarios.
enum class Scenario {
  kHighlyLoaded = 1,  ///< 150 strings, relaxed QoS: hardware capacity binds first
  kQosLimited = 2,    ///< 150 strings, tight QoS: eq. (1) binds before capacity
  kLightlyLoaded = 3, ///< 25 strings, relaxed QoS: complete mapping achievable
};

/// Task-machine heterogeneity model (Ali et al. [5], cited by the paper).
enum class Heterogeneity {
  /// Independent draw per (application, machine) pair: a machine fast for one
  /// application may be slow for another (the paper's implicit model).
  kInconsistent,
  /// Each machine has a speed factor: if machine A is faster than B for one
  /// application, it is faster for all of them.
  kConsistent,
};

struct GeneratorConfig {
  std::size_t num_machines = 12;
  std::size_t num_strings = 150;
  std::size_t min_apps_per_string = 1;
  std::size_t max_apps_per_string = 10;
  /// Machines are grouped into pools of this size; machines within a pool are
  /// identical (same nominal time/utilization per application).  The paper's
  /// footnote 1 notes resources will be divided into pools in the final ARMS
  /// system and assumes one machine per pool — the default here.
  /// num_machines need not be a multiple; the last pool is smaller.
  std::size_t machines_per_pool = 1;
  /// Heterogeneity structure of the nominal execution times.
  Heterogeneity heterogeneity = Heterogeneity::kInconsistent;
  /// Machine speed-factor range for kConsistent (nominal time = base * factor).
  double speed_factor_min = 0.5;
  double speed_factor_max = 1.5;

  double bandwidth_min_mbps = 1.0;
  double bandwidth_max_mbps = 10.0;
  double time_min_s = 1.0;
  double time_max_s = 10.0;
  double util_min = 0.1;
  double util_max = 1.0;
  double output_min_kbytes = 10.0;
  double output_max_kbytes = 100.0;

  /// Table 1: mu range for the end-to-end latency constraint Lmax[k].
  double mu_latency_min = 4.0;
  double mu_latency_max = 6.0;
  /// Table 1: mu range for the period P[k].
  double mu_period_min = 3.0;
  double mu_period_max = 4.5;

  /// Paper-scale configuration for a scenario.  \p string_scale rescales the
  /// string count (e.g. 0.4 for faster bench defaults) without touching any
  /// other parameter.
  [[nodiscard]] static GeneratorConfig for_scenario(Scenario scenario,
                                                    double string_scale = 1.0);
};

/// Draws a complete random TSCE instance.  Deterministic given \p rng state.
[[nodiscard]] model::SystemModel generate(const GeneratorConfig& config,
                                          util::Rng& rng);

/// The §8 latency-bound formula: mu times the average nominal end-to-end time
/// (average execution per app plus average transfer per output).
[[nodiscard]] double latency_bound(const model::SystemModel& model,
                                   const model::AppString& s, double mu);

/// The §8 period formula: mu times the largest average nominal execution or
/// transfer time along the string.
[[nodiscard]] double period_bound(const model::SystemModel& model,
                                  const model::AppString& s, double mu);

}  // namespace tsce::workload
