#include "workload/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace tsce::workload {

using model::AppString;
using model::SystemModel;
using model::Worth;

GeneratorConfig GeneratorConfig::for_scenario(Scenario scenario, double string_scale) {
  GeneratorConfig c;
  switch (scenario) {
    case Scenario::kHighlyLoaded:
      c.num_strings = 150;
      c.mu_latency_min = 4.0;
      c.mu_latency_max = 6.0;
      c.mu_period_min = 3.0;
      c.mu_period_max = 4.5;
      break;
    case Scenario::kQosLimited:
      c.num_strings = 150;
      c.mu_latency_min = 1.25;
      c.mu_latency_max = 2.75;
      c.mu_period_min = 1.5;
      c.mu_period_max = 2.5;
      break;
    case Scenario::kLightlyLoaded:
      c.num_strings = 25;
      c.mu_latency_min = 4.0;
      c.mu_latency_max = 6.0;
      c.mu_period_min = 3.0;
      c.mu_period_max = 4.5;
      break;
  }
  c.num_strings = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(
             static_cast<double>(c.num_strings) * string_scale)));
  return c;
}

double latency_bound(const SystemModel& model, const AppString& s, double mu) {
  double nominal = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    nominal += s.apps[i].avg_time_s();
    if (i + 1 < s.size()) {
      nominal += model.network.avg_transfer_s(s.apps[i].output_kbytes);
    }
  }
  return mu * nominal;
}

double period_bound(const SystemModel& model, const AppString& s, double mu) {
  double longest = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    longest = std::max(longest, s.apps[i].avg_time_s());
    if (i + 1 < s.size()) {
      longest = std::max(longest,
                         model.network.avg_transfer_s(s.apps[i].output_kbytes));
    }
  }
  return mu * longest;
}

SystemModel generate(const GeneratorConfig& config, util::Rng& rng) {
  SystemModel model;
  model.network = model::Network(config.num_machines);
  const auto m = static_cast<model::MachineId>(config.num_machines);
  for (model::MachineId j1 = 0; j1 < m; ++j1) {
    for (model::MachineId j2 = 0; j2 < m; ++j2) {
      if (j1 != j2) {
        model.network.set_bandwidth_mbps(
            j1, j2, rng.uniform(config.bandwidth_min_mbps, config.bandwidth_max_mbps));
      }
    }
  }

  static constexpr std::array<Worth, 3> kWorths = {Worth::kLow, Worth::kMedium,
                                                   Worth::kHigh};
  // Per-machine speed factors for the consistent heterogeneity model; every
  // pool shares one factor so pools remain internally identical.
  std::vector<double> speed(config.num_machines, 1.0);
  if (config.heterogeneity == Heterogeneity::kConsistent) {
    const std::size_t pool = std::max<std::size_t>(1, config.machines_per_pool);
    for (std::size_t j = 0; j < config.num_machines; ++j) {
      speed[j] = j % pool == 0
                     ? rng.uniform(config.speed_factor_min, config.speed_factor_max)
                     : speed[j - 1];
    }
  }
  model.strings.reserve(config.num_strings);
  for (std::size_t k = 0; k < config.num_strings; ++k) {
    AppString s;
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.min_apps_per_string),
                        static_cast<std::int64_t>(config.max_apps_per_string)));
    s.apps.resize(n);
    const std::size_t pool = std::max<std::size_t>(1, config.machines_per_pool);
    for (std::size_t i = 0; i < n; ++i) {
      auto& a = s.apps[i];
      a.nominal_time_s.resize(config.num_machines);
      a.nominal_util.resize(config.num_machines);
      const double base_time =
          config.heterogeneity == Heterogeneity::kConsistent
              ? rng.uniform(config.time_min_s, config.time_max_s)
              : 0.0;
      for (std::size_t j = 0; j < config.num_machines; ++j) {
        if (j % pool == 0) {
          // First machine of a pool draws fresh values; the rest of the pool
          // replicates them (machines within a pool are identical).
          a.nominal_time_s[j] =
              config.heterogeneity == Heterogeneity::kConsistent
                  ? base_time * speed[j]
                  : rng.uniform(config.time_min_s, config.time_max_s);
          a.nominal_util[j] = rng.uniform(config.util_min, config.util_max);
        } else {
          a.nominal_time_s[j] = a.nominal_time_s[j - 1];
          a.nominal_util[j] = a.nominal_util[j - 1];
        }
      }
      // The final application's output feeds actuators, not a route (eq. 3
      // sums transfers up to n_k - 1), so it carries no modeled output.
      a.output_kbytes =
          i + 1 < n ? rng.uniform(config.output_min_kbytes, config.output_max_kbytes)
                    : 0.0;
    }
    s.worth = kWorths[rng.bounded(kWorths.size())];
    s.max_latency_s = latency_bound(
        model, s, rng.uniform(config.mu_latency_min, config.mu_latency_max));
    s.period_s =
        period_bound(model, s, rng.uniform(config.mu_period_min, config.mu_period_max));
    model.strings.push_back(std::move(s));
  }
  return model;
}

}  // namespace tsce::workload
