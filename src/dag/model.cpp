#include "dag/model.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tsce::dag {

std::vector<AppIndex> DagString::topological_order() const {
  const std::size_t n = size();
  std::vector<std::size_t> in_degree(n, 0);
  for (const DagEdge& e : edges) {
    if (e.to >= 0 && static_cast<std::size_t>(e.to) < n) {
      ++in_degree[static_cast<std::size_t>(e.to)];
    }
  }
  // Each node enters the ready queue at most once, so a reserved vector with
  // a head cursor replaces the deque: one allocation, FIFO order preserved.
  std::vector<AppIndex> ready;
  ready.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push_back(static_cast<AppIndex>(i));
  }
  std::vector<AppIndex> order;
  order.reserve(n);
  const auto out = edges_out();
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const AppIndex i = ready[head];
    order.push_back(i);
    for (const std::size_t e : out[static_cast<std::size_t>(i)]) {
      const auto to = static_cast<std::size_t>(edges[e].to);
      if (--in_degree[to] == 0) ready.push_back(static_cast<AppIndex>(to));
    }
  }
  if (order.size() != n) order.clear();  // cycle
  return order;
}

std::vector<std::vector<std::size_t>> DagString::edges_in() const {
  std::vector<std::vector<std::size_t>> in(size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    in[static_cast<std::size_t>(edges[e].to)].push_back(e);
  }
  return in;
}

std::vector<std::vector<std::size_t>> DagString::edges_out() const {
  std::vector<std::vector<std::size_t>> out(size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    out[static_cast<std::size_t>(edges[e].from)].push_back(e);
  }
  return out;
}

int DagSystemModel::total_worth_available() const noexcept {
  int worth = 0;
  for (const auto& s : strings) worth += s.worth_factor();
  return worth;
}

namespace {
void note(std::vector<std::string>& problems, bool ok, const char* fmt, auto... args) {
  if (ok) return;
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  problems.emplace_back(buf);
}
}  // namespace

std::vector<std::string> DagSystemModel::validate() const {
  std::vector<std::string> problems;
  const std::size_t m = num_machines();
  note(problems, m > 0, "system has no machines");
  for (std::size_t k = 0; k < strings.size(); ++k) {
    const DagString& s = strings[k];
    note(problems, !s.apps.empty(), "dag string %zu has no applications", k);
    note(problems, s.period_s > 0.0, "dag string %zu has nonpositive period", k);
    note(problems, s.max_latency_s > 0.0, "dag string %zu has nonpositive latency",
         k);
    for (std::size_t i = 0; i < s.apps.size(); ++i) {
      note(problems, s.apps[i].nominal_time_s.size() == m,
           "dag string %zu app %zu time vector size mismatch", k, i);
      note(problems, s.apps[i].nominal_util.size() == m,
           "dag string %zu app %zu util vector size mismatch", k, i);
    }
    const auto n = static_cast<AppIndex>(s.size());
    bool edges_ok = true;
    for (const DagEdge& e : s.edges) {
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.from == e.to ||
          e.output_kbytes < 0.0) {
        edges_ok = false;
      }
    }
    note(problems, edges_ok, "dag string %zu has an invalid edge", k);
    if (edges_ok) {
      note(problems, !s.topological_order().empty() || s.apps.empty(),
           "dag string %zu contains a cycle", k);
    }
  }
  return problems;
}

DagAllocation::DagAllocation(const DagSystemModel& model) {
  mapping_.reserve(model.num_strings());
  for (const auto& s : model.strings) {
    mapping_.emplace_back(s.size(), model::kUnassigned);
  }
  deployed_.assign(model.num_strings(), false);
}

void DagAllocation::clear_string(StringId k) noexcept {
  auto& row = mapping_[static_cast<std::size_t>(k)];
  std::fill(row.begin(), row.end(), model::kUnassigned);
  deployed_[static_cast<std::size_t>(k)] = false;
}

std::size_t DagAllocation::num_deployed() const noexcept {
  return static_cast<std::size_t>(
      std::count(deployed_.begin(), deployed_.end(), true));
}

DagString chain_from_app_string(const model::AppString& s) {
  DagString dag;
  dag.apps = s.apps;
  dag.period_s = s.period_s;
  dag.max_latency_s = s.max_latency_s;
  dag.worth = s.worth;
  dag.name = s.name;
  for (std::size_t i = 0; i + 1 < s.apps.size(); ++i) {
    dag.edges.push_back({static_cast<AppIndex>(i), static_cast<AppIndex>(i + 1),
                         s.apps[i].output_kbytes});
  }
  return dag;
}

model::AppString to_app_string(const DagString& dag) {
  model::AppString s;
  s.apps = dag.apps;
  s.period_s = dag.period_s;
  s.max_latency_s = dag.max_latency_s;
  s.worth = dag.worth;
  s.name = dag.name;
  if (dag.edges.size() + 1 != dag.apps.size() && !dag.apps.empty() &&
      !(dag.apps.size() == 1 && dag.edges.empty())) {
    throw std::invalid_argument("to_app_string: not a path DAG");
  }
  std::vector<bool> seen(dag.apps.size(), false);
  for (const DagEdge& e : dag.edges) {
    if (e.to != e.from + 1 || seen[static_cast<std::size_t>(e.from)]) {
      throw std::invalid_argument("to_app_string: edges must form the path i->i+1");
    }
    seen[static_cast<std::size_t>(e.from)] = true;
    s.apps[static_cast<std::size_t>(e.from)].output_kbytes = e.output_kbytes;
  }
  if (!s.apps.empty()) s.apps.back().output_kbytes = 0.0;
  return s;
}

DagSystemModel lift(const model::SystemModel& m) {
  DagSystemModel dag;
  dag.network = m.network;
  dag.strings.reserve(m.num_strings());
  for (const auto& s : m.strings) {
    dag.strings.push_back(chain_from_app_string(s));
  }
  return dag;
}

}  // namespace tsce::dag
