/// \file model.hpp
/// DAG-structured application strings (paper §2, footnote 2: "The final ARMS
/// program may include DAGs of applications").
///
/// A DagString generalizes the linear string: applications form a directed
/// acyclic graph whose edges carry data transfers.  A data set is processed
/// once per period by every application; an application starts once ALL its
/// incoming transfers for that data set have arrived, and the end-to-end
/// latency is governed by the critical path instead of the chain sum.
/// Linear strings embed as path graphs — chain_from_app_string /
/// to_app_string convert both ways, and the dag analysis provably matches
/// the linear analysis on such chains (see tests/dag).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/app_string.hpp"
#include "model/network.hpp"
#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::dag {

using model::AppIndex;
using model::MachineId;
using model::StringId;

/// A data transfer between two applications of the same DAG string.
struct DagEdge {
  AppIndex from = 0;
  AppIndex to = 0;
  double output_kbytes = 0.0;
  friend bool operator==(const DagEdge&, const DagEdge&) = default;
};

struct DagString {
  std::vector<model::Application> apps;  ///< per-app output_kbytes is unused
  std::vector<DagEdge> edges;
  double period_s = 0.0;
  double max_latency_s = 0.0;
  model::Worth worth = model::Worth::kLow;
  std::string name;

  [[nodiscard]] std::size_t size() const noexcept { return apps.size(); }
  [[nodiscard]] int worth_factor() const noexcept {
    return model::worth_value(worth);
  }

  /// Topological order of the applications; empty when the graph has a cycle
  /// (which validate() reports as an error).
  [[nodiscard]] std::vector<AppIndex> topological_order() const;

  /// Incoming/outgoing edge indices per application.
  [[nodiscard]] std::vector<std::vector<std::size_t>> edges_in() const;
  [[nodiscard]] std::vector<std::vector<std::size_t>> edges_out() const;
};

struct DagSystemModel {
  model::Network network;
  std::vector<DagString> strings;

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return network.num_machines();
  }
  [[nodiscard]] std::size_t num_strings() const noexcept { return strings.size(); }
  [[nodiscard]] int total_worth_available() const noexcept;

  /// Structural validation (acyclicity, edge endpoints, positive parameters).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Per-string mapping for DAG systems (same shape semantics as
/// model::Allocation).
class DagAllocation {
 public:
  DagAllocation() = default;
  explicit DagAllocation(const DagSystemModel& model);

  [[nodiscard]] MachineId machine_of(StringId k, AppIndex i) const noexcept {
    return mapping_[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
  }
  void assign(StringId k, AppIndex i, MachineId j) noexcept {
    mapping_[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = j;
  }
  [[nodiscard]] bool deployed(StringId k) const noexcept {
    return deployed_[static_cast<std::size_t>(k)];
  }
  void set_deployed(StringId k, bool value) noexcept {
    deployed_[static_cast<std::size_t>(k)] = value;
  }
  void clear_string(StringId k) noexcept;
  [[nodiscard]] std::size_t num_strings() const noexcept { return mapping_.size(); }
  [[nodiscard]] std::size_t num_deployed() const noexcept;

  friend bool operator==(const DagAllocation&, const DagAllocation&) = default;

 private:
  std::vector<std::vector<MachineId>> mapping_;
  std::vector<bool> deployed_;
};

/// Embeds a linear string as a path DAG (edge i -> i+1 with O[i]).
[[nodiscard]] DagString chain_from_app_string(const model::AppString& s);
/// Converts a path DAG back to a linear string; throws std::invalid_argument
/// when the DAG is not a single path in index order.
[[nodiscard]] model::AppString to_app_string(const DagString& dag);
/// Lifts a whole linear system into the DAG representation.
[[nodiscard]] DagSystemModel lift(const model::SystemModel& m);

}  // namespace tsce::dag
