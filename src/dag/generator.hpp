/// \file generator.hpp
/// Random DAG workload generation mirroring the paper's §6 parameter ranges:
/// nominal times U[1,10] s, utilizations U[0.1,1], outputs U[10,100] KB,
/// route bandwidths U[1,10] Mb/s, worth uniform over {1,10,100}.  Graph
/// shape: a random spanning tree (every app after the first receives one
/// incoming edge from a uniformly chosen earlier app) plus extra forward
/// edges with a configurable probability.  Period and latency bounds reuse
/// the §8 formulas with the longest stage / critical path of averages.

#pragma once

#include "dag/model.hpp"
#include "util/rng.hpp"

namespace tsce::dag {

struct DagGeneratorConfig {
  std::size_t num_machines = 6;
  std::size_t num_strings = 10;
  std::size_t min_apps = 2;
  std::size_t max_apps = 8;
  /// Probability of each extra forward edge (i, j), i < j, beyond the tree.
  double extra_edge_prob = 0.15;

  double bandwidth_min_mbps = 1.0;
  double bandwidth_max_mbps = 10.0;
  double time_min_s = 1.0;
  double time_max_s = 10.0;
  double util_min = 0.1;
  double util_max = 1.0;
  double output_min_kbytes = 10.0;
  double output_max_kbytes = 100.0;
  double mu_latency_min = 4.0;
  double mu_latency_max = 6.0;
  double mu_period_min = 3.0;
  double mu_period_max = 4.5;
};

[[nodiscard]] DagSystemModel generate_dag_system(const DagGeneratorConfig& config,
                                                 util::Rng& rng);

}  // namespace tsce::dag
