/// \file allocator.hpp
/// DAG-aware greedy mapping: the IMR generalized from chains to DAGs.
///
/// The chain IMR marches a contiguous frontier; for a DAG the frontier is the
/// set of applications adjacent (by any edge) to the already-assigned set.
/// Mapping still seeds at the most computationally intensive application and
/// always extends with the most intensive frontier application, placing it on
/// the machine that minimizes the max of the affected machine utilization and
/// the utilizations of the routes to its already-placed neighbors.

#pragma once

#include <vector>

#include "dag/analysis.hpp"
#include "dag/model.hpp"

namespace tsce::dag {

/// Maps one DAG string against the committed utilization in \p util.
[[nodiscard]] std::vector<MachineId> dag_map_string(const DagSystemModel& model,
                                                    const DagUtilization& util,
                                                    StringId k);

struct DagAllocatorResult {
  DagAllocation allocation;
  analysis::Fitness fitness;
  std::size_t strings_deployed = 0;
};

/// Sequential most-worth-first allocation with full two-stage feasibility
/// after each string; the first failure terminates the process (the MWF rule
/// of paper §5 applied to DAG strings).
[[nodiscard]] DagAllocatorResult allocate_most_worth_first(const DagSystemModel& model);

/// Decodes an explicit string order the same way.
[[nodiscard]] DagAllocatorResult decode_dag_order(const DagSystemModel& model,
                                                  const std::vector<StringId>& order);

}  // namespace tsce::dag
