#include "dag/allocator.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace tsce::dag {

namespace {

double intensity(const DagString& s, AppIndex i) {
  const auto& a = s.apps[static_cast<std::size_t>(i)];
  return a.avg_time_s() * a.avg_util() / s.period_s;
}

}  // namespace

std::vector<MachineId> dag_map_string(const DagSystemModel& model,
                                      const DagUtilization& util, StringId k) {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  const auto n = static_cast<AppIndex>(s.size());
  const auto machines = static_cast<MachineId>(model.num_machines());
  std::vector<MachineId> assignment(static_cast<std::size_t>(n), model::kUnassigned);

  // Local utilization additions while this string is being placed.
  std::vector<double> machine_extra(model.num_machines(), 0.0);
  std::vector<double> route_extra(model.num_machines() * model.num_machines(), 0.0);
  auto route_index = [&](MachineId j1, MachineId j2) {
    return static_cast<std::size_t>(j1) * model.num_machines() +
           static_cast<std::size_t>(j2);
  };

  const auto in = s.edges_in();
  const auto out = s.edges_out();
  std::vector<bool> assigned(static_cast<std::size_t>(n), false);

  auto place = [&](AppIndex i) {
    // Candidate score: max of machine utilization and the utilization of all
    // routes linking i to already-assigned neighbors.
    MachineId best_j = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (MachineId j = 0; j < machines; ++j) {
      double score = util.machine_util(j) +
                     machine_extra[static_cast<std::size_t>(j)] +
                     util.machine_delta(k, i, j);
      for (const std::size_t e : in[static_cast<std::size_t>(i)]) {
        const AppIndex from = s.edges[e].from;
        if (!assigned[static_cast<std::size_t>(from)]) continue;
        const MachineId j1 = assignment[static_cast<std::size_t>(from)];
        if (j1 == j) continue;
        score = std::max(score, util.route_util(j1, j) +
                                    route_extra[route_index(j1, j)] +
                                    util.route_delta(k, e, j1, j));
      }
      for (const std::size_t e : out[static_cast<std::size_t>(i)]) {
        const AppIndex to = s.edges[e].to;
        if (!assigned[static_cast<std::size_t>(to)]) continue;
        const MachineId j2 = assignment[static_cast<std::size_t>(to)];
        if (j2 == j) continue;
        score = std::max(score, util.route_util(j, j2) +
                                    route_extra[route_index(j, j2)] +
                                    util.route_delta(k, e, j, j2));
      }
      if (score < best_score) {
        best_score = score;
        best_j = j;
      }
    }
    assignment[static_cast<std::size_t>(i)] = best_j;
    assigned[static_cast<std::size_t>(i)] = true;
    machine_extra[static_cast<std::size_t>(best_j)] += util.machine_delta(k, i, best_j);
    for (const std::size_t e : in[static_cast<std::size_t>(i)]) {
      const AppIndex from = s.edges[e].from;
      if (!assigned[static_cast<std::size_t>(from)]) continue;
      const MachineId j1 = assignment[static_cast<std::size_t>(from)];
      if (j1 != best_j) {
        route_extra[route_index(j1, best_j)] += util.route_delta(k, e, j1, best_j);
      }
    }
    for (const std::size_t e : out[static_cast<std::size_t>(i)]) {
      const AppIndex to = s.edges[e].to;
      if (!assigned[static_cast<std::size_t>(to)]) continue;
      const MachineId j2 = assignment[static_cast<std::size_t>(to)];
      if (j2 != best_j) {
        route_extra[route_index(best_j, j2)] += util.route_delta(k, e, best_j, j2);
      }
    }
  };

  auto most_intensive = [&](bool frontier_only) -> AppIndex {
    AppIndex best = model::kInvalidId;
    double best_val = -std::numeric_limits<double>::infinity();
    for (AppIndex i = 0; i < n; ++i) {
      if (assigned[static_cast<std::size_t>(i)]) continue;
      if (frontier_only) {
        bool adjacent = false;
        for (const std::size_t e : in[static_cast<std::size_t>(i)]) {
          if (assigned[static_cast<std::size_t>(s.edges[e].from)]) adjacent = true;
        }
        for (const std::size_t e : out[static_cast<std::size_t>(i)]) {
          if (assigned[static_cast<std::size_t>(s.edges[e].to)]) adjacent = true;
        }
        if (!adjacent) continue;
      }
      const double v = intensity(s, i);
      if (v > best_val) {
        best_val = v;
        best = i;
      }
    }
    return best;
  };

  AppIndex next = most_intensive(/*frontier_only=*/false);  // seed
  while (next != model::kInvalidId) {
    place(next);
    next = most_intensive(/*frontier_only=*/true);
    if (next == model::kInvalidId) {
      // Disconnected component: fall back to the global pick.
      next = most_intensive(/*frontier_only=*/false);
    }
  }
  return assignment;
}

DagAllocatorResult decode_dag_order(const DagSystemModel& model,
                                    const std::vector<StringId>& order) {
  DagAllocatorResult result;
  result.allocation = DagAllocation(model);
  DagUtilization util(model);
  for (const StringId k : order) {
    const auto assignment = dag_map_string(model, util, k);
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      result.allocation.assign(k, static_cast<AppIndex>(i), assignment[i]);
    }
    result.allocation.set_deployed(k, true);
    util.add_string(result.allocation, k);
    // Full two-stage analysis on the intermediate mapping (batch; the DAG
    // module favors clarity over the incremental session of the chain path).
    if (!check_feasibility(model, result.allocation).feasible()) {
      util.remove_string(result.allocation, k);
      result.allocation.clear_string(k);
      break;
    }
    ++result.strings_deployed;
  }
  result.fitness = evaluate(model, result.allocation);
  return result;
}

DagAllocatorResult allocate_most_worth_first(const DagSystemModel& model) {
  std::vector<StringId> order(model.num_strings());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](StringId a, StringId b) {
    return model.strings[static_cast<std::size_t>(a)].worth_factor() >
           model.strings[static_cast<std::size_t>(b)].worth_factor();
  });
  return decode_dag_order(model, order);
}

}  // namespace tsce::dag
