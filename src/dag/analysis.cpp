#include "dag/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "analysis/tightness.hpp"

namespace tsce::dag {

using analysis::higher_priority;

DagUtilization::DagUtilization(const DagSystemModel& model)
    : model_(&model),
      machine_util_(model.num_machines(), 0.0),
      route_util_(model.num_machines() * model.num_machines(), 0.0) {}

DagUtilization DagUtilization::from_allocation(const DagSystemModel& model,
                                               const DagAllocation& alloc) {
  DagUtilization util(model);
  for (std::size_t k = 0; k < alloc.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      util.add_string(alloc, static_cast<StringId>(k));
    }
  }
  return util;
}

double DagUtilization::machine_delta(StringId k, AppIndex i,
                                     MachineId j) const noexcept {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  return s.apps[static_cast<std::size_t>(i)].cpu_work(static_cast<std::size_t>(j)) /
         s.period_s;
}

double DagUtilization::route_delta(StringId k, std::size_t e, MachineId j1,
                                   MachineId j2) const noexcept {
  if (j1 == j2) return 0.0;
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  const double mbps = model::kbytes_to_megabits(s.edges[e].output_kbytes) / s.period_s;
  return mbps / model_->network.bandwidth_mbps(j1, j2);
}

void DagUtilization::apply(const DagAllocation& alloc, StringId k, double sign) {
  const auto& s = model_->strings[static_cast<std::size_t>(k)];
  for (std::size_t i = 0; i < s.size(); ++i) {
    const MachineId j = alloc.machine_of(k, static_cast<AppIndex>(i));
    assert(j != model::kUnassigned);
    machine_util_[static_cast<std::size_t>(j)] +=
        sign * machine_delta(k, static_cast<AppIndex>(i), j);
  }
  for (std::size_t e = 0; e < s.edges.size(); ++e) {
    const MachineId j1 = alloc.machine_of(k, s.edges[e].from);
    const MachineId j2 = alloc.machine_of(k, s.edges[e].to);
    if (j1 != j2) {
      route_util_[index(j1, j2)] += sign * route_delta(k, e, j1, j2);
    }
  }
}

void DagUtilization::add_string(const DagAllocation& alloc, StringId k) {
  apply(alloc, k, 1.0);
}
void DagUtilization::remove_string(const DagAllocation& alloc, StringId k) {
  apply(alloc, k, -1.0);
}

double DagUtilization::slackness() const noexcept {
  double min_slack = 1.0;
  for (const double u : machine_util_) min_slack = std::min(min_slack, 1.0 - u);
  for (const double u : route_util_) min_slack = std::min(min_slack, 1.0 - u);
  return min_slack;
}

namespace {

/// Longest-path latency through the DAG given per-app durations and per-edge
/// transfer durations.
double critical_path(const DagString& s, const std::vector<double>& comp,
                     const std::vector<double>& tran) {
  const auto order = s.topological_order();
  const auto in = s.edges_in();
  std::vector<double> finish(s.size(), 0.0);
  double latency = 0.0;
  for (const AppIndex i : order) {
    double start = 0.0;
    for (const std::size_t e : in[static_cast<std::size_t>(i)]) {
      start = std::max(start,
                       finish[static_cast<std::size_t>(s.edges[e].from)] + tran[e]);
    }
    finish[static_cast<std::size_t>(i)] = start + comp[static_cast<std::size_t>(i)];
    latency = std::max(latency, finish[static_cast<std::size_t>(i)]);
  }
  return latency;
}

}  // namespace

double relative_tightness(const DagSystemModel& model, const DagAllocation& alloc,
                          StringId k) {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  std::vector<double> comp(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    comp[i] = s.apps[i].nominal_time_s[static_cast<std::size_t>(
        alloc.machine_of(k, static_cast<AppIndex>(i)))];
  }
  std::vector<double> tran(s.edges.size());
  for (std::size_t e = 0; e < s.edges.size(); ++e) {
    tran[e] = model.network.transfer_s(s.edges[e].output_kbytes,
                                       alloc.machine_of(k, s.edges[e].from),
                                       alloc.machine_of(k, s.edges[e].to));
  }
  return critical_path(s, comp, tran) / s.max_latency_s;
}

double DagEstimates::latency(const DagSystemModel& model, StringId k) const {
  const auto& s = model.strings[static_cast<std::size_t>(k)];
  return critical_path(s, comp[static_cast<std::size_t>(k)],
                       tran[static_cast<std::size_t>(k)]);
}

DagEstimates estimate_all(const DagSystemModel& model, const DagAllocation& alloc) {
  const std::size_t q = model.num_strings();
  const std::size_t m = model.num_machines();
  DagEstimates est;
  est.comp.resize(q);
  est.tran.resize(q);
  est.tightness.assign(q, std::numeric_limits<double>::quiet_NaN());

  for (std::size_t k = 0; k < q; ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      est.tightness[k] = relative_tightness(model, alloc, static_cast<StringId>(k));
    }
  }

  // Resident sets: apps per machine, transfers per route.
  struct AppRef {
    StringId k;
    AppIndex i;
  };
  struct EdgeRef {
    StringId k;
    std::size_t e;
  };
  std::vector<std::vector<AppRef>> machine_apps(m);
  std::vector<std::vector<EdgeRef>> route_edges(m * m);
  for (std::size_t k = 0; k < q; ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto& s = model.strings[k];
    for (std::size_t i = 0; i < s.size(); ++i) {
      machine_apps[static_cast<std::size_t>(
                       alloc.machine_of(static_cast<StringId>(k),
                                        static_cast<AppIndex>(i)))]
          .push_back({static_cast<StringId>(k), static_cast<AppIndex>(i)});
    }
    for (std::size_t e = 0; e < s.edges.size(); ++e) {
      const MachineId j1 = alloc.machine_of(static_cast<StringId>(k), s.edges[e].from);
      const MachineId j2 = alloc.machine_of(static_cast<StringId>(k), s.edges[e].to);
      if (j1 != j2) {
        route_edges[static_cast<std::size_t>(j1) * m + static_cast<std::size_t>(j2)]
            .push_back({static_cast<StringId>(k), e});
      }
    }
  }

  for (std::size_t k = 0; k < q; ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto& s = model.strings[k];
    est.comp[k].resize(s.size());
    est.tran[k].resize(s.edges.size());
    const double t_k = est.tightness[k];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const MachineId j = alloc.machine_of(static_cast<StringId>(k),
                                           static_cast<AppIndex>(i));
      double t = s.apps[i].nominal_time_s[static_cast<std::size_t>(j)];
      for (const AppRef& ref : machine_apps[static_cast<std::size_t>(j)]) {
        if (ref.k == static_cast<StringId>(k)) continue;
        const double t_z = est.tightness[static_cast<std::size_t>(ref.k)];
        if (!higher_priority(t_z, ref.k, t_k, static_cast<StringId>(k))) continue;
        const auto& sz = model.strings[static_cast<std::size_t>(ref.k)];
        t += (s.period_s / sz.period_s) *
             sz.apps[static_cast<std::size_t>(ref.i)].cpu_work(
                 static_cast<std::size_t>(j));
      }
      est.comp[k][i] = t;
    }
    for (std::size_t e = 0; e < s.edges.size(); ++e) {
      const MachineId j1 = alloc.machine_of(static_cast<StringId>(k), s.edges[e].from);
      const MachineId j2 = alloc.machine_of(static_cast<StringId>(k), s.edges[e].to);
      if (j1 == j2) {
        est.tran[k][e] = 0.0;
        continue;
      }
      const double w = model.network.bandwidth_mbps(j1, j2);
      double t = model::kbytes_to_megabits(s.edges[e].output_kbytes) / w;
      for (const EdgeRef& ref :
           route_edges[static_cast<std::size_t>(j1) * m + static_cast<std::size_t>(j2)]) {
        if (ref.k == static_cast<StringId>(k)) continue;
        const double t_z = est.tightness[static_cast<std::size_t>(ref.k)];
        if (!higher_priority(t_z, ref.k, t_k, static_cast<StringId>(k))) continue;
        const auto& sz = model.strings[static_cast<std::size_t>(ref.k)];
        t += (s.period_s / sz.period_s) *
             model::kbytes_to_megabits(sz.edges[ref.e].output_kbytes) / w;
      }
      est.tran[k][e] = t;
    }
  }
  return est;
}

analysis::FeasibilityReport check_feasibility(const DagSystemModel& model,
                                              const DagAllocation& alloc) {
  analysis::FeasibilityReport report;
  const DagUtilization util = DagUtilization::from_allocation(model, alloc);
  const auto machines = static_cast<MachineId>(model.num_machines());
  for (MachineId j = 0; j < machines; ++j) {
    if (!analysis::within(util.machine_util(j), 1.0)) {
      report.stage_one_ok = false;
      report.violations.push_back({analysis::ViolationKind::kMachineOverload, model::kInvalidId,
                                   model::kInvalidId, j, model::kInvalidId,
                                   util.machine_util(j), 1.0});
    }
  }
  for (MachineId j1 = 0; j1 < machines; ++j1) {
    for (MachineId j2 = 0; j2 < machines; ++j2) {
      if (j1 == j2) continue;
      if (!analysis::within(util.route_util(j1, j2), 1.0)) {
        report.stage_one_ok = false;
        report.violations.push_back({analysis::ViolationKind::kRouteOverload, model::kInvalidId,
                                     model::kInvalidId, j1, j2,
                                     util.route_util(j1, j2), 1.0});
      }
    }
  }

  const DagEstimates est = estimate_all(model, alloc);
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    if (!alloc.deployed(static_cast<StringId>(k))) continue;
    const auto& s = model.strings[k];
    for (std::size_t i = 0; i < est.comp[k].size(); ++i) {
      if (!analysis::within(est.comp[k][i], s.period_s)) {
        report.stage_two_ok = false;
        report.violations.push_back({analysis::ViolationKind::kCompThroughput,
                                     static_cast<StringId>(k),
                                     static_cast<AppIndex>(i), model::kInvalidId,
                                     model::kInvalidId,
                                     est.comp[k][i], s.period_s});
      }
    }
    for (std::size_t e = 0; e < est.tran[k].size(); ++e) {
      if (!analysis::within(est.tran[k][e], s.period_s)) {
        report.stage_two_ok = false;
        report.violations.push_back({analysis::ViolationKind::kTranThroughput,
                                     static_cast<StringId>(k),
                                     static_cast<AppIndex>(e), model::kInvalidId,
                                     model::kInvalidId,
                                     est.tran[k][e], s.period_s});
      }
    }
    const double latency = est.latency(model, static_cast<StringId>(k));
    if (!analysis::within(latency, s.max_latency_s)) {
      report.stage_two_ok = false;
      report.violations.push_back({analysis::ViolationKind::kLatency,
                                   static_cast<StringId>(k), model::kInvalidId,
                                   model::kInvalidId, model::kInvalidId, latency,
                                   s.max_latency_s});
    }
  }
  return report;
}

analysis::Fitness evaluate(const DagSystemModel& model, const DagAllocation& alloc) {
  int worth = 0;
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    if (alloc.deployed(static_cast<StringId>(k))) {
      worth += model.strings[k].worth_factor();
    }
  }
  return {worth, DagUtilization::from_allocation(model, alloc).slackness()};
}

}  // namespace tsce::dag
