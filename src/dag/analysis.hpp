/// \file analysis.hpp
/// Feasibility analysis for DAG-structured strings: the direct generalization
/// of paper §3.
///
/// Stage one is unchanged — utilization contributions are per-application and
/// per-transfer, so eqs. (2)-(3) apply verbatim with transfers enumerated
/// from DAG edges.  Stage two keeps eqs. (5)-(6) for individual computation
/// and transfer times (machine/route sharing is oblivious to string shape)
/// but replaces the chain-sum latency with the critical path through the
/// estimated durations, and the relative tightness uses the critical path of
/// nominal durations.

#pragma once

#include <vector>

#include "analysis/feasibility.hpp"
#include "analysis/metrics.hpp"
#include "dag/model.hpp"

namespace tsce::dag {

/// Machine/route utilizations for a DAG system (eqs. 2-3).
class DagUtilization {
 public:
  DagUtilization() = default;
  explicit DagUtilization(const DagSystemModel& model);

  static DagUtilization from_allocation(const DagSystemModel& model,
                                        const DagAllocation& alloc);

  void add_string(const DagAllocation& alloc, StringId k);
  void remove_string(const DagAllocation& alloc, StringId k);

  [[nodiscard]] double machine_util(MachineId j) const noexcept {
    return machine_util_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double route_util(MachineId j1, MachineId j2) const noexcept {
    return route_util_[index(j1, j2)];
  }
  [[nodiscard]] double slackness() const noexcept;

  /// Contribution of app i of string k on machine j.
  [[nodiscard]] double machine_delta(StringId k, AppIndex i, MachineId j) const noexcept;
  /// Contribution of edge e of string k on route j1->j2 (0 intra-machine).
  [[nodiscard]] double route_delta(StringId k, std::size_t e, MachineId j1,
                                   MachineId j2) const noexcept;

 private:
  [[nodiscard]] std::size_t index(MachineId j1, MachineId j2) const noexcept {
    return static_cast<std::size_t>(j1) * machine_util_.size() +
           static_cast<std::size_t>(j2);
  }
  void apply(const DagAllocation& alloc, StringId k, double sign);

  const DagSystemModel* model_ = nullptr;
  std::vector<double> machine_util_;
  std::vector<double> route_util_;
};

/// Critical path of nominal (no-sharing) durations divided by Lmax[k].
[[nodiscard]] double relative_tightness(const DagSystemModel& model,
                                        const DagAllocation& alloc, StringId k);

struct DagEstimates {
  /// comp[k][i]: estimated computation time (eq. 5).
  std::vector<std::vector<double>> comp;
  /// tran[k][e]: estimated transfer time of edge e (eq. 6).
  std::vector<std::vector<double>> tran;
  std::vector<double> tightness;

  /// Critical-path end-to-end latency of string k under the estimates.
  [[nodiscard]] double latency(const DagSystemModel& model, StringId k) const;
};

[[nodiscard]] DagEstimates estimate_all(const DagSystemModel& model,
                                        const DagAllocation& alloc);

/// Two-stage feasibility for DAG systems (report reuses the linear types).
[[nodiscard]] analysis::FeasibilityReport check_feasibility(
    const DagSystemModel& model, const DagAllocation& alloc);

/// Total worth of deployed strings + slackness.
[[nodiscard]] analysis::Fitness evaluate(const DagSystemModel& model,
                                         const DagAllocation& alloc);

}  // namespace tsce::dag
