#include "dag/generator.hpp"

#include <algorithm>
#include <array>

namespace tsce::dag {

namespace {

/// Critical path of per-app average times plus per-edge average transfer
/// times — the DAG analogue of the §8 nominal end-to-end time.
double average_critical_path(const DagString& s, const model::Network& network) {
  const auto order = s.topological_order();
  const auto in = s.edges_in();
  const double inv_w = network.avg_inverse_bandwidth();
  std::vector<double> finish(s.size(), 0.0);
  double total = 0.0;
  for (const AppIndex i : order) {
    double start = 0.0;
    for (const std::size_t e : in[static_cast<std::size_t>(i)]) {
      const double tran =
          model::kbytes_to_megabits(s.edges[e].output_kbytes) * inv_w;
      start = std::max(start,
                       finish[static_cast<std::size_t>(s.edges[e].from)] + tran);
    }
    finish[static_cast<std::size_t>(i)] =
        start + s.apps[static_cast<std::size_t>(i)].avg_time_s();
    total = std::max(total, finish[static_cast<std::size_t>(i)]);
  }
  return total;
}

double longest_average_stage(const DagString& s, const model::Network& network) {
  const double inv_w = network.avg_inverse_bandwidth();
  double longest = 0.0;
  for (const auto& a : s.apps) longest = std::max(longest, a.avg_time_s());
  for (const auto& e : s.edges) {
    longest = std::max(longest, model::kbytes_to_megabits(e.output_kbytes) * inv_w);
  }
  return longest;
}

}  // namespace

DagSystemModel generate_dag_system(const DagGeneratorConfig& config,
                                   util::Rng& rng) {
  DagSystemModel model;
  model.network = model::Network(config.num_machines);
  const auto machines = static_cast<MachineId>(config.num_machines);
  for (MachineId j1 = 0; j1 < machines; ++j1) {
    for (MachineId j2 = 0; j2 < machines; ++j2) {
      if (j1 != j2) {
        model.network.set_bandwidth_mbps(
            j1, j2, rng.uniform(config.bandwidth_min_mbps, config.bandwidth_max_mbps));
      }
    }
  }

  static constexpr std::array<model::Worth, 3> kWorths = {
      model::Worth::kLow, model::Worth::kMedium, model::Worth::kHigh};
  model.strings.reserve(config.num_strings);
  for (std::size_t k = 0; k < config.num_strings; ++k) {
    DagString s;
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.min_apps),
                        static_cast<std::int64_t>(config.max_apps)));
    s.apps.resize(n);
    for (auto& a : s.apps) {
      a.nominal_time_s.resize(config.num_machines);
      a.nominal_util.resize(config.num_machines);
      for (std::size_t j = 0; j < config.num_machines; ++j) {
        a.nominal_time_s[j] = rng.uniform(config.time_min_s, config.time_max_s);
        a.nominal_util[j] = rng.uniform(config.util_min, config.util_max);
      }
    }
    // Spanning tree over indices (guarantees weak connectivity, acyclic by
    // construction because edges always point from lower to higher index).
    for (std::size_t i = 1; i < n; ++i) {
      const auto parent = static_cast<AppIndex>(rng.bounded(i));
      s.edges.push_back({parent, static_cast<AppIndex>(i),
                         rng.uniform(config.output_min_kbytes,
                                     config.output_max_kbytes)});
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!rng.bernoulli(config.extra_edge_prob)) continue;
        const bool exists =
            std::any_of(s.edges.begin(), s.edges.end(), [&](const DagEdge& e) {
              return e.from == static_cast<AppIndex>(i) &&
                     e.to == static_cast<AppIndex>(j);
            });
        if (!exists) {
          s.edges.push_back({static_cast<AppIndex>(i), static_cast<AppIndex>(j),
                             rng.uniform(config.output_min_kbytes,
                                         config.output_max_kbytes)});
        }
      }
    }
    s.worth = kWorths[rng.bounded(kWorths.size())];
    s.max_latency_s = rng.uniform(config.mu_latency_min, config.mu_latency_max) *
                      average_critical_path(s, model.network);
    s.period_s = rng.uniform(config.mu_period_min, config.mu_period_max) *
                 longest_average_stage(s, model.network);
    model.strings.push_back(std::move(s));
  }
  return model;
}

}  // namespace tsce::dag
