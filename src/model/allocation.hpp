/// \file allocation.hpp
/// An application-to-machine mapping m[i,k] plus the set of strings accepted
/// as deployed.  Partial allocations (paper §1) leave some strings
/// undeployed; their applications are unassigned.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::model {

class Allocation {
 public:
  Allocation() = default;

  /// Empty (nothing assigned) allocation shaped like \p model.
  explicit Allocation(const SystemModel& model);

  /// Machine of application i of string k, or kUnassigned.
  [[nodiscard]] MachineId machine_of(StringId k, AppIndex i) const noexcept {
    return mapping_[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
  }

  void assign(StringId k, AppIndex i, MachineId j) noexcept {
    mapping_[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = j;
  }

  /// Clears all assignments of string k and marks it undeployed.
  void clear_string(StringId k) noexcept;

  /// True when every application of string k has a machine.
  [[nodiscard]] bool fully_mapped(StringId k) const noexcept;

  /// Deployment flag: a string counts toward total worth only when deployed.
  [[nodiscard]] bool deployed(StringId k) const noexcept {
    return deployed_[static_cast<std::size_t>(k)];
  }
  void set_deployed(StringId k, bool value) noexcept {
    deployed_[static_cast<std::size_t>(k)] = value;
  }

  [[nodiscard]] std::size_t num_strings() const noexcept { return mapping_.size(); }
  /// Application count of string k (the mapping row length).
  [[nodiscard]] std::size_t string_size(StringId k) const noexcept {
    return mapping_[static_cast<std::size_t>(k)].size();
  }
  [[nodiscard]] std::size_t num_deployed() const noexcept;

  /// Ids of all deployed strings, ascending.
  [[nodiscard]] std::vector<StringId> deployed_strings() const;

  /// Human-readable dump (for examples / debugging).
  [[nodiscard]] std::string to_string(const SystemModel& model) const;

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<std::vector<MachineId>> mapping_;
  std::vector<bool> deployed_;
};

}  // namespace tsce::model
