/// \file allocation.hpp
/// An application-to-machine mapping m[i,k] plus the set of strings accepted
/// as deployed.  Partial allocations (paper §1) leave some strings
/// undeployed; their applications are unassigned.
///
/// Storage is flat (DESIGN.md §12): one MachineId array over all applications
/// with a per-string prefix-sum offset table, and a byte per deployment flag.
/// Copy-assignment between allocations of the same shape reuses the
/// destination's buffers, so cloning a candidate in the search inner loop is
/// three memcpys and no heap traffic.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "model/types.hpp"

namespace tsce::model {

class Allocation {
 public:
  Allocation() = default;

  /// Empty (nothing assigned) allocation shaped like \p model.
  explicit Allocation(const SystemModel& model);

  /// Machine of application i of string k, or kUnassigned.
  [[nodiscard]] MachineId machine_of(StringId k, AppIndex i) const noexcept {
    return flat_[offset_[static_cast<std::size_t>(k)] + static_cast<std::size_t>(i)];
  }

  void assign(StringId k, AppIndex i, MachineId j) noexcept {
    flat_[offset_[static_cast<std::size_t>(k)] + static_cast<std::size_t>(i)] = j;
  }

  /// Clears all assignments of string k and marks it undeployed.
  void clear_string(StringId k) noexcept;

  /// True when every application of string k has a machine.
  [[nodiscard]] bool fully_mapped(StringId k) const noexcept;

  /// Deployment flag: a string counts toward total worth only when deployed.
  [[nodiscard]] bool deployed(StringId k) const noexcept {
    return deployed_[static_cast<std::size_t>(k)] != 0;
  }
  void set_deployed(StringId k, bool value) noexcept {
    deployed_[static_cast<std::size_t>(k)] = value ? 1 : 0;
  }

  [[nodiscard]] std::size_t num_strings() const noexcept { return deployed_.size(); }
  /// Application count of string k (the mapping row length).
  [[nodiscard]] std::size_t string_size(StringId k) const noexcept {
    const auto ku = static_cast<std::size_t>(k);
    return offset_[ku + 1] - offset_[ku];
  }
  [[nodiscard]] std::size_t num_deployed() const noexcept;

  /// Ids of all deployed strings, ascending.
  [[nodiscard]] std::vector<StringId> deployed_strings() const;

  /// Human-readable dump (for examples / debugging).
  [[nodiscard]] std::string to_string(const SystemModel& model) const;

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<std::uint32_t> offset_;  ///< per-string start into flat_, size Q+1
  std::vector<MachineId> flat_;        ///< all assignments, strings back to back
  std::vector<std::uint8_t> deployed_;
};

}  // namespace tsce::model
