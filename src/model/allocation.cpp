#include "model/allocation.hpp"

#include <algorithm>
#include <cstdio>

namespace tsce::model {

Allocation::Allocation(const SystemModel& model) {
  mapping_.reserve(model.num_strings());
  for (const auto& s : model.strings) {
    mapping_.emplace_back(s.size(), kUnassigned);
  }
  deployed_.assign(model.num_strings(), false);
}

void Allocation::clear_string(StringId k) noexcept {
  auto& row = mapping_[static_cast<std::size_t>(k)];
  std::fill(row.begin(), row.end(), kUnassigned);
  deployed_[static_cast<std::size_t>(k)] = false;
}

bool Allocation::fully_mapped(StringId k) const noexcept {
  const auto& row = mapping_[static_cast<std::size_t>(k)];
  return std::none_of(row.begin(), row.end(),
                      [](MachineId j) { return j == kUnassigned; });
}

std::size_t Allocation::num_deployed() const noexcept {
  return static_cast<std::size_t>(
      std::count(deployed_.begin(), deployed_.end(), true));
}

std::vector<StringId> Allocation::deployed_strings() const {
  std::vector<StringId> out;
  for (std::size_t k = 0; k < deployed_.size(); ++k) {
    if (deployed_[k]) out.push_back(static_cast<StringId>(k));
  }
  return out;
}

std::string Allocation::to_string(const SystemModel& model) const {
  std::string out;
  for (std::size_t k = 0; k < mapping_.size(); ++k) {
    const auto& s = model.strings[k];
    char head[128];
    std::snprintf(head, sizeof(head), "string %zu (%s, worth %d, %s): ", k,
                  s.name.empty() ? "unnamed" : s.name.c_str(), s.worth_factor(),
                  deployed_[k] ? "deployed" : "not deployed");
    out += head;
    for (std::size_t i = 0; i < mapping_[k].size(); ++i) {
      char cell[32];
      if (mapping_[k][i] == kUnassigned) {
        std::snprintf(cell, sizeof(cell), "%s-", i ? " -> " : "");
      } else {
        std::snprintf(cell, sizeof(cell), "%sm%d", i ? " -> " : "", mapping_[k][i]);
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace tsce::model
