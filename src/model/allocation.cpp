#include "model/allocation.hpp"

#include <algorithm>
#include <cstdio>

namespace tsce::model {

Allocation::Allocation(const SystemModel& model) {
  offset_.resize(model.num_strings() + 1);
  std::uint32_t total = 0;
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    offset_[k] = total;
    total += static_cast<std::uint32_t>(model.strings[k].size());
  }
  offset_[model.num_strings()] = total;
  flat_.assign(total, kUnassigned);
  deployed_.assign(model.num_strings(), 0);
}

void Allocation::clear_string(StringId k) noexcept {
  const auto ku = static_cast<std::size_t>(k);
  std::fill(flat_.begin() + offset_[ku], flat_.begin() + offset_[ku + 1],
            kUnassigned);
  deployed_[ku] = 0;
}

bool Allocation::fully_mapped(StringId k) const noexcept {
  const auto ku = static_cast<std::size_t>(k);
  return std::none_of(flat_.begin() + offset_[ku], flat_.begin() + offset_[ku + 1],
                      [](MachineId j) { return j == kUnassigned; });
}

std::size_t Allocation::num_deployed() const noexcept {
  return static_cast<std::size_t>(
      std::count(deployed_.begin(), deployed_.end(), std::uint8_t{1}));
}

std::vector<StringId> Allocation::deployed_strings() const {
  std::vector<StringId> out;
  for (std::size_t k = 0; k < deployed_.size(); ++k) {
    if (deployed_[k]) out.push_back(static_cast<StringId>(k));
  }
  return out;
}

std::string Allocation::to_string(const SystemModel& model) const {
  std::string out;
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    const auto& s = model.strings[k];
    char head[128];
    std::snprintf(head, sizeof(head), "string %zu (%s, worth %d, %s): ", k,
                  s.name.empty() ? "unnamed" : s.name.c_str(), s.worth_factor(),
                  deployed_[k] ? "deployed" : "not deployed");
    out += head;
    for (std::size_t i = 0; i < string_size(static_cast<StringId>(k)); ++i) {
      const MachineId j = machine_of(static_cast<StringId>(k), static_cast<AppIndex>(i));
      char cell[32];
      if (j == kUnassigned) {
        std::snprintf(cell, sizeof(cell), "%s-", i ? " -> " : "");
      } else {
        std::snprintf(cell, sizeof(cell), "%sm%d", i ? " -> " : "", j);
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace tsce::model
