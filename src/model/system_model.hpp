/// \file system_model.hpp
/// The complete TSCE instance: machine suite, network, and the set of
/// application strings considered for mapping.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/app_string.hpp"
#include "model/network.hpp"
#include "model/types.hpp"

namespace tsce::model {

struct SystemModel {
  Network network;
  std::vector<AppString> strings;
  /// Optional machine labels (size M when present).
  std::vector<std::string> machine_names;

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return network.num_machines();
  }
  [[nodiscard]] std::size_t num_strings() const noexcept { return strings.size(); }

  /// Total application count across all strings.
  [[nodiscard]] std::size_t num_apps() const noexcept;

  /// Sum of worth factors over all strings (the ceiling for total worth).
  [[nodiscard]] int total_worth_available() const noexcept;

  /// Structural validation: consistent per-machine vectors, positive periods
  /// and latencies, utilizations in (0,1], nonnegative outputs, positive
  /// bandwidths.  Returns human-readable problem descriptions (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Fluent construction helper for examples and tests.
///
///   SystemModel m = SystemModelBuilder(3)
///       .uniform_bandwidth(5.0)
///       .add_string(StringSpec{...})
///       .build();
class SystemModelBuilder {
 public:
  explicit SystemModelBuilder(std::size_t num_machines)
      : model_{Network(num_machines), {}, {}} {}

  SystemModelBuilder& uniform_bandwidth(double mbps);
  SystemModelBuilder& bandwidth(MachineId j1, MachineId j2, double mbps);
  SystemModelBuilder& machine_name(MachineId j, std::string name);

  /// Starts a new string; apps are appended with add_app.
  SystemModelBuilder& begin_string(double period_s, double max_latency_s,
                                   Worth worth = Worth::kLow, std::string name = {});
  /// Adds an application whose nominal time/util are identical on every
  /// machine (homogeneous shortcut).
  SystemModelBuilder& add_app(double time_s, double util, double output_kbytes = 0.0,
                              std::string name = {});
  /// Adds an application with per-machine times/utils.
  SystemModelBuilder& add_app(std::vector<double> time_s, std::vector<double> util,
                              double output_kbytes = 0.0, std::string name = {});

  SystemModelBuilder& add_string(AppString s) {
    model_.strings.push_back(std::move(s));
    return *this;
  }

  [[nodiscard]] SystemModel build();

 private:
  SystemModel model_;
};

}  // namespace tsce::model
