/// \file network.hpp
/// The communication model: independent virtual point-to-point routes between
/// every ordered pair of machines, each with a reserved maximum bandwidth
/// (paper §2).  Intra-machine routes have infinite bandwidth and zero
/// transfer time.

#pragma once

#include <cstddef>
#include <vector>

#include "model/types.hpp"

namespace tsce::model {

class Network {
 public:
  Network() = default;

  /// Creates a network of \p num_machines with all inter-machine routes set to
  /// \p default_mbps (diagonal infinite).
  explicit Network(std::size_t num_machines, double default_mbps = kInfiniteBandwidth);

  [[nodiscard]] std::size_t num_machines() const noexcept { return m_; }

  /// Total bandwidth w[j1,j2] in Mb/s of the route from j1 to j2.
  [[nodiscard]] double bandwidth_mbps(MachineId j1, MachineId j2) const noexcept {
    return bw_[index(j1, j2)];
  }

  void set_bandwidth_mbps(MachineId j1, MachineId j2, double mbps) noexcept {
    bw_[index(j1, j2)] = mbps;
  }

  /// Nominal (no-sharing) transfer time in seconds of \p kbytes over j1->j2.
  [[nodiscard]] double transfer_s(double kbytes, MachineId j1, MachineId j2) const noexcept {
    return transfer_seconds(kbytes, bandwidth_mbps(j1, j2));
  }

  /// Average inverse bandwidth (1/w)_av = (1/M^2) * sum over all ordered pairs
  /// of 1/w[j1,j2]; intra-machine routes contribute zero (paper §5, TF).
  [[nodiscard]] double avg_inverse_bandwidth() const noexcept;

  /// Average transfer time of \p kbytes using the average inverse bandwidth.
  [[nodiscard]] double avg_transfer_s(double kbytes) const noexcept {
    return kbytes_to_megabits(kbytes) * avg_inverse_bandwidth();
  }

 private:
  [[nodiscard]] std::size_t index(MachineId j1, MachineId j2) const noexcept {
    return static_cast<std::size_t>(j1) * m_ + static_cast<std::size_t>(j2);
  }

  std::size_t m_ = 0;
  std::vector<double> bw_;  // row-major M x M, Mb/s
};

}  // namespace tsce::model
