#include "model/system_model.hpp"

#include <cstdio>
#include <stdexcept>

namespace tsce::model {

std::size_t SystemModel::num_apps() const noexcept {
  std::size_t n = 0;
  for (const auto& s : strings) n += s.size();
  return n;
}

int SystemModel::total_worth_available() const noexcept {
  int w = 0;
  for (const auto& s : strings) w += s.worth_factor();
  return w;
}

namespace {
void check(std::vector<std::string>& problems, bool ok, const char* fmt, auto... args) {
  if (ok) return;
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  problems.emplace_back(buf);
}
}  // namespace

std::vector<std::string> SystemModel::validate() const {
  std::vector<std::string> problems;
  const std::size_t m = num_machines();
  check(problems, m > 0, "system has no machines");
  if (!machine_names.empty()) {
    check(problems, machine_names.size() == m,
          "machine_names size %zu != machine count %zu", machine_names.size(), m);
  }
  for (std::size_t j1 = 0; j1 < m; ++j1) {
    for (std::size_t j2 = 0; j2 < m; ++j2) {
      const double w = network.bandwidth_mbps(static_cast<MachineId>(j1),
                                              static_cast<MachineId>(j2));
      check(problems, w > 0.0, "route %zu->%zu has nonpositive bandwidth", j1, j2);
    }
  }
  for (std::size_t k = 0; k < strings.size(); ++k) {
    const AppString& s = strings[k];
    check(problems, !s.apps.empty(), "string %zu has no applications", k);
    check(problems, s.period_s > 0.0, "string %zu has nonpositive period", k);
    check(problems, s.max_latency_s > 0.0, "string %zu has nonpositive max latency", k);
    const int iw = s.worth_factor();
    check(problems, iw == 1 || iw == 10 || iw == 100,
          "string %zu worth %d not in {1,10,100}", k, iw);
    for (std::size_t i = 0; i < s.apps.size(); ++i) {
      const Application& a = s.apps[i];
      check(problems, a.nominal_time_s.size() == m,
            "string %zu app %zu nominal_time size %zu != %zu", k, i,
            a.nominal_time_s.size(), m);
      check(problems, a.nominal_util.size() == m,
            "string %zu app %zu nominal_util size %zu != %zu", k, i,
            a.nominal_util.size(), m);
      for (std::size_t j = 0; j < a.nominal_time_s.size() && j < m; ++j) {
        check(problems, a.nominal_time_s[j] > 0.0,
              "string %zu app %zu nonpositive time on machine %zu", k, i, j);
      }
      for (std::size_t j = 0; j < a.nominal_util.size() && j < m; ++j) {
        const double u = a.nominal_util[j];
        check(problems, u > 0.0 && u <= 1.0,
              "string %zu app %zu utilization %.3f outside (0,1] on machine %zu", k,
              i, u, j);
      }
      check(problems, a.output_kbytes >= 0.0, "string %zu app %zu negative output",
            k, i);
    }
  }
  return problems;
}

SystemModelBuilder& SystemModelBuilder::uniform_bandwidth(double mbps) {
  const auto m = static_cast<MachineId>(model_.num_machines());
  for (MachineId j1 = 0; j1 < m; ++j1) {
    for (MachineId j2 = 0; j2 < m; ++j2) {
      if (j1 != j2) model_.network.set_bandwidth_mbps(j1, j2, mbps);
    }
  }
  return *this;
}

SystemModelBuilder& SystemModelBuilder::bandwidth(MachineId j1, MachineId j2,
                                                  double mbps) {
  model_.network.set_bandwidth_mbps(j1, j2, mbps);
  return *this;
}

SystemModelBuilder& SystemModelBuilder::machine_name(MachineId j, std::string name) {
  if (model_.machine_names.empty()) {
    model_.machine_names.resize(model_.num_machines());
  }
  model_.machine_names.at(static_cast<std::size_t>(j)) = std::move(name);
  return *this;
}

SystemModelBuilder& SystemModelBuilder::begin_string(double period_s,
                                                     double max_latency_s, Worth worth,
                                                     std::string name) {
  AppString s;
  s.period_s = period_s;
  s.max_latency_s = max_latency_s;
  s.worth = worth;
  s.name = std::move(name);
  model_.strings.push_back(std::move(s));
  return *this;
}

SystemModelBuilder& SystemModelBuilder::add_app(double time_s, double util,
                                                double output_kbytes,
                                                std::string name) {
  const std::size_t m = model_.num_machines();
  return add_app(std::vector<double>(m, time_s), std::vector<double>(m, util),
                 output_kbytes, std::move(name));
}

SystemModelBuilder& SystemModelBuilder::add_app(std::vector<double> time_s,
                                                std::vector<double> util,
                                                double output_kbytes,
                                                std::string name) {
  if (model_.strings.empty()) {
    throw std::logic_error("add_app called before begin_string");
  }
  Application a;
  a.nominal_time_s = std::move(time_s);
  a.nominal_util = std::move(util);
  a.output_kbytes = output_kbytes;
  a.name = std::move(name);
  model_.strings.back().apps.push_back(std::move(a));
  return *this;
}

SystemModel SystemModelBuilder::build() {
  auto problems = model_.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("invalid SystemModel: " + problems.front());
  }
  return std::move(model_);
}

}  // namespace tsce::model
