#include "model/serialization.hpp"

#include <stdexcept>

namespace tsce::model {

using util::Json;

namespace {

constexpr const char* kModelFormat = "tsce-model-v1";
constexpr const char* kAllocationFormat = "tsce-allocation-v1";

[[noreturn]] void schema_error(const std::string& message) {
  throw std::runtime_error("serialization: " + message);
}

void check_format(const Json& json, const char* expected) {
  if (!json.is_object() || !json.contains("format") ||
      !json.at("format").is_string() || json.at("format").as_string() != expected) {
    schema_error(std::string("expected format '") + expected + "'");
  }
}

Json vector_to_json(const std::vector<double>& xs) {
  Json array = Json::array();
  for (const double x : xs) array.push_back(Json(x));
  return array;
}

std::vector<double> vector_from_json(const Json& json, const char* what) {
  if (!json.is_array()) schema_error(std::string(what) + " must be an array");
  std::vector<double> xs;
  xs.reserve(json.as_array().size());
  for (const Json& item : json.as_array()) {
    if (!item.is_number()) schema_error(std::string(what) + " must hold numbers");
    xs.push_back(item.as_number());
  }
  return xs;
}

Worth worth_from_int(int value) {
  switch (value) {
    case 1: return Worth::kLow;
    case 10: return Worth::kMedium;
    case 100: return Worth::kHigh;
    default: schema_error("worth must be 1, 10 or 100");
  }
}

}  // namespace

Json to_json(const SystemModel& model) {
  Json root = Json::object();
  root.set("format", Json(kModelFormat));

  if (!model.machine_names.empty()) {
    Json names = Json::array();
    for (const auto& name : model.machine_names) names.push_back(Json(name));
    root.set("machines", std::move(names));
  } else {
    root.set("machines", Json(model.num_machines()));
  }

  const auto m = static_cast<MachineId>(model.num_machines());
  Json bandwidth = Json::array();
  for (MachineId j1 = 0; j1 < m; ++j1) {
    Json row = Json::array();
    for (MachineId j2 = 0; j2 < m; ++j2) {
      const double w = model.network.bandwidth_mbps(j1, j2);
      row.push_back(w == kInfiniteBandwidth ? Json(nullptr) : Json(w));
    }
    bandwidth.push_back(std::move(row));
  }
  root.set("bandwidth_mbps", std::move(bandwidth));

  Json strings = Json::array();
  for (const auto& s : model.strings) {
    Json js = Json::object();
    if (!s.name.empty()) js.set("name", Json(s.name));
    js.set("period_s", Json(s.period_s));
    js.set("max_latency_s", Json(s.max_latency_s));
    js.set("worth", Json(s.worth_factor()));
    Json apps = Json::array();
    for (const auto& a : s.apps) {
      Json ja = Json::object();
      if (!a.name.empty()) ja.set("name", Json(a.name));
      ja.set("time_s", vector_to_json(a.nominal_time_s));
      ja.set("util", vector_to_json(a.nominal_util));
      ja.set("output_kbytes", Json(a.output_kbytes));
      apps.push_back(std::move(ja));
    }
    js.set("apps", std::move(apps));
    strings.push_back(std::move(js));
  }
  root.set("strings", std::move(strings));
  return root;
}

SystemModel system_model_from_json(const Json& json) {
  check_format(json, kModelFormat);
  SystemModel model;

  const Json& machines = json.at("machines");
  std::size_t machine_count = 0;
  if (machines.is_number()) {
    machine_count = static_cast<std::size_t>(machines.as_number());
  } else if (machines.is_array()) {
    machine_count = machines.as_array().size();
    for (const Json& name : machines.as_array()) {
      if (!name.is_string()) schema_error("machine names must be strings");
      model.machine_names.push_back(name.as_string());
    }
  } else {
    schema_error("machines must be a count or an array of names");
  }

  model.network = Network(machine_count);
  const Json& bandwidth = json.at("bandwidth_mbps");
  if (!bandwidth.is_array() || bandwidth.as_array().size() != machine_count) {
    schema_error("bandwidth_mbps must be an MxM matrix");
  }
  for (std::size_t j1 = 0; j1 < machine_count; ++j1) {
    const Json& row = bandwidth.as_array()[j1];
    if (!row.is_array() || row.as_array().size() != machine_count) {
      schema_error("bandwidth_mbps must be an MxM matrix");
    }
    for (std::size_t j2 = 0; j2 < machine_count; ++j2) {
      const Json& cell = row.as_array()[j2];
      model.network.set_bandwidth_mbps(
          static_cast<MachineId>(j1), static_cast<MachineId>(j2),
          cell.is_null() ? kInfiniteBandwidth : cell.as_number());
    }
  }

  const Json& strings = json.at("strings");
  if (!strings.is_array()) schema_error("strings must be an array");
  for (const Json& js : strings.as_array()) {
    AppString s;
    if (js.contains("name")) s.name = js.at("name").as_string();
    s.period_s = js.at("period_s").as_number();
    s.max_latency_s = js.at("max_latency_s").as_number();
    s.worth = worth_from_int(static_cast<int>(js.at("worth").as_number()));
    const Json& apps = js.at("apps");
    if (!apps.is_array()) schema_error("apps must be an array");
    for (const Json& ja : apps.as_array()) {
      Application a;
      if (ja.contains("name")) a.name = ja.at("name").as_string();
      a.nominal_time_s = vector_from_json(ja.at("time_s"), "time_s");
      a.nominal_util = vector_from_json(ja.at("util"), "util");
      a.output_kbytes = ja.at("output_kbytes").as_number();
      s.apps.push_back(std::move(a));
    }
    model.strings.push_back(std::move(s));
  }

  const auto problems = model.validate();
  if (!problems.empty()) {
    schema_error("loaded model is invalid: " + problems.front());
  }
  return model;
}

Json to_json(const Allocation& alloc) {
  Json root = Json::object();
  root.set("format", Json(kAllocationFormat));
  Json mapping = Json::array();
  Json deployed = Json::array();
  for (std::size_t k = 0; k < alloc.num_strings(); ++k) {
    const auto sk = static_cast<StringId>(k);
    Json row = Json::array();
    for (std::size_t i = 0; i < alloc.string_size(sk); ++i) {
      row.push_back(Json(static_cast<int>(alloc.machine_of(sk, static_cast<AppIndex>(i)))));
    }
    mapping.push_back(std::move(row));
    deployed.push_back(Json(alloc.deployed(sk)));
  }
  root.set("mapping", std::move(mapping));
  root.set("deployed", std::move(deployed));
  return root;
}

Allocation allocation_from_json(const Json& json, const SystemModel& model) {
  check_format(json, kAllocationFormat);
  Allocation alloc(model);
  const Json& mapping = json.at("mapping");
  const Json& deployed = json.at("deployed");
  if (!mapping.is_array() || mapping.as_array().size() != model.num_strings() ||
      !deployed.is_array() || deployed.as_array().size() != model.num_strings()) {
    schema_error("allocation shape does not match the model");
  }
  for (std::size_t k = 0; k < model.num_strings(); ++k) {
    const Json& row = mapping.as_array()[k];
    if (!row.is_array() || row.as_array().size() != model.strings[k].size()) {
      schema_error("mapping row " + std::to_string(k) + " has the wrong length");
    }
    for (std::size_t i = 0; i < row.as_array().size(); ++i) {
      const Json& cell = row.as_array()[i];
      if (!cell.is_number()) schema_error("mapping entries must be integers");
      const int j = static_cast<int>(cell.as_number());
      if (j < -1 || j >= static_cast<int>(model.num_machines())) {
        schema_error("machine id " + std::to_string(j) + " out of range");
      }
      alloc.assign(static_cast<StringId>(k), static_cast<AppIndex>(i),
                   static_cast<MachineId>(j));
    }
    const Json& flag = deployed.as_array()[k];
    if (!flag.is_bool()) schema_error("deployed entries must be booleans");
    if (flag.as_bool() && !alloc.fully_mapped(static_cast<StringId>(k))) {
      schema_error("string " + std::to_string(k) +
                   " is marked deployed but not fully mapped");
    }
    alloc.set_deployed(static_cast<StringId>(k), flag.as_bool());
  }
  return alloc;
}

void save_system_model(const std::string& path, const SystemModel& model) {
  util::write_json_file(path, to_json(model));
}

SystemModel load_system_model(const std::string& path) {
  return system_model_from_json(util::read_json_file(path));
}

void save_allocation(const std::string& path, const Allocation& alloc) {
  util::write_json_file(path, to_json(alloc));
}

Allocation load_allocation(const std::string& path, const SystemModel& model) {
  return allocation_from_json(util::read_json_file(path), model);
}

}  // namespace tsce::model
