/// \file application.hpp
/// A periodic application: one stage of an application string.

#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace tsce::model {

/// One application a_i^k.  Workload on machine j is characterized by the
/// nominal execution time t[i,j] (seconds, measured with the application
/// running alone) and the nominal CPU utilization u[i,j] (average CPU share
/// during that execution).  The product t[i,j]*u[i,j] is the fixed amount of
/// CPU work a data set requires on machine j (paper §3).
struct Application {
  /// t[i,j] for every machine j; size equals the machine count M.
  std::vector<double> nominal_time_s;
  /// u[i,j] for every machine j, each in (0, 1].
  std::vector<double> nominal_util;
  /// Output size O[i] in Kbytes sent to the successor application;
  /// 0 for the final application of a string (its output goes to actuators,
  /// which the model treats as free).
  double output_kbytes = 0.0;
  /// Optional human-readable label (used by examples and traces).
  std::string name;

  /// Average nominal execution time across machines, eq. (8).
  [[nodiscard]] double avg_time_s() const noexcept {
    double sum = 0.0;
    for (double t : nominal_time_s) sum += t;
    return nominal_time_s.empty() ? 0.0 : sum / static_cast<double>(nominal_time_s.size());
  }

  /// Average nominal CPU utilization across machines, eq. (9).
  [[nodiscard]] double avg_util() const noexcept {
    double sum = 0.0;
    for (double u : nominal_util) sum += u;
    return nominal_util.empty() ? 0.0 : sum / static_cast<double>(nominal_util.size());
  }

  /// CPU work t[i,j]*u[i,j] on machine \p j.
  [[nodiscard]] double cpu_work(std::size_t j) const noexcept {
    assert(j < nominal_time_s.size());
    return nominal_time_s[j] * nominal_util[j];
  }
};

}  // namespace tsce::model
