/// \file types.hpp
/// Shared identifiers and unit conversions for the TSCE model.

#pragma once

#include <cstdint>
#include <limits>

namespace tsce::model {

/// Index of a machine in the suite, 0-based.
using MachineId = std::int32_t;
/// Index of an application string, 0-based.
using StringId = std::int32_t;
/// Index of an application within its string, 0-based.
using AppIndex = std::int32_t;

/// Sentinel for "no such id".  MachineId/StringId/AppIndex are all 32-bit
/// signed typedefs; every "is this id valid" comparison goes through this
/// constant instead of a bare -1 literal.
inline constexpr std::int32_t kInvalidId = -1;

/// Sentinel for "application not assigned to any machine".
inline constexpr MachineId kUnassigned = kInvalidId;

/// Intra-machine routes are modeled with infinite bandwidth (paper §6).
inline constexpr double kInfiniteBandwidth = std::numeric_limits<double>::infinity();

/// Converts an output size in Kbytes to megabits (1 KB = 8000 bits).
[[nodiscard]] constexpr double kbytes_to_megabits(double kbytes) noexcept {
  return kbytes * 0.008;
}

/// Transfer time in seconds for \p kbytes over a route of \p mbps bandwidth.
/// Returns 0 for infinite-bandwidth (intra-machine) routes; time-of-flight is
/// negligible per the paper's assumptions.
[[nodiscard]] constexpr double transfer_seconds(double kbytes, double mbps) noexcept {
  if (mbps == kInfiniteBandwidth) return 0.0;
  return kbytes_to_megabits(kbytes) / mbps;
}

}  // namespace tsce::model
