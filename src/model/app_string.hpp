/// \file app_string.hpp
/// An application string S^k: a continuously executing sequence of periodic
/// applications connected in precedence order by data transfers (paper §2).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/application.hpp"

namespace tsce::model {

/// Worth factors I[k] take one of three values (paper §2).
enum class Worth : std::int32_t {
  kLow = 1,
  kMedium = 10,
  kHigh = 100,
};

[[nodiscard]] constexpr int worth_value(Worth w) noexcept {
  return static_cast<int>(w);
}

struct AppString {
  /// Ordered applications a_1^k ... a_n^k.
  std::vector<Application> apps;
  /// Period P[k] in seconds: each application executes once per period and the
  /// minimum throughput constraint bounds every computation/transfer by P[k].
  double period_s = 0.0;
  /// End-to-end latency bound Lmax[k] in seconds.
  double max_latency_s = 0.0;
  /// Importance I[k].
  Worth worth = Worth::kLow;
  /// Optional human-readable label.
  std::string name;

  [[nodiscard]] std::size_t size() const noexcept { return apps.size(); }
  [[nodiscard]] int worth_factor() const noexcept { return worth_value(worth); }
};

}  // namespace tsce::model
