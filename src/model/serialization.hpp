/// \file serialization.hpp
/// JSON persistence for system models and allocations.
///
/// Schema (versioned via the "format" field):
///
/// ```json
/// {
///   "format": "tsce-model-v1",
///   "machines": ["name0", "name1"],          // or a bare count
///   "bandwidth_mbps": [[null, 5.0], [5.0, null]],  // null = infinite
///   "strings": [{
///     "name": "radar-track", "period_s": 8.0, "max_latency_s": 20.0,
///     "worth": 100,
///     "apps": [{"name": "filter", "time_s": [..], "util": [..],
///               "output_kbytes": 80.0}]
///   }]
/// }
/// ```
///
/// Allocations serialize as `{"format": "tsce-allocation-v1",
/// "mapping": [[0, 2], ...], "deployed": [true, ...]}` with -1 for
/// unassigned applications.

#pragma once

#include <string>

#include "model/allocation.hpp"
#include "model/system_model.hpp"
#include "util/json.hpp"

namespace tsce::model {

[[nodiscard]] util::Json to_json(const SystemModel& model);
/// Throws std::runtime_error on schema violations; the returned model always
/// passes SystemModel::validate().
[[nodiscard]] SystemModel system_model_from_json(const util::Json& json);

[[nodiscard]] util::Json to_json(const Allocation& alloc);
/// \p model supplies the expected shape; mismatches throw.
[[nodiscard]] Allocation allocation_from_json(const util::Json& json,
                                              const SystemModel& model);

void save_system_model(const std::string& path, const SystemModel& model);
[[nodiscard]] SystemModel load_system_model(const std::string& path);

void save_allocation(const std::string& path, const Allocation& alloc);
[[nodiscard]] Allocation load_allocation(const std::string& path,
                                         const SystemModel& model);

}  // namespace tsce::model
