#include "model/network.hpp"

namespace tsce::model {

Network::Network(std::size_t num_machines, double default_mbps)
    : m_(num_machines), bw_(num_machines * num_machines, default_mbps) {
  for (std::size_t j = 0; j < m_; ++j) {
    bw_[j * m_ + j] = kInfiniteBandwidth;
  }
}

double Network::avg_inverse_bandwidth() const noexcept {
  if (m_ == 0) return 0.0;
  double sum = 0.0;
  for (double w : bw_) {
    if (w != kInfiniteBandwidth && w > 0.0) sum += 1.0 / w;
  }
  return sum / static_cast<double>(m_ * m_);
}

}  // namespace tsce::model
