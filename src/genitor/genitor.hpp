/// \file genitor.hpp
/// GENITOR: a steady-state, rank-based genetic search framework
/// (Whitley 1989), used by the PSG / Seeded PSG heuristics (paper §5).
///
/// The population is kept sorted best-first.  Each iteration performs one
/// crossover (two parents chosen by the linear bias function, two offspring
/// each competing against the worst member) followed by one mutation (one
/// biased pick, one offspring competing the same way).  Elitism is implicit:
/// only the worst member is ever removed.  Stopping conditions match the
/// paper: an iteration budget, a stagnation limit on the elite, or full
/// population convergence.
///
/// The framework is problem-agnostic: a Problem type supplies the chromosome
/// representation and the evaluate / crossover / mutate operators.

#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace tsce::genitor {

/// Whitley's linear bias function: maps a uniform draw u in [0,1) to a
/// population rank in [0, n).  A bias of 1.5 makes the top-ranked chromosome
/// 1.5x more likely to be selected than the median.  bias must lie in (1, 2].
[[nodiscard]] inline std::size_t biased_rank(std::size_t n, double bias,
                                             double u) noexcept {
  const double b = bias;
  const double x = static_cast<double>(n) *
                   (b - std::sqrt(b * b - 4.0 * (b - 1.0) * u)) / (2.0 * (b - 1.0));
  auto rank = static_cast<std::size_t>(x);
  return rank >= n ? n - 1 : rank;
}

struct Config {
  std::size_t population_size = 250;
  double bias = 1.6;
  /// One iteration = one crossover + one mutation (paper §5).
  std::size_t max_iterations = 5000;
  /// Stop after this many iterations without a change of the elite.
  std::size_t stagnation_limit = 300;
};

enum class StopReason {
  kIterationBudget,
  kStagnation,
  kConverged,
};

template <typename P>
concept Problem = requires(const P& p, const typename P::Chromosome& c,
                           util::Rng& rng) {
  { p.evaluate(c) } -> std::convertible_to<typename P::Fitness>;
  {
    p.crossover(c, c, rng)
  } -> std::convertible_to<std::pair<typename P::Chromosome, typename P::Chromosome>>;
  { p.mutate(c, rng) } -> std::convertible_to<typename P::Chromosome>;
  { p.random_chromosome(rng) } -> std::convertible_to<typename P::Chromosome>;
};

/// Problems that can evaluate a whole batch at once (e.g. across a
/// BatchEvaluator's workers).  The framework uses this for the initial
/// population, where all chromosomes are known up front; results must match
/// per-chromosome evaluate() exactly.
template <typename P>
concept BatchProblem =
    Problem<P> && requires(const P& p, std::span<const typename P::Chromosome> batch) {
      { p.evaluate_batch(batch) } -> std::convertible_to<std::vector<typename P::Fitness>>;
    };

template <Problem P>
struct Result {
  typename P::Chromosome best;
  typename P::Fitness best_fitness;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  StopReason stop_reason = StopReason::kIterationBudget;
};

template <Problem P>
class Genitor {
 public:
  using Chromosome = typename P::Chromosome;
  using Fitness = typename P::Fitness;

  Genitor(const P& problem, Config config) : problem_(problem), config_(config) {}

  /// Runs the search.  \p seeds are inserted into the initial population
  /// verbatim (Seeded PSG); the remainder is random.
  [[nodiscard]] Result<P> run(util::Rng& rng,
                              const std::vector<Chromosome>& seeds = {}) {
    return run(rng, seeds, [](std::size_t, const Fitness&) {});
  }

  /// Observer variant: \p observe(iteration, elite_fitness) is invoked once
  /// after the initial population (iteration 0) and whenever the elite
  /// improves.  The default overload passes a no-op lambda, so callers that
  /// don't observe pay nothing.  Keeps this framework telemetry-agnostic:
  /// the obs wiring lives in the callers (PSG, class-based).
  template <typename Obs>
    requires std::invocable<Obs&, std::size_t, const Fitness&>
  [[nodiscard]] Result<P> run(util::Rng& rng, const std::vector<Chromosome>& seeds,
                              Obs&& observe) {
    Result<P> result;
    population_.clear();
    population_.reserve(config_.population_size);
    // All initial chromosomes are known before any evaluation (random ones
    // draw no fitness-dependent state), so they can be evaluated as one
    // batch — in parallel when the problem supports it.
    std::vector<Chromosome> initial;
    initial.reserve(config_.population_size);
    for (const Chromosome& seed : seeds) {
      if (initial.size() == config_.population_size) break;
      initial.push_back(seed);
    }
    while (initial.size() < config_.population_size) {
      initial.push_back(problem_.random_chromosome(rng));
    }
    result.evaluations += initial.size();
    if constexpr (BatchProblem<P>) {
      std::vector<Fitness> fitness = problem_.evaluate_batch(initial);
      for (std::size_t i = 0; i < initial.size(); ++i) {
        insert_sorted({std::move(initial[i]), std::move(fitness[i])});
      }
    } else {
      for (Chromosome& c : initial) {
        Fitness f = problem_.evaluate(c);
        insert_sorted({std::move(c), std::move(f)});
      }
    }

    std::size_t stagnant = 0;
    Fitness elite = population_.front().fitness;
    observe(std::size_t{0}, elite);
    for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
      result.iterations = iter + 1;
      // Crossover: two distinct biased parents, two offspring.
      const std::size_t r1 = pick(rng);
      std::size_t r2 = pick(rng);
      if (population_.size() > 1) {
        while (r2 == r1) r2 = pick(rng);
      }
      auto [c1, c2] = problem_.crossover(population_[r1].chromosome,
                                         population_[r2].chromosome, rng);
      Fitness f1 = problem_.evaluate(c1);
      compete({std::move(c1), std::move(f1)});
      Fitness f2 = problem_.evaluate(c2);
      compete({std::move(c2), std::move(f2)});
      result.evaluations += 2;

      // Mutation: one biased pick, one offspring.
      const std::size_t rm = pick(rng);
      Chromosome m = problem_.mutate(population_[rm].chromosome, rng);
      Fitness fm = problem_.evaluate(m);
      compete({std::move(m), std::move(fm)});
      ++result.evaluations;

      if (elite < population_.front().fitness) {
        elite = population_.front().fitness;
        observe(iter + 1, elite);
        stagnant = 0;
      } else {
        ++stagnant;
      }
      if (stagnant >= config_.stagnation_limit) {
        result.stop_reason = StopReason::kStagnation;
        break;
      }
      if (converged()) {
        result.stop_reason = StopReason::kConverged;
        break;
      }
    }
    result.best = population_.front().chromosome;
    result.best_fitness = population_.front().fitness;
    return result;
  }

 private:
  struct Member {
    Chromosome chromosome;
    Fitness fitness;
  };

  [[nodiscard]] std::size_t pick(util::Rng& rng) const noexcept {
    return biased_rank(population_.size(), config_.bias, rng.uniform());
  }

  void insert_sorted(Member member) {
    auto it = std::lower_bound(
        population_.begin(), population_.end(), member,
        [](const Member& a, const Member& b) { return b.fitness < a.fitness; });
    population_.insert(it, std::move(member));
  }

  /// Offspring replaces the worst member iff strictly fitter (elitism).
  void compete(Member offspring) {
    if (population_.back().fitness < offspring.fitness) {
      population_.pop_back();
      insert_sorted(std::move(offspring));
    }
  }

  /// All chromosomes identical => the search cannot progress further.
  [[nodiscard]] bool converged() const {
    if (population_.front().fitness < population_.back().fitness ||
        population_.back().fitness < population_.front().fitness) {
      return false;
    }
    const Chromosome& first = population_.front().chromosome;
    return std::all_of(population_.begin() + 1, population_.end(),
                       [&](const Member& m) { return m.chromosome == first; });
  }

  const P& problem_;
  Config config_;
  std::vector<Member> population_;
};

}  // namespace tsce::genitor
