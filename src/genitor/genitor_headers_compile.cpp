/// \file genitor_headers_compile.cpp
/// Compiles the tsce_genitor INTERFACE library's headers once under the full
/// tsce_warnings / tsce_extra_warnings flag set.  Header-only modules are
/// never a translation unit of their own target, so without this TU their
/// code would only ever be compiled with whatever flags their *consumers*
/// use — warnings regressions in genitor.hpp would go unnoticed until a
/// stricter downstream build tripped over them.

#include "genitor/genitor.hpp"

namespace {

/// Minimal Problem instantiation so the Genitor template (not just the
/// header's non-template code) is type-checked in this TU.
struct NullProblem {
  using Chromosome = std::vector<int>;
  using Fitness = int;

  [[nodiscard]] Fitness evaluate(const Chromosome& c) const {
    return static_cast<int>(c.size());
  }
  [[nodiscard]] std::pair<Chromosome, Chromosome> crossover(
      const Chromosome& a, const Chromosome& b, tsce::util::Rng&) const {
    return {a, b};
  }
  [[nodiscard]] Chromosome mutate(const Chromosome& c, tsce::util::Rng&) const {
    return c;
  }
  [[nodiscard]] Chromosome random_chromosome(tsce::util::Rng&) const { return {}; }
};

static_assert(tsce::genitor::Problem<NullProblem>);

}  // namespace

// Instantiate the framework so its member functions (not just the header's
// free functions) are compiled and warning-checked here.
template class tsce::genitor::Genitor<NullProblem>;
