#include "lp/problem.hpp"

#include <algorithm>
#include <cassert>

namespace tsce::lp {

std::int32_t LpProblem::add_variable(double lo, double hi, double cost) {
  assert(lo <= hi);
  lower_.push_back(lo);
  upper_.push_back(hi);
  cost_.push_back(cost);
  return static_cast<std::int32_t>(lower_.size() - 1);
}

std::int32_t LpProblem::add_row(Relation relation, double rhs) {
  relation_.push_back(relation);
  rhs_.push_back(rhs);
  return static_cast<std::int32_t>(relation_.size() - 1);
}

void LpProblem::add_coefficient(std::int32_t row, std::int32_t col, double value) {
  assert(row >= 0 && static_cast<std::size_t>(row) < num_rows());
  assert(col >= 0 && static_cast<std::size_t>(col) < num_variables());
  if (value != 0.0) triplets_.push_back({row, col, value});
}

void LpProblem::clear(Sense sense) noexcept {
  sense_ = sense;
  lower_.clear();
  upper_.clear();
  cost_.clear();
  relation_.clear();
  rhs_.clear();
  triplets_.clear();
}

CscMatrix CscMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   const std::vector<Triplet>& triplets) {
  CscMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.col_start.assign(cols + 1, 0);

  // Count entries per column, prefix-sum, then scatter sorted by (col, row).
  std::vector<Triplet> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });

  m.row_index.reserve(sorted.size());
  m.value.reserve(sorted.size());
  std::size_t idx = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    m.col_start[c] = static_cast<std::int64_t>(m.value.size());
    while (idx < sorted.size() && static_cast<std::size_t>(sorted[idx].col) == c) {
      // Merge duplicate (row, col) entries.
      const std::int32_t r = sorted[idx].row;
      double v = 0.0;
      while (idx < sorted.size() && static_cast<std::size_t>(sorted[idx].col) == c &&
             sorted[idx].row == r) {
        v += sorted[idx].value;
        ++idx;
      }
      if (v != 0.0) {
        m.row_index.push_back(r);
        m.value.push_back(v);
      }
    }
  }
  m.col_start[cols] = static_cast<std::int64_t>(m.value.size());
  return m;
}

}  // namespace tsce::lp
