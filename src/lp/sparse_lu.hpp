/// \file sparse_lu.hpp
/// Sparse LU factorisation of a simplex basis with product-form eta updates.
///
/// The factorisation is a right-looking Gaussian elimination with Markowitz
/// pivot selection (threshold partial pivoting for stability, fill-minimising
/// (r-1)(c-1) cost for sparsity).  Simplex bases are singleton-dominated —
/// most columns are slacks or near-slack structural columns — so the
/// elimination clears singleton rows/columns first with zero fill and only
/// runs the Markowitz search on the small remaining kernel.
///
/// Between refactorisations, basis changes are absorbed as product-form eta
/// matrices: pivoting column q into basis position r appends the spike
/// w = B^-1 A_q, and FTRAN/BTRAN apply the eta file after/before the LU
/// solves.  The eta file grows with every pivot (and its error compounds), so
/// the simplex refactorises every `refactor_interval` pivots or earlier when
/// the FTRAN/BTRAN cross-check drifts (see simplex.cpp).
///
/// Index spaces: FTRAN input vectors are indexed by constraint row, output by
/// basis position (the column order given to factorize()); BTRAN is the
/// transpose, position in / row out.  All solves exploit right-hand-side
/// sparsity by skipping zero entries of the permuted elimination sequence.
///
/// Determinism: pivot selection breaks ties on (Markowitz cost, column,
/// row), all iteration orders are index-based, and no randomisation is used,
/// so a fixed input always produces the identical factor and solve sequence.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/problem.hpp"
#include "util/hot.hpp"

namespace tsce::lp {

/// Dense-value/sparse-pattern work vector used by the FTRAN/BTRAN kernels.
/// `values` is authoritative; `pattern` lists the (unique) indices that may
/// be nonzero so consumers can iterate without scanning the whole vector.
struct IndexedVector {
  std::vector<double> values;
  std::vector<std::int32_t> pattern;

  void resize(std::size_t n) {
    values.assign(n, 0.0);
    pattern.clear();
    pattern.reserve(n);
  }

  /// Zeroes only the listed pattern entries (O(pattern) not O(n)).
  void clear() {
    for (const std::int32_t i : pattern) values[static_cast<std::size_t>(i)] = 0.0;
    pattern.clear();
  }

  void add(std::int32_t i, double v) {
    const auto u = static_cast<std::size_t>(i);
    if (values[u] == 0.0) pattern.push_back(i);
    values[u] += v;
  }

  /// Appends \p i to the pattern without touching values.  Kernel-internal:
  /// the caller (BasisLu's mark-guarded solves) guarantees \p i is not
  /// already listed.
  void note(std::int32_t i) { pattern.push_back(i); }
};

class BasisLu {
 public:
  /// Factorises the basis whose column at position p is `a` column
  /// `basis[p]`.  Clears the eta file.  Returns false when the basis is
  /// numerically singular (no pivot with magnitude >= \p pivot_tol exists in
  /// some elimination step); the factor state is unusable until the next
  /// successful factorize().
  [[nodiscard]] bool factorize(const CscMatrix& a,
                               const std::vector<std::int32_t>& basis,
                               double pivot_tol);

  /// Solves B x = b in place: on input \p v is indexed by constraint row, on
  /// output by basis position.  Applies the LU factors then the eta file.
  TSCE_HOT void ftran(IndexedVector& v) const;

  /// Solves B^T x = b in place: position in, row out.  Applies the eta file
  /// (transposed, reverse order) then the LU factors.
  TSCE_HOT void btran(IndexedVector& v) const;

  /// Absorbs a basis change: the column whose spike is \p w (= B^-1 A_enter,
  /// indexed by basis position) replaces position \p leave_pos.  Returns
  /// false when the spike's pivot element is smaller than \p pivot_tol, in
  /// which case the eta was not appended and the caller must refactorise.
  [[nodiscard]] bool push_eta(const IndexedVector& w, std::size_t leave_pos,
                              double pivot_tol);

  [[nodiscard]] std::size_t eta_count() const noexcept { return eta_.size(); }
  [[nodiscard]] std::size_t dimension() const noexcept { return m_; }
  /// Factor fill: nonzeros of L + U (diagnostic; eta file excluded).
  [[nodiscard]] std::size_t factor_nonzeros() const noexcept {
    return l_entries_.size() + u_entries_.size() + m_;
  }

 private:
  struct Entry {
    std::int32_t index;  ///< row (L) / basis position (U, etas)
    double value;
  };
  struct Eta {
    std::size_t start, end;  ///< half-open range into eta_entries_
    std::int32_t pivot_pos;
    double pivot_value;
  };

  std::size_t m_ = 0;
  // Elimination-ordered factors: step k pivoted (prow_[k], pcol_[k]) with
  // diagonal u_diag_[k]; l_ holds the subdiagonal multipliers by original
  // row, u_ the superdiagonal entries by basis position.
  std::vector<std::int32_t> prow_, pcol_;
  std::vector<std::int32_t> step_of_row_;  ///< inverse of prow_
  std::vector<double> u_diag_;
  std::vector<Entry> l_entries_, u_entries_;
  std::vector<std::size_t> l_start_, u_start_;  ///< size m+1
  std::vector<Eta> eta_;
  std::vector<Entry> eta_entries_;
  // Solve scratch (sized once in factorize, so ftran/btran never allocate):
  // work_ is step-indexed and kept all-zero between calls via touched_;
  // mark_ dedupes pattern insertion.  Mutable scratch makes the const solves
  // non-reentrant — one BasisLu per solver instance, never shared.
  mutable std::vector<double> work_;
  mutable std::vector<std::int32_t> touched_;
  mutable std::vector<std::uint8_t> mark_;
};

}  // namespace tsce::lp
