/// \file simplex.hpp
/// Bounded-variable two-phase revised simplex with an explicitly maintained
/// basis inverse.
///
/// This solver replaces the commercial package (Lingo 9.0) the paper used for
/// its upper-bound computation (§7).  Design choices:
///
/// * Every row r becomes  a_r^T x + s_r = rhs_r  with a slack bounded by the
///   row relation ([0,inf) for <=, (-inf,0] for >=, [0,0] for =).  The slack
///   basis is the starting point; when it is bound-infeasible, a phase-1 LP
///   with artificial columns drives the infeasibility to zero first.  The
///   upper-bound LPs of this library are feasible at the slack basis by
///   construction, so phase 1 is usually skipped.
/// * Dense row-major basis inverse with product-form updates: O(m^2) memory
///   and per-iteration work, which comfortably handles the bench-scale
///   instances (m up to a few thousand).  Paper-scale instances work but are
///   slow; see DESIGN.md.
/// * Dantzig pricing with a Bland's-rule fallback after a run of degenerate
///   iterations, guaranteeing termination.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace tsce::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct SimplexOptions {
  /// Hard cap across both phases; 0 means 50*(m+n) adaptive.
  std::size_t max_iterations = 0;
  /// Dual feasibility (reduced cost) tolerance.
  double optimality_tol = 1e-7;
  /// Smallest acceptable pivot magnitude.
  double pivot_tol = 1e-9;
  /// Primal feasibility tolerance (bound violations).
  double feasibility_tol = 1e-7;
  /// Consecutive degenerate iterations before switching to Bland's rule.
  std::size_t degeneracy_limit = 200;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the problem's own sense (max problems report the max).
  double objective = 0.0;
  /// Values of the structural variables.
  std::vector<double> x;
  /// Shadow price per row in the problem's own sense: the marginal change of
  /// the optimal objective per unit of right-hand side (only meaningful at
  /// kOptimal; zero for non-binding rows).
  std::vector<double> row_duals;
  std::size_t iterations = 0;
  std::size_t phase1_iterations = 0;
};

/// Solves \p problem; deterministic for a fixed input.
[[nodiscard]] LpSolution solve(const LpProblem& problem, SimplexOptions options = {});

}  // namespace tsce::lp
