/// \file simplex.hpp
/// Bounded-variable two-phase revised simplex.
///
/// This solver replaces the commercial package (Lingo 9.0) the paper used for
/// its upper-bound computation (§7).  Two engines share one API:
///
/// * **Sparse (default):** CSC/CSR constraint storage, a Markowitz-pivot LU
///   factorisation of the basis (sparse_lu.hpp) with product-form eta
///   updates, refactorisation every `refactor_interval` pivots or when the
///   FTRAN/BTRAN pivot cross-check drifts, sparse FTRAN/BTRAN exploiting
///   rhs sparsity, and Devex pricing with incrementally maintained reduced
///   costs (recomputed exactly at every refactorisation; optimality is only
///   declared from exact ones).  Per-iteration work scales with the factor
///   and column nonzeros instead of m², which is what lets the upper-bound
///   LP run at fleet scale (hundreds of machines, thousands of strings).
/// * **Dense (retained):** explicit row-major basis inverse with
///   product-form updates and Dantzig pricing — O(m²) memory and work.  Kept
///   as the independently-implemented cross-check oracle for the sparse
///   engine (tests/lp/sparse_dense_property_test.cpp) and as the benchmark
///   baseline; select with SimplexOptions::engine.
///
/// Both engines share the computational form: every row r becomes
/// a_r^T x + s_r = rhs_r with a slack bounded by the row relation ([0,inf)
/// for <=, (-inf,0] for >=, [0,0] for =).  The slack basis is the starting
/// point; when it is bound-infeasible, a phase-1 LP with artificial columns
/// drives the infeasibility to zero first.  Degenerate runs switch pricing
/// to Bland's rule, guaranteeing termination.  Duals/shadow prices are exact
/// at optimality.  Both engines are deterministic: a fixed input yields a
/// bit-identical solution path (index-ordered scans, deterministic
/// tie-breaks, no randomisation).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace tsce::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

enum class SimplexEngine : std::uint8_t {
  kSparse,  ///< LU + eta updates + Devex (default)
  kDense,   ///< explicit basis inverse (cross-check oracle / baseline)
};

/// Per-variable basis role in the computational form's column order:
/// structural variables first, then one slack per row.
enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

/// A restartable basis snapshot: one VarState per computational-form column
/// (num_variables + num_rows entries, exactly num_rows of them kBasic).
/// Returned in LpSolution::basis at optimality and accepted back through
/// SimplexOptions::basis_warm_start.
struct SimplexBasis {
  std::vector<VarState> status;

  [[nodiscard]] bool empty() const noexcept { return status.empty(); }
};

struct SimplexOptions {
  /// Hard cap across both phases; 0 means 50*(m+n) adaptive.
  std::size_t max_iterations = 0;
  /// Dual feasibility (reduced cost) tolerance.
  double optimality_tol = 1e-7;
  /// Smallest acceptable pivot magnitude.
  double pivot_tol = 1e-9;
  /// Primal feasibility tolerance (bound violations).
  double feasibility_tol = 1e-7;
  /// Consecutive degenerate iterations before switching to Bland's rule.
  std::size_t degeneracy_limit = 200;
  /// Engine selection; kSparse unless a dense cross-check is wanted.
  SimplexEngine engine = SimplexEngine::kSparse;
  /// Sparse engine: eta-file length that forces a refactorisation.
  std::size_t refactor_interval = 64;
  /// Sparse engine: relative FTRAN-vs-BTRAN pivot disagreement that forces
  /// an early refactorisation (and a retry of the iteration).
  double drift_tol = 1e-7;
  /// Optional starting basis for the sparse engine (ignored by the dense
  /// one).  Must match the problem's shape and be primal feasible after
  /// factorisation; otherwise the solver silently falls back to the slack
  /// basis, so a stale snapshot can never produce a wrong answer — re-solves
  /// of a perturbed problem (the what-if service path) just lose the speedup.
  /// The pointed-to basis must outlive the solve() call.
  const SimplexBasis* basis_warm_start = nullptr;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the problem's own sense (max problems report the max).
  double objective = 0.0;
  /// Values of the structural variables.
  std::vector<double> x;
  /// Shadow price per row in the problem's own sense: the marginal change of
  /// the optimal objective per unit of right-hand side (only meaningful at
  /// kOptimal; zero for non-binding rows).
  std::vector<double> row_duals;
  std::size_t iterations = 0;
  std::size_t phase1_iterations = 0;
  /// Sparse engine: number of basis (re)factorisations performed.
  std::size_t refactorisations = 0;
  /// Final basis at kOptimal (empty otherwise, and empty when a basic
  /// artificial survives a degenerate phase 1); feed back through
  /// SimplexOptions::basis_warm_start to hot-start a related solve.
  SimplexBasis basis;
};

/// Solves \p problem; deterministic for a fixed input.
[[nodiscard]] LpSolution solve(const LpProblem& problem, SimplexOptions options = {});

}  // namespace tsce::lp
