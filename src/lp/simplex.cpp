#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "lp/sparse_lu.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace tsce::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

using VarStatus = VarState;

/// Process-wide LP telemetry; handles resolved once (registry lookups are
/// name-hashed, the returned references are stable for the process).
struct LpMetrics {
  obs::Counter& iterations;
  obs::Counter& refactorisations;
  obs::Histogram& latency_ns;

  static LpMetrics& get() {
    static LpMetrics m{
        obs::MetricsRegistry::instance().counter(obs::names::kLpIterations),
        obs::MetricsRegistry::instance().counter(obs::names::kLpRefactorisations),
        obs::MetricsRegistry::instance().histogram(obs::names::kLpSolveLatencyNs)};
    return m;
  }
};

/// Computational form and engine-independent simplex state: structural
/// columns, then one slack per row, then (during phase 1) artificials.
class SolverBase {
 protected:
  SolverBase(const LpProblem& problem, const SimplexOptions& options)
      : options_(options),
        m_(problem.num_rows()),
        n_struct_(problem.num_variables()) {
    const std::size_t n_total = n_struct_ + m_;
    lower_.reserve(n_total);
    upper_.reserve(n_total);
    cost_.reserve(n_total);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      lower_.push_back(problem.lower(static_cast<std::int32_t>(v)));
      upper_.push_back(problem.upper(static_cast<std::int32_t>(v)));
      const double c = problem.cost(static_cast<std::int32_t>(v));
      cost_.push_back(problem.sense() == Sense::kMaximize ? -c : c);
    }
    rhs_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      rhs_[r] = problem.rhs(static_cast<std::int32_t>(r));
      switch (problem.relation(static_cast<std::int32_t>(r))) {
        case Relation::kLessEqual:
          lower_.push_back(0.0);
          upper_.push_back(kInf);
          break;
        case Relation::kGreaterEqual:
          lower_.push_back(-kInf);
          upper_.push_back(0.0);
          break;
        case Relation::kEqual:
          lower_.push_back(0.0);
          upper_.push_back(0.0);
          break;
      }
      cost_.push_back(0.0);
    }

    // Assemble A = [structural | I] in CSC.
    std::vector<Triplet> triplets = problem.triplets();
    triplets.reserve(triplets.size() + m_);
    for (std::size_t r = 0; r < m_; ++r) {
      triplets.push_back({static_cast<std::int32_t>(r),
                          static_cast<std::int32_t>(n_struct_ + r), 1.0});
    }
    a_ = CscMatrix::from_triplets(m_, n_total, triplets);
  }

  static double finite_or(double v, double fallback) noexcept {
    return std::isfinite(v) ? v : fallback;
  }

  /// Nonbasic resting value of variable j.
  [[nodiscard]] double nonbasic_value(std::size_t j) const noexcept {
    if (vstat_[j] == VarStatus::kAtUpper) return finite_or(upper_[j], 0.0);
    return finite_or(lower_[j], 0.0);
  }

  /// Rowless problem: each variable sits at its cheaper bound.
  [[nodiscard]] LpSolution bound_only(Sense sense) const {
    LpSolution solution;
    solution.status = SolveStatus::kOptimal;
    solution.x.resize(n_struct_);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      solution.x[v] = cost_[v] >= 0 ? finite_or(lower_[v], 0.0)
                                    : finite_or(upper_[v], 0.0);
      if (cost_[v] < 0 && upper_[v] == kInf) {
        solution.status = SolveStatus::kUnbounded;
        return solution;
      }
    }
    solution.objective = objective_of(solution.x, sense);
    return solution;
  }

  /// Default nonbasic statuses plus the all-slack basis.
  void set_slack_basis() {
    const std::size_t n_total = a_.cols;
    vstat_.assign(n_total, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n_total; ++j) {
      if (!std::isfinite(lower_[j]) && std::isfinite(upper_[j])) {
        vstat_[j] = VarStatus::kAtUpper;
      }
    }
    basis_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t slack = n_struct_ + r;
      basis_[r] = static_cast<std::int32_t>(slack);
      vstat_[slack] = VarStatus::kBasic;
    }
  }

  [[nodiscard]] bool needs_phase1() const noexcept {
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      if (xb_[i] < lower_[b] - options_.feasibility_tol ||
          xb_[i] > upper_[b] + options_.feasibility_tol) {
        return true;
      }
    }
    return false;
  }

  /// For every bound-violating basic slack, clamp the slack to its nearest
  /// bound (making it nonbasic) and install an artificial column that absorbs
  /// the residual with a positive basic value.  Phase 1 minimizes the sum of
  /// artificials.  Callers must be at the slack basis (the ±1 artificial
  /// column relies on row i of the tableau being row i of A).  Returns the
  /// (row, sign) of every installed artificial so the engine can patch its
  /// factorisation.
  std::vector<std::pair<std::size_t, double>> build_artificials() {
    saved_cost_ = cost_;
    std::fill(cost_.begin(), cost_.end(), 0.0);

    std::vector<std::pair<std::size_t, double>> installed;
    std::vector<Triplet> extra;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      double violation = 0.0;
      if (xb_[i] < lower_[b] - options_.feasibility_tol) {
        violation = xb_[i] - lower_[b];  // negative
      } else if (xb_[i] > upper_[b] + options_.feasibility_tol) {
        violation = xb_[i] - upper_[b];  // positive
      } else {
        continue;
      }
      // Clamp the old basic variable to the violated bound.
      vstat_[b] = violation < 0.0 ? VarStatus::kAtLower : VarStatus::kAtUpper;
      const double sign = violation < 0.0 ? -1.0 : 1.0;
      const std::size_t art = lower_.size();
      lower_.push_back(0.0);
      upper_.push_back(kInf);
      cost_.push_back(1.0);
      saved_cost_.push_back(0.0);
      vstat_.push_back(VarStatus::kBasic);
      extra.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(art),
                       sign});
      basis_[i] = static_cast<std::int32_t>(art);
      installed.emplace_back(i, sign);
    }

    // Rebuild A with the artificial columns appended.
    std::vector<Triplet> triplets;
    triplets.reserve(a_.value.size() + extra.size());
    for (std::size_t c = 0; c < a_.cols; ++c) {
      for (std::int64_t p = a_.col_start[c]; p < a_.col_start[c + 1]; ++p) {
        triplets.push_back({a_.row_index[p], static_cast<std::int32_t>(c),
                            a_.value[p]});
      }
    }
    triplets.insert(triplets.end(), extra.begin(), extra.end());
    a_ = CscMatrix::from_triplets(m_, lower_.size(), triplets);
    return installed;
  }

  [[nodiscard]] double phase1_objective() const noexcept {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      obj += cost_[b] * xb_[i];
    }
    return obj;
  }

  /// Fixes artificials at zero and restores the real objective.
  void seal_artificials() {
    for (std::size_t j = n_struct_ + m_; j < lower_.size(); ++j) {
      upper_[j] = 0.0;
    }
    cost_ = saved_cost_;
  }

  [[nodiscard]] std::vector<double> extract_structurals() const {
    std::vector<double> x(n_struct_);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      x[v] = vstat_[v] == VarStatus::kBasic ? 0.0 : nonbasic_value(v);
    }
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      if (b < n_struct_) x[b] = xb_[i];
    }
    return x;
  }

  [[nodiscard]] double objective_of(const std::vector<double>& x,
                                    Sense sense) const noexcept {
    // cost_ holds the minimize-sense coefficients; undo the negation so the
    // value is reported in the problem's own sense.
    double obj = 0.0;
    for (std::size_t v = 0; v < n_struct_; ++v) {
      obj += (sense == Sense::kMaximize ? -cost_[v] : cost_[v]) * x[v];
    }
    return obj;
  }

  /// Snapshot of the structural+slack statuses, empty when a (degenerate)
  /// basic artificial makes the snapshot non-restartable.
  [[nodiscard]] SimplexBasis export_basis() const {
    SimplexBasis out;
    const std::size_t n_real = n_struct_ + m_;
    out.status.resize(n_real);
    std::size_t basics = 0;
    for (std::size_t j = 0; j < n_real; ++j) {
      out.status[j] = vstat_[j];
      if (vstat_[j] == VarStatus::kBasic) ++basics;
    }
    if (basics != m_) out.status.clear();
    return out;
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_struct_;
  CscMatrix a_;
  std::vector<double> lower_, upper_, cost_, saved_cost_;
  std::vector<double> rhs_;
  std::vector<std::int32_t> basis_;
  std::vector<VarStatus> vstat_;
  std::vector<double> xb_;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
};

// ---------------------------------------------------------------------------
// Dense engine: explicit row-major basis inverse with product-form updates
// and Dantzig pricing.  O(m²) memory and per-iteration work.  Retained as an
// independently implemented oracle for the sparse engine and as the
// benchmark baseline.
// ---------------------------------------------------------------------------

class DenseSolver : private SolverBase {
 public:
  DenseSolver(const LpProblem& problem, const SimplexOptions& options)
      : SolverBase(problem, options) {}

  LpSolution run(Sense sense) {
    LpSolution solution;
    if (m_ == 0) return bound_only(sense);

    initialize_basis();
    max_iterations_ = options_.max_iterations != 0
                          ? options_.max_iterations
                          : 50 * (m_ + a_.cols) + 10000;

    if (needs_phase1()) {
      const auto installed = build_artificials();
      // The basis matrix became diag(±1); keep the explicit inverse exact.
      for (const auto& rs : installed) binv_[rs.first * m_ + rs.first] = rs.second;
      compute_basic_values();
      const SolveStatus phase1 = iterate();
      solution.phase1_iterations = iterations_;
      if (phase1 == SolveStatus::kIterationLimit) {
        solution.status = phase1;
        return solution;
      }
      if (phase1_objective() > 1e-6) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
      seal_artificials();
    }

    const SolveStatus status = iterate();
    solution.status = status;
    solution.iterations = iterations_;
    solution.x = extract_structurals();
    solution.objective = objective_of(solution.x, sense);
    if (status == SolveStatus::kOptimal) {
      solution.row_duals = extract_row_duals(sense);
      solution.basis = export_basis();
    }
    return solution;
  }

 private:
  void initialize_basis() {
    set_slack_basis();
    binv_.assign(m_ * m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) binv_[r * m_ + r] = 1.0;
    compute_basic_values();
  }

  /// xB = B^-1 (rhs - sum over nonbasic j of A_j * x_j).
  void compute_basic_values() {
    std::vector<double> residual = rhs_;
    for (std::size_t j = 0; j < a_.cols; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
        residual[static_cast<std::size_t>(a_.row_index[p])] -= a_.value[p] * xj;
      }
    }
    xb_.assign(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double* row = &binv_[i * m_];
      double acc = 0.0;
      for (std::size_t r = 0; r < m_; ++r) acc += row[r] * residual[r];
      xb_[i] = acc;
    }
  }

  SolveStatus iterate() {
    std::size_t degenerate_run = 0;
    std::vector<double> y(m_);
    std::vector<double> w(m_);
    for (; iterations_ < max_iterations_; ++iterations_) {
      const bool bland = degenerate_run >= options_.degeneracy_limit;

      // y = cB^T B^-1 (skip zero-cost basics: most of them in phase 2).
      std::fill(y.begin(), y.end(), 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        const double cb = cost_[static_cast<std::size_t>(basis_[i])];
        if (cb == 0.0) continue;
        const double* row = &binv_[i * m_];
        for (std::size_t r = 0; r < m_; ++r) y[r] += cb * row[r];
      }

      // Pricing: entering column with the most attractive reduced cost.
      std::ptrdiff_t enter = -1;
      double best_score = options_.optimality_tol;
      int enter_dir = 0;
      for (std::size_t j = 0; j < a_.cols; ++j) {
        if (vstat_[j] == VarStatus::kBasic) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed variable
        double d = cost_[j];
        for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
          d -= y[static_cast<std::size_t>(a_.row_index[p])] * a_.value[p];
        }
        int dir = 0;
        double score = 0.0;
        if (vstat_[j] == VarStatus::kAtLower && d < -options_.optimality_tol) {
          dir = +1;
          score = -d;
        } else if (vstat_[j] == VarStatus::kAtUpper && d > options_.optimality_tol) {
          dir = -1;
          score = d;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
        }
      }
      if (enter < 0) return SolveStatus::kOptimal;
      const auto j_enter = static_cast<std::size_t>(enter);
      const double sigma = enter_dir;

      // w = B^-1 A_j.
      std::fill(w.begin(), w.end(), 0.0);
      for (std::int64_t p = a_.col_start[j_enter]; p < a_.col_start[j_enter + 1];
           ++p) {
        const auto r = static_cast<std::size_t>(a_.row_index[p]);
        const double v = a_.value[p];
        for (std::size_t i = 0; i < m_; ++i) w[i] += binv_[i * m_ + r] * v;
      }

      // Ratio test.  Entering moves t >= 0 in direction sigma; basics change
      // as xB_i -= t * sigma * w_i.
      const double span = upper_[j_enter] - lower_[j_enter];
      double t_limit = span;  // bound flip
      std::ptrdiff_t leave_row = -1;
      double leave_pivot = 0.0;
      int leave_to_upper = 0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = sigma * w[i];
        if (std::abs(rate) <= options_.pivot_tol) continue;
        const auto b = static_cast<std::size_t>(basis_[i]);
        double ratio;
        int hits_upper;
        if (rate > 0.0) {  // basic decreases toward its lower bound
          if (!std::isfinite(lower_[b])) continue;
          ratio = (xb_[i] - lower_[b]) / rate;
          hits_upper = 0;
        } else {  // basic increases toward its upper bound
          if (!std::isfinite(upper_[b])) continue;
          ratio = (xb_[i] - upper_[b]) / rate;
          hits_upper = 1;
        }
        if (ratio < 0.0) ratio = 0.0;  // bound already (numerically) tight
        if (ratio < t_limit - 1e-12) {
          t_limit = ratio;
          leave_row = static_cast<std::ptrdiff_t>(i);
          leave_pivot = w[i];
          leave_to_upper = hits_upper;
        } else if (ratio <= t_limit + 1e-12) {
          // Tie: prefer the larger pivot for numerical stability, or the
          // lowest variable index under Bland's anti-cycling rule.
          const bool prefer =
              leave_row < 0 ||
              (bland ? basis_[i] < basis_[static_cast<std::size_t>(leave_row)]
                     : std::abs(w[i]) > std::abs(leave_pivot));
          if (prefer) {
            t_limit = std::min(t_limit, ratio);
            leave_row = static_cast<std::ptrdiff_t>(i);
            leave_pivot = w[i];
            leave_to_upper = hits_upper;
          }
        }
      }

      if (!std::isfinite(t_limit)) return SolveStatus::kUnbounded;
      degenerate_run = t_limit <= options_.pivot_tol ? degenerate_run + 1 : 0;

      if (leave_row < 0) {
        // Bound flip: the entering variable traverses its whole range.
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= t_limit * sigma * w[i];
        vstat_[j_enter] = vstat_[j_enter] == VarStatus::kAtLower
                              ? VarStatus::kAtUpper
                              : VarStatus::kAtLower;
        continue;
      }

      // Pivot: entering becomes basic in leave_row.
      const auto r = static_cast<std::size_t>(leave_row);
      const auto b_leave = static_cast<std::size_t>(basis_[r]);
      const double enter_start = nonbasic_value(j_enter);
      for (std::size_t i = 0; i < m_; ++i) xb_[i] -= t_limit * sigma * w[i];
      const double enter_value = enter_start + sigma * t_limit;

      vstat_[b_leave] = leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      vstat_[j_enter] = VarStatus::kBasic;
      basis_[r] = static_cast<std::int32_t>(j_enter);
      xb_[r] = enter_value;

      // Product-form update of B^-1: pivot row r on w_r.
      const double pivot = leave_pivot;
      double* row_r = &binv_[r * m_];
      const double inv_pivot = 1.0 / pivot;
      for (std::size_t cidx = 0; cidx < m_; ++cidx) row_r[cidx] *= inv_pivot;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r) continue;
        const double factor = w[i];
        if (factor == 0.0) continue;
        double* row_i = &binv_[i * m_];
        for (std::size_t cidx = 0; cidx < m_; ++cidx) {
          row_i[cidx] -= factor * row_r[cidx];
        }
      }
    }
    return SolveStatus::kIterationLimit;
  }

  /// y = cB^T B^-1 at the final basis, converted to the problem's own sense
  /// (duals of a maximize problem are the negated minimize-form duals).
  [[nodiscard]] std::vector<double> extract_row_duals(Sense sense) const {
    std::vector<double> y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost_[static_cast<std::size_t>(basis_[i])];
      if (cb == 0.0) continue;
      const double* row = &binv_[i * m_];
      for (std::size_t r = 0; r < m_; ++r) y[r] += cb * row[r];
    }
    if (sense == Sense::kMaximize) {
      for (double& v : y) v = -v;
    }
    return y;
  }

  std::vector<double> binv_;  // row-major m x m
};

// ---------------------------------------------------------------------------
// Sparse engine: LU-factorised basis with product-form eta updates, sparse
// FTRAN/BTRAN, and Devex pricing over incrementally maintained reduced
// costs.  Per-iteration work scales with factor/column nonzeros, not m².
// ---------------------------------------------------------------------------

class SparseSolver : private SolverBase {
 public:
  SparseSolver(const LpProblem& problem, const SimplexOptions& options)
      : SolverBase(problem, options) {}

  LpSolution run(Sense sense) {
    LpSolution solution;
    if (m_ == 0) return bound_only(sense);

    max_iterations_ = options_.max_iterations != 0
                          ? options_.max_iterations
                          : 50 * (m_ + a_.cols) + 10000;
    w_.resize(m_);
    rho_.resize(m_);
    scratch_.resize(m_);
    build_csr();

    bool warm = false;
    if (options_.basis_warm_start != nullptr) warm = try_warm_start();
    if (!warm && !start_from_slack_basis()) {
      solution.status = SolveStatus::kIterationLimit;
      return solution;
    }

    if (needs_phase1()) {
      // try_warm_start only accepts primal-feasible bases, so this is always
      // the slack basis — the precondition build_artificials needs.
      build_artificials_sparse();
      const SolveStatus phase1 = iterate();
      solution.phase1_iterations = iterations_;
      solution.refactorisations = refactor_count_;
      if (phase1 == SolveStatus::kIterationLimit) {
        solution.status = phase1;
        return solution;
      }
      if (phase1_objective() > 1e-6) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
      seal_artificials();
      recompute_duals();  // same basis, new objective
      gamma_.assign(a_.cols, 1.0);
    }

    const SolveStatus status = iterate();
    solution.status = status;
    solution.iterations = iterations_;
    solution.refactorisations = refactor_count_;
    solution.x = extract_structurals();
    solution.objective = objective_of(solution.x, sense);
    if (status == SolveStatus::kOptimal) {
      solution.row_duals = extract_row_duals(sense);
      solution.basis = export_basis();
    }
    return solution;
  }

 private:
  /// CSR mirror of a_ for pivot-row (BTRAN-side) products; rebuilt whenever
  /// the column set changes.  Iterating CSC columns in order leaves each row
  /// sorted by column index — deterministic scatter order.
  void build_csr() {
    ar_start_.assign(m_ + 1, 0);
    for (std::size_t p = 0; p < a_.row_index.size(); ++p) {
      ++ar_start_[static_cast<std::size_t>(a_.row_index[p]) + 1];
    }
    for (std::size_t r = 0; r < m_; ++r) ar_start_[r + 1] += ar_start_[r];
    ar_col_.resize(a_.row_index.size());
    ar_val_.resize(a_.row_index.size());
    std::vector<std::size_t> fill = ar_start_;
    for (std::size_t c = 0; c < a_.cols; ++c) {
      for (std::int64_t p = a_.col_start[c]; p < a_.col_start[c + 1]; ++p) {
        const auto r = static_cast<std::size_t>(a_.row_index[p]);
        ar_col_[fill[r]] = static_cast<std::int32_t>(c);
        ar_val_[fill[r]] = a_.value[p];
        ++fill[r];
      }
    }
  }

  [[nodiscard]] bool factorize() {
    ++refactor_count_;
    return lu_.factorize(a_, basis_, options_.pivot_tol);
  }

  /// Full state rebuild at the current basis: fresh factors, exact basic
  /// values, exact reduced costs.
  [[nodiscard]] bool refactorize() {
    if (!factorize()) return false;
    compute_basic_values();
    recompute_duals();
    return true;
  }

  [[nodiscard]] bool start_from_slack_basis() {
    set_slack_basis();
    gamma_.assign(a_.cols, 1.0);
    return refactorize();
  }

  /// Adopts options_.basis_warm_start when it matches the problem shape,
  /// factorises, and is primal feasible.  Any failure falls back to the
  /// slack basis (an infeasible warm basis cannot host the artificial
  /// construction, which needs B = I).
  [[nodiscard]] bool try_warm_start() {
    const SimplexBasis& wb = *options_.basis_warm_start;
    const std::size_t n_total = a_.cols;
    if (wb.status.size() != n_total) return false;
    basis_.clear();
    basis_.reserve(m_);
    vstat_.assign(n_total, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n_total; ++j) {
      vstat_[j] = wb.status[j];
      if (wb.status[j] == VarStatus::kBasic) {
        basis_.push_back(static_cast<std::int32_t>(j));
      } else if (wb.status[j] == VarStatus::kAtUpper && !std::isfinite(upper_[j])) {
        return false;  // malformed snapshot: resting on an infinite bound
      }
    }
    if (basis_.size() != m_) return false;
    if (!refactorize()) return false;
    gamma_.assign(n_total, 1.0);
    return !needs_phase1();
  }

  /// xB = B^-1 (rhs - Σ nonbasic A_j x_j) via sparse FTRAN.
  void compute_basic_values() {
    scratch_.clear();
    for (std::size_t r = 0; r < m_; ++r) {
      if (rhs_[r] != 0.0) scratch_.add(static_cast<std::int32_t>(r), rhs_[r]);
    }
    for (std::size_t j = 0; j < a_.cols; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
        scratch_.add(a_.row_index[p], -a_.value[p] * xj);
      }
    }
    lu_.ftran(scratch_);
    xb_.assign(m_, 0.0);
    for (const std::int32_t i : scratch_.pattern) {
      xb_[static_cast<std::size_t>(i)] = scratch_.values[static_cast<std::size_t>(i)];
    }
    scratch_.clear();
  }

  /// Exact reduced costs d_j = c_j - y^T a_j with y = B^-T c_B.
  void recompute_duals() {
    scratch_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost_[static_cast<std::size_t>(basis_[i])];
      if (cb != 0.0) scratch_.add(static_cast<std::int32_t>(i), cb);
    }
    lu_.btran(scratch_);
    d_.assign(a_.cols, 0.0);
    for (std::size_t j = 0; j < a_.cols; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;
      double d = cost_[j];
      for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
        d -= scratch_.values[static_cast<std::size_t>(a_.row_index[p])] * a_.value[p];
      }
      d_[j] = d;
    }
    scratch_.clear();
    duals_fresh_ = true;
  }

  void build_artificials_sparse() {
    const auto installed = build_artificials();
    (void)installed;  // the refactorisation below re-reads the new basis
    build_csr();
    gamma_.assign(a_.cols, 1.0);
    alpha_.assign(a_.cols, 0.0);
    // The artificial basis is diag(±1): factorisation cannot fail.
    const bool ok = refactorize();
    assert(ok && "artificial basis must factorize");
    (void)ok;
  }

  void clear_alpha() {
    for (const std::int32_t c : alpha_touched_) alpha_[static_cast<std::size_t>(c)] = 0.0;
    alpha_touched_.clear();
  }

  SolveStatus iterate() {
    std::size_t degenerate_run = 0;
    if (alpha_.size() != a_.cols) alpha_.assign(a_.cols, 0.0);
    while (iterations_ < max_iterations_) {
      if (lu_.eta_count() >= options_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
      }
      const bool bland = degenerate_run >= options_.degeneracy_limit;

      // Devex pricing over the maintained reduced costs: maximise d² / γ.
      std::ptrdiff_t enter = -1;
      double best_score = 0.0;
      int enter_dir = 0;
      for (std::size_t j = 0; j < a_.cols; ++j) {
        if (vstat_[j] == VarStatus::kBasic) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed variable
        const double d = d_[j];
        int dir = 0;
        if (vstat_[j] == VarStatus::kAtLower && d < -options_.optimality_tol) {
          dir = +1;
        } else if (vstat_[j] == VarStatus::kAtUpper && d > options_.optimality_tol) {
          dir = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
          break;
        }
        const double score = d * d / gamma_[j];
        if (score > best_score) {
          best_score = score;
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
        }
      }
      if (enter < 0) {
        // Incremental reduced costs may only declare optimality after an
        // exact reprice at the current basis.
        if (!duals_fresh_) {
          if (!refactorize()) return SolveStatus::kIterationLimit;
          continue;
        }
        return SolveStatus::kOptimal;
      }
      const auto j_enter = static_cast<std::size_t>(enter);
      const double sigma = enter_dir;

      // FTRAN: w = B^-1 A_j, sparse in and out.
      w_.clear();
      for (std::int64_t p = a_.col_start[j_enter]; p < a_.col_start[j_enter + 1];
           ++p) {
        w_.add(a_.row_index[p], a_.value[p]);
      }
      lu_.ftran(w_);

      // Ratio test over the nonzero pattern only.
      const double span = upper_[j_enter] - lower_[j_enter];
      double t_limit = span;  // bound flip
      std::ptrdiff_t leave_row = -1;
      double leave_pivot = 0.0;
      int leave_to_upper = 0;
      for (const std::int32_t pi : w_.pattern) {
        const auto i = static_cast<std::size_t>(pi);
        const double wi = w_.values[i];
        const double rate = sigma * wi;
        if (std::abs(rate) <= options_.pivot_tol) continue;
        const auto b = static_cast<std::size_t>(basis_[i]);
        double ratio;
        int hits_upper;
        if (rate > 0.0) {  // basic decreases toward its lower bound
          if (!std::isfinite(lower_[b])) continue;
          ratio = (xb_[i] - lower_[b]) / rate;
          hits_upper = 0;
        } else {  // basic increases toward its upper bound
          if (!std::isfinite(upper_[b])) continue;
          ratio = (xb_[i] - upper_[b]) / rate;
          hits_upper = 1;
        }
        if (ratio < 0.0) ratio = 0.0;  // bound already (numerically) tight
        if (ratio < t_limit - 1e-12) {
          t_limit = ratio;
          leave_row = static_cast<std::ptrdiff_t>(i);
          leave_pivot = wi;
          leave_to_upper = hits_upper;
        } else if (ratio <= t_limit + 1e-12) {
          const bool prefer =
              leave_row < 0 ||
              (bland ? basis_[i] < basis_[static_cast<std::size_t>(leave_row)]
                     : std::abs(wi) > std::abs(leave_pivot));
          if (prefer) {
            t_limit = std::min(t_limit, ratio);
            leave_row = static_cast<std::ptrdiff_t>(i);
            leave_pivot = wi;
            leave_to_upper = hits_upper;
          }
        }
      }

      if (!std::isfinite(t_limit)) {
        // Certify unboundedness on a fresh factorisation — a long eta file
        // (or stale reduced costs) could fake an unbounded ray.
        if (lu_.eta_count() > 0 || !duals_fresh_) {
          if (!refactorize()) return SolveStatus::kIterationLimit;
          continue;
        }
        return SolveStatus::kUnbounded;
      }
      degenerate_run = t_limit <= options_.pivot_tol ? degenerate_run + 1 : 0;

      if (leave_row < 0) {
        // Bound flip: basis unchanged, reduced costs stay valid.
        for (const std::int32_t pi : w_.pattern) {
          const auto i = static_cast<std::size_t>(pi);
          xb_[i] -= t_limit * sigma * w_.values[i];
        }
        vstat_[j_enter] = vstat_[j_enter] == VarStatus::kAtLower
                              ? VarStatus::kAtUpper
                              : VarStatus::kAtLower;
        ++iterations_;
        continue;
      }

      const auto r = static_cast<std::size_t>(leave_row);
      const double wr = leave_pivot;

      // BTRAN pivot row: rho = B^-T e_r, then alpha_j = a_j^T rho scattered
      // through the CSR rows of rho's pattern.
      rho_.clear();
      rho_.add(static_cast<std::int32_t>(r), 1.0);
      lu_.btran(rho_);
      for (const std::int32_t pi : rho_.pattern) {
        const double yv = rho_.values[static_cast<std::size_t>(pi)];
        if (yv == 0.0) continue;
        const auto row = static_cast<std::size_t>(pi);
        for (std::size_t p = ar_start_[row]; p < ar_start_[row + 1]; ++p) {
          const auto c = static_cast<std::size_t>(ar_col_[p]);
          if (alpha_[c] == 0.0) alpha_touched_.push_back(ar_col_[p]);
          alpha_[c] += ar_val_[p] * yv;
        }
      }

      // Forrest-Tomlin-style drift watch: the pivot element is computed both
      // by FTRAN (w_r) and BTRAN (alpha_{j_enter}); disagreement beyond
      // drift_tol means the eta file has decayed — refactorise and redo the
      // iteration on exact data.  A fresh factorisation is accepted as is.
      const double alpha_q = alpha_[j_enter];
      if (std::abs(alpha_q - wr) > options_.drift_tol * (1.0 + std::abs(wr)) &&
          lu_.eta_count() > 0) {
        clear_alpha();
        if (!refactorize()) return SolveStatus::kIterationLimit;
        continue;
      }

      // Apply the pivot: entering becomes basic in row r.
      const auto b_leave = static_cast<std::size_t>(basis_[r]);
      const double enter_start = nonbasic_value(j_enter);
      for (const std::int32_t pi : w_.pattern) {
        const auto i = static_cast<std::size_t>(pi);
        xb_[i] -= t_limit * sigma * w_.values[i];
      }
      vstat_[b_leave] = leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      vstat_[j_enter] = VarStatus::kBasic;
      basis_[r] = static_cast<std::int32_t>(j_enter);
      xb_[r] = enter_start + sigma * t_limit;

      if (!lu_.push_eta(w_, r, options_.pivot_tol)) {
        // Spike pivot below tolerance (the ratio test guards against this;
        // belt and braces): rebuild everything at the updated basis.
        clear_alpha();
        if (!refactorize()) return SolveStatus::kIterationLimit;
        ++iterations_;
        continue;
      }

      // Incremental reduced-cost and Devex-weight updates from the pivot
      // row.  Process-and-clear makes duplicate touched entries (an exact
      // cancellation later refilled) harmless: the second visit reads 0.
      const double d_enter = d_[j_enter];
      const double ratio_d = d_enter / wr;
      const double gamma_q = std::max(gamma_[j_enter], 1.0);
      const double wr2 = wr * wr;
      double gamma_max = 0.0;
      for (const std::int32_t ci : alpha_touched_) {
        const auto c = static_cast<std::size_t>(ci);
        const double av = alpha_[c];
        alpha_[c] = 0.0;
        if (av == 0.0) continue;
        if (vstat_[c] == VarStatus::kBasic) continue;
        d_[c] -= ratio_d * av;
        const double cand = gamma_q * (av * av) / wr2;
        if (cand > gamma_[c]) gamma_[c] = cand;
        if (gamma_[c] > gamma_max) gamma_max = gamma_[c];
      }
      alpha_touched_.clear();
      d_[b_leave] = -ratio_d;
      gamma_[b_leave] = std::max(gamma_q / wr2, 1.0);
      d_[j_enter] = 0.0;
      gamma_[j_enter] = 1.0;
      if (gamma_max > 1e10) gamma_.assign(a_.cols, 1.0);  // reset reference
      duals_fresh_ = false;
      ++iterations_;
    }
    return SolveStatus::kIterationLimit;
  }

  /// y = B^-T c_B at the final basis, in the problem's own sense.
  [[nodiscard]] std::vector<double> extract_row_duals(Sense sense) {
    scratch_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost_[static_cast<std::size_t>(basis_[i])];
      if (cb != 0.0) scratch_.add(static_cast<std::int32_t>(i), cb);
    }
    lu_.btran(scratch_);
    std::vector<double> y(m_, 0.0);
    for (const std::int32_t i : scratch_.pattern) {
      y[static_cast<std::size_t>(i)] = scratch_.values[static_cast<std::size_t>(i)];
    }
    scratch_.clear();
    if (sense == Sense::kMaximize) {
      for (double& v : y) v = -v;
    }
    return y;
  }

  BasisLu lu_;
  std::vector<std::size_t> ar_start_;  // CSR mirror of a_
  std::vector<std::int32_t> ar_col_;
  std::vector<double> ar_val_;
  std::vector<double> d_;      // reduced costs (0 for basics)
  std::vector<double> gamma_;  // Devex reference weights
  std::vector<double> alpha_;  // pivot-row scatter scratch
  std::vector<std::int32_t> alpha_touched_;
  IndexedVector w_, rho_, scratch_;
  std::size_t refactor_count_ = 0;
  bool duals_fresh_ = false;
};

}  // namespace

LpSolution solve(const LpProblem& problem, SimplexOptions options) {
  const std::uint64_t t0 = obs::clock_ticks();
  LpSolution solution;
  if (options.engine == SimplexEngine::kDense) {
    DenseSolver solver(problem, options);
    solution = solver.run(problem.sense());
  } else {
    SparseSolver solver(problem, options);
    solution = solver.run(problem.sense());
  }
  LpMetrics& metrics = LpMetrics::get();
  metrics.latency_ns.record(obs::ticks_to_ns(obs::clock_ticks() - t0));
  metrics.iterations.add(solution.iterations);
  metrics.refactorisations.add(solution.refactorisations);
  return solution;
}

}  // namespace tsce::lp
