#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tsce::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

enum class VarStatus : std::uint8_t { kBasic, kAtLower, kAtUpper };

/// Internal computational form and iteration state.
class Solver {
 public:
  Solver(const LpProblem& problem, const SimplexOptions& options)
      : options_(options),
        m_(problem.num_rows()),
        n_struct_(problem.num_variables()) {
    // Structural columns, then one slack per row, then (maybe) artificials.
    const std::size_t n_total = n_struct_ + m_;
    lower_.reserve(n_total);
    upper_.reserve(n_total);
    cost_.reserve(n_total);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      lower_.push_back(problem.lower(static_cast<std::int32_t>(v)));
      upper_.push_back(problem.upper(static_cast<std::int32_t>(v)));
      const double c = problem.cost(static_cast<std::int32_t>(v));
      cost_.push_back(problem.sense() == Sense::kMaximize ? -c : c);
    }
    rhs_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      rhs_[r] = problem.rhs(static_cast<std::int32_t>(r));
      switch (problem.relation(static_cast<std::int32_t>(r))) {
        case Relation::kLessEqual:
          lower_.push_back(0.0);
          upper_.push_back(kInf);
          break;
        case Relation::kGreaterEqual:
          lower_.push_back(-kInf);
          upper_.push_back(0.0);
          break;
        case Relation::kEqual:
          lower_.push_back(0.0);
          upper_.push_back(0.0);
          break;
      }
      cost_.push_back(0.0);
    }

    // Assemble A = [structural | I] in CSC.
    std::vector<Triplet> triplets = problem.triplets();
    triplets.reserve(triplets.size() + m_);
    for (std::size_t r = 0; r < m_; ++r) {
      triplets.push_back({static_cast<std::int32_t>(r),
                          static_cast<std::int32_t>(n_struct_ + r), 1.0});
    }
    a_ = CscMatrix::from_triplets(m_, n_total, triplets);
  }

  LpSolution run(Sense sense) {
    LpSolution solution;
    if (m_ == 0) {
      // Pure bound problem: each variable sits at its cheaper bound.
      solution.status = SolveStatus::kOptimal;
      solution.x.resize(n_struct_);
      for (std::size_t v = 0; v < n_struct_; ++v) {
        solution.x[v] = cost_[v] >= 0 ? finite_or(lower_[v], 0.0)
                                      : finite_or(upper_[v], 0.0);
        if (cost_[v] < 0 && upper_[v] == kInf) {
          solution.status = SolveStatus::kUnbounded;
          return solution;
        }
      }
      solution.objective = objective_of(solution.x, sense);
      return solution;
    }

    initialize_basis();
    max_iterations_ = options_.max_iterations != 0
                          ? options_.max_iterations
                          : 50 * (m_ + a_.cols) + 10000;

    if (needs_phase1()) {
      build_artificials();
      const SolveStatus phase1 = iterate(/*phase1=*/true);
      solution.phase1_iterations = iterations_;
      if (phase1 == SolveStatus::kIterationLimit) {
        solution.status = phase1;
        return solution;
      }
      if (phase1_objective() > 1e-6) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
      seal_artificials();
    }

    const SolveStatus status = iterate(/*phase1=*/false);
    solution.status = status;
    solution.iterations = iterations_;
    solution.x = extract_structurals();
    solution.objective = objective_of(solution.x, sense);
    if (status == SolveStatus::kOptimal) {
      solution.row_duals = extract_row_duals(sense);
    }
    return solution;
  }

 private:
  static double finite_or(double v, double fallback) noexcept {
    return std::isfinite(v) ? v : fallback;
  }

  /// Nonbasic resting value of variable j.
  [[nodiscard]] double nonbasic_value(std::size_t j) const noexcept {
    if (vstat_[j] == VarStatus::kAtUpper) return finite_or(upper_[j], 0.0);
    return finite_or(lower_[j], 0.0);
  }

  void initialize_basis() {
    const std::size_t n_total = a_.cols;
    vstat_.assign(n_total, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n_total; ++j) {
      if (!std::isfinite(lower_[j]) && std::isfinite(upper_[j])) {
        vstat_[j] = VarStatus::kAtUpper;
      }
    }
    basis_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t slack = n_struct_ + r;
      basis_[r] = static_cast<std::int32_t>(slack);
      vstat_[slack] = VarStatus::kBasic;
    }
    binv_.assign(m_ * m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) binv_[r * m_ + r] = 1.0;
    compute_basic_values();
  }

  /// xB = B^-1 (rhs - sum over nonbasic j of A_j * x_j).  With the slack
  /// basis B = I this is just the residual.
  void compute_basic_values() {
    std::vector<double> residual = rhs_;
    for (std::size_t j = 0; j < a_.cols; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
        residual[static_cast<std::size_t>(a_.row_index[p])] -= a_.value[p] * xj;
      }
    }
    xb_.assign(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double* row = &binv_[i * m_];
      double acc = 0.0;
      for (std::size_t r = 0; r < m_; ++r) acc += row[r] * residual[r];
      xb_[i] = acc;
    }
  }

  [[nodiscard]] bool needs_phase1() const noexcept {
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      if (xb_[i] < lower_[b] - options_.feasibility_tol ||
          xb_[i] > upper_[b] + options_.feasibility_tol) {
        return true;
      }
    }
    return false;
  }

  /// For every bound-violating basic slack, clamp the slack to its nearest
  /// bound (making it nonbasic) and install an artificial column that absorbs
  /// the residual with a positive basic value.  Phase 1 minimizes the sum of
  /// artificials.
  void build_artificials() {
    saved_cost_ = cost_;
    std::fill(cost_.begin(), cost_.end(), 0.0);

    std::vector<Triplet> extra;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      double violation = 0.0;
      if (xb_[i] < lower_[b] - options_.feasibility_tol) {
        violation = xb_[i] - lower_[b];  // negative
      } else if (xb_[i] > upper_[b] + options_.feasibility_tol) {
        violation = xb_[i] - upper_[b];  // positive
      } else {
        continue;
      }
      // Clamp the old basic variable to the violated bound.
      vstat_[b] = violation < 0.0 ? VarStatus::kAtLower : VarStatus::kAtUpper;
      // Artificial with coefficient sign(violation) in row `i` only (the
      // slack basis keeps B^-1 = I during construction, so row i of the
      // tableau is row i of A).
      const double sign = violation < 0.0 ? -1.0 : 1.0;
      const std::size_t art = lower_.size();
      lower_.push_back(0.0);
      upper_.push_back(kInf);
      cost_.push_back(1.0);
      saved_cost_.push_back(0.0);
      vstat_.push_back(VarStatus::kBasic);
      extra.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(art),
                       sign});
      basis_[i] = static_cast<std::int32_t>(art);
      // The basis matrix becomes diag(+/-1); keep the explicit inverse exact.
      binv_[i * m_ + i] = sign;
    }

    // Rebuild A with the artificial columns appended.
    std::vector<Triplet> triplets;
    triplets.reserve(a_.value.size() + extra.size());
    for (std::size_t c = 0; c < a_.cols; ++c) {
      for (std::int64_t p = a_.col_start[c]; p < a_.col_start[c + 1]; ++p) {
        triplets.push_back({a_.row_index[p], static_cast<std::int32_t>(c),
                            a_.value[p]});
      }
    }
    triplets.insert(triplets.end(), extra.begin(), extra.end());
    a_ = CscMatrix::from_triplets(m_, lower_.size(), triplets);
    compute_basic_values();
  }

  [[nodiscard]] double phase1_objective() const noexcept {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      obj += cost_[b] * xb_[i];
    }
    return obj;
  }

  /// Fixes artificials at zero and restores the real objective.
  void seal_artificials() {
    for (std::size_t j = n_struct_ + m_; j < lower_.size(); ++j) {
      upper_[j] = 0.0;
    }
    cost_ = saved_cost_;
  }

  SolveStatus iterate(bool phase1) {
    std::size_t degenerate_run = 0;
    std::vector<double> y(m_);
    std::vector<double> w(m_);
    for (; iterations_ < max_iterations_; ++iterations_) {
      const bool bland = degenerate_run >= options_.degeneracy_limit;

      // y = cB^T B^-1 (skip zero-cost basics: most of them in phase 2).
      std::fill(y.begin(), y.end(), 0.0);
      for (std::size_t i = 0; i < m_; ++i) {
        const double cb = cost_[static_cast<std::size_t>(basis_[i])];
        if (cb == 0.0) continue;
        const double* row = &binv_[i * m_];
        for (std::size_t r = 0; r < m_; ++r) y[r] += cb * row[r];
      }

      // Pricing: entering column with the most attractive reduced cost.
      std::ptrdiff_t enter = -1;
      double best_score = options_.optimality_tol;
      int enter_dir = 0;
      for (std::size_t j = 0; j < a_.cols; ++j) {
        if (vstat_[j] == VarStatus::kBasic) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed variable
        double d = cost_[j];
        for (std::int64_t p = a_.col_start[j]; p < a_.col_start[j + 1]; ++p) {
          d -= y[static_cast<std::size_t>(a_.row_index[p])] * a_.value[p];
        }
        int dir = 0;
        double score = 0.0;
        if (vstat_[j] == VarStatus::kAtLower && d < -options_.optimality_tol) {
          dir = +1;
          score = -d;
        } else if (vstat_[j] == VarStatus::kAtUpper && d > options_.optimality_tol) {
          dir = -1;
          score = d;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          enter = static_cast<std::ptrdiff_t>(j);
          enter_dir = dir;
        }
      }
      if (enter < 0) return SolveStatus::kOptimal;
      const auto j_enter = static_cast<std::size_t>(enter);
      const double sigma = enter_dir;

      // w = B^-1 A_j.
      std::fill(w.begin(), w.end(), 0.0);
      for (std::int64_t p = a_.col_start[j_enter]; p < a_.col_start[j_enter + 1];
           ++p) {
        const auto r = static_cast<std::size_t>(a_.row_index[p]);
        const double v = a_.value[p];
        for (std::size_t i = 0; i < m_; ++i) w[i] += binv_[i * m_ + r] * v;
      }

      // Ratio test.  Entering moves t >= 0 in direction sigma; basics change
      // as xB_i -= t * sigma * w_i.
      const double span = upper_[j_enter] - lower_[j_enter];
      double t_limit = span;  // bound flip
      std::ptrdiff_t leave_row = -1;
      double leave_pivot = 0.0;
      int leave_to_upper = 0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rate = sigma * w[i];
        if (std::abs(rate) <= options_.pivot_tol) continue;
        const auto b = static_cast<std::size_t>(basis_[i]);
        double ratio;
        int hits_upper;
        if (rate > 0.0) {  // basic decreases toward its lower bound
          if (!std::isfinite(lower_[b])) continue;
          ratio = (xb_[i] - lower_[b]) / rate;
          hits_upper = 0;
        } else {  // basic increases toward its upper bound
          if (!std::isfinite(upper_[b])) continue;
          ratio = (xb_[i] - upper_[b]) / rate;
          hits_upper = 1;
        }
        if (ratio < 0.0) ratio = 0.0;  // bound already (numerically) tight
        if (ratio < t_limit - 1e-12) {
          t_limit = ratio;
          leave_row = static_cast<std::ptrdiff_t>(i);
          leave_pivot = w[i];
          leave_to_upper = hits_upper;
        } else if (ratio <= t_limit + 1e-12) {
          // Tie: prefer the larger pivot for numerical stability, or the
          // lowest variable index under Bland's anti-cycling rule.
          const bool prefer =
              leave_row < 0 ||
              (bland ? basis_[i] < basis_[static_cast<std::size_t>(leave_row)]
                     : std::abs(w[i]) > std::abs(leave_pivot));
          if (prefer) {
            t_limit = std::min(t_limit, ratio);
            leave_row = static_cast<std::ptrdiff_t>(i);
            leave_pivot = w[i];
            leave_to_upper = hits_upper;
          }
        }
      }

      if (!std::isfinite(t_limit)) return SolveStatus::kUnbounded;
      degenerate_run = t_limit <= options_.pivot_tol ? degenerate_run + 1 : 0;

      if (leave_row < 0) {
        // Bound flip: the entering variable traverses its whole range.
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= t_limit * sigma * w[i];
        vstat_[j_enter] = vstat_[j_enter] == VarStatus::kAtLower
                              ? VarStatus::kAtUpper
                              : VarStatus::kAtLower;
        continue;
      }

      // Pivot: entering becomes basic in leave_row.
      const auto r = static_cast<std::size_t>(leave_row);
      const auto b_leave = static_cast<std::size_t>(basis_[r]);
      const double enter_start = nonbasic_value(j_enter);
      for (std::size_t i = 0; i < m_; ++i) xb_[i] -= t_limit * sigma * w[i];
      const double enter_value = enter_start + sigma * t_limit;

      vstat_[b_leave] = leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      vstat_[j_enter] = VarStatus::kBasic;
      basis_[r] = static_cast<std::int32_t>(j_enter);
      xb_[r] = enter_value;

      // Product-form update of B^-1: pivot row r on w_r.
      const double pivot = leave_pivot;
      double* row_r = &binv_[r * m_];
      const double inv_pivot = 1.0 / pivot;
      for (std::size_t cidx = 0; cidx < m_; ++cidx) row_r[cidx] *= inv_pivot;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == r) continue;
        const double factor = w[i];
        if (factor == 0.0) continue;
        double* row_i = &binv_[i * m_];
        for (std::size_t cidx = 0; cidx < m_; ++cidx) {
          row_i[cidx] -= factor * row_r[cidx];
        }
      }
      (void)phase1;
    }
    return SolveStatus::kIterationLimit;
  }

  /// y = cB^T B^-1 at the final basis, converted to the problem's own sense
  /// (duals of a maximize problem are the negated minimize-form duals).
  [[nodiscard]] std::vector<double> extract_row_duals(Sense sense) const {
    std::vector<double> y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost_[static_cast<std::size_t>(basis_[i])];
      if (cb == 0.0) continue;
      const double* row = &binv_[i * m_];
      for (std::size_t r = 0; r < m_; ++r) y[r] += cb * row[r];
    }
    if (sense == Sense::kMaximize) {
      for (double& v : y) v = -v;
    }
    return y;
  }

  [[nodiscard]] std::vector<double> extract_structurals() const {
    std::vector<double> x(n_struct_);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      x[v] = vstat_[v] == VarStatus::kBasic ? 0.0 : nonbasic_value(v);
    }
    for (std::size_t i = 0; i < m_; ++i) {
      const auto b = static_cast<std::size_t>(basis_[i]);
      if (b < n_struct_) x[b] = xb_[i];
    }
    return x;
  }

  [[nodiscard]] double objective_of(const std::vector<double>& x,
                                    Sense sense) const noexcept {
    // cost_ holds the minimize-sense coefficients; undo the negation so the
    // value is reported in the problem's own sense.
    double obj = 0.0;
    for (std::size_t v = 0; v < n_struct_; ++v) {
      obj += (sense == Sense::kMaximize ? -cost_[v] : cost_[v]) * x[v];
    }
    return obj;
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_struct_;
  CscMatrix a_;
  std::vector<double> lower_, upper_, cost_, saved_cost_;
  std::vector<double> rhs_;
  std::vector<std::int32_t> basis_;
  std::vector<VarStatus> vstat_;
  std::vector<double> binv_;  // row-major m x m
  std::vector<double> xb_;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
};

}  // namespace

LpSolution solve(const LpProblem& problem, SimplexOptions options) {
  Solver solver(problem, options);
  return solver.run(problem.sense());
}

}  // namespace tsce::lp
