/// \file upper_bound.hpp
/// Mathematical performance upper bound via fractional mappings (paper §7).
///
/// Applications may be split into per-machine fractions x[i,k,j]; output
/// transfers split into per-route fractions y[i,k,j1,j2].  Flow-conservation
/// constraints tie consecutive applications together and the stage-one
/// capacity constraints bound every machine and route.  The resulting LP's
/// optimum dominates the best integral allocation, so it upper-bounds every
/// heuristic:
///
/// * scenarios 1-2 (partial mapping): maximize deployed worth with
///   sum_j x[1,k,j] <= 1;
/// * scenario 3 (complete mapping): force full deployment and maximize the
///   system slackness lambda.
///
/// The paper solved these LPs with Lingo 9.0; here the in-repo simplex
/// (simplex.hpp) is used — see DESIGN.md for the substitution note, including
/// the objective-function discrepancy (kPaperLiteral weights strings by their
/// length; kTotalWorth matches the paper's "total worth" metric and is the
/// default).

#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "model/system_model.hpp"

namespace tsce::lp {

enum class UbObjective {
  /// Maximize sum over strings of I[k] * f_k (f_k = deployed fraction).
  kTotalWorth,
  /// The paper's literal formula: sum over strings, apps, machines of
  /// I[k] * x[i,k,j] (weights each string by its application count).
  kPaperLiteral,
};

struct UpperBoundOptions {
  UbObjective objective = UbObjective::kTotalWorth;
  SimplexOptions simplex;
};

struct UpperBoundResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Worth bound (partial mode) or slackness bound (complete mode).
  double value = 0.0;
  /// Deployed fraction f_k per string (worth mode only).
  std::vector<double> string_fractions;
  /// Shadow price of each machine's capacity constraint (f): the marginal
  /// objective gain per unit of additional CPU capacity.  The resource with
  /// the largest shadow price is the system bottleneck.
  std::vector<double> machine_shadow_price;
  /// Shadow price of each route's capacity constraint (g), row-major M x M
  /// (diagonal zero).
  std::vector<double> route_shadow_price;
  std::size_t lp_rows = 0;
  std::size_t lp_cols = 0;
  std::size_t iterations = 0;
  /// Basis refactorisations performed by the sparse engine.
  std::size_t refactorisations = 0;
};

/// Builds the fractional-mapping LP.  \p complete selects scenario-3 mode
/// (full deployment + slackness objective).
///
/// Row layout: (a) Q deployment rows, (b) equal-fraction rows, (d)/(e) flow
/// rows per edge, (f) M machine-capacity rows, then (g) route-capacity rows
/// — the (g) block is **omitted entirely** when no string has an inter-app
/// edge (single-app workloads, e.g. the TDM-client fleet tier), which drops
/// M(M-1) rows from fleet-scale instances.  Use upper_bound_route_rows() to
/// recover the layout when reading duals positionally.
[[nodiscard]] LpProblem build_upper_bound_lp(const model::SystemModel& model,
                                             bool complete,
                                             UbObjective objective);

/// Same, assembling into \p problem (cleared first) so the triplet/bound
/// vectors' capacity is reused across repeated builds.
void build_upper_bound_lp_into(LpProblem& problem, const model::SystemModel& model,
                               bool complete, UbObjective objective);

/// Number of (g) route-capacity rows build_upper_bound_lp emits for
/// \p model: M(M-1) when any string has at least two applications, else 0.
[[nodiscard]] std::size_t upper_bound_route_rows(const model::SystemModel& model);

/// Upper bound on total worth for partial resource allocation (scenarios 1-2).
[[nodiscard]] UpperBoundResult upper_bound_worth(const model::SystemModel& model,
                                                 UpperBoundOptions options = {});

/// Upper bound on system slackness for complete allocation (scenario 3).
/// status == kInfeasible means even fractional full deployment is impossible.
[[nodiscard]] UpperBoundResult upper_bound_slackness(const model::SystemModel& model,
                                                     UpperBoundOptions options = {});

/// Reusable upper-bound evaluator for repeated solves over same-shaped
/// models (Monte-Carlo replicates, what-if perturbations).  Reuses the
/// assembled LpProblem's buffers across calls, and — when warm starts are
/// enabled — chains each solve from the previous optimal basis, which is
/// where the sparse engine's basis_warm_start hook pays off: a lightly
/// perturbed model typically re-optimises in a handful of pivots.  A basis
/// that no longer fits (shape change, infeasible start) falls back to a cold
/// solve automatically, so enabling warm starts never changes results, only
/// the pivot path.  Not thread-safe; use one instance per thread.
class UpperBoundSolver {
 public:
  explicit UpperBoundSolver(UpperBoundOptions options = {})
      : options_(options) {}

  /// Enables basis chaining across solves (off by default: a chained pivot
  /// path makes per-call iteration counts depend on call order).
  void set_warm_start(bool enabled) noexcept { warm_start_ = enabled; }

  [[nodiscard]] UpperBoundResult worth(const model::SystemModel& model);
  [[nodiscard]] UpperBoundResult slackness(const model::SystemModel& model);

 private:
  UpperBoundResult run_reusable(const model::SystemModel& model, bool complete);

  UpperBoundOptions options_;
  bool warm_start_ = false;
  SimplexBasis last_basis_;
  LpProblem problem_;
};

}  // namespace tsce::lp
